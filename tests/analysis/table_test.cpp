#include "hyparview/analysis/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hyparview::analysis {
namespace {

TEST(TableTest, MarkdownLayout) {
  Table t({"proto", "reliability"});
  t.add_row({"hyparview", "100%"});
  t.add_row({"cyclon", "85%"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| proto     | reliability |"), std::string::npos);
  EXPECT_NE(s.find("| hyparview | 100%        |"), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, RowWidthValidated) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "HPV_CHECK");
}

TEST(TableTest, EmptyTableStillRendersHeader) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_NE(t.to_string().find("| x |"), std::string::npos);
}

TEST(TableTest, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace hyparview::analysis
