#include "hyparview/analysis/broadcast_recorder.hpp"

#include <gtest/gtest.h>

namespace hyparview::analysis {
namespace {

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

TEST(BroadcastRecorderTest, CountsDeliveriesAndHops) {
  BroadcastRecorder rec;
  rec.begin_message(1, 10);
  rec.on_deliver(nid(0), 1, 0);
  rec.on_deliver(nid(1), 1, 1);
  rec.on_deliver(nid(2), 1, 3);
  const MessageResult& r = rec.result(1);
  EXPECT_EQ(r.delivered, 3u);
  EXPECT_EQ(r.alive_nodes, 10u);
  EXPECT_EQ(r.max_hops, 3u);
  EXPECT_EQ(r.hop_sum, 4u);
  EXPECT_DOUBLE_EQ(r.reliability(), 0.3);
}

TEST(BroadcastRecorderTest, TracksDuplicates) {
  BroadcastRecorder rec;
  rec.begin_message(1, 4);
  rec.on_deliver(nid(0), 1, 0);
  rec.on_duplicate(nid(0), 1);
  rec.on_duplicate(nid(1), 1);
  EXPECT_EQ(rec.result(1).duplicates, 2u);
  EXPECT_EQ(rec.total_duplicates(), 2u);
}

TEST(BroadcastRecorderTest, IgnoresUnregisteredMessages) {
  BroadcastRecorder rec;
  rec.on_deliver(nid(0), 99, 0);  // no begin_message(99)
  rec.on_duplicate(nid(0), 99);
  EXPECT_TRUE(rec.results().empty());
}

TEST(BroadcastRecorderTest, AverageReliabilityAcrossMessages) {
  BroadcastRecorder rec;
  rec.begin_message(1, 4);
  rec.on_deliver(nid(0), 1, 0);
  rec.on_deliver(nid(1), 1, 1);  // 2/4
  rec.begin_message(2, 4);
  rec.on_deliver(nid(0), 2, 0);
  rec.on_deliver(nid(1), 2, 1);
  rec.on_deliver(nid(2), 2, 1);
  rec.on_deliver(nid(3), 2, 2);  // 4/4
  EXPECT_DOUBLE_EQ(rec.average_reliability(), 0.75);
}

TEST(BroadcastRecorderTest, AverageMaxHops) {
  BroadcastRecorder rec;
  rec.begin_message(1, 2);
  rec.on_deliver(nid(0), 1, 4);
  rec.begin_message(2, 2);
  rec.on_deliver(nid(0), 2, 8);
  EXPECT_DOUBLE_EQ(rec.average_max_hops(), 6.0);
}

TEST(BroadcastRecorderTest, ZeroAliveYieldsZeroReliability) {
  MessageResult r;
  r.alive_nodes = 0;
  EXPECT_DOUBLE_EQ(r.reliability(), 0.0);
}

TEST(BroadcastRecorderTest, ClearResets) {
  BroadcastRecorder rec;
  rec.begin_message(1, 2);
  rec.on_deliver(nid(0), 1, 0);
  rec.clear();
  EXPECT_TRUE(rec.results().empty());
  EXPECT_DOUBLE_EQ(rec.average_reliability(), 0.0);
  // Reusing an id after clear is allowed.
  rec.begin_message(1, 2);
  EXPECT_EQ(rec.results().size(), 1u);
}

TEST(BroadcastRecorderTest, DuplicateBeginRejected) {
  BroadcastRecorder rec;
  rec.begin_message(1, 2);
  EXPECT_DEATH(rec.begin_message(1, 2), "HPV_CHECK");
}

}  // namespace
}  // namespace hyparview::analysis
