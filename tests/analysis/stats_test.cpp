#include "hyparview/analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hyparview::analysis {
namespace {

TEST(StatsTest, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, SummarySingleValue) {
  const std::vector<double> v = {4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(StatsTest, SummaryKnownValues) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  // Sample stddev of this classic set: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, PercentileEdges) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(StatsTest, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(StatsTest, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(StatsTest, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_percent(0.999, 2), "99.90%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace hyparview::analysis
