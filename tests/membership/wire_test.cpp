#include "hyparview/membership/wire.hpp"

#include <gtest/gtest.h>

#include "hyparview/common/rng.hpp"

namespace hyparview::wire {
namespace {

/// All message kinds with representative payloads, used by the
/// parameterized round-trip suite.
std::vector<Message> representative_messages() {
  const NodeId a = NodeId::from_index(1);
  const NodeId b = NodeId::from_index(2);
  const NodeId c{0xC0A80102, 9999};
  return {
      Join{},
      ForwardJoin{a, 6},
      ForwardJoinAccept{},
      Disconnect{},
      Neighbor{true},
      Neighbor{false},
      NeighborReply{true},
      NeighborReply{false},
      Shuffle{a, 5, {b, c}},
      Shuffle{a, 0, {}},
      ShuffleReply{{a}, {b, c}},
      ShuffleReply{{}, {}},
      CyclonShuffle{{AgedId{a, 3}, AgedId{b, 0}}},
      CyclonShuffleReply{{AgedId{c, 65535}}},
      CyclonJoinWalk{a, 5},
      CyclonJoinGift{AgedId{b, 7}},
      ScampSubscribe{a},
      ScampForwardedSub{b, 256},
      ScampInViewNotify{},
      ScampReplace{a, b},
      ScampReplace{a, kNoNode},
      ScampHeartbeat{},
      Gossip{0xFEEDFACE12345678ull, 12, 1024},
      GossipAck{42},
      Hello{c},
      TreeGossip{0xDEADBEEF00C0FFEEull, 3, 4096},
      IHave{0xDEADBEEF00C0FFEEull, 3},
      Graft{77},
      Prune{},
  };
}

class WireRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WireRoundTrip, EncodeDecodeIdentity) {
  const Message original = representative_messages()[GetParam()];
  const auto bytes = encode_bytes(original);
  const Message decoded = decode_bytes(bytes);
  EXPECT_EQ(decoded.index(), original.index());
  EXPECT_EQ(decoded, original) << type_name(original);
}

TEST_P(WireRoundTrip, EncodedSizeMatchesEncoding) {
  const Message msg = representative_messages()[GetParam()];
  EXPECT_EQ(encoded_size(msg), encode_bytes(msg).size()) << type_name(msg);
}

TEST_P(WireRoundTrip, WireCostIsEncodingPlusGossipPayload) {
  const Message msg = representative_messages()[GetParam()];
  std::size_t expected = encode_bytes(msg).size();
  if (const auto* g = std::get_if<Gossip>(&msg)) expected += g->payload_size;
  if (const auto* t = std::get_if<TreeGossip>(&msg)) {
    expected += t->payload_size;
  }
  EXPECT_EQ(wire_cost(msg), expected) << type_name(msg);
}

INSTANTIATE_TEST_SUITE_P(
    AllMessages, WireRoundTrip,
    ::testing::Range<std::size_t>(0, representative_messages().size()));

TEST(WireTest, TagsAreStableVariantIndices) {
  EXPECT_EQ(type_tag(Message{Join{}}), 0);
  // Tags are append-only: pre-Plumtree kinds keep their original indices.
  EXPECT_EQ(type_tag(Message{Gossip{}}), 17);
  EXPECT_EQ(type_tag(Message{Hello{}}), 19);
  EXPECT_EQ(type_tag(Message{TreeGossip{}}), 20);
  EXPECT_EQ(type_tag(Message{Prune{}}),
            static_cast<std::uint8_t>(std::variant_size_v<Message> - 1));
}

TEST(WireTest, TypeNamesDistinct) {
  std::vector<std::string> names;
  for (const auto& m : representative_messages()) {
    names.emplace_back(type_name(m));
  }
  // All kinds appear; names of different kinds differ.
  EXPECT_NE(std::string(type_name(Message{Join{}})),
            std::string(type_name(Message{Disconnect{}})));
  EXPECT_STREQ(type_name(Message{Shuffle{}}), "SHUFFLE");
  EXPECT_STREQ(type_name(Message{Gossip{}}), "GOSSIP");
}

TEST(WireTest, DecodeRejectsUnknownTag) {
  std::vector<std::uint8_t> bytes = {0xEE};
  EXPECT_THROW((void)decode_bytes(bytes), CheckError);
}

TEST(WireTest, DecodeRejectsTruncatedPayload) {
  auto bytes = encode_bytes(Message{ForwardJoin{NodeId::from_index(3), 4}});
  bytes.pop_back();
  EXPECT_THROW((void)decode_bytes(bytes), CheckError);
}

TEST(WireTest, DecodeRejectsTrailingGarbage) {
  auto bytes = encode_bytes(Message{Disconnect{}});
  bytes.push_back(0x00);
  EXPECT_THROW((void)decode_bytes(bytes), CheckError);
}

TEST(WireTest, DecodeEmptyThrows) {
  EXPECT_THROW((void)decode_bytes({}), CheckError);
}

TEST(WireTest, MaxCapacityShuffleRoundTrip) {
  // The flat codec's worst case: every list filled to its inline bound.
  Shuffle s;
  s.origin = NodeId::from_index(9);
  s.ttl = 255;
  for (std::uint32_t i = 0; i < kMaxShuffleEntries; ++i) {
    s.entries.push_back(NodeId::from_index(i));
  }
  EXPECT_TRUE(s.entries.full());
  const Message decoded = decode_bytes(encode_bytes(Message{s}));
  EXPECT_EQ(std::get<Shuffle>(decoded), s);
}

TEST(WireTest, OverCapacityListIsRejectedAtConstruction) {
  ShuffleList list;
  for (std::uint32_t i = 0; i < kMaxShuffleEntries; ++i) {
    list.push_back(NodeId::from_index(i));
  }
  EXPECT_THROW(list.push_back(NodeId::from_index(999)), CheckError);
}

TEST(WireTest, DecodeRejectsOverCapacityCount) {
  // A hostile frame claiming more entries than the flat bound must be
  // rejected before any entry is read — a peer can never make the decoder
  // buffer past the inline capacity.
  BinaryWriter w;
  w.u8(6);  // SHUFFLE tag
  w.node_id(NodeId::from_index(1));
  w.u8(3);
  w.u16(0xFFFF);  // absurd count
  EXPECT_THROW((void)decode_bytes(w.bytes()), CheckError);
}

TEST(WireTest, RandomizedGossipRoundTrips) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    Gossip g;
    g.msg_id = rng.next();
    g.hops = static_cast<std::uint16_t>(rng.below(65536));
    g.payload_size = static_cast<std::uint32_t>(rng.below(1u << 20));
    const Message decoded = decode_bytes(encode_bytes(Message{g}));
    EXPECT_EQ(std::get<Gossip>(decoded), g);
  }
}

TEST(WireTest, GossipFrameIsCompact) {
  // Gossip frames dominate experiment traffic; keep them small.
  const auto bytes = encode_bytes(Message{Gossip{1, 2, 3}});
  EXPECT_LE(bytes.size(), 16u);
}

TEST(WireTest, EncodedSizeMatchesEncodingForRandomVariableLengthMessages) {
  // The fixed-size kinds are pinned by the parameterized suite; sweep the
  // list-bearing kinds over random lengths.
  Rng rng(91);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = rng.below(kMaxShuffleEntries + 1);
    std::vector<NodeId> ids;
    std::vector<AgedId> aged;
    for (std::size_t k = 0; k < n; ++k) {
      ids.push_back(NodeId::from_index(static_cast<std::uint32_t>(rng.below(100000))));
      aged.push_back(AgedId{ids.back(), static_cast<std::uint16_t>(rng.below(65536))});
    }
    const std::vector<Message> msgs = {
        Shuffle{NodeId::from_index(1), 4, ids},
        ShuffleReply{ids, ids},
        CyclonShuffle{aged},
        CyclonShuffleReply{aged},
    };
    for (const Message& m : msgs) {
      EXPECT_EQ(encoded_size(m), encode_bytes(m).size()) << type_name(m);
    }
  }
}

TEST(WireTest, GossipWireCostOverloadMatchesGenericOverload) {
  // The fast-path overload hardcodes the Gossip frame size; it must never
  // drift from what the generic encoder actually produces.
  for (const std::uint32_t payload : {0u, 1u, 128u, 65536u}) {
    const Gossip g{0x0123456789abcdefull, 7, payload};
    EXPECT_EQ(wire_cost(g), wire_cost(Message{g})) << payload;
  }
}

TEST(WireTest, TreeGossipWireCostOverloadMatchesGenericOverload) {
  for (const std::uint32_t payload : {0u, 1u, 128u, 65536u}) {
    const TreeGossip g{0x0123456789abcdefull, 7, payload};
    EXPECT_EQ(wire_cost(g), wire_cost(Message{g})) << payload;
  }
}

}  // namespace
}  // namespace hyparview::wire
