// Randomized property suite for the flat wire codec.
//
// Three properties over every message kind:
//  1. encode → decode identity (round trip), including max-capacity
//     shuffle lists (the flat frames' worst case);
//  2. encoded_size() == encode_bytes().size() for every generated frame;
//  3. malformed input never causes UB: every strict prefix of a valid
//     frame is rejected with CheckError, random garbage buffers either
//     decode to a canonical frame (whose re-encoding reproduces the input)
//     or throw CheckError, and over-capacity list counts are rejected
//     before any entry is read. Running under ASan/UBSan in CI turns
//     "no UB" from a hope into a checked invariant.
#include "hyparview/membership/wire.hpp"

#include <gtest/gtest.h>

#include "hyparview/common/rng.hpp"

namespace hyparview::wire {
namespace {

NodeId random_id(Rng& rng) {
  return NodeId{static_cast<std::uint32_t>(rng.next()),
                static_cast<std::uint16_t>(rng.below(65536))};
}

AgedId random_aged(Rng& rng) {
  return AgedId{random_id(rng), static_cast<std::uint16_t>(rng.below(65536))};
}

ShuffleList random_shuffle_list(Rng& rng, std::size_t max_len) {
  ShuffleList out;
  const std::size_t n = rng.below(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) out.push_back(random_id(rng));
  return out;
}

AgedList random_aged_list(Rng& rng, std::size_t max_len) {
  AgedList out;
  const std::size_t n = rng.below(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) out.push_back(random_aged(rng));
  return out;
}

/// A random instance of the message kind with variant index `tag`.
Message random_message(std::uint8_t tag, Rng& rng) {
  switch (tag) {
    case 0: return Join{};
    case 1: return ForwardJoin{random_id(rng),
                               static_cast<std::uint8_t>(rng.below(256))};
    case 2: return ForwardJoinAccept{};
    case 3: return Disconnect{};
    case 4: return Neighbor{rng.chance(0.5)};
    case 5: return NeighborReply{rng.chance(0.5)};
    case 6: {
      Shuffle m;
      m.origin = random_id(rng);
      m.ttl = static_cast<std::uint8_t>(rng.below(256));
      m.entries = random_shuffle_list(rng, kMaxShuffleEntries);
      return m;
    }
    case 7: {
      ShuffleReply m;
      m.sent = random_shuffle_list(rng, kMaxShuffleEntries);
      m.entries = random_shuffle_list(rng, kMaxShuffleEntries);
      return m;
    }
    case 8: return CyclonShuffle{random_aged_list(rng, kMaxCyclonShuffleEntries)};
    case 9:
      return CyclonShuffleReply{random_aged_list(rng, kMaxCyclonShuffleEntries)};
    case 10: return CyclonJoinWalk{random_id(rng),
                                   static_cast<std::uint8_t>(rng.below(256))};
    case 11: return CyclonJoinGift{random_aged(rng)};
    case 12: return ScampSubscribe{random_id(rng)};
    case 13: return ScampForwardedSub{
                 random_id(rng), static_cast<std::uint16_t>(rng.below(65536))};
    case 14: return ScampInViewNotify{};
    case 15: return ScampReplace{random_id(rng), random_id(rng)};
    case 16: return ScampHeartbeat{};
    case 17: return Gossip{rng.next(),
                           static_cast<std::uint16_t>(rng.below(65536)),
                           static_cast<std::uint32_t>(rng.below(1u << 20))};
    case 18: return GossipAck{rng.next()};
    case 19: return Hello{random_id(rng)};
    case 20: return TreeGossip{rng.next(),
                               static_cast<std::uint16_t>(rng.below(65536)),
                               static_cast<std::uint32_t>(rng.below(1u << 20))};
    case 21: return IHave{rng.next(),
                          static_cast<std::uint16_t>(rng.below(65536))};
    case 22: return Graft{rng.next()};
    case 23: return Prune{};
    default:
      ADD_FAILURE() << "unhandled tag " << int(tag);
      return Join{};
  }
}

constexpr std::size_t kTagCount = std::variant_size_v<Message>;

TEST(WireCodecProperty, RandomizedRoundTripIdentityAllKinds) {
  Rng rng(2024);
  for (int iter = 0; iter < 400; ++iter) {
    for (std::uint8_t tag = 0; tag < kTagCount; ++tag) {
      const Message original = random_message(tag, rng);
      ASSERT_EQ(original.index(), tag);
      const auto bytes = encode_bytes(original);
      const Message decoded = decode_bytes(bytes);
      ASSERT_EQ(decoded.index(), original.index()) << type_name(original);
      ASSERT_EQ(decoded, original) << type_name(original);
    }
  }
}

TEST(WireCodecProperty, EncodedSizeMatchesBytesForRandomFrames) {
  Rng rng(77);
  for (int iter = 0; iter < 400; ++iter) {
    for (std::uint8_t tag = 0; tag < kTagCount; ++tag) {
      const Message msg = random_message(tag, rng);
      ASSERT_EQ(encoded_size(msg), encode_bytes(msg).size())
          << type_name(msg);
    }
  }
}

TEST(WireCodecProperty, MaxCapacityListsRoundTrip) {
  Rng rng(5);
  Shuffle shuffle;
  shuffle.origin = random_id(rng);
  shuffle.ttl = 255;
  while (!shuffle.entries.full()) shuffle.entries.push_back(random_id(rng));

  ShuffleReply reply;
  while (!reply.sent.full()) reply.sent.push_back(random_id(rng));
  while (!reply.entries.full()) reply.entries.push_back(random_id(rng));

  CyclonShuffle cyclon;
  while (!cyclon.entries.full()) cyclon.entries.push_back(random_aged(rng));

  for (const Message& msg :
       {Message{shuffle}, Message{reply}, Message{cyclon}}) {
    const Message decoded = decode_bytes(encode_bytes(msg));
    EXPECT_EQ(decoded, msg) << type_name(msg);
  }
}

TEST(WireCodecProperty, EveryStrictPrefixOfValidFramesIsRejected) {
  // decode_bytes requires exact consumption, and every read is bounds
  // checked, so no strict prefix of a frame may parse. This covers the
  // "truncated in flight" failure mode of the TCP stream parser.
  Rng rng(31337);
  for (std::uint8_t tag = 0; tag < kTagCount; ++tag) {
    const Message msg = random_message(tag, rng);
    const auto bytes = encode_bytes(msg);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_THROW(
          (void)decode_bytes(std::span<const std::uint8_t>(bytes.data(), len)),
          CheckError)
          << type_name(msg) << " prefix " << len << "/" << bytes.size();
    }
  }
}

TEST(WireCodecProperty, GarbageBuffersRejectOrDecodeConsistently) {
  // Fuzz the decoder with random bytes: each buffer must either throw
  // CheckError or produce a message that survives its own encode→decode
  // round trip with the documented size (the only non-byte-canonical
  // accepts are bool fields, where any nonzero byte means true). Under
  // ASan this also proves malformed input cannot read out of bounds.
  Rng rng(99);
  std::size_t decoded_ok = 0;
  for (int iter = 0; iter < 20'000; ++iter) {
    const std::size_t len = rng.below(64);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      const Message msg = decode_bytes(buf);
      ++decoded_ok;
      const auto bytes = encode_bytes(msg);
      EXPECT_EQ(bytes.size(), buf.size()) << type_name(msg);
      EXPECT_EQ(encoded_size(msg), bytes.size()) << type_name(msg);
      EXPECT_EQ(decode_bytes(bytes), msg) << type_name(msg);
    } catch (const CheckError&) {
      // rejected: fine
    }
  }
  // Some random buffers are valid frames (e.g. single-byte JOIN); if none
  // ever decoded the fuzz corpus is too weak to mean anything.
  EXPECT_GT(decoded_ok, 0u);
}

TEST(WireCodecProperty, OverCapacityCountsRejectedForEveryListField) {
  // Hand-craft frames whose u16 list count exceeds the flat capacity; the
  // decoder must reject them before reading entries (bounded buffering).
  const NodeId id = NodeId::from_index(7);
  for (const std::uint16_t count :
       {static_cast<std::uint16_t>(kMaxShuffleEntries + 1),
        static_cast<std::uint16_t>(1000), static_cast<std::uint16_t>(0xFFFF)}) {
    {
      BinaryWriter w;  // SHUFFLE: origin, ttl, entries
      w.u8(6);
      w.node_id(id);
      w.u8(2);
      w.u16(count);
      EXPECT_THROW((void)decode_bytes(w.bytes()), CheckError) << count;
    }
    {
      BinaryWriter w;  // SHUFFLEREPLY: sent (oversized immediately)
      w.u8(7);
      w.u16(count);
      EXPECT_THROW((void)decode_bytes(w.bytes()), CheckError) << count;
    }
    {
      BinaryWriter w;  // CYCLON_SHUFFLE
      w.u8(8);
      w.u16(count);
      EXPECT_THROW((void)decode_bytes(w.bytes()), CheckError) << count;
    }
    {
      BinaryWriter w;  // CYCLON_SHUFFLE_REPLY
      w.u8(9);
      w.u16(count);
      EXPECT_THROW((void)decode_bytes(w.bytes()), CheckError) << count;
    }
  }
}

TEST(WireCodecProperty, FlatListEqualityIgnoresDeadTail) {
  // Two lists with equal live prefixes compare equal even if their dead
  // tails differ (a popped entry leaves its bytes behind).
  ShuffleList a;
  a.push_back(NodeId::from_index(1));
  a.push_back(NodeId::from_index(2));
  ShuffleList b = a;
  a.push_back(NodeId::from_index(3));
  a.pop_back();  // dead tail now holds #3
  EXPECT_EQ(a, b);
  b.push_back(NodeId::from_index(4));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace hyparview::wire
