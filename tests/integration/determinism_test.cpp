// Reproducibility: identical seeds give identical experiments; different
// seeds give different (but statistically similar) ones.
#include <gtest/gtest.h>

#include "hyparview/harness/network.hpp"

namespace hyparview::harness {
namespace {

struct RunDigest {
  std::vector<double> reliabilities;
  std::uint64_t messages_sent = 0;
  TimePoint final_time = 0;

  friend bool operator==(const RunDigest&, const RunDigest&) = default;
};

RunDigest run_experiment(ProtocolKind kind, std::uint64_t seed) {
  auto cfg = NetworkConfig::defaults_for(kind, 200, seed);
  Network net(cfg);
  net.build();
  net.run_cycles(5);
  net.fail_random_fraction(0.4);
  RunDigest digest;
  for (int i = 0; i < 10; ++i) {
    digest.reliabilities.push_back(net.broadcast_one().reliability());
  }
  digest.messages_sent = net.simulator().messages_sent();
  digest.final_time = net.simulator().now();
  return digest;
}

class DeterminismTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DeterminismTest, SameSeedSameRun) {
  EXPECT_EQ(run_experiment(GetParam(), 77), run_experiment(GetParam(), 77));
}

TEST_P(DeterminismTest, DifferentSeedDifferentRun) {
  EXPECT_NE(run_experiment(GetParam(), 77), run_experiment(GetParam(), 78));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DeterminismTest,
    ::testing::Values(ProtocolKind::kHyParView, ProtocolKind::kCyclon,
                      ProtocolKind::kCyclonAcked, ProtocolKind::kScamp),
    [](const ::testing::TestParamInfo<ProtocolKind>& param_info) {
      return kind_name(param_info.param);
    });

TEST(DeterminismTest2, HealingExperimentReproducible) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 150, 55);
  HealingConfig hcfg;
  hcfg.fail_fraction = 0.5;
  hcfg.stabilization_cycles = 4;
  hcfg.max_cycles = 10;
  const auto a = run_healing_experiment(cfg, hcfg);
  const auto b = run_healing_experiment(cfg, hcfg);
  EXPECT_EQ(a.cycles_to_heal, b.cycles_to_heal);
  EXPECT_EQ(a.per_cycle_reliability, b.per_cycle_reliability);
  EXPECT_DOUBLE_EQ(a.baseline_reliability, b.baseline_reliability);
}

TEST(DeterminismTest2, ChurnRunReproducible) {
  const auto run = [] {
    auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 150, 56);
    Network net(cfg);
    net.build();
    net.run_cycles(3);
    ChurnConfig churn;
    churn.cycles = 8;
    churn.joins_per_cycle = 4;
    churn.leaves_per_cycle = 4;
    churn.probes_per_cycle = 2;
    return net.run_churn(churn);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.per_cycle_reliability, b.per_cycle_reliability);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.graceful_leaves, b.graceful_leaves);
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST(DeterminismTest2, HeterogeneousClassAssignmentReproducible) {
  const auto classes = [] {
    auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 200, 57);
    cfg.hyparview_classes = {{0.10, 13, 60}, {0.90, 4, 30}};
    Network net(cfg);
    net.build();
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < net.node_count(); ++i) {
      out.push_back(net.node_class(i));
    }
    return out;
  };
  EXPECT_EQ(classes(), classes());
}

TEST(TrafficConservationTest, FloodFrameCountMatchesDeliveriesPlusDuplicates) {
  // On a stable overlay with zero failures, every gossip frame sent is
  // either a first delivery or a counted duplicate; the source delivers
  // locally without a frame.
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 300, 58);
  Network net(cfg);
  net.build();
  net.run_cycles(5);
  auto& sim = net.simulator();
  sim.reset_counters();
  const auto result = net.broadcast_one();
  const auto gossip_tag = wire::type_tag(wire::Message{wire::Gossip{}});
  EXPECT_EQ(sim.sent_by_type()[gossip_tag],
            (result.delivered - 1) + result.duplicates);
  EXPECT_EQ(sim.sends_failed(), 0u);
}

TEST(TrafficConservationTest, ExplicitAcksChangeTrafficButNotOutcomes) {
  // CyclonAcked's acks are modeled implicitly by default; flipping
  // explicit_acks must ship one GOSSIP_ACK per received gossip frame and
  // change nothing about delivery or detection.
  const auto run = [](bool explicit_acks) {
    auto cfg =
        NetworkConfig::defaults_for(ProtocolKind::kCyclonAcked, 300, 61);
    cfg.gossip.explicit_acks = explicit_acks;
    Network net(cfg);
    net.build();
    net.run_cycles(5);
    net.fail_random_fraction(0.3);
    std::vector<double> reliabilities;
    for (int i = 0; i < 10; ++i) {
      reliabilities.push_back(net.broadcast_one().reliability());
    }
    const auto ack_tag = wire::type_tag(wire::Message{wire::GossipAck{}});
    const auto gossip_tag = wire::type_tag(wire::Message{wire::Gossip{}});
    const auto& sim = net.simulator();
    return std::tuple(reliabilities, sim.sent_by_type()[ack_tag],
                      sim.sent_by_type()[gossip_tag],
                      sim.sent_by_type()[gossip_tag] - sim.sends_failed());
  };
  const auto [rel_implicit, acks_implicit, gossip_implicit, del_i] =
      run(false);
  const auto [rel_explicit, acks_explicit, gossip_explicit, del_e] =
      run(true);
  // Ack frames perturb message interleavings (they consume latency draws),
  // so runs are not bitwise identical — but the outcome must be
  // statistically indistinguishable.
  const auto avg = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double r : v) s += r;
    return s / static_cast<double>(v.size());
  };
  EXPECT_NEAR(avg(rel_implicit), avg(rel_explicit), 0.02)
      << "acks must not affect delivery";
  EXPECT_EQ(acks_implicit, 0u);
  // Within the explicit run: exactly one ack per gossip frame that
  // actually arrived (acks to dead peers cannot happen — the dead do not
  // receive, so they never ack).
  EXPECT_EQ(acks_explicit, del_e);
  (void)gossip_implicit;
  (void)del_i;
}

TEST(TrafficConservationTest, ByteCountersSumAcrossTypes) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 200, 59);
  Network net(cfg);
  net.build();
  net.run_cycles(5);
  for (int i = 0; i < 5; ++i) net.broadcast_one();
  const auto& sim = net.simulator();
  std::uint64_t type_sum = 0;
  for (const auto b : sim.bytes_by_type()) type_sum += b;
  EXPECT_EQ(type_sum, sim.bytes_sent());
  std::uint64_t count_sum = 0;
  for (const auto c : sim.sent_by_type()) count_sum += c;
  EXPECT_EQ(count_sum, sim.messages_sent());
  EXPECT_GT(sim.bytes_sent(), sim.messages_sent());  // every frame has bytes
}

}  // namespace
}  // namespace hyparview::harness
