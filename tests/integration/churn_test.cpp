// Continuous churn: joins and departures (graceful and crashes) while the
// application keeps broadcasting. Exercises Protocol::leave, the harness
// add_node/leave_node/run_churn drivers, and the view invariants that must
// survive membership turnover.
#include <gtest/gtest.h>

#include <algorithm>

#include "hyparview/core/hyparview.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

namespace hyparview::harness {
namespace {

bool contains(std::span<const NodeId> v, const NodeId& id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

TEST(AddNodeTest, NewcomerIsIntegratedAndReachable) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 31);
  Network net(cfg);
  net.build();
  net.run_cycles(3);

  const std::size_t newcomer = net.add_node();
  EXPECT_EQ(newcomer, 100u);
  EXPECT_TRUE(net.alive(newcomer));
  const auto view = net.protocol(newcomer).dissemination_view();
  EXPECT_FALSE(view.empty()) << "joiner got no active neighbors";

  // Symmetry: every neighbor of the newcomer knows it back.
  for (const NodeId& n : view) {
    EXPECT_TRUE(contains(net.protocol(n.ip).dissemination_view(),
                         net.id_of(newcomer)))
        << "asymmetric link to " << n.to_string();
  }

  // And a flood reaches it (reliability counts all alive nodes).
  EXPECT_DOUBLE_EQ(net.broadcast_one().reliability(), 1.0);
}

TEST(GracefulLeaveTest, HyParViewGoodbyeClearsActiveViewsImmediately) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 32);
  Network net(cfg);
  net.build();
  net.run_cycles(3);

  const std::size_t leaver = 17;
  const NodeId leaver_id = net.id_of(leaver);
  net.leave_node(leaver, /*graceful=*/true);
  EXPECT_FALSE(net.alive(leaver));

  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i)) continue;
    EXPECT_FALSE(contains(net.protocol(i).dissemination_view(), leaver_id))
        << "node " << i << " still floods to the departed node";
  }
  // The overlay heals around the hole without needing a membership cycle.
  EXPECT_DOUBLE_EQ(net.broadcast_one().reliability(), 1.0);
}

TEST(GracefulLeaveTest, CrashLeaveKeepsStaleEntriesUntilDetected) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 33);
  cfg.sim.notify_on_crash = false;  // pure detect-on-send
  Network net(cfg);
  net.build();
  net.run_cycles(3);

  const std::size_t leaver = 17;
  const NodeId leaver_id = net.id_of(leaver);
  net.leave_node(leaver, /*graceful=*/false);

  // Nobody has been told: the crashed node is still in some active view.
  std::size_t holders = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (net.alive(i) &&
        contains(net.protocol(i).dissemination_view(), leaver_id)) {
      ++holders;
    }
  }
  EXPECT_GT(holders, 0u) << "silent crash should leave stale view entries";

  // The first flood both detects and repairs (TCP-as-failure-detector).
  net.broadcast_one();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i)) continue;
    EXPECT_FALSE(contains(net.protocol(i).dissemination_view(), leaver_id));
  }
}

TEST(GracefulLeaveTest, ScampUnsubscribePatchesPartialViews) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kScamp, 100, 34);
  Network net(cfg);
  net.build();
  net.run_cycles(3);

  const std::size_t leaver = 11;
  const NodeId leaver_id = net.id_of(leaver);
  net.leave_node(leaver, /*graceful=*/true);

  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i)) continue;
    EXPECT_FALSE(contains(net.protocol(i).dissemination_view(), leaver_id))
        << "node " << i << " still gossips to the unsubscribed node";
  }
}

TEST(GracefulLeaveTest, LeaveNodeIsIdempotentOnDeadNodes) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 50, 35);
  Network net(cfg);
  net.build();
  net.leave_node(3, true);
  const std::size_t alive_before = net.alive_count();
  net.leave_node(3, true);   // no-op
  net.leave_node(3, false);  // no-op
  EXPECT_EQ(net.alive_count(), alive_before);
}

class ChurnAllProtocolsTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ChurnAllProtocolsTest, SystemSurvivesSustainedChurn) {
  auto cfg = NetworkConfig::defaults_for(GetParam(), 300, 36);
  Network net(cfg);
  net.build();
  net.run_cycles(5);

  ChurnConfig churn;
  churn.cycles = 15;
  churn.joins_per_cycle = 6;
  churn.leaves_per_cycle = 6;
  churn.graceful_fraction = 0.5;
  churn.probes_per_cycle = 2;
  const ChurnStats stats = net.run_churn(churn);

  EXPECT_EQ(stats.joins, 90u);
  EXPECT_EQ(stats.graceful_leaves + stats.crashes, 90u);
  EXPECT_EQ(stats.per_cycle_reliability.size(), 15u);

  // Reliability under churn: HyParView's reactive repair keeps the flood
  // near-atomic; the cyclic baselines degrade but must not collapse at
  // this modest (2%/cycle) turnover.
  if (GetParam() == ProtocolKind::kHyParView) {
    EXPECT_GT(stats.avg_reliability, 0.99);
    EXPECT_GT(stats.min_reliability, 0.95);
  } else {
    EXPECT_GT(stats.avg_reliability, 0.70) << kind_name(GetParam());
  }

  // The alive part of the overlay must remain one component.
  const auto g = net.dissemination_graph(/*alive_only=*/true);
  std::size_t alive = net.alive_count();
  EXPECT_GE(graph::largest_weakly_connected_component(g), alive - alive / 20)
      << kind_name(GetParam());
}

TEST_P(ChurnAllProtocolsTest, ViewInvariantsHoldAfterChurn) {
  auto cfg = NetworkConfig::defaults_for(GetParam(), 200, 37);
  Network net(cfg);
  net.build();
  net.run_cycles(3);

  ChurnConfig churn;
  churn.cycles = 10;
  churn.joins_per_cycle = 4;
  churn.leaves_per_cycle = 4;
  churn.probes_per_cycle = 1;
  net.run_churn(churn);

  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i)) continue;
    const auto view = net.protocol(i).dissemination_view();
    EXPECT_FALSE(contains(view, net.id_of(i)))
        << kind_name(GetParam()) << " self-loop at " << i;
    std::vector<NodeId> sorted(view.begin(), view.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << kind_name(GetParam()) << " duplicate at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChurnAllProtocolsTest,
                         ::testing::Values(ProtocolKind::kHyParView,
                                           ProtocolKind::kCyclonAcked,
                                           ProtocolKind::kCyclon,
                                           ProtocolKind::kScamp),
                         [](const auto& param_info) {
                           return std::string(kind_name(param_info.param));
                         });

TEST(ChurnHyParViewTest, ActiveViewSymmetryHoldsAfterChurn) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 200, 38);
  Network net(cfg);
  net.build();
  net.run_cycles(3);

  ChurnConfig churn;
  churn.cycles = 10;
  churn.joins_per_cycle = 5;
  churn.leaves_per_cycle = 5;
  churn.probes_per_cycle = 1;
  net.run_churn(churn);
  // A probe flood lets traffic-driven asymmetry healing finish its work.
  net.broadcast_one();

  std::size_t asymmetric = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i)) continue;
    for (const NodeId& n : net.protocol(i).dissemination_view()) {
      if (!net.alive(n.ip)) continue;
      if (!contains(net.protocol(n.ip).dissemination_view(), net.id_of(i))) {
        ++asymmetric;
      }
    }
  }
  // Symmetry is an eventual property under churn; demand near-total.
  EXPECT_LE(asymmetric, 2u);
}

TEST(ChurnHyParViewTest, WarmCacheSurvivesChurn) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 200, 39);
  cfg.hyparview.warm_cache_size = 3;
  Network net(cfg);
  net.build();
  net.run_cycles(5);

  ChurnConfig churn;
  churn.cycles = 8;
  churn.joins_per_cycle = 5;
  churn.leaves_per_cycle = 5;
  churn.probes_per_cycle = 1;
  const ChurnStats stats = net.run_churn(churn);
  EXPECT_GT(stats.avg_reliability, 0.99);

  // Invariant: warm ⊆ passive everywhere, all cycle long.
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i)) continue;
    const auto* hpv = dynamic_cast<const core::HyParView*>(&net.protocol(i));
    ASSERT_NE(hpv, nullptr);
    for (const NodeId& w : hpv->warm_cache()) {
      EXPECT_TRUE(contains(hpv->passive_view(), w));
    }
  }
}

}  // namespace
}  // namespace hyparview::harness
