// End-to-end behaviour of all four protocols on mid-sized simulated
// networks: join, stabilize, connectivity, dissemination.
#include <gtest/gtest.h>

#include <algorithm>

#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

namespace hyparview::harness {
namespace {

class AllProtocolsTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocolsTest, OverlayConnectedAfterJoinAndStabilization) {
  auto cfg = NetworkConfig::defaults_for(GetParam(), 500, 21);
  Network net(cfg);
  net.build();
  net.run_cycles(5);
  const auto g = net.dissemination_graph(false);
  EXPECT_TRUE(graph::is_weakly_connected(g))
      << kind_name(GetParam()) << ": largest component "
      << graph::largest_weakly_connected_component(g) << "/500";
}

TEST_P(AllProtocolsTest, StableBroadcastReachesAlmostEveryone) {
  auto cfg = NetworkConfig::defaults_for(GetParam(), 500, 22);
  Network net(cfg);
  net.build();
  net.run_cycles(5);
  double sum = 0.0;
  constexpr int kMsgs = 20;
  for (int i = 0; i < kMsgs; ++i) sum += net.broadcast_one().reliability();
  const double avg = sum / kMsgs;
  if (GetParam() == ProtocolKind::kHyParView) {
    EXPECT_DOUBLE_EQ(avg, 1.0);  // deterministic flood on connected overlay
  } else {
    EXPECT_GT(avg, 0.85);  // fanout-4 gossip on 500 nodes
  }
}

TEST_P(AllProtocolsTest, NoSelfLoopsOrDuplicatesInViews) {
  auto cfg = NetworkConfig::defaults_for(GetParam(), 300, 23);
  Network net(cfg);
  net.build();
  net.run_cycles(3);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto view = net.protocol(i).dissemination_view();
    EXPECT_TRUE(std::find(view.begin(), view.end(), net.id_of(i)) ==
                view.end())
        << kind_name(GetParam()) << " self-loop at " << i;
    std::vector<NodeId> sorted(view.begin(), view.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << kind_name(GetParam()) << " duplicate at " << i;
  }
}

TEST_P(AllProtocolsTest, HopCountsAreBoundedByLogDiameter) {
  auto cfg = NetworkConfig::defaults_for(GetParam(), 500, 24);
  Network net(cfg);
  net.build();
  net.run_cycles(5);
  const auto result = net.broadcast_one();
  // Gossip on expander-like overlays delivers within a few multiples of
  // log2(n) ≈ 9 hops.
  EXPECT_LE(result.max_hops, 40u) << kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocolsTest,
    ::testing::Values(ProtocolKind::kHyParView, ProtocolKind::kCyclon,
                      ProtocolKind::kCyclonAcked, ProtocolKind::kScamp),
    [](const ::testing::TestParamInfo<ProtocolKind>& param_info) {
      return kind_name(param_info.param);
    });

TEST(HyParViewIntegrationTest, InDegreeConcentratesAtActiveCapacity) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 500, 25);
  Network net(cfg);
  net.build();
  net.run_cycles(10);
  const auto g = net.dissemination_graph(false);
  const auto indeg = g.in_degrees();
  std::size_t at_capacity = 0;
  for (const auto d : indeg) {
    EXPECT_LE(d, cfg.hyparview.active_capacity);  // symmetry bound
    if (d == cfg.hyparview.active_capacity) ++at_capacity;
  }
  // Figure 5: "almost all nodes are known by the maximum amount possible".
  EXPECT_GT(static_cast<double>(at_capacity) / 500.0, 0.85);
}

TEST(HyParViewIntegrationTest, ClusteringFarBelowCyclon) {
  auto hv_cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 500, 26);
  Network hv(hv_cfg);
  hv.build();
  hv.run_cycles(10);
  auto cy_cfg = NetworkConfig::defaults_for(ProtocolKind::kCyclon, 500, 26);
  Network cy(cy_cfg);
  cy.build();
  cy.run_cycles(10);

  const double hv_cc =
      graph::average_clustering(hv.dissemination_graph(false).undirected_closure());
  const double cy_cc =
      graph::average_clustering(cy.dissemination_graph(false).undirected_closure());
  // Table 1 ordering: HyParView's clustering is far below Cyclon's.
  EXPECT_LT(hv_cc, cy_cc);
}

TEST(HyParViewIntegrationTest, PassiveViewsFillDuringStabilization) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 300, 27);
  Network net(cfg);
  net.build();
  net.run_cycles(10);
  std::size_t total = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    total += net.protocol(i).backup_view().size();
  }
  const double mean = static_cast<double>(total) / 300.0;
  EXPECT_GT(mean, static_cast<double>(cfg.hyparview.passive_capacity) * 0.8);
}

TEST(ScampIntegrationTest, StabilizationPreservesConnectivity) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kScamp, 300, 28);
  Network net(cfg);
  net.build();
  net.run_cycles(10);  // heartbeats + isolation recovery active
  EXPECT_TRUE(graph::is_weakly_connected(net.dissemination_graph(false)));
}

TEST(TrafficTest, ShuffleTrafficFlowsEveryCycle) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 29);
  Network net(cfg);
  net.build();
  net.simulator().reset_counters();
  net.run_cycles(1);
  const auto& by_type = net.simulator().sent_by_type();
  const auto shuffles =
      by_type[wire::type_tag(wire::Message{wire::Shuffle{}})];
  // Every alive node initiates one shuffle; walks add more traffic.
  EXPECT_GE(shuffles, 100u);
  const auto replies =
      by_type[wire::type_tag(wire::Message{wire::ShuffleReply{}})];
  EXPECT_GT(replies, 0u);
}

}  // namespace
}  // namespace hyparview::harness
