// §5.5: slow nodes that stop consuming messages must not freeze the overlay
// through TCP backpressure — after a bounded buffer fills, senders treat
// them as failed and expel them from all active views.
#include <gtest/gtest.h>

#include <algorithm>

#include "hyparview/core/hyparview.hpp"
#include "hyparview/harness/network.hpp"
#include "hyparview/sim/simulator.hpp"

namespace hyparview {
namespace {

// --- Simulator-level semantics ----------------------------------------------

class NullEndpoint final : public membership::Endpoint {
 public:
  void deliver(const NodeId& from, const wire::Message& msg) override {
    deliveries.emplace_back(from, msg);
  }
  void send_failed(const NodeId& to, const wire::Message& msg) override {
    failures.emplace_back(to, msg);
  }
  void link_closed(const NodeId&) override {}

  std::vector<std::pair<NodeId, wire::Message>> deliveries;
  std::vector<std::pair<NodeId, wire::Message>> failures;
};

TEST(SlowNodeSimTest, BlockedNodeBuffersInsteadOfDelivering) {
  sim::SimConfig cfg;
  sim::Simulator sim(cfg);
  NullEndpoint ha;
  NullEndpoint hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.block(b);
  EXPECT_TRUE(sim.blocked(b));
  sim.env(a).send(b, wire::Gossip{1, 0, 0});
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  EXPECT_TRUE(ha.failures.empty());  // buffered, not failed
}

TEST(SlowNodeSimTest, UnblockDeliversBacklogInOrder) {
  sim::SimConfig cfg;
  sim::Simulator sim(cfg);
  NullEndpoint ha;
  NullEndpoint hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.block(b);
  for (std::uint64_t i = 0; i < 5; ++i) {
    sim.env(a).send(b, wire::Gossip{i, 0, 0});
  }
  sim.run_until_quiescent();
  sim.unblock(b);
  sim.run_until_quiescent();
  ASSERT_EQ(hb.deliveries.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<wire::Gossip>(hb.deliveries[i].second).msg_id, i);
  }
}

TEST(SlowNodeSimTest, BufferOverflowFailsBackToSender) {
  sim::SimConfig cfg;
  cfg.link_send_buffer = 3;
  sim::Simulator sim(cfg);
  NullEndpoint ha;
  NullEndpoint hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.block(b);
  for (std::uint64_t i = 0; i < 5; ++i) {
    sim.env(a).send(b, wire::Gossip{i, 0, 0});
  }
  sim.run_until_quiescent();
  // 3 buffered, 2 bounced.
  EXPECT_EQ(ha.failures.size(), 2u);
}

TEST(SlowNodeSimTest, BufferIsPerSender) {
  sim::SimConfig cfg;
  cfg.link_send_buffer = 2;
  sim::Simulator sim(cfg);
  NullEndpoint ha;
  NullEndpoint hb;
  NullEndpoint hc;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  const NodeId c = sim.add_node(&hc);
  sim.block(c);
  sim.env(a).send(c, wire::Gossip{1, 0, 0});
  sim.env(a).send(c, wire::Gossip{2, 0, 0});
  sim.env(b).send(c, wire::Gossip{3, 0, 0});
  sim.env(b).send(c, wire::Gossip{4, 0, 0});
  sim.run_until_quiescent();
  EXPECT_TRUE(ha.failures.empty());
  EXPECT_TRUE(hb.failures.empty());
  sim.unblock(c);
  sim.run_until_quiescent();
  EXPECT_EQ(hc.deliveries.size(), 4u);
}

TEST(SlowNodeSimTest, BlockedNodeInitiatesNothing) {
  sim::SimConfig cfg;
  sim::Simulator sim(cfg);
  NullEndpoint ha;
  NullEndpoint hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.block(a);
  sim.env(a).send(b, wire::Gossip{1, 0, 0});
  int fired = 0;
  sim.env(a).schedule(milliseconds(1), [&] { ++fired; });
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  EXPECT_EQ(fired, 0);
}

TEST(SlowNodeSimTest, CrashWhileBlockedDropsBacklog) {
  sim::SimConfig cfg;
  sim::Simulator sim(cfg);
  NullEndpoint ha;
  NullEndpoint hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.block(b);
  sim.env(a).send(b, wire::Gossip{1, 0, 0});
  sim.run_until_quiescent();
  sim.crash(b);
  sim.unblock(b);  // no-op: dead
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  EXPECT_FALSE(sim.blocked(b));
}

// --- Protocol-level behaviour (§5.5 expulsion) --------------------------------

TEST(SlowNodeExpulsionTest, SlowNodeExpelledFromAllActiveViews) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 64, 91);
  cfg.sim.link_send_buffer = 4;
  harness::Network net(cfg);
  net.build();
  net.run_cycles(3);

  const NodeId victim = net.id_of(10);
  net.simulator().block(victim);
  // Drive enough broadcasts to overflow every neighbor's buffer toward the
  // blocked node.
  for (int i = 0; i < 12; ++i) net.broadcast_one();

  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (i == 10) continue;
    const auto view = net.protocol(i).dissemination_view();
    EXPECT_TRUE(std::find(view.begin(), view.end(), victim) == view.end())
        << "blocked node still in active view of " << i;
  }
}

TEST(SlowNodeExpulsionTest, OverlayStaysLiveAroundSlowNode) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 64, 92);
  cfg.sim.link_send_buffer = 4;
  harness::Network net(cfg);
  net.build();
  net.run_cycles(3);
  net.simulator().block(net.id_of(5));
  for (int i = 0; i < 12; ++i) net.broadcast_one();

  // Everyone except the slow node keeps delivering.
  const auto result = net.broadcast_one();
  EXPECT_GE(result.delivered, net.alive_count() - 1);
}

TEST(SlowNodeExpulsionTest, UnblockedNodeReintegrates) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 64, 93);
  cfg.sim.link_send_buffer = 4;
  harness::Network net(cfg);
  net.build();
  net.run_cycles(3);

  const NodeId victim = net.id_of(7);
  net.simulator().block(victim);
  for (int i = 0; i < 12; ++i) net.broadcast_one();
  net.simulator().unblock(victim);
  net.simulator().run_until_quiescent();  // backlog drains, repairs run
  net.run_cycles(2);                      // shuffles re-knit

  // The recovered node must deliver broadcasts again.
  const auto result = net.broadcast_one();
  EXPECT_EQ(result.delivered, net.alive_count());
}

}  // namespace
}  // namespace hyparview
