// Heterogeneous-capacity overlays (§6 "adaptive fanout" extension): nodes
// of different classes run HyParView with different view capacities; the
// flood and the repair machinery must keep working across class borders.
#include <gtest/gtest.h>

#include <algorithm>

#include "hyparview/core/hyparview.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

namespace hyparview::harness {
namespace {

NetworkConfig hetero_config(std::size_t nodes, std::uint64_t seed) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, nodes, seed);
  cfg.hyparview_classes = {{0.10, 13, 60}, {0.90, 4, 30}};
  return cfg;
}

TEST(HeterogeneousTest, ClassAssignmentMatchesFractions) {
  Network net(hetero_config(1000, 51));
  net.build();
  std::size_t hubs = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (net.node_class(i) == 0) ++hubs;
  }
  // 10% ± a generous binomial tolerance.
  EXPECT_GT(hubs, 60u);
  EXPECT_LT(hubs, 140u);
}

TEST(HeterogeneousTest, NodesRunTheirClassCapacities) {
  Network net(hetero_config(400, 52));
  net.build();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto* hpv = dynamic_cast<const core::HyParView*>(&net.protocol(i));
    ASSERT_NE(hpv, nullptr);
    const auto& cls = net.config().hyparview_classes[net.node_class(i)];
    EXPECT_EQ(hpv->config().active_capacity, cls.active_capacity);
    EXPECT_EQ(hpv->config().passive_capacity, cls.passive_capacity);
  }
}

TEST(HeterogeneousTest, HomogeneousNetworksReportClassZero) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 53);
  Network net(cfg);
  net.build();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_EQ(net.node_class(i), 0u);
  }
}

TEST(HeterogeneousTest, FloodStaysAtomicAcrossClasses) {
  Network net(hetero_config(600, 54));
  net.build();
  net.run_cycles(10);
  EXPECT_TRUE(graph::is_weakly_connected(net.dissemination_graph(false)));
  for (int m = 0; m < 10; ++m) {
    EXPECT_DOUBLE_EQ(net.broadcast_one().reliability(), 1.0);
  }
}

TEST(HeterogeneousTest, SymmetryHoldsAcrossClassBorders) {
  Network net(hetero_config(400, 55));
  net.build();
  net.run_cycles(10);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    for (const NodeId& n : net.protocol(i).dissemination_view()) {
      const auto peer_view = net.protocol(n.ip).dissemination_view();
      EXPECT_TRUE(std::find(peer_view.begin(), peer_view.end(),
                            net.id_of(i)) != peer_view.end())
          << i << " -> " << n.to_string() << " one-sided";
    }
  }
}

TEST(HeterogeneousTest, HubsCarryHigherDegreeAndLoad) {
  Network net(hetero_config(800, 56));
  net.build();
  net.run_cycles(20);
  for (int m = 0; m < 20; ++m) net.broadcast_one();

  double hub_degree = 0.0;
  double leaf_degree = 0.0;
  double hub_forwarded = 0.0;
  double leaf_forwarded = 0.0;
  std::size_t hubs = 0;
  std::size_t leaves = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const double deg =
        static_cast<double>(net.protocol(i).dissemination_view().size());
    const double fwd =
        static_cast<double>(net.runtime(i).gossip().messages_forwarded());
    if (net.node_class(i) == 0) {
      hub_degree += deg;
      hub_forwarded += fwd;
      ++hubs;
    } else {
      leaf_degree += deg;
      leaf_forwarded += fwd;
      ++leaves;
    }
  }
  ASSERT_GT(hubs, 0u);
  ASSERT_GT(leaves, 0u);
  hub_degree /= static_cast<double>(hubs);
  leaf_degree /= static_cast<double>(leaves);
  hub_forwarded /= static_cast<double>(hubs);
  leaf_forwarded /= static_cast<double>(leaves);
  EXPECT_GT(hub_degree, 1.8 * leaf_degree);
  EXPECT_GT(hub_forwarded, 1.5 * leaf_forwarded);
}

TEST(HeterogeneousTest, SurvivesMassFailureIncludingHubs) {
  Network net(hetero_config(800, 57));
  net.build();
  net.run_cycles(20);
  net.fail_random_fraction(0.6);
  double sum = 0.0;
  constexpr int kMsgs = 60;
  for (int m = 0; m < kMsgs; ++m) sum += net.broadcast_one().reliability();
  EXPECT_GT(sum / kMsgs, 0.97);
}

TEST(HeterogeneousTest, ChurnedJoinersGetClassAssignments) {
  Network net(hetero_config(300, 58));
  net.build();
  net.run_cycles(3);
  ChurnConfig churn;
  churn.cycles = 5;
  churn.joins_per_cycle = 10;
  churn.leaves_per_cycle = 10;
  churn.probes_per_cycle = 1;
  const auto stats = net.run_churn(churn);
  EXPECT_GT(stats.avg_reliability, 0.99);
  // The joiners (indices >= 300) were classed too.
  std::size_t joiner_hubs = 0;
  for (std::size_t i = 300; i < net.node_count(); ++i) {
    if (net.node_class(i) == 0) ++joiner_hubs;
  }
  EXPECT_GT(net.node_count(), 300u);
  // With 50 joiners at 10% hub rate, zero hubs has probability ~0.5%;
  // mostly this asserts node_class() stays in range for appended nodes.
  for (std::size_t i = 300; i < net.node_count(); ++i) {
    EXPECT_LT(net.node_class(i), 2u);
  }
}

}  // namespace
}  // namespace hyparview::harness
