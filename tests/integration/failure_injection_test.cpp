// Failure-injection scenarios: the paper's core claims at test scale.
//
// Two tiers: the default CTest registration runs with HPV_QUICK=1 and keeps
// a representative core (50% survival, crashed-contact joins, notify-mode
// healing); the 500-node recovery sweeps run in the `full` tier
// (-DHPV_FULL_TESTS=ON + `ctest -L full`, exercised in CI).
#include <gtest/gtest.h>

#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"
#include "support/test_tiers.hpp"

namespace hyparview::harness {
namespace {

/// Builds + stabilizes a network of `n` nodes.
std::unique_ptr<Network> make_stable(ProtocolKind kind, std::size_t n,
                                     std::uint64_t seed,
                                     std::size_t cycles = 10) {
  auto cfg = NetworkConfig::defaults_for(kind, n, seed);
  auto net = std::make_unique<Network>(cfg);
  net->build();
  net->run_cycles(cycles);
  return net;
}

TEST(FailureInjectionTest, HyParViewSurvives50PercentFailures) {
  auto net = make_stable(ProtocolKind::kHyParView, 500, 31);
  net->fail_random_fraction(0.5);
  // Reliability of the burst right after the failure (reactive repair only).
  double sum = 0.0;
  constexpr int kMsgs = 30;
  for (int i = 0; i < kMsgs; ++i) sum += net->broadcast_one().reliability();
  EXPECT_GT(sum / kMsgs, 0.95);
}

TEST(FailureInjectionTest, HyParViewRecoversFrom80PercentFailures) {
  HPV_FULL_TIER_ONLY();
  auto net = make_stable(ProtocolKind::kHyParView, 500, 32);
  net->fail_random_fraction(0.8);
  // Let the reactive mechanism work through a burst of traffic...
  for (int i = 0; i < 30; ++i) net->broadcast_one();
  // ...then reliability must be restored to (near) 100%.
  double sum = 0.0;
  for (int i = 0; i < 10; ++i) sum += net->broadcast_one().reliability();
  EXPECT_GT(sum / 10, 0.95);
}

TEST(FailureInjectionTest, PlainCyclonDegradesUnderMassiveFailure) {
  HPV_FULL_TIER_ONLY();
  auto net = make_stable(ProtocolKind::kCyclon, 500, 33);
  net->fail_random_fraction(0.6);
  double sum = 0.0;
  constexpr int kMsgs = 30;
  for (int i = 0; i < kMsgs; ++i) sum += net->broadcast_one().reliability();
  // Figure 2: Cyclon's reliability collapses above 50% failures; without a
  // failure detector the burst cannot repair anything.
  EXPECT_LT(sum / kMsgs, 0.8);
}

TEST(FailureInjectionTest, CyclonAckedRecoversWithinTensOfMessages) {
  HPV_FULL_TIER_ONLY();
  auto net = make_stable(ProtocolKind::kCyclonAcked, 500, 34);
  net->fail_random_fraction(0.5);
  // Paper fig. 3: CyclonAcked recovers after ~25 messages.
  for (int i = 0; i < 40; ++i) net->broadcast_one();
  double sum = 0.0;
  for (int i = 0; i < 10; ++i) sum += net->broadcast_one().reliability();
  EXPECT_GT(sum / 10, 0.9);
}

TEST(FailureInjectionTest, CyclonAckedBeatsPlainCyclonAfterFailures) {
  HPV_FULL_TIER_ONLY();
  auto plain = make_stable(ProtocolKind::kCyclon, 400, 35);
  auto acked = make_stable(ProtocolKind::kCyclonAcked, 400, 35);
  plain->fail_random_fraction(0.6);
  acked->fail_random_fraction(0.6);
  double plain_sum = 0.0;
  double acked_sum = 0.0;
  constexpr int kMsgs = 50;
  for (int i = 0; i < kMsgs; ++i) {
    plain_sum += plain->broadcast_one().reliability();
    acked_sum += acked->broadcast_one().reliability();
  }
  EXPECT_GT(acked_sum, plain_sum);
}

TEST(FailureInjectionTest, HyParViewAccuracyRestoredByTraffic) {
  HPV_FULL_TIER_ONLY();
  auto net = make_stable(ProtocolKind::kHyParView, 400, 36);
  net->fail_random_fraction(0.5);
  const double before = net->view_accuracy();
  for (int i = 0; i < 20; ++i) net->broadcast_one();
  const double after = net->view_accuracy();
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.98);  // dead entries purged by the failure detector
}

TEST(FailureInjectionTest, CrashedContactNodeDoesNotBlockJoins) {
  // Kill the bootstrap contact, then verify the overlay still serves joins
  // through other nodes (the contact is only a bootstrap convenience).
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 37);
  Network net(cfg);
  net.build();
  net.run_cycles(3);
  net.simulator().crash(net.id_of(0));
  for (int i = 0; i < 10; ++i) net.broadcast_one();
  double sum = 0.0;
  for (int i = 0; i < 5; ++i) sum += net.broadcast_one().reliability();
  EXPECT_GT(sum / 5, 0.99);
}

TEST(FailureInjectionTest, OverlayConnectivityAmongSurvivors) {
  HPV_FULL_TIER_ONLY();
  auto net = make_stable(ProtocolKind::kHyParView, 500, 38);
  net->fail_random_fraction(0.7);
  for (int i = 0; i < 30; ++i) net->broadcast_one();  // reactive repair
  net->run_cycles(2);                                 // plus two rounds
  const auto g = net->dissemination_graph(/*alive_only=*/true);
  std::vector<bool> keep = net->alive_mask();
  const auto sub = g.induced_subgraph(keep);
  EXPECT_GE(graph::largest_weakly_connected_component(sub),
            static_cast<std::size_t>(0.99 * static_cast<double>(net->alive_count())));
}

TEST(FailureInjectionTest, RepeatedFailureWavesSurvivable) {
  HPV_FULL_TIER_ONLY();
  auto net = make_stable(ProtocolKind::kHyParView, 400, 39);
  for (int wave = 0; wave < 3; ++wave) {
    net->fail_random_fraction(0.3);
    for (int i = 0; i < 20; ++i) net->broadcast_one();
    net->run_cycles(2);
  }
  double sum = 0.0;
  for (int i = 0; i < 10; ++i) sum += net->broadcast_one().reliability();
  EXPECT_GT(sum / 10, 0.9);
}

TEST(FailureInjectionTest, NotifyOnCrashModeHealsEvenFaster) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 300, 40);
  cfg.sim.notify_on_crash = true;
  Network net(cfg);
  net.build();
  net.run_cycles(5);
  net.fail_random_fraction(0.5);
  net.simulator().run_until_quiescent();  // crash notifications + repairs
  const auto result = net.broadcast_one();
  EXPECT_GT(result.reliability(), 0.98);
}

}  // namespace
}  // namespace hyparview::harness
