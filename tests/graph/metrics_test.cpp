#include "hyparview/graph/metrics.hpp"

#include <gtest/gtest.h>

#include "hyparview/common/rng.hpp"

namespace hyparview::graph {
namespace {

Digraph triangle() {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  return g;
}

Digraph directed_path(std::size_t n) {
  Digraph g(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Digraph complete(std::size_t n) {
  Digraph g(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i != j) g.add_edge(i, j);
    }
  }
  g.dedupe();
  return g;
}

TEST(MetricsTest, ReachableCountOnPath) {
  const Digraph g = directed_path(5);
  EXPECT_EQ(reachable_count(g, 0), 5u);
  EXPECT_EQ(reachable_count(g, 2), 3u);
  EXPECT_EQ(reachable_count(g, 4), 1u);
}

TEST(MetricsTest, WeakConnectivity) {
  EXPECT_TRUE(is_weakly_connected(triangle()));
  EXPECT_TRUE(is_weakly_connected(directed_path(10)));

  Digraph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  EXPECT_FALSE(is_weakly_connected(disconnected));
  EXPECT_EQ(largest_weakly_connected_component(disconnected), 2u);
}

TEST(MetricsTest, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_weakly_connected(Digraph(0)));
  EXPECT_EQ(largest_weakly_connected_component(Digraph(0)), 0u);
}

TEST(MetricsTest, SingletonIsConnected) {
  EXPECT_TRUE(is_weakly_connected(Digraph(1)));
}

TEST(MetricsTest, ClusteringOfTriangleIsOne) {
  const Digraph u = triangle().undirected_closure();
  for (std::uint32_t v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering(u, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(average_clustering(u), 1.0);
}

TEST(MetricsTest, ClusteringOfStarIsZero) {
  // Star: hub 0 connected to 1..4; no spoke-spoke edges.
  Digraph g(5);
  for (std::uint32_t i = 1; i < 5; ++i) g.add_edge(0, i);
  const Digraph u = g.undirected_closure();
  EXPECT_DOUBLE_EQ(average_clustering(u), 0.0);
}

TEST(MetricsTest, ClusteringOfCompleteGraphIsOne) {
  const Digraph u = complete(6).undirected_closure();
  EXPECT_DOUBLE_EQ(average_clustering(u), 1.0);
}

TEST(MetricsTest, ClusteringKnownMixedGraph) {
  // Square 0-1-2-3 with diagonal 0-2.
  // Neighbors: 0:{1,2,3} edges among them: (1,2),(2,3) -> 2/3
  //            1:{0,2}   edge (0,2)                    -> 1
  //            2:{0,1,3} edges (0,1),(0,3)             -> 2/3
  //            3:{0,2}   edge (0,2)                    -> 1
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(0, 2);
  const Digraph u = g.undirected_closure();
  EXPECT_NEAR(local_clustering(u, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(local_clustering(u, 1), 1.0, 1e-12);
  EXPECT_NEAR(average_clustering(u), (2.0 / 3.0 + 1.0 + 2.0 / 3.0 + 1.0) / 4.0,
              1e-12);
}

TEST(MetricsTest, DegreeLessThanTwoContributesZero) {
  const Digraph u = directed_path(3).undirected_closure();
  EXPECT_DOUBLE_EQ(local_clustering(u, 0), 0.0);  // degree 1
}

TEST(MetricsTest, ShortestPathsOnPathGraphExact) {
  const Digraph g = directed_path(4);  // 0->1->2->3
  Rng rng(1);
  const PathStats stats = shortest_path_stats(g, 100, rng);
  // Reachable ordered pairs: (0,1)=1,(0,2)=2,(0,3)=3,(1,2)=1,(1,3)=2,(2,3)=1.
  EXPECT_EQ(stats.sampled_sources, 4u);
  EXPECT_NEAR(stats.average_shortest_path, 10.0 / 6.0, 1e-12);
  EXPECT_EQ(stats.diameter, 3u);
  EXPECT_EQ(stats.unreachable_pairs, 6u);  // all backward pairs
}

TEST(MetricsTest, ShortestPathsCompleteGraph) {
  Rng rng(2);
  const PathStats stats = shortest_path_stats(complete(5), 100, rng);
  EXPECT_DOUBLE_EQ(stats.average_shortest_path, 1.0);
  EXPECT_EQ(stats.diameter, 1u);
  EXPECT_EQ(stats.unreachable_pairs, 0u);
}

TEST(MetricsTest, ShortestPathsSampling) {
  Rng rng(3);
  const Digraph g = complete(50);
  const PathStats stats = shortest_path_stats(g, 10, rng);
  EXPECT_EQ(stats.sampled_sources, 10u);
  EXPECT_DOUBLE_EQ(stats.average_shortest_path, 1.0);
}

TEST(MetricsTest, InDegreeHistogram) {
  // 0->1, 2->1, 0->2: in-degrees {0:0, 1:2, 2:1} -> hist[0]=1,[1]=1,[2]=1.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(0, 2);
  const auto hist = in_degree_histogram(g);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(MetricsTest, AccuracyAllAlive) {
  const Digraph g = triangle();
  EXPECT_DOUBLE_EQ(accuracy(g, {true, true, true}), 1.0);
}

TEST(MetricsTest, AccuracyWithDeadNeighbors) {
  // 0 -> {1, 2}; 1 -> {2}; node 2 dead.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const double acc = accuracy(g, {true, true, false});
  // node 0: 1/2 live; node 1: 0/1 live; node 2 excluded (dead).
  EXPECT_NEAR(acc, (0.5 + 0.0) / 2.0, 1e-12);
}

TEST(MetricsTest, AccuracyIgnoresViewlessNodes) {
  Digraph g(3);
  g.add_edge(0, 1);
  // Nodes 1 and 2 have no out-neighbors; only node 0 counts.
  EXPECT_DOUBLE_EQ(accuracy(g, {true, true, true}), 1.0);
}

}  // namespace
}  // namespace hyparview::graph
