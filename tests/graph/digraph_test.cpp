#include "hyparview/graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hyparview::graph {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g(0);
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(DigraphTest, AddEdgeCounts) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_neighbors(0).size(), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
}

TEST(DigraphTest, DedupeRemovesDuplicatesAndSelfLoops) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 0);
  g.add_edge(0, 2);
  g.dedupe();
  EXPECT_EQ(g.edge_count(), 2u);
  const auto nbrs = g.out_neighbors(0);
  EXPECT_EQ(std::vector<std::uint32_t>(nbrs.begin(), nbrs.end()),
            (std::vector<std::uint32_t>{1, 2}));
}

TEST(DigraphTest, DegreesDirected) {
  // 0 -> 1, 0 -> 2, 1 -> 2.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.out_degrees(), (std::vector<std::size_t>{2, 1, 0}));
  EXPECT_EQ(g.in_degrees(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(DigraphTest, ReversedSwapsDegrees) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  const Digraph r = g.reversed();
  EXPECT_EQ(r.out_degrees(), g.in_degrees());
  EXPECT_EQ(r.in_degrees(), g.out_degrees());
}

TEST(DigraphTest, UndirectedClosureSymmetric) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Digraph u = g.undirected_closure();
  EXPECT_EQ(u.edge_count(), 4u);  // two arcs per undirected edge
  EXPECT_EQ(u.out_degrees(), u.in_degrees());
}

TEST(DigraphTest, UndirectedClosureDeduplicatesMutualEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const Digraph u = g.undirected_closure();
  EXPECT_EQ(u.edge_count(), 2u);
}

TEST(DigraphTest, InducedSubgraphRenumbers) {
  // 0 -> 1 -> 2 -> 3; keep {1, 2, 3}.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::vector<std::uint32_t> mapping;
  const Digraph sub =
      g.induced_subgraph({false, true, true, true}, &mapping);
  EXPECT_EQ(sub.node_count(), 3u);
  EXPECT_EQ(sub.edge_count(), 2u);
  EXPECT_EQ(mapping, (std::vector<std::uint32_t>{1, 2, 3}));
  // 1->2 becomes 0->1, 2->3 becomes 1->2.
  EXPECT_EQ(sub.out_neighbors(0).size(), 1u);
  EXPECT_EQ(sub.out_neighbors(0)[0], 1u);
}

TEST(DigraphTest, InducedSubgraphDropsCrossEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Digraph sub = g.induced_subgraph({true, false, true});
  EXPECT_EQ(sub.node_count(), 2u);
  EXPECT_EQ(sub.edge_count(), 0u);
}

TEST(DigraphTest, InducedSubgraphEmptyMask) {
  Digraph g(2);
  g.add_edge(0, 1);
  const Digraph sub = g.induced_subgraph({false, false});
  EXPECT_EQ(sub.node_count(), 0u);
}

}  // namespace
}  // namespace hyparview::graph
