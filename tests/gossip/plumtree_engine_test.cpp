// TreeBroadcastEngine (Plumtree) unit tests: eager/lazy link dynamics, the
// windowed link-score prune rules, the graft timer chain, and NodeRuntime
// dispatch of the payload-plane frames.
#include "hyparview/gossip/tree_broadcast_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../support/fake_env.hpp"
#include "hyparview/gossip/node_runtime.hpp"

namespace hyparview::gossip {
namespace {

using test::FakeEnv;

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

class FakeProtocol final : public membership::Protocol {
 public:
  void start(std::optional<NodeId>) override {}
  void handle(const NodeId&, const wire::Message&) override { ++handled; }
  void on_send_failed(const NodeId&, const wire::Message&) override {}
  void on_link_closed(const NodeId&) override {}
  void on_cycle() override {}

  using membership::Protocol::broadcast_targets;
  void broadcast_targets(std::size_t fanout, const NodeId& from,
                         std::vector<NodeId>& out) override {
    out.clear();
    for (const NodeId& t : targets) {
      if (t != from) out.push_back(t);
    }
    if (fanout > 0 && out.size() > fanout) out.resize(fanout);
  }

  void peer_unreachable(const NodeId& peer) override {
    unreachable.push_back(peer);
    targets.erase(std::remove(targets.begin(), targets.end(), peer),
                  targets.end());
  }

  std::span<const NodeId> dissemination_view() const override {
    return targets;
  }
  std::span<const NodeId> backup_view() const override { return {}; }
  const char* name() const override { return "fake"; }

  std::vector<NodeId> targets;
  std::vector<NodeId> unreachable;
  int handled = 0;
};

class RecordingObserver final : public DeliveryObserver {
 public:
  void on_deliver(const NodeId& node, std::uint64_t msg_id,
                  std::uint16_t hops) override {
    deliveries.push_back({node, msg_id, hops});
  }
  void on_duplicate(const NodeId&, std::uint64_t) override { ++duplicates; }

  struct Delivery {
    NodeId node;
    std::uint64_t msg_id;
    std::uint16_t hops;
  };
  std::vector<Delivery> deliveries;
  int duplicates = 0;
};

wire::TreeGossip gossip(std::uint64_t id, std::uint16_t hops = 1) {
  wire::TreeGossip g;
  g.msg_id = id;
  g.hops = hops;
  g.payload_size = 64;
  return g;
}

class PlumtreeEngineTest : public ::testing::Test {
 protected:
  PlumtreeEngineTest() : env_(nid(0)) {
    proto_.targets = {nid(1), nid(2), nid(3), nid(4)};
  }

  TreeBroadcastEngine make_engine() {
    GossipConfig cfg;
    cfg.engine = Engine::kPlumtree;
    return TreeBroadcastEngine(env_, proto_, cfg, &observer_);
  }

  /// Fires every task scheduled so far (the graft timer chain), clearing
  /// the queue first so re-arms are visible as new entries.
  void fire_timers() {
    std::vector<test::FakeEnv::ScheduledTask> due;
    due.swap(env_.tasks);
    for (auto& t : due) t.fn();
  }

  Duration window() const { return GossipConfig{}.graft_timeout; }

  FakeEnv env_;
  FakeProtocol proto_;
  RecordingObserver observer_;
};

TEST_F(PlumtreeEngineTest, BroadcastStartsAllEager) {
  auto engine = make_engine();
  engine.broadcast(100);
  ASSERT_EQ(observer_.deliveries.size(), 1u);
  EXPECT_EQ(observer_.deliveries[0].hops, 0u);
  // Every link starts eager: full payload push, no IHave.
  EXPECT_EQ(env_.sent_of_type<wire::TreeGossip>().size(), 4u);
  EXPECT_TRUE(env_.sent_of_type<wire::IHave>().empty());
  EXPECT_EQ(engine.messages_forwarded(), 4u);
  EXPECT_GT(engine.payload_bytes_sent(), 0u);
  EXPECT_EQ(engine.control_bytes_sent(), 0u);
}

TEST_F(PlumtreeEngineTest, FreshGossipForwardsEagerExcludingSender) {
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(200, 3));
  ASSERT_EQ(observer_.deliveries.size(), 1u);
  EXPECT_EQ(observer_.deliveries[0].hops, 3u);
  const auto sent = env_.sent_of_type<wire::TreeGossip>();
  ASSERT_EQ(sent.size(), 3u);
  for (const auto& [to, g] : sent) {
    EXPECT_NE(to, nid(1));
    EXPECT_EQ(g.hops, 4u);
  }
}

TEST_F(PlumtreeEngineTest, SingleDuplicateDoesNotPrune) {
  // kPruneDupThreshold = 2: one duplicate in a window is only evidence.
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(300));
  engine.handle_gossip(nid(2), gossip(300));
  EXPECT_EQ(engine.duplicates_received(), 1u);
  EXPECT_TRUE(env_.sent_of_type<wire::Prune>().empty());
  EXPECT_TRUE(engine.lazy_peers().empty());
}

TEST_F(PlumtreeEngineTest, DeadLinkPrunedAfterThresholdDuplicates) {
  // Two duplicates, zero firsts, no grace: the dead-link rule cuts it.
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(300));
  engine.handle_gossip(nid(2), gossip(300));
  engine.handle_gossip(nid(1), gossip(301));
  engine.handle_gossip(nid(2), gossip(301));
  const auto prunes = env_.sent_of_type<wire::Prune>();
  ASSERT_EQ(prunes.size(), 1u);
  EXPECT_EQ(prunes[0].first, nid(2));
  EXPECT_EQ(engine.prunes_sent(), 1u);
  ASSERT_EQ(engine.lazy_peers().size(), 1u);
  EXPECT_EQ(engine.lazy_peers()[0], nid(2));
}

TEST_F(PlumtreeEngineTest, LazyPeerGetsIHaveInsteadOfPayload) {
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(300));
  engine.handle_gossip(nid(2), gossip(300));
  engine.handle_gossip(nid(1), gossip(301));
  engine.handle_gossip(nid(2), gossip(301));  // nid(2) demoted here
  env_.sent.clear();
  engine.broadcast(400);
  const auto payloads = env_.sent_of_type<wire::TreeGossip>();
  const auto announces = env_.sent_of_type<wire::IHave>();
  ASSERT_EQ(payloads.size(), 3u);
  for (const auto& [to, g] : payloads) EXPECT_NE(to, nid(2));
  ASSERT_EQ(announces.size(), 1u);
  EXPECT_EQ(announces[0].first, nid(2));
  EXPECT_EQ(announces[0].second.msg_id, 400u);
}

TEST_F(PlumtreeEngineTest, WeakLinkPrunedOncePerWindow) {
  // nid(1) and nid(2) split the wins: each scores firsts, so neither is
  // ever dead — the weak rule (dups >= firsts) cuts them, but at most one
  // weak cut per node per window.
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(500));  // first via 1
  engine.handle_gossip(nid(2), gossip(500));  // dup via 2
  engine.handle_gossip(nid(2), gossip(501));  // first via 2
  engine.handle_gossip(nid(1), gossip(501));  // dup via 1
  engine.handle_gossip(nid(1), gossip(502));  // first via 1
  engine.handle_gossip(nid(2), gossip(502));  // dup via 2: 2 dups >= 1 first
  EXPECT_EQ(env_.sent_of_type<wire::Prune>().size(), 1u);
  // More duplicate evidence against nid(1) inside the same window: muted.
  engine.handle_gossip(nid(2), gossip(503));
  engine.handle_gossip(nid(1), gossip(503));
  engine.handle_gossip(nid(2), gossip(504));
  engine.handle_gossip(nid(1), gossip(504));
  EXPECT_EQ(env_.sent_of_type<wire::Prune>().size(), 1u);
  // Once the mute expires, nid(1) — now winning nothing — still gets one
  // window of grace from its past firsts before the dead rule cuts it.
  env_.advance(window());
  engine.handle_gossip(nid(2), gossip(505));
  engine.handle_gossip(nid(1), gossip(505));
  engine.handle_gossip(nid(2), gossip(506));
  engine.handle_gossip(nid(1), gossip(506));
  EXPECT_EQ(env_.sent_of_type<wire::Prune>().size(), 1u);  // grace holds
  env_.advance(window());
  engine.handle_gossip(nid(2), gossip(507));
  engine.handle_gossip(nid(1), gossip(507));
  engine.handle_gossip(nid(2), gossip(508));
  engine.handle_gossip(nid(1), gossip(508));
  const auto prunes = env_.sent_of_type<wire::Prune>();
  ASSERT_EQ(prunes.size(), 2u);
  EXPECT_EQ(prunes[1].first, nid(1));
}

TEST_F(PlumtreeEngineTest, GraceProtectsRecentTreeParentAcrossOneWindow) {
  // nid(1) won everything last window; this window it only loses. The
  // one-window grace keeps the dead rule from cutting it on a boundary
  // artifact; the window after that, it is cut.
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(600));
  engine.handle_gossip(nid(1), gossip(601));
  env_.advance(window());
  engine.handle_gossip(nid(2), gossip(602));
  engine.handle_gossip(nid(1), gossip(602));  // dup 1 (rolls, grace on)
  engine.handle_gossip(nid(2), gossip(603));
  engine.handle_gossip(nid(1), gossip(603));  // dup 2: dead blocked by grace
  EXPECT_TRUE(env_.sent_of_type<wire::Prune>().empty());
  env_.advance(window());
  engine.handle_gossip(nid(2), gossip(604));
  engine.handle_gossip(nid(1), gossip(604));  // grace decayed
  engine.handle_gossip(nid(2), gossip(605));
  engine.handle_gossip(nid(1), gossip(605));  // dup 2 this window: cut
  const auto prunes = env_.sent_of_type<wire::Prune>();
  ASSERT_EQ(prunes.size(), 1u);
  EXPECT_EQ(prunes[0].first, nid(1));
}

TEST_F(PlumtreeEngineTest, SparseWindowCarriesDupEvidenceAcrossRoll) {
  // Traffic slower than the window: each window scores a single duplicate.
  // A full reset at every roll would keep the count below the threshold
  // forever; the sparse-window carry accumulates it instead, so a pure
  // loser is still judged dead.
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(700));
  engine.handle_gossip(nid(2), gossip(700));  // dup 1 via 2
  env_.advance(window());
  engine.handle_gossip(nid(1), gossip(701));
  engine.handle_gossip(nid(2), gossip(701));  // dup 2, carried across roll
  const auto prunes = env_.sent_of_type<wire::Prune>();
  ASSERT_EQ(prunes.size(), 1u);
  EXPECT_EQ(prunes[0].first, nid(2));
}

TEST_F(PlumtreeEngineTest, DenseWindowResetsDupEvidenceAtRoll) {
  // A dense window (enough events for a judgment on its own) must NOT
  // carry: otherwise a busy dup-only link would cross the roll already at
  // the threshold and one fresh duplicate would cut it instantly — many
  // links at once, the composed-prune disconnection the score prevents.
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(800));
  engine.handle_gossip(nid(2), gossip(800));  // dup 1 via 2
  engine.handle_gossip(nid(2), gossip(801));  // first via 2: dense window
  env_.advance(window());
  engine.handle_gossip(nid(1), gossip(802));
  engine.handle_gossip(nid(2), gossip(802));  // dup 1 of the NEW window
  EXPECT_TRUE(env_.sent_of_type<wire::Prune>().empty());
}

TEST_F(PlumtreeEngineTest, IHaveArmsGraftTimerAndGraftsOnExpiry) {
  auto engine = make_engine();
  engine.handle_ihave(nid(3), wire::IHave{900, 2});
  EXPECT_EQ(engine.pending_grafts(), 1u);
  ASSERT_EQ(env_.tasks.size(), 1u);
  // A second announcement for the same id extends the rotation, no 2nd timer.
  engine.handle_ihave(nid(4), wire::IHave{900, 3});
  EXPECT_EQ(env_.tasks.size(), 1u);

  fire_timers();
  auto grafts = env_.sent_of_type<wire::Graft>();
  ASSERT_EQ(grafts.size(), 1u);
  EXPECT_EQ(grafts[0].first, nid(3));  // first announcer first
  EXPECT_EQ(grafts[0].second.msg_id, 900u);
  EXPECT_EQ(engine.grafts_sent(), 1u);

  // Still missing at the next expiry: rotate to the second announcer.
  fire_timers();
  grafts = env_.sent_of_type<wire::Graft>();
  ASSERT_EQ(grafts.size(), 2u);
  EXPECT_EQ(grafts[1].first, nid(4));

  // Both announcers tried and silent: the chain gives up and terminates.
  fire_timers();
  EXPECT_EQ(env_.sent_of_type<wire::Graft>().size(), 2u);
  EXPECT_EQ(engine.pending_grafts(), 0u);
  EXPECT_TRUE(env_.tasks.empty());
}

TEST_F(PlumtreeEngineTest, EagerArrivalCancelsPendingGraft) {
  auto engine = make_engine();
  engine.handle_ihave(nid(3), wire::IHave{901, 2});
  EXPECT_EQ(engine.pending_grafts(), 1u);
  engine.handle_gossip(nid(1), gossip(901));
  EXPECT_EQ(engine.pending_grafts(), 0u);
  fire_timers();
  EXPECT_TRUE(env_.sent_of_type<wire::Graft>().empty());
}

TEST_F(PlumtreeEngineTest, IHaveForSeenMessageIsIgnored) {
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(902));
  engine.handle_ihave(nid(3), wire::IHave{902, 2});
  EXPECT_EQ(engine.pending_grafts(), 0u);
  EXPECT_TRUE(env_.tasks.empty());
}

TEST_F(PlumtreeEngineTest, GraftPromotesAndRetransmitsFromCache) {
  auto engine = make_engine();
  // Demote nid(2), then let it graft back.
  engine.handle_gossip(nid(1), gossip(903));
  engine.handle_gossip(nid(2), gossip(903));
  engine.handle_gossip(nid(1), gossip(904));
  engine.handle_gossip(nid(2), gossip(904));
  ASSERT_EQ(engine.lazy_peers().size(), 1u);
  env_.sent.clear();

  engine.handle_graft(nid(2), wire::Graft{903});
  EXPECT_TRUE(engine.lazy_peers().empty());  // eager again
  const auto sent = env_.sent_of_type<wire::TreeGossip>();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].first, nid(2));
  EXPECT_EQ(sent[0].second.msg_id, 903u);
  EXPECT_EQ(sent[0].second.hops, 2u);  // cached hops + 1
}

TEST_F(PlumtreeEngineTest, GraftPastCacheHorizonPromotesWithoutRetransmit) {
  auto engine = make_engine();
  engine.handle_graft(nid(2), wire::Graft{999});  // never seen
  EXPECT_TRUE(env_.sent_of_type<wire::TreeGossip>().empty());
}

TEST_F(PlumtreeEngineTest, PruneFromPeerDemotesLink) {
  auto engine = make_engine();
  engine.handle_prune(nid(3));
  ASSERT_EQ(engine.lazy_peers().size(), 1u);
  EXPECT_EQ(engine.lazy_peers()[0], nid(3));
}

TEST_F(PlumtreeEngineTest, NeighborDownForgetsDemotion) {
  auto engine = make_engine();
  engine.handle_prune(nid(3));
  engine.on_neighbor_down(nid(3));
  // The replacement link (or the rejoining peer) starts eager again.
  EXPECT_TRUE(engine.lazy_peers().empty());
}

TEST_F(PlumtreeEngineTest, SendFailureReportsPeerUnreachable) {
  auto engine = make_engine();
  EXPECT_TRUE(engine.handle_send_failed(nid(2), wire::Message{gossip(905)}));
  ASSERT_EQ(proto_.unreachable.size(), 1u);
  EXPECT_EQ(proto_.unreachable[0], nid(2));
  // Membership frames are not the payload plane's business.
  EXPECT_FALSE(engine.handle_send_failed(nid(3), wire::Message{wire::Join{}}));
}

TEST_F(PlumtreeEngineTest, ResetForgetsTreeAndHistory) {
  auto engine = make_engine();
  engine.handle_gossip(nid(1), gossip(906));
  engine.handle_gossip(nid(2), gossip(906));
  engine.handle_gossip(nid(1), gossip(907));
  engine.handle_gossip(nid(2), gossip(907));
  engine.handle_ihave(nid(3), wire::IHave{908, 2});
  ASSERT_FALSE(engine.lazy_peers().empty());
  engine.reset();
  EXPECT_TRUE(engine.lazy_peers().empty());
  EXPECT_EQ(engine.pending_grafts(), 0u);
  engine.handle_gossip(nid(1), gossip(906));  // forgotten: delivered again
  EXPECT_EQ(observer_.deliveries.back().msg_id, 906u);
}

// --- dedup window sizing ------------------------------------------------------

// Regression for the discrete-wave default window (128): a sustained
// multi-source stream keeps more distinct ids in flight than a drained
// broadcast wave ever did — sources × rate per tick plus up to
// kMaxAnnouncers graft-timeout rounds of repair retransmissions. Once the
// in-flight horizon exceeds the window, a late copy of an evicted id looks
// fresh: the node re-delivers it to the application and re-forwards it into
// the tree. The committed pub/sub specs size dedup_window to 4096 for this
// reason; this test pins the failure mode at the old size so nobody shrinks
// the window back "because the broadcast tests still pass".
TEST_F(PlumtreeEngineTest, DedupWindowBelowInflightHorizonFalselyRedelivers) {
  GossipConfig small;
  small.engine = Engine::kPlumtree;
  small.dedup_window = 128;  // the discrete-wave default of defaults_for
  TreeBroadcastEngine engine(env_, proto_, small, &observer_);

  // A stream wide enough to evict id 1 from the window…
  for (std::uint64_t id = 1; id <= 129; ++id)
    engine.handle_gossip(nid(1), gossip(id));
  EXPECT_EQ(observer_.deliveries.size(), 129u);

  // …then a straggling duplicate copy of id 1 (a slower tree branch).
  engine.handle_gossip(nid(2), gossip(1));
  EXPECT_EQ(observer_.deliveries.size(), 130u)
      << "the window still remembered id 1 — widen the stream above";
  EXPECT_EQ(observer_.deliveries.back().msg_id, 1u);
  EXPECT_EQ(engine.duplicates_received(), 0u);  // not even seen as a dup

  // The stream-sized window (the committed specs use 4096) absorbs the
  // same straggler as the duplicate it is.
  GossipConfig sized = small;
  sized.dedup_window = 4096;
  observer_.deliveries.clear();
  env_.sent.clear();
  TreeBroadcastEngine wide(env_, proto_, sized, &observer_);
  for (std::uint64_t id = 1; id <= 129; ++id)
    wide.handle_gossip(nid(1), gossip(id));
  wide.handle_gossip(nid(2), gossip(1));
  EXPECT_EQ(observer_.deliveries.size(), 129u);
  EXPECT_EQ(wide.duplicates_received(), 1u);
}

// --- NodeRuntime dispatch ----------------------------------------------------

TEST(PlumtreeRuntimeTest, RoutesPayloadPlaneFramesToTreeEngine) {
  FakeEnv env(nid(0));
  auto proto = std::make_unique<FakeProtocol>();
  FakeProtocol* proto_raw = proto.get();
  proto_raw->targets = {nid(1), nid(2)};
  RecordingObserver observer;
  GossipConfig cfg;
  cfg.engine = Engine::kPlumtree;
  NodeRuntime runtime(env, std::move(proto), cfg, &observer);
  EXPECT_STREQ(runtime.gossip().engine_name(), "plumtree");

  wire::TreeGossip g;
  g.msg_id = 1;
  g.hops = 1;
  g.payload_size = 64;
  runtime.deliver(nid(1), g);
  EXPECT_EQ(observer.deliveries.size(), 1u);
  runtime.deliver(nid(1), wire::IHave{2, 1});
  runtime.deliver(nid(1), wire::Graft{1});
  runtime.deliver(nid(1), wire::Prune{});
  EXPECT_EQ(proto_raw->handled, 0);  // all consumed by the engine

  runtime.deliver(nid(1), wire::Join{});
  EXPECT_EQ(proto_raw->handled, 1);
}

}  // namespace
}  // namespace hyparview::gossip
