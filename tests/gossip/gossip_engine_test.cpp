#include "hyparview/gossip/gossip_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../support/fake_env.hpp"
#include "hyparview/gossip/node_runtime.hpp"

namespace hyparview::gossip {
namespace {

using test::FakeEnv;

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

/// Scriptable membership protocol for engine tests.
class FakeProtocol final : public membership::Protocol {
 public:
  void start(std::optional<NodeId>) override {}
  void handle(const NodeId&, const wire::Message&) override { ++handled; }
  void on_send_failed(const NodeId&, const wire::Message&) override {
    ++membership_send_failures;
  }
  void on_link_closed(const NodeId&) override { ++links_closed; }
  void on_cycle() override {}

  using membership::Protocol::broadcast_targets;
  void broadcast_targets(std::size_t fanout, const NodeId& from,
                         std::vector<NodeId>& out) override {
    out.clear();
    for (const NodeId& t : targets) {
      if (t != from) out.push_back(t);
    }
    if (fanout > 0 && out.size() > fanout) out.resize(fanout);
  }

  void peer_unreachable(const NodeId& peer) override {
    unreachable.push_back(peer);
    targets.erase(std::remove(targets.begin(), targets.end(), peer),
                  targets.end());
  }

  std::span<const NodeId> dissemination_view() const override {
    return targets;
  }
  std::span<const NodeId> backup_view() const override { return {}; }
  const char* name() const override { return "fake"; }

  std::vector<NodeId> targets;
  std::vector<NodeId> unreachable;
  int handled = 0;
  int membership_send_failures = 0;
  int links_closed = 0;
};

class RecordingObserver final : public DeliveryObserver {
 public:
  void on_deliver(const NodeId& node, std::uint64_t msg_id,
                  std::uint16_t hops) override {
    deliveries.push_back({node, msg_id, hops});
  }
  void on_duplicate(const NodeId&, std::uint64_t) override { ++duplicates; }

  struct Delivery {
    NodeId node;
    std::uint64_t msg_id;
    std::uint16_t hops;
  };
  std::vector<Delivery> deliveries;
  int duplicates = 0;
};

class GossipEngineTest : public ::testing::Test {
 protected:
  GossipEngineTest() : env_(nid(0)) {
    proto_.targets = {nid(1), nid(2), nid(3), nid(4), nid(5)};
  }

  GossipEngine make_engine(Mode mode, std::size_t fanout = 3) {
    GossipConfig cfg;
    cfg.mode = mode;
    cfg.fanout = fanout;
    return GossipEngine(env_, proto_, cfg, &observer_);
  }

  FakeEnv env_;
  FakeProtocol proto_;
  RecordingObserver observer_;
};

TEST_F(GossipEngineTest, BroadcastDeliversLocallyWithZeroHops) {
  auto engine = make_engine(Mode::kFlood);
  engine.broadcast(100);
  ASSERT_EQ(observer_.deliveries.size(), 1u);
  EXPECT_EQ(observer_.deliveries[0].node, nid(0));
  EXPECT_EQ(observer_.deliveries[0].msg_id, 100u);
  EXPECT_EQ(observer_.deliveries[0].hops, 0u);
}

TEST_F(GossipEngineTest, FloodSendsToAllTargetsWithHopsOne) {
  auto engine = make_engine(Mode::kFlood);
  engine.broadcast(100);
  const auto sent = env_.sent_of_type<wire::Gossip>();
  ASSERT_EQ(sent.size(), 5u);  // fanout ignored in flood mode
  for (const auto& [to, g] : sent) {
    EXPECT_EQ(g.msg_id, 100u);
    EXPECT_EQ(g.hops, 1u);
  }
}

TEST_F(GossipEngineTest, RandomFanoutRespectsFanout) {
  auto engine = make_engine(Mode::kRandomFanout, 3);
  engine.broadcast(100);
  EXPECT_EQ(env_.sent_of_type<wire::Gossip>().size(), 3u);
}

TEST_F(GossipEngineTest, ExplicitAcksAckEveryReceivedCopyInAckedMode) {
  GossipConfig cfg;
  cfg.mode = Mode::kRandomFanoutAcked;
  cfg.fanout = 3;
  cfg.explicit_acks = true;
  GossipEngine engine(env_, proto_, cfg, &observer_);
  engine.handle_gossip(nid(1), wire::Gossip{200, 1, 64});
  engine.handle_gossip(nid(2), wire::Gossip{200, 2, 64});  // duplicate copy
  const auto acks = env_.sent_of_type<wire::GossipAck>();
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[0].first, nid(1));
  EXPECT_EQ(acks[1].first, nid(2));
  EXPECT_EQ(acks[0].second.msg_id, 200u);
  // Locally originated broadcasts have no sender to ack.
  engine.broadcast(201);
  EXPECT_EQ(env_.sent_of_type<wire::GossipAck>().size(), 2u);
}

TEST_F(GossipEngineTest, NoAcksWithoutExplicitAcksFlagOrOutsideAckedMode) {
  // Default acked mode keeps acks implicit (transport failure reporting).
  auto acked = make_engine(Mode::kRandomFanoutAcked);
  acked.handle_gossip(nid(1), wire::Gossip{300, 1, 64});
  EXPECT_TRUE(env_.sent_of_type<wire::GossipAck>().empty());

  // And the flag is inert outside acked mode (flood uses the standing
  // connections themselves as the failure detector).
  GossipConfig cfg;
  cfg.mode = Mode::kFlood;
  cfg.explicit_acks = true;
  GossipEngine flood(env_, proto_, cfg, &observer_);
  flood.handle_gossip(nid(2), wire::Gossip{301, 1, 64});
  EXPECT_TRUE(env_.sent_of_type<wire::GossipAck>().empty());
}

TEST_F(GossipEngineTest, ReceiveForwardsWithIncrementedHopsExcludingSender) {
  auto engine = make_engine(Mode::kFlood);
  engine.handle_gossip(nid(1), wire::Gossip{200, 4, 64});
  ASSERT_EQ(observer_.deliveries.size(), 1u);
  EXPECT_EQ(observer_.deliveries[0].hops, 4u);
  const auto sent = env_.sent_of_type<wire::Gossip>();
  ASSERT_EQ(sent.size(), 4u);  // 5 targets minus the sender
  for (const auto& [to, g] : sent) {
    EXPECT_NE(to, nid(1));
    EXPECT_EQ(g.hops, 5u);
  }
}

TEST_F(GossipEngineTest, DuplicateDeliveredOnceAndCounted) {
  auto engine = make_engine(Mode::kFlood);
  engine.handle_gossip(nid(1), wire::Gossip{300, 1, 0});
  engine.handle_gossip(nid(2), wire::Gossip{300, 2, 0});
  EXPECT_EQ(observer_.deliveries.size(), 1u);
  EXPECT_EQ(observer_.duplicates, 1);
  EXPECT_EQ(engine.duplicates_received(), 1u);
  // No re-forwarding of duplicates.
  EXPECT_EQ(env_.sent_of_type<wire::Gossip>().size(), 4u);
}

TEST_F(GossipEngineTest, BroadcastIdempotentPerMessageId) {
  auto engine = make_engine(Mode::kFlood);
  engine.broadcast(400);
  engine.broadcast(400);
  EXPECT_EQ(observer_.deliveries.size(), 1u);
}

TEST_F(GossipEngineTest, FloodFailureNotifiesProtocol) {
  auto engine = make_engine(Mode::kFlood);
  engine.on_send_failed(nid(2), wire::Gossip{500, 1, 0});
  ASSERT_EQ(proto_.unreachable.size(), 1u);
  EXPECT_EQ(proto_.unreachable[0], nid(2));
}

TEST_F(GossipEngineTest, AckedFailureNotifiesProtocol) {
  auto engine = make_engine(Mode::kRandomFanoutAcked);
  engine.on_send_failed(nid(2), wire::Gossip{500, 1, 0});
  EXPECT_EQ(proto_.unreachable.size(), 1u);
}

TEST_F(GossipEngineTest, PlainFailureIsInvisible) {
  auto engine = make_engine(Mode::kRandomFanout);
  engine.on_send_failed(nid(2), wire::Gossip{500, 1, 0});
  EXPECT_TRUE(proto_.unreachable.empty());
}

TEST_F(GossipEngineTest, RerouteOnFailureSendsSubstitute) {
  GossipConfig cfg;
  cfg.mode = Mode::kFlood;
  cfg.reroute_on_failure = true;
  GossipEngine engine(env_, proto_, cfg, &observer_);
  engine.on_send_failed(nid(2), wire::Gossip{600, 1, 0});
  const auto sent = env_.sent_of_type<wire::Gossip>();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_NE(sent[0].first, nid(2));
  EXPECT_EQ(sent[0].second.msg_id, 600u);
}

TEST_F(GossipEngineTest, RerouteSubstituteIsPickedUniformlyNotFront) {
  // Regression: the reroute path used to take candidates.front(), which in
  // flood mode (broadcast_targets ignores the fanout argument and returns
  // the whole view) deterministically biased every reroute in the system
  // toward the first active-view member.
  GossipConfig cfg;
  cfg.mode = Mode::kFlood;
  cfg.reroute_on_failure = true;
  GossipEngine engine(env_, proto_, cfg, &observer_);
  std::set<std::uint32_t> substitutes;
  for (std::uint64_t m = 0; m < 32; ++m) {
    env_.sent.clear();
    engine.on_send_failed(nid(99), wire::Gossip{700 + m, 1, 0});
    const auto sent = env_.sent_of_type<wire::Gossip>();
    ASSERT_EQ(sent.size(), 1u);
    substitutes.insert(sent[0].first.ip);
  }
  // With 5 candidates and 32 uniform draws, seeing only one distinct
  // substitute has probability 5 * (1/5)^32 ≈ 0 — the pre-fix code fails
  // this deterministically (always the front candidate).
  EXPECT_GT(substitutes.size(), 1u);
}

/// Env that reports a synchronous send failure for one victim peer — the
/// TcpTransport dial-failure shape, where on_send_failed re-enters the
/// engine while forward() is still iterating its target buffer.
class SyncFailEnv final : public FakeEnv {
 public:
  using FakeEnv::FakeEnv;

  void send(const NodeId& to, wire::Message msg) override {
    if (engine != nullptr && to == victim && !failed_) {
      failed_ = true;  // fail only the first attempt, like one dead dial
      const wire::Gossip copy = std::get<wire::Gossip>(msg);
      engine->on_send_failed(to, copy);
      return;
    }
    FakeEnv::send(to, std::move(msg));
  }

  GossipEngine* engine = nullptr;
  NodeId victim;

 private:
  bool failed_ = false;
};

TEST_F(GossipEngineTest, SynchronousMidForwardFailureDoesNotClobberTargets) {
  // The reroute candidates must not go through targets_scratch_: a
  // synchronous transport failure re-enters on_send_failed while forward()
  // is mid-iteration over that buffer, and a reroute that refilled it
  // would derail the rest of the flood. Guard the buffer-separation
  // invariant by failing the send to nid(3) synchronously in the middle of
  // a 5-target flood and checking the remaining targets still get their
  // copies.
  SyncFailEnv env(nid(0));
  FakeProtocol proto;
  proto.targets = {nid(1), nid(2), nid(3), nid(4), nid(5)};
  GossipConfig cfg;
  cfg.mode = Mode::kFlood;
  cfg.reroute_on_failure = true;
  GossipEngine engine(env, proto, cfg, &observer_);
  env.engine = &engine;
  env.victim = nid(3);

  engine.broadcast(901);

  // Every surviving target received its original flood copy — the
  // re-entrant reroute did not disturb the iteration — and exactly one of
  // them additionally got the substitute copy. peer_unreachable purged
  // nid(3), so nothing further went to the dead peer.
  const auto sent = env.sent_of_type<wire::Gossip>();
  std::vector<int> copies(7, 0);
  for (const auto& [to, g] : sent) {
    ASSERT_EQ(g.msg_id, 901u);
    ++copies[to.ip];
  }
  EXPECT_GE(copies[1], 1);
  EXPECT_GE(copies[2], 1);
  EXPECT_GE(copies[4], 1);
  EXPECT_GE(copies[5], 1);
  EXPECT_EQ(copies[3], 0);
  EXPECT_EQ(sent.size(), 5u);  // 4 flood copies + 1 reroute substitute
}

TEST_F(GossipEngineTest, DedupWindowEviction) {
  GossipConfig cfg;
  cfg.mode = Mode::kFlood;
  cfg.dedup_window = 4;
  GossipEngine engine(env_, proto_, cfg, &observer_);
  for (std::uint64_t id = 1; id <= 6; ++id) {
    engine.handle_gossip(nid(1), wire::Gossip{id, 1, 0});
  }
  // id=1 was evicted from the window: a replay is treated as new.
  engine.handle_gossip(nid(1), wire::Gossip{1, 1, 0});
  EXPECT_EQ(observer_.deliveries.size(), 7u);
}

TEST_F(GossipEngineTest, ResetForgetsHistory) {
  auto engine = make_engine(Mode::kFlood);
  engine.handle_gossip(nid(1), wire::Gossip{700, 1, 0});
  engine.reset();
  engine.handle_gossip(nid(1), wire::Gossip{700, 1, 0});
  EXPECT_EQ(observer_.deliveries.size(), 2u);
  EXPECT_EQ(engine.duplicates_received(), 0u);
}

TEST_F(GossipEngineTest, EmptyViewBroadcastOnlyDeliversLocally) {
  proto_.targets.clear();
  auto engine = make_engine(Mode::kFlood);
  engine.broadcast(800);
  EXPECT_EQ(observer_.deliveries.size(), 1u);
  EXPECT_TRUE(env_.sent.empty());
}

// --- NodeRuntime demultiplexing ----------------------------------------------

TEST(NodeRuntimeTest, RoutesGossipToEngineAndRestToProtocol) {
  FakeEnv env(nid(0));
  auto proto = std::make_unique<FakeProtocol>();
  FakeProtocol* proto_raw = proto.get();
  RecordingObserver observer;
  GossipConfig cfg;
  NodeRuntime runtime(env, std::move(proto), cfg, &observer);

  runtime.deliver(nid(1), wire::Gossip{1, 1, 0});
  EXPECT_EQ(observer.deliveries.size(), 1u);
  EXPECT_EQ(proto_raw->handled, 0);

  runtime.deliver(nid(1), wire::Join{});
  EXPECT_EQ(proto_raw->handled, 1);

  runtime.deliver(nid(1), wire::GossipAck{1});  // absorbed silently
  EXPECT_EQ(proto_raw->handled, 1);
}

TEST(NodeRuntimeTest, RoutesSendFailures) {
  FakeEnv env(nid(0));
  auto proto = std::make_unique<FakeProtocol>();
  FakeProtocol* proto_raw = proto.get();
  proto_raw->targets = {nid(2)};
  RecordingObserver observer;
  GossipConfig cfg;
  cfg.mode = Mode::kFlood;
  NodeRuntime runtime(env, std::move(proto), cfg, &observer);

  runtime.send_failed(nid(2), wire::Gossip{1, 1, 0});
  EXPECT_EQ(proto_raw->unreachable.size(), 1u);
  EXPECT_EQ(proto_raw->membership_send_failures, 0);

  runtime.send_failed(nid(2), wire::Neighbor{false});
  EXPECT_EQ(proto_raw->membership_send_failures, 1);

  runtime.link_closed(nid(2));
  EXPECT_EQ(proto_raw->links_closed, 1);
}

}  // namespace
}  // namespace hyparview::gossip
