#include "hyparview/gossip/dedup_window.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "hyparview/common/rng.hpp"

namespace hyparview::gossip {
namespace {

TEST(DedupWindowTest, FirstSightingIsNewSecondIsDuplicate) {
  DedupWindow w(8);
  EXPECT_TRUE(w.remember(42));
  EXPECT_FALSE(w.remember(42));
  EXPECT_TRUE(w.contains(42));
  EXPECT_FALSE(w.contains(43));
  EXPECT_EQ(w.size(), 1u);
}

TEST(DedupWindowTest, EvictsOldestInFifoOrder) {
  DedupWindow w(4);
  for (std::uint64_t id = 1; id <= 4; ++id) EXPECT_TRUE(w.remember(id));
  EXPECT_EQ(w.size(), 4u);
  // 5 evicts 1; 6 evicts 2.
  EXPECT_TRUE(w.remember(5));
  EXPECT_FALSE(w.contains(1));
  EXPECT_TRUE(w.contains(2));
  EXPECT_TRUE(w.remember(6));
  EXPECT_FALSE(w.contains(2));
  for (std::uint64_t id = 3; id <= 6; ++id) EXPECT_TRUE(w.contains(id));
  EXPECT_EQ(w.size(), 4u);
  // An evicted id is treated as new again (window semantics).
  EXPECT_TRUE(w.remember(1));
}

TEST(DedupWindowTest, DuplicateDoesNotEvict) {
  DedupWindow w(2);
  EXPECT_TRUE(w.remember(1));
  EXPECT_TRUE(w.remember(2));
  // Re-remembering 2 must not push 1 out.
  EXPECT_FALSE(w.remember(2));
  EXPECT_TRUE(w.contains(1));
}

TEST(DedupWindowTest, CapacityOne) {
  DedupWindow w(1);
  EXPECT_TRUE(w.remember(1));
  EXPECT_FALSE(w.remember(1));
  EXPECT_TRUE(w.remember(2));
  EXPECT_FALSE(w.contains(1));
  EXPECT_TRUE(w.contains(2));
}

TEST(DedupWindowTest, ClearForgetsEverything) {
  DedupWindow w(4);
  w.remember(1);
  w.remember(2);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.contains(1));
  EXPECT_TRUE(w.remember(1));
}

TEST(DedupWindowTest, RandomizedAgainstSetPlusDequeReference) {
  // The previous implementation (unordered_set + deque) is the semantic
  // reference; the ring + probe table must agree id-for-id.
  constexpr std::size_t kCapacity = 16;
  DedupWindow w(kCapacity);
  std::unordered_set<std::uint64_t> ref_seen;
  std::deque<std::uint64_t> ref_order;
  Rng rng(7);
  for (int op = 0; op < 50000; ++op) {
    const std::uint64_t id = rng.below(64);  // small space → many repeats
    const bool ref_new = !ref_seen.contains(id);
    if (ref_new) {
      ref_seen.insert(id);
      ref_order.push_back(id);
      if (ref_order.size() > kCapacity) {
        ref_seen.erase(ref_order.front());
        ref_order.pop_front();
      }
    }
    ASSERT_EQ(w.remember(id), ref_new) << "op " << op << " id " << id;
    ASSERT_EQ(w.size(), ref_order.size());
  }
}

}  // namespace
}  // namespace hyparview::gossip
