#include "hyparview/baselines/scamp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "../support/fake_env.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

namespace hyparview::baselines {
namespace {

using test::FakeEnv;

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

bool contains(std::span<const NodeId> v, const NodeId& id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

class ScampUnitTest : public ::testing::Test {
 protected:
  ScampUnitTest() : env_(nid(0)), proto_(env_, ScampConfig{}) {}

  void seed_partial_view(std::uint32_t base, std::size_t count) {
    // Keeps are probabilistic (1/(1+|view|)); replay each forwarded sub with
    // ttl=0 (drop-on-reject) until it lands. Deterministic given the seed.
    for (std::uint32_t i = 0; i < count; ++i) {
      while (!contains(proto_.partial_view(), nid(base + i))) {
        proto_.handle(nid(99), wire::ScampForwardedSub{nid(base + i), 0});
      }
    }
    env_.clear();
  }

  FakeEnv env_;
  Scamp proto_;
};

TEST_F(ScampUnitTest, StartSubscribesThroughContact) {
  proto_.start(nid(3));
  ASSERT_EQ(env_.sent.size(), 1u);
  EXPECT_EQ(env_.sent[0].to, nid(3));
  const auto* sub = std::get_if<wire::ScampSubscribe>(&env_.sent[0].msg);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->subscriber, nid(0));
  EXPECT_TRUE(contains(proto_.partial_view(), nid(3)));
}

TEST_F(ScampUnitTest, SubscriptionForwardedToAllPlusCExtraCopies) {
  proto_.start(std::nullopt);
  seed_partial_view(10, 6);
  proto_.handle(nid(7), wire::ScampSubscribe{nid(7)});
  const auto fwds = env_.sent_of_type<wire::ScampForwardedSub>();
  EXPECT_EQ(fwds.size(), 6 + proto_.config().c);
  for (const auto& [to, f] : fwds) {
    EXPECT_EQ(f.subscriber, nid(7));
    EXPECT_TRUE(contains(proto_.partial_view(), to));
  }
}

TEST_F(ScampUnitTest, SubscriptionRecordsTheSubscribersInEdge) {
  // start() makes the subscriber adopt its contact into its PartialView, so
  // a received subscription is an in-edge announcement — without this, the
  // contact's departure (unsubscription) could never reach the subscriber.
  proto_.start(std::nullopt);
  seed_partial_view(10, 4);
  proto_.handle(nid(7), wire::ScampSubscribe{nid(7)});
  EXPECT_TRUE(contains(proto_.in_view(), nid(7)));
  // Idempotent on resubscription (leases).
  proto_.handle(nid(7), wire::ScampSubscribe{nid(7)});
  EXPECT_EQ(std::count(proto_.in_view().begin(), proto_.in_view().end(),
                       nid(7)),
            1);
}

TEST_F(ScampUnitTest, LeaveDelegatesToUnsubscribe) {
  proto_.start(std::nullopt);
  seed_partial_view(10, 4);
  proto_.handle(nid(7), wire::ScampSubscribe{nid(7)});
  env_.clear();
  proto_.leave();
  const auto replaces = env_.sent_of_type<wire::ScampReplace>();
  ASSERT_FALSE(replaces.empty());
  EXPECT_TRUE(proto_.partial_view().empty());
  EXPECT_TRUE(proto_.in_view().empty());
}

TEST_F(ScampUnitTest, BootstrapContactAdoptsSubscriberDirectly) {
  proto_.start(std::nullopt);
  proto_.handle(nid(7), wire::ScampSubscribe{nid(7)});
  EXPECT_TRUE(contains(proto_.partial_view(), nid(7)));
  // The subscriber is told it entered our PartialView.
  const auto notifies = env_.sent_of_type<wire::ScampInViewNotify>();
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_EQ(notifies[0].first, nid(7));
}

TEST_F(ScampUnitTest, ForwardedSubKeptWhenViewEmpty) {
  proto_.start(std::nullopt);
  proto_.handle(nid(9), wire::ScampForwardedSub{nid(7), 10});
  EXPECT_TRUE(contains(proto_.partial_view(), nid(7)));
}

TEST_F(ScampUnitTest, ForwardedSubForSelfDropped) {
  proto_.handle(nid(9), wire::ScampForwardedSub{nid(0), 10});
  EXPECT_TRUE(proto_.partial_view().empty());
  EXPECT_TRUE(env_.sent.empty());
}

TEST_F(ScampUnitTest, DuplicateSubscriberIsForwardedNotKept) {
  proto_.start(std::nullopt);
  seed_partial_view(10, 3);
  proto_.handle(nid(9), wire::ScampForwardedSub{nid(10), 10});
  // Already in view: must be relayed onward, view unchanged.
  EXPECT_EQ(proto_.partial_view().size(), 3u);
  const auto fwds = env_.sent_of_type<wire::ScampForwardedSub>();
  ASSERT_EQ(fwds.size(), 1u);
  EXPECT_EQ(fwds[0].second.ttl, 9);
}

TEST_F(ScampUnitTest, TtlExhaustionDropsForwardedSub) {
  proto_.start(std::nullopt);
  seed_partial_view(10, 3);
  // With a full view, keep probability is 1/4 per hop; drive ttl to zero.
  // Use ttl=0 directly: must not relay further.
  proto_.handle(nid(9), wire::ScampForwardedSub{nid(10), 0});
  EXPECT_TRUE(env_.sent_of_type<wire::ScampForwardedSub>().empty());
}

TEST_F(ScampUnitTest, KeepingSubscriptionNotifiesSubscriber) {
  proto_.start(std::nullopt);
  proto_.handle(nid(9), wire::ScampForwardedSub{nid(7), 10});
  const auto notifies = env_.sent_of_type<wire::ScampInViewNotify>();
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_EQ(notifies[0].first, nid(7));
}

TEST_F(ScampUnitTest, InViewNotifyTracked) {
  proto_.handle(nid(5), wire::ScampInViewNotify{});
  proto_.handle(nid(5), wire::ScampInViewNotify{});  // idempotent
  ASSERT_EQ(proto_.in_view().size(), 1u);
  EXPECT_EQ(proto_.in_view()[0], nid(5));
  const auto backup = proto_.backup_view();
  EXPECT_TRUE(std::equal(backup.begin(), backup.end(),
                         proto_.in_view().begin(), proto_.in_view().end()));
}

TEST_F(ScampUnitTest, ReplaceSwapsPartialViewEntry) {
  seed_partial_view(10, 3);
  proto_.handle(nid(9), wire::ScampReplace{nid(10), nid(42)});
  EXPECT_FALSE(contains(proto_.partial_view(), nid(10)));
  EXPECT_TRUE(contains(proto_.partial_view(), nid(42)));
  // The replacement learns it is now pointed at.
  const auto notifies = env_.sent_of_type<wire::ScampInViewNotify>();
  ASSERT_EQ(notifies.size(), 1u);
  EXPECT_EQ(notifies[0].first, nid(42));
}

TEST_F(ScampUnitTest, ReplaceWithNoNodeJustRemoves) {
  seed_partial_view(10, 3);
  proto_.handle(nid(9), wire::ScampReplace{nid(11), kNoNode});
  EXPECT_FALSE(contains(proto_.partial_view(), nid(11)));
  EXPECT_EQ(proto_.partial_view().size(), 2u);
}

TEST_F(ScampUnitTest, UnsubscribeInformsInViewMembers) {
  proto_.start(std::nullopt);
  seed_partial_view(10, 4);
  for (std::uint32_t i = 0; i < 8; ++i) {
    proto_.handle(nid(50 + i), wire::ScampInViewNotify{});
  }
  env_.clear();

  proto_.unsubscribe();
  const auto replaces = env_.sent_of_type<wire::ScampReplace>();
  ASSERT_EQ(replaces.size(), 8u);
  std::size_t with_replacement = 0;
  for (const auto& [to, r] : replaces) {
    EXPECT_EQ(r.old_id, nid(0));
    if (r.replacement != kNoNode) ++with_replacement;
  }
  // c+1 = 5 members are left unreplaced (views shrink with the system).
  EXPECT_EQ(with_replacement, 8u - (proto_.config().c + 1));
  EXPECT_TRUE(proto_.partial_view().empty());
  EXPECT_TRUE(proto_.in_view().empty());
}

TEST_F(ScampUnitTest, CycleSendsHeartbeatsAlongPartialView) {
  proto_.start(nid(1));
  seed_partial_view(10, 3);
  proto_.on_cycle();
  const auto beats = env_.sent_of_type<wire::ScampHeartbeat>();
  EXPECT_EQ(beats.size(), 4u);  // 3 seeded + contact
}

TEST_F(ScampUnitTest, IsolationTriggersResubscription) {
  ScampConfig cfg;
  cfg.isolation_timeout_cycles = 3;
  FakeEnv env(nid(0));
  Scamp p(env, cfg);
  p.start(nid(1));
  env.clear();
  for (int i = 0; i < 5; ++i) p.on_cycle();  // never receives a heartbeat
  const auto subs = env.sent_of_type<wire::ScampSubscribe>();
  ASSERT_GE(subs.size(), 1u);
  EXPECT_EQ(subs[0].second.subscriber, nid(0));
  EXPECT_GE(p.stats().isolation_recoveries, 1u);
}

TEST_F(ScampUnitTest, HeartbeatsSuppressIsolationRecovery) {
  ScampConfig cfg;
  cfg.isolation_timeout_cycles = 3;
  FakeEnv env(nid(0));
  Scamp p(env, cfg);
  p.start(nid(1));
  env.clear();
  for (int i = 0; i < 10; ++i) {
    p.handle(nid(1), wire::ScampHeartbeat{});
    p.on_cycle();
  }
  EXPECT_EQ(p.stats().isolation_recoveries, 0u);
}

TEST_F(ScampUnitTest, LeaseResubscribesPeriodically) {
  ScampConfig cfg;
  cfg.lease_cycles = 4;
  cfg.heartbeat_period_cycles = 0;  // isolate the lease path
  FakeEnv env(nid(0));
  Scamp p(env, cfg);
  p.start(nid(1));
  env.clear();
  for (int i = 0; i < 8; ++i) p.on_cycle();
  EXPECT_EQ(env.sent_of_type<wire::ScampSubscribe>().size(), 2u);
  EXPECT_EQ(p.stats().resubscriptions, 2u);
}

TEST_F(ScampUnitTest, PlainScampIgnoresUnreachable) {
  seed_partial_view(10, 3);
  proto_.peer_unreachable(nid(10));
  EXPECT_TRUE(contains(proto_.partial_view(), nid(10)));
}

TEST_F(ScampUnitTest, BroadcastTargetsSampledFromPartialView) {
  seed_partial_view(10, 10);
  const auto targets = proto_.broadcast_targets(4, nid(10));
  EXPECT_EQ(targets.size(), 4u);
  for (const auto& t : targets) {
    EXPECT_NE(t, nid(10));
    EXPECT_TRUE(contains(proto_.partial_view(), t));
  }
}

// --- System-level: view sizes scale like (c+1)·ln(n) -------------------------

TEST(ScampNetworkTest, MeanViewSizeGrowsLogarithmically) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kScamp, 600, 11);
  harness::Network net(cfg);
  net.build();
  double total = 0.0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    total += static_cast<double>(net.protocol(i).dissemination_view().size());
  }
  const double mean = total / static_cast<double>(net.node_count());
  const double expected =
      (static_cast<double>(cfg.scamp.c) + 1.0) * std::log(600.0);
  // Subscription arithmetic gives ≈ (c+1)·ln n on average; allow slack for
  // the stochastic forwarding.
  EXPECT_GT(mean, expected * 0.5);
  EXPECT_LT(mean, expected * 2.0);
}

TEST(ScampNetworkTest, OverlayConnectedAfterJoins) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kScamp, 400, 13);
  harness::Network net(cfg);
  net.build();
  EXPECT_TRUE(graph::is_weakly_connected(net.dissemination_graph(false)));
}

}  // namespace
}  // namespace hyparview::baselines
