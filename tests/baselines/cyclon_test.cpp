#include "hyparview/baselines/cyclon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "../support/fake_env.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

namespace hyparview::baselines {
namespace {

using test::FakeEnv;

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

bool has_id(const std::vector<wire::AgedId>& v, const NodeId& id) {
  return std::any_of(v.begin(), v.end(),
                     [&](const wire::AgedId& e) { return e.id == id; });
}

class CyclonUnitTest : public ::testing::Test {
 protected:
  CyclonUnitTest() : env_(nid(0)), proto_(env_, CyclonConfig{}) {}

  void seed_view(std::uint32_t base, std::size_t count) {
    for (std::uint32_t i = 0; i < count; ++i) {
      proto_.handle(nid(99), wire::CyclonJoinGift{{nid(base + i), 0}});
    }
    env_.clear();
  }

  FakeEnv env_;
  Cyclon proto_;
};

TEST_F(CyclonUnitTest, ConfigValidation) {
  CyclonConfig bad;
  bad.shuffle_length = 100;
  bad.view_capacity = 10;
  EXPECT_THROW(Cyclon(env_, bad), CheckError);
}

TEST_F(CyclonUnitTest, StartContactsIntroducer) {
  proto_.start(nid(5));
  ASSERT_EQ(env_.sent.size(), 1u);
  EXPECT_EQ(env_.sent[0].to, nid(5));
  const auto* walk = std::get_if<wire::CyclonJoinWalk>(&env_.sent[0].msg);
  ASSERT_NE(walk, nullptr);
  EXPECT_EQ(walk->new_node, nid(0));
  // The joiner does not keep the introducer: its view is filled exclusively
  // by walk gifts, which is what preserves in-degrees.
  EXPECT_TRUE(proto_.view().empty());
}

TEST_F(CyclonUnitTest, IntroducerFiresWalksForJoiner) {
  seed_view(10, 5);
  // Walk arriving directly from the joiner marks us as introducer.
  proto_.handle(nid(7), wire::CyclonJoinWalk{nid(7), 5});
  const auto walks = env_.sent_of_type<wire::CyclonJoinWalk>();
  EXPECT_EQ(walks.size(), proto_.config().view_capacity);
  for (const auto& [to, w] : walks) {
    EXPECT_EQ(w.new_node, nid(7));
    EXPECT_EQ(w.ttl, 5);
    EXPECT_TRUE(has_id(proto_.view(), to));
  }
}

TEST_F(CyclonUnitTest, WalkForwardedWithDecrementedTtl) {
  seed_view(10, 5);
  proto_.handle(nid(20), wire::CyclonJoinWalk{nid(7), 3});
  const auto walks = env_.sent_of_type<wire::CyclonJoinWalk>();
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_EQ(walks[0].second.ttl, 2);
}

TEST_F(CyclonUnitTest, WalkTerminatesAtTtlZeroWithSwapAndGift) {
  CyclonConfig cfg;
  cfg.view_capacity = 3;
  cfg.shuffle_length = 3;
  FakeEnv env(nid(0));
  Cyclon p(env, cfg);
  for (std::uint32_t i = 0; i < 3; ++i) {
    p.handle(nid(99), wire::CyclonJoinGift{{nid(10 + i), 0}});
  }
  env.clear();

  p.handle(nid(20), wire::CyclonJoinWalk{nid(7), 0});
  EXPECT_TRUE(has_id(p.view(), nid(7)));
  EXPECT_EQ(p.view().size(), 3u);  // swapped, not grown
  const auto gifts = env.sent_of_type<wire::CyclonJoinGift>();
  ASSERT_EQ(gifts.size(), 1u);
  EXPECT_EQ(gifts[0].first, nid(7));
  // The displaced entry is the gift.
  EXPECT_FALSE(has_id(p.view(), gifts[0].second.entry.id));
}

TEST_F(CyclonUnitTest, WalkIntoNonFullViewInsertsAndGiftsSelf) {
  seed_view(10, 2);
  proto_.handle(nid(20), wire::CyclonJoinWalk{nid(7), 0});
  EXPECT_TRUE(has_id(proto_.view(), nid(7)));
  // Non-full adoption gifts a fresh self entry so the joiner's view is
  // never left empty during bootstrap.
  const auto gifts = env_.sent_of_type<wire::CyclonJoinGift>();
  ASSERT_EQ(gifts.size(), 1u);
  EXPECT_EQ(gifts[0].first, nid(7));
  EXPECT_EQ(gifts[0].second.entry.id, nid(0));
}

TEST_F(CyclonUnitTest, GiftIgnoredWhenDuplicateOrSelf) {
  seed_view(10, 2);
  proto_.handle(nid(99), wire::CyclonJoinGift{{nid(10), 5}});  // duplicate
  proto_.handle(nid(99), wire::CyclonJoinGift{{nid(0), 5}});   // self
  EXPECT_EQ(proto_.view().size(), 2u);
}

TEST_F(CyclonUnitTest, CycleAgesEntriesAndShufflesOldest) {
  seed_view(10, 4);
  // Make node 12 the oldest.
  proto_.handle(nid(99), wire::CyclonShuffleReply{{{nid(50), 9}}});
  env_.clear();

  proto_.on_cycle();
  const auto shuffles = env_.sent_of_type<wire::CyclonShuffle>();
  ASSERT_EQ(shuffles.size(), 1u);
  EXPECT_EQ(shuffles[0].first, nid(50));  // oldest after aging
  // The target was removed from the view when the shuffle started.
  EXPECT_FALSE(has_id(proto_.view(), nid(50)));
  // Outgoing list starts with a fresh self entry.
  ASSERT_FALSE(shuffles[0].second.entries.empty());
  EXPECT_EQ(shuffles[0].second.entries.front().id, nid(0));
  EXPECT_EQ(shuffles[0].second.entries.front().age, 0);
  // All other entries aged by one.
  for (const auto& e : proto_.view()) EXPECT_GE(e.age, 1);
}

TEST_F(CyclonUnitTest, ShuffleLengthRespected) {
  CyclonConfig cfg;
  cfg.view_capacity = 20;
  cfg.shuffle_length = 5;
  FakeEnv env(nid(0));
  Cyclon p(env, cfg);
  for (std::uint32_t i = 0; i < 20; ++i) {
    p.handle(nid(99), wire::CyclonJoinGift{{nid(10 + i), 0}});
  }
  env.clear();
  p.on_cycle();
  const auto shuffles = env.sent_of_type<wire::CyclonShuffle>();
  ASSERT_EQ(shuffles.size(), 1u);
  EXPECT_EQ(shuffles[0].second.entries.size(), 5u);  // self + 4 samples
}

TEST_F(CyclonUnitTest, IncomingShuffleAnsweredAndIntegrated) {
  seed_view(10, 4);
  wire::CyclonShuffle incoming{{{nid(70), 0}, {nid(71), 2}}};
  proto_.handle(nid(70), incoming);
  const auto replies = env_.sent_of_type<wire::CyclonShuffleReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, nid(70));
  EXPECT_LE(replies[0].second.entries.size(), 2u);
  EXPECT_TRUE(has_id(proto_.view(), nid(70)));
  EXPECT_TRUE(has_id(proto_.view(), nid(71)));
}

TEST_F(CyclonUnitTest, IntegrationFillsEmptySlotsThenReplacesShipped) {
  CyclonConfig cfg;
  cfg.view_capacity = 3;
  cfg.shuffle_length = 3;
  FakeEnv env(nid(0));
  Cyclon p(env, cfg);
  for (std::uint32_t i = 0; i < 3; ++i) {
    p.handle(nid(99), wire::CyclonJoinGift{{nid(10 + i), 0}});
  }
  env.clear();

  // Incoming shuffle with 3 unknown ids; view full -> replacements come from
  // the entries shipped in the reply.
  p.handle(nid(70), wire::CyclonShuffle{{{nid(70), 0}, {nid(71), 0}, {nid(72), 0}}});
  const auto replies = env.sent_of_type<wire::CyclonShuffleReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(p.view().size(), 3u);
  // Every received id that made it displaced a shipped entry.
  std::size_t received_present = 0;
  for (const auto id : {nid(70), nid(71), nid(72)}) {
    if (has_id(p.view(), id)) ++received_present;
  }
  EXPECT_EQ(received_present, replies[0].second.entries.size());
}

TEST_F(CyclonUnitTest, IntegrationSkipsSelfAndDuplicates) {
  seed_view(10, 4);
  const std::size_t before = proto_.view().size();
  proto_.handle(nid(70), wire::CyclonShuffleReply{{{nid(0), 0}, {nid(10), 0}}});
  EXPECT_EQ(proto_.view().size(), before);  // nothing new inserted
}

TEST_F(CyclonUnitTest, ViewNeverExceedsCapacity) {
  for (std::uint32_t i = 0; i < 100; ++i) {
    proto_.handle(nid(99), wire::CyclonJoinGift{{nid(100 + i), 0}});
  }
  EXPECT_LE(proto_.view().size(), proto_.config().view_capacity);
}

TEST_F(CyclonUnitTest, BroadcastTargetsAreDistinctViewMembers) {
  seed_view(10, 20);
  const auto targets = proto_.broadcast_targets(4, nid(10));
  EXPECT_EQ(targets.size(), 4u);
  const std::set<NodeId> distinct(targets.begin(), targets.end());
  EXPECT_EQ(distinct.size(), targets.size());
  for (const auto& t : targets) {
    EXPECT_NE(t, nid(10));  // sender excluded
    EXPECT_TRUE(has_id(proto_.view(), t));
  }
}

TEST_F(CyclonUnitTest, BroadcastTargetsClampedBySmallView) {
  seed_view(10, 2);
  EXPECT_EQ(proto_.broadcast_targets(4, kNoNode).size(), 2u);
}

TEST_F(CyclonUnitTest, PlainCyclonIgnoresUnreachablePeers) {
  seed_view(10, 5);
  proto_.peer_unreachable(nid(10));
  EXPECT_TRUE(has_id(proto_.view(), nid(10)));  // no detector in plain mode
}

TEST_F(CyclonUnitTest, AckedCyclonPurgesUnreachablePeers) {
  CyclonConfig cfg;
  cfg.purge_on_unreachable = true;
  FakeEnv env(nid(0));
  Cyclon p(env, cfg);
  p.handle(nid(99), wire::CyclonJoinGift{{nid(10), 0}});
  p.peer_unreachable(nid(10));
  EXPECT_FALSE(has_id(p.view(), nid(10)));
  EXPECT_EQ(p.stats().entries_purged, 1u);
  EXPECT_STREQ(p.name(), "cyclon-acked");
}

TEST_F(CyclonUnitTest, ShuffleSendFailureRetriesNextOldest) {
  seed_view(10, 3);
  proto_.on_cycle();
  const auto first = env_.sent_of_type<wire::CyclonShuffle>();
  ASSERT_EQ(first.size(), 1u);
  const NodeId dead = first[0].first;
  proto_.on_send_failed(dead, first[0].second);
  const auto all = env_.sent_of_type<wire::CyclonShuffle>();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NE(all[1].first, dead);
  EXPECT_FALSE(has_id(proto_.view(), dead));
}

TEST_F(CyclonUnitTest, EmptyViewCycleIsNoop) {
  proto_.on_cycle();
  EXPECT_TRUE(env_.sent.empty());
}

// --- System-level: in-degree preservation (the Cyclon join guarantee) -------

TEST(CyclonNetworkTest, JoinKeepsInDegreesBoundedAndViewsFull) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kCyclon, 300, 5);
  cfg.cyclon.view_capacity = 8;
  cfg.cyclon.shuffle_length = 4;
  harness::Network net(cfg);
  net.build();
  const auto g = net.dissemination_graph(false);
  const auto indeg = g.in_degrees();
  // "The join process ensures that, if there are no message losses or node
  // failures, the in-degree of all nodes will remain unchanged" — in
  // particular no node accumulates unbounded popularity during joins.
  const std::size_t max_in = *std::max_element(indeg.begin(), indeg.end());
  EXPECT_LE(max_in, 3 * cfg.cyclon.view_capacity);
  // And the overlay stays weakly connected.
  EXPECT_TRUE(graph::is_weakly_connected(g));
}

TEST(CyclonNetworkTest, ShufflingConvergesAgesAndKeepsConnectivity) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kCyclon, 200, 7);
  cfg.cyclon.view_capacity = 8;
  cfg.cyclon.shuffle_length = 4;
  harness::Network net(cfg);
  net.build();
  net.run_cycles(15);
  EXPECT_TRUE(graph::is_weakly_connected(net.dissemination_graph(false)));
}

}  // namespace
}  // namespace hyparview::baselines
