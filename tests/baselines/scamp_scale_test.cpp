// Scale behavior of Scamp's PartialView membership structure.
//
// PR 4 made in_partial adaptive: small views keep the linear scan, views
// past Scamp::kPartialIndexThreshold switch to a common/flat_hash id→slot
// index (the probe runs once per forwarded-subscription event — ~9.5M
// times in a 10k-node bootstrap). The rewrite must be *behaviorally
// invisible*: same membership answers as a scan, same views, same event
// counts on fixed seeds. This suite pins that, plus a regression bound on
// the bootstrap event count.
#include "hyparview/baselines/scamp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hyparview/harness/network.hpp"
#include "support/fake_env.hpp"

namespace hyparview::baselines {
namespace {

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

bool scan(const std::vector<NodeId>& v, const NodeId& n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

/// Randomized op sequence driving every PartialView mutation path
/// (subscribe, forwarded-sub keep, replace add/remove, link-close erase,
/// unsubscribe clear); after each op, in_partial() must answer exactly as
/// a linear scan of the public view, for every id in the universe, and
/// the view must stay duplicate-free. Runs long enough to cross the index
/// threshold, so both the scan mode and the flat-hash mode are pinned.
TEST(ScampScaleTest, InPartialMatchesLinearScanAcrossAllMutationPaths) {
  test::FakeEnv env(nid(0), /*seed=*/7);
  ScampConfig cfg;
  cfg.purge_on_unreachable = true;  // enable the erase paths
  Scamp proto(env, cfg);
  proto.start(nid(1));

  Rng rng(1234);
  constexpr std::uint32_t kUniverse = 400;
  bool crossed_threshold = false;
  for (int op = 0; op < 12'000; ++op) {
    const NodeId x = nid(1 + static_cast<std::uint32_t>(rng.below(kUniverse)));
    const NodeId y = nid(1 + static_cast<std::uint32_t>(rng.below(kUniverse)));
    if (op == 9999) {
      // One deterministic full reset, late enough that the view has
      // already crossed the index threshold: unsubscribe clears the view
      // AND the active index (the index→scan mode transition), then the
      // remaining ops re-exercise scan mode from scratch.
      ASSERT_TRUE(crossed_threshold)
          << "reset scheduled before the view ever crossed the threshold";
      proto.unsubscribe();
      proto.start(x);
      ASSERT_FALSE(proto.partial_index_active());
      continue;
    }
    // Op mix: forwarded subs dominate (as in a real bootstrap); erase ops
    // are rare enough that the equilibrium view size crosses the index
    // threshold (keep rate 1/(1+s) vs removal rate ~s/(80·universe)).
    switch (rng.below(80)) {
      case 0:
        proto.handle(x, wire::ScampSubscribe{x});
        break;
      case 1:
      case 2:
      case 3:
        proto.handle(x, wire::ScampReplace{x, y});
        break;
      case 4:
        proto.on_link_closed(x);
        break;
      case 5:
        proto.peer_unreachable(x);
        break;
      default:
        // The dominant op, as in a real bootstrap: a forwarded
        // subscription (kept with probability 1/(1+|view|)).
        proto.handle(y, wire::ScampForwardedSub{x, 10});
        break;
    }
    const auto& view = proto.partial_view();
    // No duplicates — the invariant both the scan and the index rely on.
    for (std::size_t i = 0; i < view.size(); ++i) {
      for (std::size_t j = i + 1; j < view.size(); ++j) {
        ASSERT_NE(view[i], view[j]) << "duplicate at op " << op;
      }
    }
    crossed_threshold |= proto.partial_index_active();
    // Membership answers identical to a scan, for members and non-members.
    if (op % 50 == 0) {
      for (std::uint32_t u = 0; u <= kUniverse; ++u) {
        ASSERT_EQ(proto.in_partial(nid(u)), scan(view, nid(u)))
            << "id " << u << " at op " << op;
      }
    }
  }
  // The run must have exercised the flat-hash mode, or this test pins
  // nothing beyond the scan.
  EXPECT_TRUE(crossed_threshold)
      << "op mix never pushed the view past kPartialIndexThreshold ("
      << Scamp::kPartialIndexThreshold << ")";
}

TEST(ScampScaleTest, IndexActivationIsTransparentAroundThreshold) {
  test::FakeEnv env(nid(0), /*seed=*/3);
  Scamp proto(env, ScampConfig{});
  // Drive the view straight through the threshold via the replace-add
  // path, checking the scan/index answers agree at every size.
  proto.start(nid(1));
  for (std::uint32_t i = 2; i < 2 + 2 * Scamp::kPartialIndexThreshold; ++i) {
    // Replace a never-present id (no-op) then subscribe-keep via the
    // empty-view bootstrap is unavailable — use ScampReplace on a present
    // member to exercise erase+add at the same time.
    const NodeId present = proto.partial_view().front();
    proto.handle(nid(999999), wire::ScampReplace{present, nid(i)});
    ASSERT_TRUE(proto.in_partial(nid(i)));
    ASSERT_FALSE(proto.in_partial(present));
    // Re-add the displaced member through a forwarded sub until kept.
    int guard = 0;
    while (!proto.in_partial(present) && ++guard < 10'000) {
      proto.handle(nid(i), wire::ScampForwardedSub{present, 1});
    }
    ASSERT_TRUE(proto.in_partial(present)) << "forwarded sub never kept";
    ASSERT_EQ(proto.partial_view().size(), i);  // grew by one per round
  }
  EXPECT_TRUE(proto.partial_index_active());
  // Every member answers true; a sample of absent ids answers false.
  for (const NodeId& n : proto.partial_view()) {
    EXPECT_TRUE(proto.in_partial(n));
  }
  for (std::uint32_t u = 500'000; u < 500'050; ++u) {
    EXPECT_FALSE(proto.in_partial(nid(u)));
  }
}

/// Fixed-seed determinism at network scale: two identical Scamp bootstraps
/// must agree event-for-event and view-for-view — the flat-hash index is
/// pure lookup mechanics, invisible to protocol decisions.
TEST(ScampScaleTest, BootstrapDeterministicViewsAndEventCounts) {
  auto build = [](std::uint64_t seed) {
    auto cfg = harness::NetworkConfig::defaults_for(
        harness::ProtocolKind::kScamp, 600, seed);
    auto net = std::make_unique<harness::Network>(cfg);
    net->build();
    return net;
  };
  auto a = build(91);
  auto b = build(91);
  EXPECT_EQ(a->simulator().events_processed(),
            b->simulator().events_processed());
  EXPECT_EQ(a->simulator().messages_sent(), b->simulator().messages_sent());
  for (std::size_t i = 0; i < a->node_count(); ++i) {
    const auto& sa = static_cast<Scamp&>(a->protocol(i));
    const auto& sb = static_cast<Scamp&>(b->protocol(i));
    ASSERT_EQ(sa.partial_view(), sb.partial_view()) << "node " << i;
    ASSERT_EQ(sa.in_view(), sb.in_view()) << "node " << i;
  }
}

/// Regression bound on the subscription-walk bootstrap: the event count is
/// deterministic per seed and protocol-inherent (~n·(c+1)·ln n forwarded
/// copies); a future change that loops or re-forwards pathologically
/// would blow straight past the 2x headroom here.
TEST(ScampScaleTest, BootstrapEventCountStaysBounded) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kScamp, 2000, 42);
  harness::Network net(cfg);
  net.build();
  const std::uint64_t events = net.simulator().events_processed();
  // Measured at this seed: ~1.34M events for 2000 joins. Bound with ~1.9x
  // headroom; also assert a sane floor so a silently skipped bootstrap
  // cannot pass.
  EXPECT_LT(events, 2'500'000u);
  EXPECT_GT(events, 200'000u);
  // Views came out at the Scamp steady state: mean |PartialView| near
  // (c+1)·ln(n) ≈ 38 for c=4, n=2000.
  double total = 0.0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    total += static_cast<double>(
        static_cast<Scamp&>(net.protocol(i)).partial_view().size());
  }
  const double mean = total / static_cast<double>(net.node_count());
  EXPECT_GT(mean, 15.0);
  EXPECT_LT(mean, 80.0);
}

}  // namespace
}  // namespace hyparview::baselines
