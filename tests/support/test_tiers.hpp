// Shared tiering helper for the slow suites (tcp_cluster_test,
// failure_injection_test). Their default CTest registrations set
// HPV_QUICK=1, which keeps the core scenarios and skips the rest; the
// complete suites register as `*_full` aliases (label `full`) when the
// tree is configured with -DHPV_FULL_TESTS=ON.
#pragma once

#include <gtest/gtest.h>

#include "hyparview/common/options.hpp"

// Uses the same HPV_QUICK parse as the bench scale and scenario grid
// (env_flag: "1"/"true"/"yes"/"on"), so one spelling tiers everything
// consistently.
#define HPV_FULL_TIER_ONLY()                                                 \
  do {                                                                       \
    if (::hyparview::env_flag("HPV_QUICK")) {                                \
      GTEST_SKIP() << "full-tier case: configure with -DHPV_FULL_TESTS=ON "  \
                      "and run `ctest -L full` (or run this binary without " \
                      "HPV_QUICK)";                                          \
    }                                                                        \
  } while (0)
