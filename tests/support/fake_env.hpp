// Deterministic in-memory Env for protocol unit tests: records every
// outgoing action and lets the test complete connects / fire timers by hand.
#pragma once

#include <utility>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/membership/env.hpp"

namespace hyparview::test {

// Not final: tests derive fault-injecting variants (e.g. synchronous send
// failures mimicking TcpTransport dial errors).
class FakeEnv : public membership::Env {
 public:
  struct SentMessage {
    NodeId to;
    wire::Message msg;
  };
  struct ConnectRequest {
    NodeId to;
    membership::ConnectCallback cb;
    bool completed = false;
  };
  struct ScheduledTask {
    Duration delay;
    membership::TaskCallback fn;
  };

  explicit FakeEnv(NodeId self, std::uint64_t seed = 1)
      : self_(self), rng_(seed) {}

  [[nodiscard]] NodeId self() const override { return self_; }
  [[nodiscard]] TimePoint now() const override { return now_; }
  [[nodiscard]] Rng& rng() override { return rng_; }

  void send(const NodeId& to, wire::Message msg) override {
    sent.push_back({to, std::move(msg)});
  }

  void connect(const NodeId& to, membership::ConnectCallback cb) override {
    connects.push_back({to, std::move(cb), false});
  }

  void disconnect(const NodeId& to) override { disconnects.push_back(to); }

  void schedule(Duration delay, membership::TaskCallback fn) override {
    tasks.push_back({delay, std::move(fn)});
  }

  // --- Test controls ---------------------------------------------------------

  void advance(Duration d) { now_ += d; }

  /// Completes the i-th pending connect with the given outcome.
  void complete_connect(std::size_t i, bool ok) {
    HPV_CHECK(i < connects.size());
    HPV_CHECK(!connects[i].completed);
    connects[i].completed = true;
    connects[i].cb(ok);
  }

  /// Messages of type M sent so far, in order.
  template <typename M>
  [[nodiscard]] std::vector<std::pair<NodeId, M>> sent_of_type() const {
    std::vector<std::pair<NodeId, M>> out;
    for (const auto& s : sent) {
      if (const auto* m = std::get_if<M>(&s.msg)) {
        out.emplace_back(s.to, *m);
      }
    }
    return out;
  }

  void clear() {
    sent.clear();
    connects.clear();
    disconnects.clear();
    tasks.clear();
  }

  std::vector<SentMessage> sent;
  std::vector<ConnectRequest> connects;
  std::vector<NodeId> disconnects;
  std::vector<ScheduledTask> tasks;

 private:
  NodeId self_;
  Rng rng_;
  TimePoint now_ = 0;
};

}  // namespace hyparview::test
