// Plumtree payload-plane scenario tier.
//
// End-to-end rows for the TreeBroadcastEngine on the sim backend, at the
// level the unit suite cannot reach — whole-cluster behavior of the tree
// under sustained multi-source pub/sub streams:
//
//   * bit-identity — two fresh clusters, same seed, same spec: every
//     pub/sub counter, per-tick reliability, and the simulator event count
//     must match exactly (the determinism contract of ROADMAP item 4);
//   * crash-heal — 25% of the cluster crashes at the stream midpoint; the
//     tree must repair through HyParView's reactive membership and the
//     stream must recover to full reliability before it ends;
//   * randomized link drops — a property suite across seeds: after a wave
//     of random connection resets (Simulator::drop_random_links) the
//     graft/prune repair path must restore full delivery;
//   * payload economy — at equal reliability, Plumtree's steady-state
//     payload bytes stay well under the eager flood's (the bench gates the
//     headline ≥40% reduction at scale; this row pins the direction at
//     test scale so a regression is caught in the default ctest run).
//
// HPV_QUICK=1 (set by the plumtree_smoke alias) shrinks the seed grid and
// tick counts so the smoke tier stays fast; the full grid runs under the
// `scenario` label.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/sim_backend.hpp"

namespace hyparview::harness {
namespace {

bool quick() { return std::getenv("HPV_QUICK") != nullptr; }

NetworkConfig plumtree_config(std::size_t nodes, std::uint64_t seed) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, nodes, seed);
  cfg.gossip.engine = gossip::Engine::kPlumtree;
  // Sustained streams keep sources × rate ids in flight per tick plus the
  // graft-repair horizon; size the windows the way the committed pub/sub
  // specs do rather than relying on the discrete-wave default.
  cfg.gossip.dedup_window = 1024;
  cfg.gossip.cache_window = 1024;
  return cfg;
}

PubSubConfig steady_stream(std::size_t ticks) {
  PubSubConfig cfg;
  cfg.sources = 4;
  cfg.ticks = ticks;
  cfg.rate = 2;
  cfg.cycles_per_tick = 1;
  return cfg;
}

// --- determinism -------------------------------------------------------------

// The full pub/sub outcome of a run, down to exact counters. Everything in
// here must be bit-identical across two runs at the same seed.
struct RunFingerprint {
  PubSubStats stats;
  std::uint64_t events = 0;

  bool operator==(const RunFingerprint& o) const {
    return stats.published == o.stats.published &&
           stats.per_tick_reliability == o.stats.per_tick_reliability &&
           stats.avg_reliability == o.stats.avg_reliability &&
           stats.min_reliability == o.stats.min_reliability &&
           stats.payload_bytes == o.stats.payload_bytes &&
           stats.control_bytes == o.stats.control_bytes &&
           stats.messages_forwarded == o.stats.messages_forwarded &&
           stats.duplicates == o.stats.duplicates &&
           stats.grafts == o.stats.grafts &&
           stats.prunes == o.stats.prunes &&
           stats.max_latency_us == o.stats.max_latency_us &&
           events == o.events;
  }
};

RunFingerprint run_once(std::uint64_t seed, const PubSubConfig& stream) {
  auto cluster = Cluster::sim(plumtree_config(128, seed));
  auto result = cluster.run(Experiment("plumtree_determinism")
                                .stabilize(50)
                                .pubsub(stream, "stream"));
  return {result.phase("stream").pubsub, cluster->events_processed()};
}

TEST(PlumtreeDeterminism, TwoRunsBitIdentical) {
  auto stream = steady_stream(quick() ? 8 : 20);
  stream.churn_fraction = 0.25;  // repair traffic included in the contract
  const RunFingerprint a = run_once(7, stream);
  const RunFingerprint b = run_once(7, stream);
  EXPECT_TRUE(a == b)
      << "plumtree pub/sub diverged across two identically-seeded runs: "
      << "events " << a.events << " vs " << b.events << ", forwarded "
      << a.stats.messages_forwarded << " vs " << b.stats.messages_forwarded
      << ", grafts " << a.stats.grafts << " vs " << b.stats.grafts;
  // A second seed must actually change the run (guards against the
  // fingerprint accidentally comparing constants).
  const RunFingerprint c = run_once(8, stream);
  EXPECT_FALSE(a == c);
}

// --- crash-heal --------------------------------------------------------------

TEST(PlumtreeChurnHeal, StreamRecoversAfterQuarterCrash) {
  auto cluster = Cluster::sim(plumtree_config(quick() ? 128 : 256, 11));
  auto stream = steady_stream(quick() ? 12 : 20);
  stream.churn_fraction = 0.25;
  auto result = cluster.run(Experiment("plumtree_churn_heal")
                                .stabilize(50)
                                .pubsub(stream, "stream"));
  const PubSubStats& stats = result.phase("stream").pubsub;

  ASSERT_EQ(stats.per_tick_reliability.size(), stream.ticks);
  // Reliability is deliveries over alive non-source nodes: a value above
  // 1 + epsilon would mean a node delivered the same payload twice (dedup
  // failure), not good luck.
  for (double r : stats.per_tick_reliability) EXPECT_LE(r, 1.0 + 1e-9);

  // Pre-crash steady state is a converged tree: full delivery.
  const std::size_t mid = stream.ticks / 2;
  for (std::size_t t = 0; t + 1 < mid; ++t)
    EXPECT_GE(stats.per_tick_reliability[t], 0.999)
        << "pre-crash tick " << t;

  // The crash tick itself may lose in-flight payloads; by the final tick
  // the tree must have re-formed over the healed overlay.
  EXPECT_GE(stats.per_tick_reliability.back(), 0.999)
      << "stream did not recover by the last tick";
  EXPECT_GE(stats.min_reliability, 0.5)
      << "losing half the alive nodes' deliveries means the tree "
         "disconnected, not just dropped in-flight traffic";
  // Repair actually exercised the Plumtree path (not a silent re-flood).
  EXPECT_GT(stats.prunes, 0u);
}

// --- randomized link drops ---------------------------------------------------

TEST(PlumtreeDropProperty, GraftRepairSurvivesRandomResetsAcrossSeeds) {
  const std::vector<std::uint64_t> seeds =
      quick() ? std::vector<std::uint64_t>{3}
              : std::vector<std::uint64_t>{3, 17, 23};
  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto cluster = Cluster::sim(plumtree_config(128, seed));
    // Converge the tree under a steady stream first.
    auto warm = cluster.run(Experiment("plumtree_drop_warm")
                                .stabilize(50)
                                .pubsub(steady_stream(8), "warm"));
    EXPECT_GE(warm.phase("warm").pubsub.per_tick_reliability.back(), 0.999);

    // Reset 30% of the open connections: eager tree edges die with them.
    const std::size_t dropped =
        cluster.sim_backend()->simulator().drop_random_links(0.3);
    ASSERT_GT(dropped, 0u);
    cluster->settle();  // link-closed notifications + membership repair

    // The continued stream must re-converge: IHave announcements on the
    // surviving lazy links cover the cut tree edges, grafts promote them.
    auto healed = cluster.run(
        Experiment("plumtree_drop_heal").pubsub(steady_stream(8), "healed"));
    const PubSubStats& stats = healed.phase("healed").pubsub;
    EXPECT_GE(stats.per_tick_reliability.back(), 0.999)
        << "stream did not recover after dropping " << dropped << " links";
    EXPECT_GE(stats.min_reliability, 0.9);
    for (double r : stats.per_tick_reliability) EXPECT_LE(r, 1.0 + 1e-9);
  }
}

// --- payload economy ---------------------------------------------------------

TEST(PlumtreeVsEager, FewerPayloadBytesAtEqualReliability) {
  const std::size_t nodes = quick() ? 128 : 256;
  auto spec = Experiment("payload_economy")
                  .stabilize(50)
                  .pubsub(steady_stream(quick() ? 10 : 16), "stream");

  auto eager_cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView,
                                               nodes, 5);
  eager_cfg.gossip.dedup_window = 1024;
  auto eager = Cluster::sim(eager_cfg).run(spec).phase("stream").pubsub;

  auto tree = Cluster::sim(plumtree_config(nodes, 5))
                  .run(spec)
                  .phase("stream")
                  .pubsub;

  EXPECT_GE(tree.avg_reliability, eager.avg_reliability - 1e-9);
  // The bench gates ≤0.6 at scale in steady state; this row includes the
  // eager warm-up ticks, so just pin a solid reduction.
  EXPECT_LT(tree.payload_bytes, eager.payload_bytes * 3 / 4)
      << "plumtree " << tree.payload_bytes << " vs eager "
      << eager.payload_bytes;
  // The flood pays a duplicate to almost every edge; the converged tree
  // pays almost none.
  EXPECT_LT(tree.duplicates, eager.duplicates / 2);
}

}  // namespace
}  // namespace hyparview::harness
