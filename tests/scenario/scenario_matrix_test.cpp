// Table-driven fault-scenario matrix.
//
// One parameterized test drives sim-backed HyParView networks through a grid
// of {network size} × {fault scenario} × {seed} and asserts the paper-level
// invariants after the fault plus a bounded healing phase:
//
//   * reliability of post-healing broadcasts ≥ the paper's thresholds
//     (§5: 100% delivery up to 80% simultaneous failures after recovery);
//   * the surviving overlay stays connected (largest weakly connected
//     component ≥ 99% of correct nodes);
//   * active-view symmetry: p ∈ active(q) ⇔ q ∈ active(p) (§3 invariant,
//     re-established by the repair + self-healing traffic rules).
//
// Scenarios: continuous churn, mass simultaneous failure (10–80%), slow
// (blocked) nodes, flaky links (random connection resets via
// Simulator::drop_random_links), latency spikes (the one-way delay
// band jumps ~100× mid-run via Simulator::set_latency, then recovers —
// congestion events must delay but never lose traffic), asymmetric
// partitions (every TCP connection crossing a minority/majority cut is
// reset at once), and a combined fault (latency spike held through a churn
// phase). The Cyclon and Scamp baselines run through a slice of the grid
// with relaxed thresholds — they have no reactive failure detector, so the
// invariants they can promise are weaker (and active-view symmetry is a
// HyParView-only notion). HPV_QUICK=1 shrinks the grid to the
// small-network slice so the `smoke` CTest tier finishes in well under a
// minute; the full grid runs under the `scenario` label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "hyparview/common/options.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

namespace hyparview::harness {
namespace {

enum class Fault : std::uint8_t {
  kChurn,         ///< continuous joins + leaves (half graceful, half crash)
  kMassFailure,   ///< simultaneous crash of `intensity` of the network
  kSlowNodes,     ///< `intensity` of nodes stop consuming (§5.5)
  kFlakyLinks,    ///< waves of random connection resets
  kLatencySpike,  ///< one-way delay inflates ~100× mid-run, then recovers
  kPartition,     ///< asymmetric cut: reset every link crossing a
                  ///< minority(`intensity`)/majority split at once
  kSpikeChurn,    ///< combined fault: ~50× latency held through churn
  kGracefulLeave, ///< `intensity` of nodes depart via Protocol::leave —
                  ///< goodbyes, not crashes: repair must be proactive
};

struct ScenarioCase {
  Fault fault = Fault::kMassFailure;
  /// Fault-specific magnitude: failed/blocked/reset/minority fraction
  /// (unused for churn, which has its own workload shape).
  double intensity = 0.0;
  std::size_t nodes = 128;
  std::uint64_t seed = 1;
  /// Post-healing broadcast reliability floor for this cell.
  double min_reliability = 0.99;
  /// Membership protocol under test. The baselines run with relaxed
  /// thresholds and without the HyParView-specific symmetry check.
  ProtocolKind kind = ProtocolKind::kHyParView;
  /// Reliability floor for the probes *during* a churn workload.
  double min_churn_reliability = 0.95;

  [[nodiscard]] std::string name() const {
    std::string fault_name;
    switch (fault) {
      case Fault::kChurn: fault_name = "churn"; break;
      case Fault::kMassFailure:
        fault_name = "fail" + std::to_string(static_cast<int>(intensity * 100));
        break;
      case Fault::kSlowNodes: fault_name = "slow"; break;
      case Fault::kFlakyLinks: fault_name = "flaky"; break;
      case Fault::kLatencySpike: fault_name = "latency"; break;
      case Fault::kPartition: fault_name = "partition"; break;
      case Fault::kSpikeChurn: fault_name = "spikechurn"; break;
      case Fault::kGracefulLeave:
        fault_name =
            "leave" + std::to_string(static_cast<int>(intensity * 100));
        break;
    }
    std::string prefix;
    if (kind != ProtocolKind::kHyParView) {
      prefix = std::string(kind_name(kind)) + "_";
      for (char& ch : prefix) ch = static_cast<char>(std::tolower(ch));
    }
    return prefix + fault_name + "_n" + std::to_string(nodes) + "_s" +
           std::to_string(seed);
  }
};

/// The grid. HPV_QUICK keeps one small network size and one seed per fault
/// so the smoke tier stays fast; the full tier spans ≥ 2 sizes × 2 seeds.
/// The Cyclon/Scamp baseline rows ride along in BOTH tiers (they are part
/// of the smoke slice) at the smallest network size.
std::vector<ScenarioCase> make_grid() {
  const bool quick = env_flag("HPV_QUICK", false);
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{64} : std::vector<std::size_t>{128, 384};
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{7} : std::vector<std::uint64_t>{7, 19};

  std::vector<ScenarioCase> grid;
  for (const std::size_t n : sizes) {
    for (const std::uint64_t seed : seeds) {
      grid.push_back({Fault::kChurn, 0.0, n, seed, 0.99});
      grid.push_back({Fault::kMassFailure, 0.1, n, seed, 0.99});
      grid.push_back({Fault::kMassFailure, 0.5, n, seed, 0.99});
      grid.push_back({Fault::kMassFailure, 0.8, n, seed, 0.95});
      grid.push_back({Fault::kSlowNodes, 0.1, n, seed, 0.99});
      grid.push_back({Fault::kFlakyLinks, 0.3, n, seed, 0.99});
      grid.push_back({Fault::kLatencySpike, 100.0, n, seed, 0.99});
      grid.push_back({Fault::kPartition, 0.125, n, seed, 0.99});
      grid.push_back({Fault::kSpikeChurn, 50.0, n, seed, 0.99});
      grid.push_back({Fault::kGracefulLeave, 0.25, n, seed, 0.99});
    }
  }
  // Baseline slice: no reactive failure detector, so the floors reflect
  // what random-fanout gossip over an aging view can actually promise
  // (paper fig. 1/2 territory, not HyParView's 100%).
  const std::size_t base_n = sizes.front();
  for (const std::uint64_t seed : seeds) {
    // Plain Cyclon's post-churn floor is deliberately loose (observed
    // 0.72–0.85 across seeds): without a failure detector, reliability
    // after sustained churn degrades — which is the paper's very point.
    grid.push_back({Fault::kChurn, 0.0, base_n, seed, 0.65,
                    ProtocolKind::kCyclon, 0.80});
    grid.push_back({Fault::kMassFailure, 0.1, base_n, seed, 0.85,
                    ProtocolKind::kCyclon, 0.80});
    grid.push_back({Fault::kChurn, 0.0, base_n, seed, 0.70,
                    ProtocolKind::kScamp, 0.65});
    grid.push_back({Fault::kMassFailure, 0.1, base_n, seed, 0.70,
                    ProtocolKind::kScamp, 0.65});
  }
  return grid;
}

class ScenarioMatrixTest : public ::testing::TestWithParam<ScenarioCase> {
 protected:
  /// Applies the fault, drives the healing phase, and remembers which nodes
  /// should be excluded from the invariant checks (blocked slow nodes stay
  /// alive but cannot answer).
  void run_scenario(Network& net, const ScenarioCase& c) {
    switch (c.fault) {
      case Fault::kChurn: {
        ChurnConfig churn;
        churn.cycles = 15;
        churn.joins_per_cycle = std::max<std::size_t>(1, c.nodes / 32);
        churn.leaves_per_cycle = churn.joins_per_cycle;
        churn.probes_per_cycle = 1;
        const ChurnStats stats = net.run_churn(churn);
        // Reliability observed *during* churn: the paper's continuous-churn
        // runs stay near-perfect for HyParView because repair is reactive
        // and immediate; the baselines only promise what view aging can.
        EXPECT_GT(stats.avg_reliability, c.min_churn_reliability)
            << "reliability under churn";
        break;
      }
      case Fault::kMassFailure:
        net.fail_random_fraction(c.intensity);
        break;
      case Fault::kSlowNodes: {
        const auto blocked_count = static_cast<std::size_t>(
            c.intensity * static_cast<double>(c.nodes));
        // Deterministic victim choice: nodes 1..blocked_count (0 is the
        // bootstrap contact; keeping it responsive is the harder test for
        // the overlay — joins must already route around slow nodes).
        for (std::size_t i = 1; i <= blocked_count; ++i) {
          blocked_.push_back(net.id_of(i));
          net.simulator().block(blocked_.back());
        }
        break;
      }
      case Fault::kFlakyLinks:
        // Three waves of connection resets with reactive traffic between
        // them: each wave tears down `intensity` of all open links.
        for (int wave = 0; wave < 3; ++wave) {
          net.simulator().drop_random_links(c.intensity);
          net.simulator().run_until_quiescent();
          for (int i = 0; i < 5; ++i) net.broadcast_one();
        }
        break;
      case Fault::kLatencySpike: {
        // Delay band jumps by `intensity`× (congestion event): traffic —
        // broadcasts and a membership round — runs slow but lossless, then
        // the network recovers. Reliability and symmetry must survive the
        // spike; TCP links do not break on latency alone.
        const auto& sim_cfg = net.config().sim;
        const auto factor = static_cast<std::int64_t>(c.intensity);
        net.simulator().set_latency(sim_cfg.latency_min * factor,
                                    sim_cfg.latency_max * factor);
        for (int i = 0; i < 5; ++i) net.broadcast_one();
        net.run_cycles(1);
        net.simulator().set_latency(sim_cfg.latency_min, sim_cfg.latency_max);
        break;
      }
      case Fault::kPartition: {
        // Asymmetric partition: the network cuts every TCP connection
        // crossing a minority/majority split at once (a switch dying on
        // one rack). Unlike a crash wave both sides stay alive, so the
        // overlay must tear the stale links down reactively and re-merge.
        const auto minority = std::max<std::size_t>(
            1, static_cast<std::size_t>(c.intensity *
                                        static_cast<double>(c.nodes)));
        for (std::size_t i = 0; i < minority; ++i) {
          for (std::size_t j = minority; j < net.node_count(); ++j) {
            if (net.simulator().linked(net.id_of(i), net.id_of(j))) {
              net.simulator().drop_link(net.id_of(i), net.id_of(j));
            }
          }
        }
        net.simulator().run_until_quiescent();
        break;
      }
      case Fault::kSpikeChurn: {
        // Combined fault: the latency spike is *held* through a churn
        // phase (congestion during a deploy wave), then lifted. Slow but
        // lossless links must not break the join/leave/repair machinery.
        const auto& sim_cfg = net.config().sim;
        const auto factor = static_cast<std::int64_t>(c.intensity);
        net.simulator().set_latency(sim_cfg.latency_min * factor,
                                    sim_cfg.latency_max * factor);
        ChurnConfig churn;
        churn.cycles = 5;
        churn.joins_per_cycle = std::max<std::size_t>(1, c.nodes / 32);
        churn.leaves_per_cycle = churn.joins_per_cycle;
        churn.probes_per_cycle = 1;
        const ChurnStats spiked = net.run_churn(churn);
        EXPECT_GT(spiked.avg_reliability, c.min_churn_reliability)
            << "reliability under churn during the latency spike";
        net.simulator().set_latency(sim_cfg.latency_min, sim_cfg.latency_max);
        break;
      }
      case Fault::kGracefulLeave: {
        // A wave of graceful departures (Protocol::leave): each node says
        // goodbye, the goodbyes drain, then it exits. Unlike a crash the
        // survivors repair *proactively* — before the healing traffic
        // below, no responsive node may still hold a leaver in its
        // dissemination view (the failure detector never had to fire).
        const auto count = static_cast<std::size_t>(
            c.intensity * static_cast<double>(c.nodes));
        std::vector<NodeId> left;
        // Deterministic victims 1..count (0 stays: the bootstrap contact
        // departing is a different scenario than a turnover wave).
        for (std::size_t i = 1; i <= count; ++i) {
          left.push_back(net.id_of(i));
          net.leave_node(i, /*graceful=*/true);
        }
        if (c.kind == ProtocolKind::kHyParView) {
          std::size_t stale = 0;
          for (std::size_t i = 0; i < net.node_count(); ++i) {
            if (!net.alive(i)) continue;
            for (const NodeId& peer :
                 net.protocol(i).dissemination_view()) {
              if (std::find(left.begin(), left.end(), peer) != left.end()) {
                ++stale;
              }
            }
          }
          EXPECT_EQ(stale, 0u)
              << "active views still hold gracefully departed nodes";
        }
        break;
      }
    }
    // Healing phase: a burst of traffic exercises the reactive repair path
    // (detect-on-send failure detector), then two membership rounds let the
    // periodic shuffle re-knit passive knowledge.
    for (int i = 0; i < 30; ++i) net.broadcast_one();
    net.run_cycles(2);
    net.simulator().run_until_quiescent();
  }

  [[nodiscard]] bool excluded(const NodeId& id) const {
    return std::find(blocked_.begin(), blocked_.end(), id) != blocked_.end();
  }

  std::vector<NodeId> blocked_;
};

TEST_P(ScenarioMatrixTest, InvariantsHoldAfterFaultAndHealing) {
  const ScenarioCase c = GetParam();
  auto cfg = NetworkConfig::defaults_for(c.kind, c.nodes, c.seed);
  Network net(cfg);
  net.build();
  net.run_cycles(10);
  run_scenario(net, c);

  // Responsive correct nodes: alive and not blocked.
  std::size_t responsive = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (net.alive(i) && !excluded(net.id_of(i))) ++responsive;
  }
  ASSERT_GT(responsive, c.nodes / 8) << "scenario killed nearly everyone";

  // --- Reliability ≥ paper threshold ------------------------------------
  // Denominator: responsive nodes. Blocked (slow) nodes count as alive in
  // the recorder's §2.5 denominator but cannot deliver by construction, so
  // the scenario-level metric is delivery among nodes able to respond.
  // Sources are drawn among responsive nodes (a frozen process cannot
  // originate a broadcast in the first place).
  const auto pick_responsive = [&]() -> std::size_t {
    while (true) {
      const auto i = static_cast<std::size_t>(
          net.simulator().rng().below(net.node_count()));
      if (net.alive(i) && !excluded(net.id_of(i))) return i;
    }
  };
  double sum = 0.0;
  constexpr int kProbes = 10;
  for (int i = 0; i < kProbes; ++i) {
    const auto result = net.broadcast_from(pick_responsive());
    sum += static_cast<double>(result.delivered) /
           static_cast<double>(responsive);
  }
  EXPECT_GE(sum / kProbes, c.min_reliability)
      << "post-healing reliability below the paper's threshold";

  // --- Connectivity among survivors -------------------------------------
  // alive_only strips every edge incident to a dead node, leaving dead
  // vertices isolated — they cannot affect the largest component.
  const double wcc_floor = c.kind == ProtocolKind::kHyParView ? 0.99 : 0.95;
  const auto g = net.dissemination_graph(/*alive_only=*/true);
  EXPECT_GE(graph::largest_weakly_connected_component(g),
            static_cast<std::size_t>(
                wcc_floor * static_cast<double>(net.alive_count())))
      << "surviving overlay partitioned";

  // --- Active-view symmetry ---------------------------------------------
  // A HyParView-only invariant (§3): Cyclon/Scamp views are directed by
  // design, so the baselines skip it.
  if (c.kind != ProtocolKind::kHyParView) return;
  // Checked over responsive nodes; entries pointing at dead/blocked peers
  // are the failure detector's job and are already bounded by the
  // reliability check above.
  std::size_t arcs = 0;
  std::size_t symmetric = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i) || excluded(net.id_of(i))) continue;
    for (const NodeId& peer : net.protocol(i).dissemination_view()) {
      if (!net.alive(peer.ip) || excluded(peer)) continue;
      ++arcs;
      const auto peer_view = net.protocol(peer.ip).dissemination_view();
      if (std::find(peer_view.begin(), peer_view.end(), net.id_of(i)) !=
          peer_view.end()) {
        ++symmetric;
      }
    }
  }
  ASSERT_GT(arcs, 0u);
  EXPECT_GE(static_cast<double>(symmetric) / static_cast<double>(arcs), 0.99)
      << "active views asymmetric: " << symmetric << "/" << arcs;
}

/// Determinism: the whole pipeline (build, fault, healing, probes) must be
/// bit-identical under a fixed seed — the foundation of every reproducible
/// figure in the repo.
TEST(ScenarioMatrixDeterminism, IdenticalRunsProduceIdenticalResults) {
  const auto run_once = [] {
    auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 5);
    Network net(cfg);
    net.build();
    net.run_cycles(5);
    net.fail_random_fraction(0.3);
    net.simulator().drop_random_links(0.2);
    for (int i = 0; i < 10; ++i) net.broadcast_one();
    std::vector<double> rel;
    for (const auto& r : net.recorder().results()) {
      rel.push_back(r.reliability());
    }
    rel.push_back(static_cast<double>(net.simulator().messages_sent()));
    rel.push_back(static_cast<double>(net.simulator().bytes_sent()));
    return rel;
  };
  EXPECT_EQ(run_once(), run_once());
}

std::string case_name(const ::testing::TestParamInfo<ScenarioCase>& info) {
  return info.param.name();
}

INSTANTIATE_TEST_SUITE_P(Grid, ScenarioMatrixTest,
                         ::testing::ValuesIn(make_grid()), case_name);

}  // namespace
}  // namespace hyparview::harness
