// Adversarial-tier scenarios (ROADMAP item 3).
//
// A 10% minority misbehaves at the protocol level (harness::Adversary) while
// the honest majority runs unmodified code; the assertions pin how far each
// attack can push the honest overlay at paper-default parameters:
//
//  * view poisoning — colluders answer shuffles/joins with fabricated or
//    colluding identities. Pin: the honest overlay stays connected and a 10%
//    minority cannot capture more than half of the honest dissemination-view
//    slots (the eclipse-pressure test below tightens this to a pure colluder
//    roster, the strongest variant: fabricated ids churn out via failure
//    detection, colluders hold slots durably).
//  * selective dropping — colluders stay reputable overlay citizens but
//    silently drop every gossip frame they should relay. Pin: reliability
//    degrades but does not collapse (per-protocol floors).
//  * sybil flood — bursts of joins from fabricated identities that name no
//    real process. Pin: after the burst traffic and a bounded healing phase,
//    reliability and honest-component structure recover (the fabricated ids
//    cannot answer, so failure detection purges them).
//
// Every sim row is bit-identical across two runs at a fixed seed (the
// determinism test), and the same specs run over real sockets (TcpBackend,
// 32 nodes) — the attacks are substrate-blind by construction. Heavy-tailed
// trace-driven churn (Pareto/lognormal session lengths) rides along as the
// fourth adversarial workload. HPV_QUICK=1 keeps the HyParView slice only so
// the smoke tier stays fast.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "hyparview/common/options.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/harness/adversary.hpp"
#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/tcp_backend.hpp"

namespace hyparview::harness {
namespace {

struct AdversarialCase {
  AttackKind attack = AttackKind::kPoison;
  ProtocolKind kind = ProtocolKind::kHyParView;
  std::size_t nodes = 128;
  std::uint64_t seed = 11;
  /// Floor on post-attack probe reliability (all alive nodes, adversaries
  /// included — a dropper still *receives*, it just refuses to relay).
  double min_reliability = 0.9;
  /// Cap on the fraction of honest dissemination-view slots the adversary
  /// holds. ~10% is the honest-membership baseline (colluders are real
  /// overlay members), so caps meaningfully above that measure *captured*
  /// pressure, not mere presence.
  double max_eclipse = 0.5;
  /// Floor on largest-honest-component / honest-alive.
  double min_component = 0.9;

  [[nodiscard]] std::string name() const {
    std::string prefix;
    if (kind != ProtocolKind::kHyParView) {
      prefix = std::string(kind_name(kind)) + "_";
      for (char& ch : prefix) ch = static_cast<char>(std::tolower(ch));
    }
    return prefix + attack_name(attack) + "10_n" + std::to_string(nodes) +
           "_s" + std::to_string(seed);
  }
};

/// Quick (smoke) slice: the three HyParView attack rows at N=128. The full
/// tier adds the Cyclon and Scamp baselines with relaxed floors — they have
/// no reactive failure detector, so fabricated identities linger longer and
/// dropped gossip hurts more (which is the comparison the tier exists to
/// draw).
std::vector<AdversarialCase> make_grid() {
  const bool quick = env_flag("HPV_QUICK", false);
  std::vector<AdversarialCase> grid = {
      {AttackKind::kPoison, ProtocolKind::kHyParView, 128, 11, 0.95, 0.5,
       0.95},
      {AttackKind::kDrop, ProtocolKind::kHyParView, 128, 11, 0.80, 0.35,
       0.95},
      {AttackKind::kSybil, ProtocolKind::kHyParView, 128, 11, 0.95, 0.5,
       0.95},
  };
  if (quick) return grid;
  // Cyclon under poisoning *collapses* (observed at this seed: eclipse
  // 0.73, reliability 0.30): poisoned shuffle replies enter the single
  // view wholesale and nothing reactive purges fabricated entries before
  // they are gossiped onward. The loose bounds document the collapse —
  // the HyParView rows above, same attack, pin eclipse ≤ 0.5.
  grid.push_back(
      {AttackKind::kPoison, ProtocolKind::kCyclon, 128, 11, 0.15, 0.85, 0.6});
  grid.push_back(
      {AttackKind::kDrop, ProtocolKind::kCyclon, 128, 11, 0.50, 0.35, 0.75});
  grid.push_back(
      {AttackKind::kSybil, ProtocolKind::kCyclon, 128, 11, 0.55, 0.7, 0.75});
  for (const AttackKind attack :
       {AttackKind::kPoison, AttackKind::kDrop, AttackKind::kSybil}) {
    grid.push_back({attack, ProtocolKind::kScamp, 128, 11,
                    attack == AttackKind::kDrop ? 0.50 : 0.55,
                    attack == AttackKind::kDrop ? 0.35 : 0.7, 0.75});
  }
  return grid;
}

/// The attack spec every row runs: stabilize, measure, apply pressure
/// (membership rounds with the adversary active; plus one burst for sybil),
/// heal briefly, measure again.
Experiment attack_spec(const AdversarialCase& c,
                       std::size_t sybils_per_burst) {
  Experiment spec("adversarial_" + std::string(attack_name(c.attack)));
  spec.stabilize(10).broadcast(10, "before");
  if (c.attack == AttackKind::kSybil) spec.sybil_burst(sybils_per_burst);
  spec.cycles(10, {}, "pressure");
  spec.broadcast(10, "after");
  return spec;
}

class AdversarialScenarioTest
    : public ::testing::TestWithParam<AdversarialCase> {};

TEST_P(AdversarialScenarioTest, AttackStaysBounded) {
  const AdversarialCase c = GetParam();
  auto cfg = NetworkConfig::defaults_for(c.kind, c.nodes, c.seed);
  cfg.adversary.attack = c.attack;
  cfg.adversary.fraction = 0.10;
  auto cluster = Cluster::sim(cfg);
  const auto result = cluster.run(attack_spec(c, cfg.adversary.sybils_per_burst));

  const Adversary* adv = cluster.backend().adversary();
  ASSERT_NE(adv, nullptr);
  EXPECT_EQ(adv->selected_count(), c.nodes / 10);

  // The attack actually ran: its signature counter moved.
  switch (c.attack) {
    case AttackKind::kPoison:
      EXPECT_GT(adv->counters().poisoned_frames, 0u);
      EXPECT_GT(adv->counters().poisoned_entries, 0u);
      break;
    case AttackKind::kDrop:
      EXPECT_GT(adv->counters().gossip_dropped, 0u);
      break;
    case AttackKind::kSybil:
      EXPECT_EQ(result.phase("sybil").adversaries_fired,
                adv->selected_count());
      EXPECT_EQ(adv->counters().sybil_joins,
                adv->selected_count() * cfg.adversary.sybils_per_burst);
      break;
    case AttackKind::kNone:
      break;
  }

  // Overlay survival after the pressure + healing phases.
  const auto health = collect_overlay_health(cluster.backend());
  EXPECT_GT(health.honest_alive, 0u);
  EXPECT_GT(health.active.slots, 0u);
  EXPECT_LE(health.eclipse_ratio(), c.max_eclipse)
      << "adversary captured " << health.active.poisoned() << "/"
      << health.active.slots << " honest dissemination slots";
  EXPECT_GE(health.honest_component_fraction(), c.min_component)
      << "honest overlay fragmented: " << health.largest_honest_component
      << "/" << health.honest_alive;

  // Application-level damage stays within the per-protocol floor.
  EXPECT_GE(result.phase("after").avg_reliability(), c.min_reliability);
}

std::string case_name(const ::testing::TestParamInfo<AdversarialCase>& info) {
  return info.param.name();
}

INSTANTIATE_TEST_SUITE_P(Grid, AdversarialScenarioTest,
                         ::testing::ValuesIn(make_grid()), case_name);

/// ISSUE pin: a 10% *colluding* minority (fabricated_fraction = 0 — every
/// poisoned entry names a live colluder, the durable-capture variant) cannot
/// capture more than half of the honest active-view slots at paper-default
/// fanouts, even after sustained pressure.
TEST(AdversarialEclipsePressure, ColludingMinorityCannotCaptureMajority) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 128, 23);
  cfg.adversary.attack = AttackKind::kPoison;
  cfg.adversary.fraction = 0.10;
  cfg.adversary.fabricated_fraction = 0.0;  // pure colluder roster
  cfg.adversary.poison_per_cycle = 2;       // sustained unsolicited pressure
  auto cluster = Cluster::sim(cfg);
  cluster.run(Experiment("eclipse_pressure")
                  .stabilize(10)
                  .cycles(20, {}, "pressure"));

  const auto health = collect_overlay_health(cluster.backend());
  ASSERT_GT(health.active.slots, 0u);
  EXPECT_EQ(health.active.fabricated, 0u);  // nothing fabricated to find
  EXPECT_LE(health.eclipse_ratio(), 0.5)
      << "10% colluders captured " << health.active.poisoned() << "/"
      << health.active.slots << " honest active-view slots";
  EXPECT_GE(health.honest_component_fraction(), 0.9);
}

/// The per-frame mutation bounds (core::Stats hostile-frame counters) fire
/// under poisoning: poisoned lists repeat colluder ids, so honest HyParView
/// nodes must be dropping duplicates rather than integrating them.
TEST(AdversarialEclipsePressure, HonestNodesCountDroppedHostileEntries) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 7);
  cfg.adversary.attack = AttackKind::kPoison;
  cfg.adversary.fraction = 0.15;
  cfg.adversary.fabricated_fraction = 0.0;  // all-colluder lists ⇒ repeats
  cfg.adversary.poison_per_cycle = 2;
  auto cluster = Cluster::sim(cfg);
  cluster.run(Experiment("hostile_counters").stabilize(10).cycles(10));

  const Adversary* adv = cluster.backend().adversary();
  ASSERT_NE(adv, nullptr);
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < cluster.backend().node_count(); ++i) {
    if (adv->is_adversarial(i)) continue;
    const auto* hpv =
        dynamic_cast<const core::HyParView*>(&cluster.backend().protocol(i));
    ASSERT_NE(hpv, nullptr);
    dropped += hpv->stats().shuffle_duplicates_dropped +
               hpv->stats().shuffle_self_dropped +
               hpv->stats().shuffle_over_budget_dropped;
  }
  EXPECT_GT(dropped, 0u)
      << "no honest node ever rejected a hostile shuffle entry";
}

/// Every attack pipeline — selection, interception, fabrication, healing —
/// is bit-identical across two runs at a fixed seed.
TEST(AdversarialDeterminism, IdenticalRunsProduceIdenticalResults) {
  for (const AttackKind attack :
       {AttackKind::kPoison, AttackKind::kDrop, AttackKind::kSybil}) {
    const auto run_once = [attack] {
      auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 3);
      cfg.adversary.attack = attack;
      cfg.adversary.fraction = 0.10;
      auto cluster = Cluster::sim(cfg);
      AdversarialCase c;
      c.attack = attack;
      const auto result =
          cluster.run(attack_spec(c, cfg.adversary.sybils_per_burst));

      std::vector<double> fingerprint;
      for (const auto& phase : result.phases) {
        for (const double r : phase.reliabilities) fingerprint.push_back(r);
      }
      const auto health = collect_overlay_health(cluster.backend());
      fingerprint.push_back(static_cast<double>(health.active.slots));
      fingerprint.push_back(static_cast<double>(health.active.adversarial));
      fingerprint.push_back(static_cast<double>(health.active.fabricated));
      fingerprint.push_back(
          static_cast<double>(health.largest_honest_component));
      const auto& counters = cluster.backend().adversary()->counters();
      fingerprint.push_back(static_cast<double>(counters.poisoned_frames));
      fingerprint.push_back(static_cast<double>(counters.gossip_dropped));
      fingerprint.push_back(static_cast<double>(counters.sybil_joins));
      return fingerprint;
    };
    EXPECT_EQ(run_once(), run_once())
        << "attack " << attack_name(attack) << " not deterministic";
  }
}

/// Trace-driven churn: heavy-tailed session lengths as an Experiment phase,
/// for both distributions, deterministic across runs.
TEST(HeavyChurn, ParetoSessionsRunAndStayReliable) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 9);
  auto cluster = Cluster::sim(cfg);
  HeavyChurnConfig churn;
  churn.cycles = 15;
  churn.joins_per_cycle = 2;
  const auto result = cluster.run(
      Experiment("heavy_churn").stabilize(10).heavy_churn(churn));

  const auto& heavy = result.phase("heavy_churn").heavy;
  EXPECT_EQ(heavy.joins, churn.cycles * churn.joins_per_cycle);
  EXPECT_EQ(static_cast<std::size_t>(heavy.per_cycle_reliability.size()),
            churn.cycles);
  // Pareto(1.5, xm=2): every session lasts ≥ xm cycles, the mean well above.
  EXPECT_GE(heavy.mean_session_cycles, churn.pareto_xm);
  EXPECT_GE(heavy.max_session_cycles, heavy.mean_session_cycles);
  // Some sessions expired within the workload (the short-session mass).
  EXPECT_GT(heavy.graceful_leaves + heavy.crashes, 0u);
  // HyParView under churn: reactive repair keeps the probes near-perfect.
  EXPECT_GE(heavy.avg_reliability, 0.9);
}

TEST(HeavyChurn, LognormalSessionsRunAndStayReliable) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 9);
  auto cluster = Cluster::sim(cfg);
  HeavyChurnConfig churn;
  churn.cycles = 15;
  churn.joins_per_cycle = 2;
  churn.dist = HeavyChurnConfig::Dist::kLognormal;
  const auto result = cluster.run(
      Experiment("heavy_churn").stabilize(10).heavy_churn(churn));

  const auto& heavy = result.phase("heavy_churn").heavy;
  EXPECT_EQ(heavy.joins, churn.cycles * churn.joins_per_cycle);
  EXPECT_GE(heavy.max_session_cycles, heavy.mean_session_cycles);
  EXPECT_GE(heavy.avg_reliability, 0.9);
}

TEST(HeavyChurn, DeterministicAtFixedSeed) {
  const auto run_once = [] {
    auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 13);
    auto cluster = Cluster::sim(cfg);
    HeavyChurnConfig churn;
    churn.cycles = 10;
    churn.joins_per_cycle = 2;
    const auto result = cluster.run(
        Experiment("heavy_churn").stabilize(5).heavy_churn(churn));
    auto fingerprint = result.phase("heavy_churn").heavy.per_cycle_reliability;
    fingerprint.push_back(result.phase("heavy_churn").heavy.mean_session_cycles);
    fingerprint.push_back(
        static_cast<double>(result.phase("heavy_churn").heavy.crashes));
    return fingerprint;
  };
  EXPECT_EQ(run_once(), run_once());
}

/// The same attack specs over real sockets: 32 nodes on one epoll loop,
/// fabricated identities are dead loopback addresses (dials fail with
/// ECONNREFUSED — "TCP is also used as a failure detector" is the defense).
/// Floors are sanity-level: real-time settle windows make TCP runs
/// statistical, the tight pins live on the sim rows above.
TEST(AdversarialTcp, AttacksRunOverRealSockets) {
  for (const AttackKind attack :
       {AttackKind::kPoison, AttackKind::kDrop, AttackKind::kSybil}) {
    auto cfg = TcpBackendConfig::defaults_for(ProtocolKind::kHyParView, 32, 5);
    cfg.adversary.attack = attack;
    cfg.adversary.fraction = 0.10;
    auto cluster = Cluster::tcp(cfg);
    AdversarialCase c;
    c.attack = attack;
    const auto result =
        cluster.run(attack_spec(c, cfg.adversary.sybils_per_burst));

    const Adversary* adv = cluster.backend().adversary();
    ASSERT_NE(adv, nullptr);
    EXPECT_EQ(adv->selected_count(), 3u);
    switch (attack) {
      case AttackKind::kPoison:
        EXPECT_GT(adv->counters().poisoned_frames, 0u);
        break;
      case AttackKind::kDrop:
        EXPECT_GT(adv->counters().gossip_dropped, 0u);
        break;
      case AttackKind::kSybil:
        EXPECT_GT(adv->counters().sybil_joins, 0u);
        break;
      case AttackKind::kNone:
        break;
    }
    const auto health = collect_overlay_health(cluster.backend());
    EXPECT_GT(health.active.slots, 0u);
    EXPECT_LE(health.eclipse_ratio(), 0.6)
        << attack_name(attack) << " over TCP";
    EXPECT_GE(result.phase("after").avg_reliability(), 0.5)
        << attack_name(attack) << " over TCP";
  }
}

TEST(AdversarialTcp, HeavyChurnRunsOverRealSockets) {
  auto cfg = TcpBackendConfig::defaults_for(ProtocolKind::kHyParView, 32, 17);
  auto cluster = Cluster::tcp(cfg);
  HeavyChurnConfig churn;
  churn.cycles = 6;
  churn.joins_per_cycle = 2;
  churn.probes_per_cycle = 1;
  const auto result =
      cluster.run(Experiment("heavy_churn").stabilize(3).heavy_churn(churn));
  const auto& heavy = result.phase("heavy_churn").heavy;
  EXPECT_EQ(heavy.joins, churn.cycles * churn.joins_per_cycle);
  EXPECT_GE(heavy.avg_reliability, 0.5);
}

}  // namespace
}  // namespace hyparview::harness
