#include "hyparview/core/hyparview.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../support/fake_env.hpp"

namespace hyparview::core {
namespace {

using test::FakeEnv;

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

bool contains(std::span<const NodeId> v, const NodeId& id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

class HyParViewUnitTest : public ::testing::Test {
 protected:
  HyParViewUnitTest() : env_(nid(0)), proto_(env_, Config{}) {}

  /// Fills the active view with ids [base, base+capacity) via JOINs.
  void fill_active(std::uint32_t base = 100) {
    for (std::uint32_t i = 0; i < proto_.config().active_capacity; ++i) {
      proto_.handle(nid(base + i), wire::Join{});
    }
    env_.clear();
  }

  FakeEnv env_;
  HyParView proto_;
};

TEST_F(HyParViewUnitTest, ConfigValidation) {
  Config bad;
  bad.prwl = 7;
  bad.arwl = 3;
  EXPECT_THROW(HyParView(env_, bad), CheckError);
  Config zero;
  zero.active_capacity = 0;
  EXPECT_THROW(HyParView(env_, zero), CheckError);
}

TEST_F(HyParViewUnitTest, StartSendsJoinAndOptimisticallyAddsContact) {
  proto_.start(nid(9));
  ASSERT_EQ(env_.sent.size(), 1u);
  EXPECT_EQ(env_.sent[0].to, nid(9));
  EXPECT_TRUE(std::holds_alternative<wire::Join>(env_.sent[0].msg));
  EXPECT_TRUE(contains(proto_.active_view(), nid(9)));
}

TEST_F(HyParViewUnitTest, BootstrapStartSendsNothing) {
  proto_.start(std::nullopt);
  EXPECT_TRUE(env_.sent.empty());
  EXPECT_TRUE(proto_.active_view().empty());
}

TEST_F(HyParViewUnitTest, StartIgnoresSelfContact) {
  proto_.start(nid(0));
  EXPECT_TRUE(env_.sent.empty());
}

TEST_F(HyParViewUnitTest, JoinAddsToActiveAndPropagatesForwardJoins) {
  // Pre-populate with two members.
  proto_.handle(nid(1), wire::Join{});
  proto_.handle(nid(2), wire::Join{});
  env_.clear();

  proto_.handle(nid(3), wire::Join{});
  EXPECT_TRUE(contains(proto_.active_view(), nid(3)));
  const auto fwds = env_.sent_of_type<wire::ForwardJoin>();
  ASSERT_EQ(fwds.size(), 2u);  // to 1 and 2, not to the joiner
  for (const auto& [to, fj] : fwds) {
    EXPECT_NE(to, nid(3));
    EXPECT_EQ(fj.new_node, nid(3));
    EXPECT_EQ(fj.ttl, proto_.config().arwl);
  }
}

TEST_F(HyParViewUnitTest, JoinEvictsRandomMemberWithDisconnectWhenFull) {
  fill_active();
  proto_.handle(nid(50), wire::Join{});
  EXPECT_EQ(proto_.active_view().size(), proto_.config().active_capacity);
  EXPECT_TRUE(contains(proto_.active_view(), nid(50)));
  const auto discos = env_.sent_of_type<wire::Disconnect>();
  ASSERT_EQ(discos.size(), 1u);
  // Evicted member is demoted to the passive view.
  EXPECT_TRUE(contains(proto_.passive_view(), discos[0].first));
  EXPECT_FALSE(contains(proto_.active_view(), discos[0].first));
}

TEST_F(HyParViewUnitTest, ForwardJoinWithTtlZeroAcceptsAndNotifiesJoiner) {
  fill_active();
  proto_.handle(nid(100), wire::ForwardJoin{nid(7), 0});
  EXPECT_TRUE(contains(proto_.active_view(), nid(7)));
  const auto accepts = env_.sent_of_type<wire::ForwardJoinAccept>();
  ASSERT_EQ(accepts.size(), 1u);
  EXPECT_EQ(accepts[0].first, nid(7));
}

TEST_F(HyParViewUnitTest, ForwardJoinAcceptedWhenActiveViewIsSingleton) {
  proto_.handle(nid(1), wire::Join{});
  env_.clear();
  // TTL is high, but #active == 1 forces the terminal step.
  proto_.handle(nid(1), wire::ForwardJoin{nid(7), 6});
  EXPECT_TRUE(contains(proto_.active_view(), nid(7)));
}

TEST_F(HyParViewUnitTest, ForwardJoinAtPrwlInsertsIntoPassiveAndForwards) {
  fill_active();
  const std::uint8_t prwl = proto_.config().prwl;
  proto_.handle(nid(100), wire::ForwardJoin{nid(7), prwl});
  EXPECT_TRUE(contains(proto_.passive_view(), nid(7)));
  EXPECT_FALSE(contains(proto_.active_view(), nid(7)));
  const auto fwds = env_.sent_of_type<wire::ForwardJoin>();
  ASSERT_EQ(fwds.size(), 1u);
  EXPECT_EQ(fwds[0].second.ttl, prwl - 1);
  EXPECT_NE(fwds[0].first, nid(100));  // never back to the sender
}

TEST_F(HyParViewUnitTest, ForwardJoinMidWalkOnlyForwards) {
  fill_active();
  proto_.handle(nid(100), wire::ForwardJoin{nid(7), 5});  // != prwl(3), != 0
  EXPECT_FALSE(contains(proto_.active_view(), nid(7)));
  EXPECT_FALSE(contains(proto_.passive_view(), nid(7)));
  const auto fwds = env_.sent_of_type<wire::ForwardJoin>();
  ASSERT_EQ(fwds.size(), 1u);
  EXPECT_EQ(fwds[0].second.new_node, nid(7));
  EXPECT_EQ(fwds[0].second.ttl, 4);
}

TEST_F(HyParViewUnitTest, ForwardJoinForSelfIsIgnored) {
  fill_active();
  proto_.handle(nid(100), wire::ForwardJoin{nid(0), 0});
  EXPECT_FALSE(contains(proto_.active_view(), nid(0)));
  EXPECT_TRUE(env_.sent.empty());
}

TEST_F(HyParViewUnitTest, ForwardJoinAcceptInstallsSymmetricLink) {
  proto_.handle(nid(4), wire::ForwardJoinAccept{});
  EXPECT_TRUE(contains(proto_.active_view(), nid(4)));
}

TEST_F(HyParViewUnitTest, DisconnectDemotesToPassive) {
  fill_active();
  const NodeId peer = proto_.active_view().front();
  proto_.handle(peer, wire::Disconnect{});
  EXPECT_FALSE(contains(proto_.active_view(), peer));
  EXPECT_TRUE(contains(proto_.passive_view(), peer));
  EXPECT_TRUE(contains(env_.disconnects, peer));
}

TEST_F(HyParViewUnitTest, DisconnectFromNonMemberIsIgnored) {
  fill_active();
  const auto before = proto_.passive_view();
  proto_.handle(nid(999), wire::Disconnect{});
  EXPECT_EQ(proto_.passive_view(), before);
}

TEST_F(HyParViewUnitTest, HighPriorityNeighborAlwaysAccepted) {
  fill_active();
  proto_.handle(nid(60), wire::Neighbor{true});
  EXPECT_TRUE(contains(proto_.active_view(), nid(60)));
  const auto replies = env_.sent_of_type<wire::NeighborReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].second.accepted);
  // Someone was evicted to make room.
  EXPECT_EQ(env_.sent_of_type<wire::Disconnect>().size(), 1u);
}

TEST_F(HyParViewUnitTest, LowPriorityNeighborRejectedWhenFull) {
  fill_active();
  proto_.handle(nid(60), wire::Neighbor{false});
  EXPECT_FALSE(contains(proto_.active_view(), nid(60)));
  const auto replies = env_.sent_of_type<wire::NeighborReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].second.accepted);
}

TEST_F(HyParViewUnitTest, LowPriorityNeighborAcceptedWithFreeSlot) {
  proto_.handle(nid(1), wire::Join{});
  env_.clear();
  proto_.handle(nid(60), wire::Neighbor{false});
  EXPECT_TRUE(contains(proto_.active_view(), nid(60)));
  const auto replies = env_.sent_of_type<wire::NeighborReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].second.accepted);
}

TEST_F(HyParViewUnitTest, FailureTriggersPromotionFromPassive) {
  fill_active();
  // Seed the passive view.
  proto_.handle(nid(100), wire::ForwardJoin{nid(200), proto_.config().prwl});
  env_.clear();

  const NodeId victim = proto_.active_view().front();
  proto_.peer_unreachable(victim);
  EXPECT_FALSE(contains(proto_.active_view(), victim));
  EXPECT_FALSE(contains(proto_.passive_view(), victim));  // expunged, not demoted
  // Repair: connection attempt to the passive candidate.
  ASSERT_EQ(env_.connects.size(), 1u);
  EXPECT_EQ(env_.connects[0].to, nid(200));
  EXPECT_TRUE(proto_.repair_in_flight());

  env_.complete_connect(0, true);
  const auto neighbors = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].first, nid(200));
  EXPECT_FALSE(neighbors[0].second.high_priority);  // view not empty

  proto_.handle(nid(200), wire::NeighborReply{true});
  EXPECT_TRUE(contains(proto_.active_view(), nid(200)));
  EXPECT_FALSE(contains(proto_.passive_view(), nid(200)));
  EXPECT_FALSE(proto_.repair_in_flight());
}

TEST_F(HyParViewUnitTest, PromotionUsesHighPriorityWhenActiveViewEmpty) {
  proto_.handle(nid(1), wire::Join{});
  // Seed the passive view without touching the active view.
  proto_.handle(nid(9), wire::ShuffleReply{{}, {nid(200)}});
  env_.clear();

  proto_.peer_unreachable(nid(1));  // active view now empty
  ASSERT_EQ(env_.connects.size(), 1u);
  env_.complete_connect(0, true);
  const auto neighbors = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_TRUE(neighbors[0].second.high_priority);
}

TEST_F(HyParViewUnitTest, FailedConnectRemovesCandidateAndTriesNext) {
  fill_active();
  proto_.handle(nid(100), wire::ForwardJoin{nid(200), proto_.config().prwl});
  proto_.handle(nid(100), wire::ForwardJoin{nid(201), proto_.config().prwl});
  env_.clear();

  proto_.peer_unreachable(proto_.active_view().front());
  ASSERT_EQ(env_.connects.size(), 1u);
  const NodeId first = env_.connects[0].to;
  env_.complete_connect(0, false);
  // First candidate purged from passive; second attempted.
  EXPECT_FALSE(contains(proto_.passive_view(), first));
  ASSERT_EQ(env_.connects.size(), 2u);
  EXPECT_NE(env_.connects[1].to, first);
}

TEST_F(HyParViewUnitTest, RejectedNeighborKeepsCandidateInPassive) {
  fill_active();
  proto_.handle(nid(100), wire::ForwardJoin{nid(200), proto_.config().prwl});
  proto_.handle(nid(100), wire::ForwardJoin{nid(201), proto_.config().prwl});
  env_.clear();

  proto_.peer_unreachable(proto_.active_view().front());
  ASSERT_EQ(env_.connects.size(), 1u);
  const NodeId first = env_.connects[0].to;
  env_.complete_connect(0, true);
  proto_.handle(first, wire::NeighborReply{false});
  EXPECT_TRUE(contains(proto_.passive_view(), first));  // kept (§4.3)
  // Second candidate tried within the same episode.
  ASSERT_EQ(env_.connects.size(), 2u);
  EXPECT_NE(env_.connects[1].to, first);
}

TEST_F(HyParViewUnitTest, CycleInitiatesShuffleWithSelfActiveAndPassive) {
  fill_active();
  for (std::uint32_t i = 0; i < 10; ++i) {
    proto_.handle(nid(100), wire::ForwardJoin{nid(300 + i), proto_.config().prwl});
  }
  env_.clear();

  proto_.on_cycle();
  const auto shuffles = env_.sent_of_type<wire::Shuffle>();
  ASSERT_EQ(shuffles.size(), 1u);
  const auto& [to, sh] = shuffles[0];
  EXPECT_TRUE(contains(proto_.active_view(), to));
  EXPECT_EQ(sh.origin, nid(0));
  EXPECT_EQ(sh.ttl, proto_.config().shuffle_ttl);
  // self + ka active + kp passive.
  EXPECT_EQ(sh.entries.size(),
            1 + proto_.config().shuffle_ka + proto_.config().shuffle_kp);
  EXPECT_EQ(sh.entries.front(), nid(0));
}

TEST_F(HyParViewUnitTest, ShuffleEntriesClampedByViewSizes) {
  proto_.handle(nid(1), wire::Join{});
  env_.clear();
  proto_.on_cycle();
  const auto shuffles = env_.sent_of_type<wire::Shuffle>();
  ASSERT_EQ(shuffles.size(), 1u);
  // self + 1 active member + 0 passive.
  EXPECT_EQ(shuffles[0].second.entries.size(), 2u);
}

TEST_F(HyParViewUnitTest, CycleWithoutNeighborsDoesNotShuffle) {
  proto_.on_cycle();
  EXPECT_TRUE(env_.sent_of_type<wire::Shuffle>().empty());
}

TEST_F(HyParViewUnitTest, ShuffleForwardedWhileTtlRemains) {
  fill_active();
  const wire::Shuffle sh{nid(77), 3, {nid(77), nid(78)}};
  proto_.handle(nid(100), sh);
  const auto fwds = env_.sent_of_type<wire::Shuffle>();
  ASSERT_EQ(fwds.size(), 1u);
  EXPECT_EQ(fwds[0].second.ttl, 2);
  EXPECT_NE(fwds[0].first, nid(100));  // not back to sender
  EXPECT_NE(fwds[0].first, nid(77));   // not to the origin
  EXPECT_TRUE(env_.sent_of_type<wire::ShuffleReply>().empty());
}

TEST_F(HyParViewUnitTest, ShuffleAcceptedAtTtlZeroRepliesToOrigin) {
  fill_active();
  // Seed passive view so the reply has content.
  for (std::uint32_t i = 0; i < 6; ++i) {
    proto_.handle(nid(100), wire::ForwardJoin{nid(300 + i), proto_.config().prwl});
  }
  env_.clear();

  const wire::Shuffle sh{nid(77), 1, {nid(77), nid(78), nid(79)}};
  proto_.handle(nid(100), sh);
  const auto replies = env_.sent_of_type<wire::ShuffleReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, nid(77));  // directly to origin
  EXPECT_EQ(replies[0].second.entries.size(), 3u);  // matches request size
  EXPECT_EQ(replies[0].second.sent, sh.entries);    // echo
  // Received ids were integrated into the passive view.
  EXPECT_TRUE(contains(proto_.passive_view(), nid(77)));
  EXPECT_TRUE(contains(proto_.passive_view(), nid(78)));
  // Temporary connection to the origin is closed.
  EXPECT_TRUE(contains(env_.disconnects, nid(77)));
}

TEST_F(HyParViewUnitTest, ShuffleFromOwnOriginDropped) {
  fill_active();
  proto_.handle(nid(100), wire::Shuffle{nid(0), 2, {nid(5)}});
  EXPECT_TRUE(env_.sent.empty());
  EXPECT_FALSE(contains(proto_.passive_view(), nid(5)));
}

TEST_F(HyParViewUnitTest, ShuffleReplyIntegratesEntries) {
  fill_active();
  proto_.handle(nid(50), wire::ShuffleReply{{}, {nid(400), nid(401)}});
  EXPECT_TRUE(contains(proto_.passive_view(), nid(400)));
  EXPECT_TRUE(contains(proto_.passive_view(), nid(401)));
}

TEST_F(HyParViewUnitTest, IntegrationSkipsSelfActiveAndKnown) {
  fill_active();
  const NodeId active_member = proto_.active_view().front();
  proto_.handle(nid(50), wire::ShuffleReply{{}, {nid(0), active_member}});
  EXPECT_FALSE(contains(proto_.passive_view(), nid(0)));
  EXPECT_FALSE(contains(proto_.passive_view(), active_member));
}

TEST_F(HyParViewUnitTest, PassiveViewEvictionPrefersSentIds) {
  Config cfg;
  cfg.passive_capacity = 3;
  FakeEnv env(nid(0));
  HyParView p(env, cfg);
  p.handle(nid(1), wire::Join{});
  // Fill passive view with 10, 11, 12 (shuffle replies only touch passive).
  p.handle(nid(9), wire::ShuffleReply{{}, {nid(10), nid(11), nid(12)}});
  ASSERT_EQ(p.passive_view().size(), 3u);
  // Reply integrating {20, 21}, claiming we sent {10, 11}: they get evicted
  // first.
  p.handle(nid(9), wire::ShuffleReply{{nid(10), nid(11)}, {nid(20), nid(21)}});
  EXPECT_TRUE(contains(p.passive_view(), nid(20)));
  EXPECT_TRUE(contains(p.passive_view(), nid(21)));
  EXPECT_TRUE(contains(p.passive_view(), nid(12)));  // untouched
  EXPECT_FALSE(contains(p.passive_view(), nid(10)));
  EXPECT_FALSE(contains(p.passive_view(), nid(11)));
}

TEST_F(HyParViewUnitTest, BroadcastTargetsFloodActiveViewExceptSender) {
  fill_active();
  const NodeId sender = proto_.active_view().front();
  const auto targets = proto_.broadcast_targets(4, sender);
  EXPECT_EQ(targets.size(), proto_.config().active_capacity - 1);
  EXPECT_FALSE(contains(targets, sender));
}

TEST_F(HyParViewUnitTest, BroadcastTargetsFromSourceUsesWholeView) {
  fill_active();
  EXPECT_EQ(proto_.broadcast_targets(4, kNoNode).size(),
            proto_.config().active_capacity);
}

TEST_F(HyParViewUnitTest, StatsCountEvents) {
  proto_.handle(nid(1), wire::Join{});
  proto_.handle(nid(1), wire::ForwardJoin{nid(2), 0});
  EXPECT_EQ(proto_.stats().joins_handled, 1u);
  EXPECT_EQ(proto_.stats().forward_joins_accepted, 1u);
}

TEST_F(HyParViewUnitTest, DissemAndBackupViewsMatchAccessors) {
  fill_active();
  const auto dissem = proto_.dissemination_view();
  EXPECT_TRUE(std::equal(dissem.begin(), dissem.end(),
                         proto_.active_view().begin(),
                         proto_.active_view().end()));
  const auto backup = proto_.backup_view();
  EXPECT_TRUE(std::equal(backup.begin(), backup.end(),
                         proto_.passive_view().begin(),
                         proto_.passive_view().end()));
  EXPECT_STREQ(proto_.name(), "hyparview");
}

TEST_F(HyParViewUnitTest, LeaveSaysGoodbyeToEveryActiveNeighborAndResets) {
  fill_active();
  const auto neighbors = proto_.active_view();
  proto_.leave();
  const auto goodbyes = env_.sent_of_type<wire::Disconnect>();
  ASSERT_EQ(goodbyes.size(), neighbors.size());
  for (const NodeId& n : neighbors) {
    EXPECT_TRUE(std::any_of(goodbyes.begin(), goodbyes.end(),
                            [&](const auto& g) { return g.first == n; }))
        << "no goodbye to " << n.to_string();
    EXPECT_TRUE(contains(env_.disconnects, n));
  }
  EXPECT_TRUE(proto_.active_view().empty());
  EXPECT_TRUE(proto_.passive_view().empty());
  EXPECT_TRUE(proto_.warm_cache().empty());
  EXPECT_FALSE(proto_.repair_in_flight());
}

TEST_F(HyParViewUnitTest, LeaveWithEmptyViewsIsSilent) {
  proto_.leave();
  EXPECT_TRUE(env_.sent.empty());
  EXPECT_TRUE(env_.disconnects.empty());
}

}  // namespace
}  // namespace hyparview::core
