// Unit tests for the CREW-style warm connection cache (§2.4): pre-opened
// connections to passive-view members that let active-view repair skip the
// dial round-trip.
#include <gtest/gtest.h>

#include <algorithm>

#include "../support/fake_env.hpp"
#include "hyparview/core/hyparview.hpp"

namespace hyparview::core {
namespace {

using test::FakeEnv;

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

bool contains(const std::vector<NodeId>& v, const NodeId& id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

class WarmCacheTest : public ::testing::Test {
 protected:
  WarmCacheTest() : env_(nid(0)), proto_(env_, make_config()) {}

  static Config make_config() {
    Config cfg;
    cfg.warm_cache_size = 3;
    return cfg;
  }

  void fill_active(std::uint32_t base = 100) {
    for (std::uint32_t i = 0; i < proto_.config().active_capacity; ++i) {
      proto_.handle(nid(base + i), wire::Join{});
    }
    env_.clear();
  }

  /// Seeds the passive view through a shuffle reply (all entries land in
  /// the passive view).
  void seed_passive(std::uint32_t base, std::uint32_t count) {
    std::vector<NodeId> entries;
    for (std::uint32_t i = 0; i < count; ++i) entries.push_back(nid(base + i));
    proto_.handle(nid(99), wire::ShuffleReply{{}, entries});
    env_.clear();
  }

  /// Runs a cycle and completes every warm dial successfully.
  void warm_up() {
    proto_.on_cycle();
    for (std::size_t i = 0; i < env_.connects.size(); ++i) {
      if (!env_.connects[i].completed) env_.complete_connect(i, true);
    }
    env_.clear();
  }

  FakeEnv env_;
  HyParView proto_;
};

TEST_F(WarmCacheTest, ConfigRejectsCacheLargerThanPassiveView) {
  Config bad;
  bad.passive_capacity = 5;
  bad.warm_cache_size = 6;
  EXPECT_THROW(HyParView(env_, bad), CheckError);
}

TEST_F(WarmCacheTest, RefreshDialsUpToCacheSizeDistinctCandidates) {
  fill_active();
  seed_passive(200, 6);
  proto_.on_cycle();
  ASSERT_EQ(env_.connects.size(), 3u);
  std::vector<NodeId> dialed;
  for (const auto& c : env_.connects) {
    EXPECT_TRUE(contains(proto_.passive_view(), c.to));
    EXPECT_FALSE(contains(dialed, c.to)) << "double dial to " << c.to.to_string();
    dialed.push_back(c.to);
  }
  for (std::size_t i = 0; i < 3; ++i) env_.complete_connect(i, true);
  EXPECT_EQ(proto_.warm_cache().size(), 3u);
  EXPECT_EQ(proto_.stats().warm_dials, 3u);
}

TEST_F(WarmCacheTest, PendingDialsAreNotRepeatedAcrossCycles) {
  fill_active();
  seed_passive(200, 6);
  proto_.on_cycle();
  proto_.on_cycle();  // dials still pending: no new ones
  EXPECT_EQ(env_.connects.size(), 3u);
}

TEST_F(WarmCacheTest, ZeroCacheSizeNeverDials) {
  Config cfg;  // warm_cache_size = 0
  HyParView plain(env_, cfg);
  for (std::uint32_t i = 0; i < cfg.active_capacity; ++i) {
    plain.handle(nid(100 + i), wire::Join{});
  }
  std::vector<NodeId> entries;
  for (std::uint32_t i = 0; i < 6; ++i) entries.push_back(nid(200 + i));
  plain.handle(nid(99), wire::ShuffleReply{{}, entries});
  env_.clear();
  plain.on_cycle();
  EXPECT_TRUE(env_.connects.empty());
}

TEST_F(WarmCacheTest, FailedWarmDialExpungesPassiveCandidate) {
  fill_active();
  seed_passive(200, 6);
  proto_.on_cycle();
  const NodeId victim = env_.connects[0].to;
  env_.complete_connect(0, false);
  EXPECT_FALSE(contains(proto_.passive_view(), victim));
  EXPECT_FALSE(contains(proto_.warm_cache(), victim));
  env_.complete_connect(1, true);
  env_.complete_connect(2, true);
  EXPECT_EQ(proto_.warm_cache().size(), 2u);
  // The next cycle covers the deficit with a fresh candidate.
  env_.clear();
  proto_.on_cycle();
  ASSERT_EQ(env_.connects.size(), 1u);
  EXPECT_NE(env_.connects[0].to, victim);
}

TEST_F(WarmCacheTest, WarmPromotionSendsNeighborWithoutDialing) {
  fill_active();
  seed_passive(200, 6);
  warm_up();
  ASSERT_EQ(proto_.warm_cache().size(), 3u);

  // Open a slot politely: the departing neighbor sends DISCONNECT.
  const NodeId leaver = proto_.active_view().front();
  proto_.handle(leaver, wire::Disconnect{});

  EXPECT_TRUE(env_.connects.empty()) << "warm promotion must not dial";
  const auto neighbors = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_TRUE(contains(proto_.warm_cache(), neighbors[0].first));
  EXPECT_FALSE(neighbors[0].second.high_priority);  // view not empty
  EXPECT_EQ(proto_.stats().warm_promotions, 1u);
}

TEST_F(WarmCacheTest, AcceptedWarmPromotionKeepsLinkAndLeavesCache) {
  fill_active();
  seed_passive(200, 6);
  warm_up();
  const NodeId leaver = proto_.active_view().front();
  proto_.handle(leaver, wire::Disconnect{});
  const auto neighbors = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(neighbors.size(), 1u);
  const NodeId promoted = neighbors[0].first;

  env_.clear();
  proto_.handle(promoted, wire::NeighborReply{true});
  EXPECT_TRUE(contains(proto_.active_view(), promoted));
  EXPECT_FALSE(contains(proto_.warm_cache(), promoted));
  EXPECT_FALSE(contains(env_.disconnects, promoted))
      << "the pre-opened link becomes the active-view link";
}

TEST_F(WarmCacheTest, RejectedWarmPromotionKeepsCachedLinkOpen) {
  fill_active();
  seed_passive(200, 6);
  warm_up();
  const NodeId leaver = proto_.active_view().front();
  proto_.handle(leaver, wire::Disconnect{});
  auto neighbors = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(neighbors.size(), 1u);
  const NodeId first = neighbors[0].first;

  env_.clear();
  proto_.handle(first, wire::NeighborReply{false});
  EXPECT_FALSE(contains(env_.disconnects, first))
      << "rejection must not burn the cached connection";
  EXPECT_TRUE(contains(proto_.warm_cache(), first));
  EXPECT_TRUE(contains(proto_.passive_view(), first));
  // Repair moves on to the next warm candidate.
  neighbors = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_NE(neighbors[0].first, first);
  EXPECT_TRUE(contains(proto_.warm_cache(), neighbors[0].first));
}

TEST_F(WarmCacheTest, StaleWarmLinkDiscoveredOnUseAdvancesRepair) {
  fill_active();
  seed_passive(200, 6);
  warm_up();
  const NodeId leaver = proto_.active_view().front();
  proto_.handle(leaver, wire::Disconnect{});
  const auto neighbors = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(neighbors.size(), 1u);
  const NodeId dead = neighbors[0].first;

  env_.clear();
  proto_.on_send_failed(dead, wire::Neighbor{false});
  EXPECT_FALSE(contains(proto_.passive_view(), dead));
  EXPECT_FALSE(contains(proto_.warm_cache(), dead));
  // A fresh attempt goes out (warm preferred, so a NEIGHBOR, not a dial).
  const auto retry = env_.sent_of_type<wire::Neighbor>();
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_NE(retry[0].first, dead);
}

TEST_F(WarmCacheTest, NodeFailureClosesWarmLink) {
  fill_active();
  seed_passive(200, 6);
  warm_up();
  ASSERT_FALSE(proto_.warm_cache().empty());
  const NodeId member = proto_.warm_cache().front();
  proto_.peer_unreachable(member);
  EXPECT_FALSE(contains(proto_.warm_cache(), member));
  EXPECT_FALSE(contains(proto_.passive_view(), member));
  EXPECT_TRUE(contains(env_.disconnects, member));
}

TEST_F(WarmCacheTest, LinkClosedDropsWarmEntryButKeepsCandidate) {
  fill_active();
  seed_passive(200, 6);
  warm_up();
  ASSERT_FALSE(proto_.warm_cache().empty());
  const NodeId member = proto_.warm_cache().front();
  proto_.on_link_closed(member);
  EXPECT_FALSE(contains(proto_.warm_cache(), member));
  EXPECT_TRUE(contains(proto_.passive_view(), member))
      << "a closed connection is not evidence of a crash";
}

TEST_F(WarmCacheTest, WarmSetAlwaysSubsetOfPassiveView) {
  fill_active();
  seed_passive(200, 10);
  for (int round = 0; round < 20; ++round) {
    proto_.on_cycle();
    for (std::size_t i = 0; i < env_.connects.size(); ++i) {
      if (!env_.connects[i].completed) {
        env_.complete_connect(i, (static_cast<std::size_t>(round) + i) % 3 != 0);
      }
    }
    // Churn the views a little.
    proto_.handle(nid(300 + static_cast<std::uint32_t>(round)), wire::Join{});
    if (!proto_.active_view().empty()) {
      proto_.handle(proto_.active_view().front(), wire::Disconnect{});
    }
    for (const NodeId& w : proto_.warm_cache()) {
      EXPECT_TRUE(contains(proto_.passive_view(), w));
    }
    EXPECT_LE(proto_.warm_cache().size(), proto_.config().warm_cache_size);
    env_.clear();
  }
}

}  // namespace
}  // namespace hyparview::core
