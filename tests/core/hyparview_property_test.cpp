// Property-based tests: protocol invariants under randomized operation
// sequences (unit level) and randomized small networks (system level).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../support/fake_env.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

namespace hyparview::core {
namespace {

using test::FakeEnv;

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

/// Drives a single HyParView instance with a random message soup and checks
/// the local view invariants after every step.
class HyParViewLocalInvariants : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HyParViewLocalInvariants, RandomMessageSoupKeepsViewsConsistent) {
  const std::uint64_t seed = GetParam();
  Rng fuzz(seed);
  FakeEnv env(nid(0), seed);
  Config cfg;
  // Half the seeds fuzz with the warm cache enabled so its bookkeeping is
  // exposed to the same message soup.
  if (seed % 2 == 0) cfg.warm_cache_size = 3;
  HyParView proto(env, cfg);
  proto.start(nid(1));

  const auto random_peer = [&] {
    return nid(1 + static_cast<std::uint32_t>(fuzz.below(60)));
  };

  for (int step = 0; step < 2000; ++step) {
    const NodeId from = random_peer();
    if (from == nid(0)) continue;
    switch (fuzz.below(12)) {
      case 0:
        proto.handle(from, wire::Join{});
        break;
      case 1:
        proto.handle(from, wire::ForwardJoin{
                               random_peer(),
                               static_cast<std::uint8_t>(fuzz.below(8))});
        break;
      case 2:
        proto.handle(from, wire::Disconnect{});
        break;
      case 3:
        proto.handle(from, wire::Neighbor{fuzz.chance(0.5)});
        break;
      case 4:
        proto.handle(from, wire::NeighborReply{fuzz.chance(0.5)});
        break;
      case 5: {
        wire::Shuffle sh;
        sh.origin = random_peer();
        sh.ttl = static_cast<std::uint8_t>(fuzz.below(7));
        for (std::uint64_t i = 0; i < fuzz.below(9); ++i) {
          sh.entries.push_back(random_peer());
        }
        proto.handle(from, sh);
        break;
      }
      case 6: {
        wire::ShuffleReply sr;
        for (std::uint64_t i = 0; i < fuzz.below(9); ++i) {
          sr.entries.push_back(random_peer());
        }
        proto.handle(from, sr);
        break;
      }
      case 7:
        proto.peer_unreachable(from);
        break;
      case 8:
        proto.on_cycle();
        break;
      case 9:
        proto.handle(from, wire::ForwardJoinAccept{});
        break;
      case 10:
        proto.on_link_closed(from);
        break;
      case 11:
        proto.leave();
        // A fresh identity rejoins through a random contact, reusing the
        // same instance (the soup keeps flowing either way).
        proto.start(random_peer());
        break;
    }
    // Complete any outstanding connect with a random outcome.
    for (auto& c : env.connects) {
      if (!c.completed && fuzz.chance(0.8)) {
        c.completed = true;
        c.cb(fuzz.chance(0.7));
      }
    }

    // --- Invariants ---------------------------------------------------------
    const auto& active = proto.active_view();
    const auto& passive = proto.passive_view();
    ASSERT_LE(active.size(), cfg.active_capacity);
    ASSERT_LE(passive.size(), cfg.passive_capacity);
    ASSERT_FALSE(std::count(active.begin(), active.end(), nid(0)))
        << "self in active view";
    ASSERT_FALSE(std::count(passive.begin(), passive.end(), nid(0)))
        << "self in passive view";
    const std::set<NodeId> active_set(active.begin(), active.end());
    const std::set<NodeId> passive_set(passive.begin(), passive.end());
    ASSERT_EQ(active_set.size(), active.size()) << "duplicate in active view";
    ASSERT_EQ(passive_set.size(), passive.size())
        << "duplicate in passive view";
    for (const NodeId& n : active) {
      ASSERT_FALSE(passive_set.contains(n)) << "view overlap: "
                                            << n.to_string();
    }
    const auto& warm = proto.warm_cache();
    ASSERT_LE(warm.size(), cfg.warm_cache_size);
    for (const NodeId& w : warm) {
      ASSERT_TRUE(passive_set.contains(w))
          << "warm entry outside the passive view: " << w.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyParViewLocalInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// System-level properties on small simulated networks.
class HyParViewNetworkProperties
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HyParViewNetworkProperties, StabilizedOverlayIsSymmetricAndConnected) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 128, GetParam());
  harness::Network net(cfg);
  net.build();
  net.run_cycles(10);

  // Symmetry: p in active(q) <=> q in active(p).
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto view = net.protocol(i).dissemination_view();
    for (const NodeId& peer : view) {
      const auto peer_view = net.protocol(peer.ip).dissemination_view();
      EXPECT_TRUE(std::find(peer_view.begin(), peer_view.end(), net.id_of(i)) !=
                  peer_view.end())
          << "asymmetric link " << i << " -> " << peer.to_string();
    }
  }

  // Connectivity of the active-view overlay.
  const auto g = net.dissemination_graph(/*alive_only=*/true);
  EXPECT_TRUE(graph::is_weakly_connected(g));

  // No self loops, views within capacity.
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto view = net.protocol(i).dissemination_view();
    EXPECT_LE(view.size(), cfg.hyparview.active_capacity);
    EXPECT_TRUE(std::find(view.begin(), view.end(), net.id_of(i)) ==
                view.end());
  }
}

TEST_P(HyParViewNetworkProperties, BroadcastReachesEveryNodeWhenStable) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 128, GetParam());
  harness::Network net(cfg);
  net.build();
  net.run_cycles(5);
  for (int i = 0; i < 10; ++i) {
    const auto result = net.broadcast_one();
    EXPECT_EQ(result.delivered, net.alive_count())
        << "flood must reach every node on a connected stable overlay";
  }
}

TEST_P(HyParViewNetworkProperties, ActivePassiveDisjointAcrossNetwork) {
  auto cfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 96, GetParam());
  harness::Network net(cfg);
  net.build();
  net.run_cycles(8);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto active = net.protocol(i).dissemination_view();
    const auto passive = net.protocol(i).backup_view();
    for (const NodeId& a : active) {
      EXPECT_TRUE(std::find(passive.begin(), passive.end(), a) ==
                  passive.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HyParViewNetworkProperties,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace hyparview::core
