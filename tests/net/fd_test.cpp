// Direct unit tests for the RAII file descriptor (ROADMAP gap: net/fd.hpp
// was only exercised through the transport tests). Uses pipes — no sockets,
// no network, safe under every sanitizer.
#include "hyparview/net/fd.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <utility>

namespace hyparview::net {
namespace {

bool fd_open(int fd) { return ::fcntl(fd, F_GETFD) != -1; }

/// A connected pipe pair for producing real descriptors.
struct Pipe {
  int read_end = -1;
  int write_end = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    read_end = fds[0];
    write_end = fds[1];
  }
  ~Pipe() {
    // Close whatever the test did not hand off to an Fd.
    if (read_end >= 0 && fd_open(read_end)) ::close(read_end);
    if (write_end >= 0 && fd_open(write_end)) ::close(write_end);
  }
};

TEST(FdTest, DefaultConstructedIsInvalid) {
  const Fd fd;
  EXPECT_FALSE(fd.valid());
  EXPECT_EQ(fd.get(), -1);
}

TEST(FdTest, WrapsAndReportsDescriptor) {
  Pipe p;
  const Fd fd(p.read_end);
  EXPECT_TRUE(fd.valid());
  EXPECT_EQ(fd.get(), p.read_end);
  EXPECT_TRUE(fd_open(p.read_end));
}

TEST(FdTest, DestructorClosesDescriptor) {
  Pipe p;
  {
    const Fd fd(p.read_end);
    EXPECT_TRUE(fd_open(p.read_end));
  }
  EXPECT_FALSE(fd_open(p.read_end));
}

TEST(FdTest, ResetClosesOldAndAdoptsNew) {
  Pipe p;
  Fd fd(p.read_end);
  fd.reset(p.write_end);
  EXPECT_FALSE(fd_open(p.read_end)) << "reset leaked the old descriptor";
  EXPECT_EQ(fd.get(), p.write_end);
  fd.reset();
  EXPECT_FALSE(fd.valid());
  EXPECT_FALSE(fd_open(p.write_end));
}

TEST(FdTest, ReleaseTransfersOwnershipWithoutClosing) {
  Pipe p;
  int raw = -1;
  {
    Fd fd(p.read_end);
    raw = fd.release();
    EXPECT_FALSE(fd.valid());
  }
  // The destructor ran on a released Fd: descriptor must still be open.
  EXPECT_EQ(raw, p.read_end);
  EXPECT_TRUE(fd_open(raw));
}

TEST(FdTest, MoveConstructionTransfersOwnership) {
  Pipe p;
  Fd a(p.read_end);
  Fd b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): spec'd state
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.get(), p.read_end);
  EXPECT_TRUE(fd_open(p.read_end));
}

TEST(FdTest, MoveAssignmentClosesTargetsOldDescriptor) {
  Pipe p;
  Fd a(p.read_end);
  Fd b(p.write_end);
  b = std::move(a);
  EXPECT_FALSE(fd_open(p.write_end)) << "move-assign leaked b's descriptor";
  EXPECT_TRUE(fd_open(p.read_end));
  EXPECT_EQ(b.get(), p.read_end);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
}

TEST(FdTest, SelfMoveAssignmentIsSafe) {
  Pipe p;
  Fd fd(p.read_end);
  Fd& alias = fd;
  fd = std::move(alias);
  EXPECT_TRUE(fd.valid());
  EXPECT_EQ(fd.get(), p.read_end);
  EXPECT_TRUE(fd_open(p.read_end));
}

}  // namespace
}  // namespace hyparview::net
