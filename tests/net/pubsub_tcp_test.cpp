// The pub/sub payload plane on real sockets: the committed pub/sub specs
// (specs/pubsub_plumtree.json / pubsub_eager.json) run against their "tcp"
// section — 32 nodes, each with its own listening socket — through exactly
// the loader + Experiment pipeline `hpv_run` uses. The same spec objects
// drive the sim backend in the scenario tier; this leg proves the Plumtree
// engine's eager/lazy links, graft timers, and prune decisions behave on a
// substrate with real connect/reset semantics and no global clock.
//
// Tick counts are trimmed from the committed paper-scale stream (25+10
// ticks) to a CI-sized one; everything else — engines, window sizes,
// sources, rates, churn fraction — is the committed configuration.
//
// Registered under the `net` label, so the TSan CI job covers it.
#include <gtest/gtest.h>

#include <string>

#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/spec_json.hpp"
#include "hyparview/harness/tcp_backend.hpp"

namespace hyparview::harness {
namespace {

/// Loads a committed pub/sub spec and shrinks its stream phases for CI:
/// the steady stream keeps 6 ticks, the churn stream 4 (the crash still
/// lands at the midpoint tick).
RunSpec trimmed_spec(const std::string& name) {
  RunSpec spec = load_spec_file(spec_path(name));
  for (Experiment::Phase& phase : spec.experiment.mutable_phases()) {
    if (phase.kind != Experiment::PhaseKind::kPubSub) continue;
    phase.pubsub.ticks = phase.pubsub.churn_fraction > 0.0 ? 4 : 6;
  }
  return spec;
}

PubSubStats run_on_tcp(const std::string& name, const std::string& phase) {
  const RunSpec spec = trimmed_spec(name);
  auto cluster = Cluster::tcp(spec.tcp);
  const ExperimentResult result = cluster.run(spec.experiment);
  EXPECT_EQ(result.backend, std::string("tcp"));
  return result.phase(phase).pubsub;
}

TEST(PubSubTcpTest, PlumtreeStreamDeliversOnRealSockets) {
  const PubSubStats steady = run_on_tcp("pubsub_plumtree", "steady");

  EXPECT_EQ(steady.published, 8u * 6u * 2u);
  // Real-socket timing is not deterministic, so the floors sit a hair
  // under the sim's 100%.
  EXPECT_GE(steady.avg_reliability, 0.95);
  EXPECT_GE(steady.per_tick_reliability.back(), 0.95);
  // A per-tick value above 1 means some node delivered a payload twice —
  // the dedup window failed, not the network over-performing.
  for (double r : steady.per_tick_reliability) EXPECT_LE(r, 1.0 + 1e-9);
  // The tree actually formed: duplicates triggered prunes, and the stream
  // kept flowing on the thinned overlay.
  EXPECT_GT(steady.prunes, 0u);
  EXPECT_GT(steady.payload_bytes, 0u);
}

TEST(PubSubTcpTest, PlumtreeStreamSurvivesMidpointCrashOnRealSockets) {
  const PubSubStats churn = run_on_tcp("pubsub_plumtree", "churn");

  EXPECT_EQ(churn.published, 8u * 4u * 2u);
  for (double r : churn.per_tick_reliability) EXPECT_LE(r, 1.0 + 1e-9);
  // The crash tick may lose in-flight payloads to dying sockets; the final
  // tick must see the stream flowing over the repaired overlay again.
  EXPECT_GE(churn.per_tick_reliability.back(), 0.90);
}

TEST(PubSubTcpTest, PlumtreePaysFewerPayloadBytesThanEagerOnRealSockets) {
  const PubSubStats tree = run_on_tcp("pubsub_plumtree", "steady");
  const PubSubStats eager = run_on_tcp("pubsub_eager", "steady");

  EXPECT_GE(eager.avg_reliability, 0.95);
  EXPECT_GE(tree.avg_reliability, eager.avg_reliability - 0.02);
  // Short TCP streams include the eager warm-up flood, so the bound is
  // looser than the bench's steady-state ≤0.6 gate — but the direction
  // must hold even here.
  EXPECT_LT(tree.payload_bytes, eager.payload_bytes)
      << "plumtree " << tree.payload_bytes << " vs eager "
      << eager.payload_bytes;
  // The eager engine never sends control traffic or prunes.
  EXPECT_EQ(eager.prunes, 0u);
  EXPECT_EQ(eager.grafts, 0u);
}

}  // namespace
}  // namespace hyparview::harness
