// StatsExporter: the live stats endpoint on a real TcpBackend run.
//
// The poller runs on its own thread (as a real operator's script would) and
// only ever touches its own socket; everything else — accept, snapshot,
// write — happens on the backend's loop thread, which the test drives via
// run_until. That split is exactly the production shape, so this test also
// pins the endpoint TSan-clean under the net-label sanitizer run.
#include "hyparview/harness/stats_export.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "hyparview/common/json.hpp"
#include "hyparview/harness/spec_json.hpp"
#include "hyparview/harness/tcp_backend.hpp"

namespace hyparview::harness {
namespace {

/// Connects to 127.0.0.1:port, reads to EOF, returns the bytes (empty on
/// connect failure). Blocking socket on a non-loop thread.
std::string poll_endpoint(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  std::string body;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    body.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return body;
}

constexpr const char* kSpecText = R"({
  "name": "stats_probe",
  "backend": "tcp",
  "tcp": {"nodes": 6, "seed": 7, "stats_port": 0},
  "phases": [
    {"kind": "stabilize", "cycles": 2},
    {"kind": "broadcast", "count": 3, "label": "probe"}
  ]
})";

TEST(StatsExportTest, EndpointPollableDuringLiveRun) {
  // The whole scenario arrives as data: a JSON spec selects the TCP
  // substrate and enables the ephemeral stats port.
  const RunSpec spec = spec_from_json(json::Value::parse(kSpecText));
  EXPECT_EQ(spec.backend, "tcp");
  EXPECT_EQ(spec.tcp.node_count, 6u);
  EXPECT_EQ(spec.tcp.stats_port, 0);

  auto cluster = Cluster::tcp(spec.tcp);
  const auto result = cluster.run(spec.experiment);
  EXPECT_EQ(result.phase("probe").broadcasts.size(), 3u);

  auto& backend = dynamic_cast<TcpBackend&>(cluster.backend());
  StatsExporter* exporter = backend.stats_exporter();
  ASSERT_NE(exporter, nullptr);
  const std::uint16_t port = exporter->port();
  ASSERT_GT(port, 0u);

  // Two polls from a foreign thread while the loop is live; the second
  // exercises the delta-based rate path.
  std::vector<std::string> bodies;
  std::atomic<bool> done{false};
  std::thread poller([&] {
    bodies.push_back(poll_endpoint(port));
    bodies.push_back(poll_endpoint(port));
    done.store(true);
  });
  // Drive the loop until the poller finishes (bounded, not timing-based:
  // the poller unblocks as soon as the loop serves it).
  const bool served = backend.loop().run_until(
      [&] { return done.load(); }, seconds(30));
  poller.join();
  ASSERT_TRUE(served);

  ASSERT_EQ(bodies.size(), 2u);
  for (const std::string& body : bodies) {
    ASSERT_FALSE(body.empty());
    const json::Value doc = json::Value::parse(body);
    EXPECT_EQ(doc.find("backend")->as_string(), "tcp");
    EXPECT_EQ(doc.find("nodes")->as_int(), 6);
    EXPECT_EQ(doc.find("alive")->as_int(), 6);

    const json::Value& transport = *doc.find("transport");
    // A stabilized 6-node cluster has exchanged real frames by now.
    EXPECT_GT(transport.find("frames_sent")->as_int(), 0);
    EXPECT_GT(transport.find("bytes_received")->as_int(), 0);

    const json::Value& broadcasts = *doc.find("broadcasts");
    EXPECT_EQ(broadcasts.find("count")->as_int(), 3);
    EXPECT_GT(broadcasts.find("reliability_p50")->as_double(), 0.0);

    const auto& rows = doc.find("per_node")->as_array();
    ASSERT_EQ(rows.size(), 6u);
    for (const json::Value& row : rows) {
      EXPECT_TRUE(row.find("alive")->as_bool());
      // Every node found at least one active neighbor after stabilize.
      EXPECT_GT(row.find("active_view")->as_int(), 0);
      EXPECT_FALSE(row.find("id")->as_string().empty());
    }
  }

  // Direct snapshot on the loop thread (what hpv_run does for its final
  // dump) — same document shape.
  const json::Value snap = exporter->snapshot();
  EXPECT_EQ(snap.find("nodes")->as_int(), 6);
}

TEST(StatsExportTest, DisabledByDefault) {
  TcpBackendConfig cfg = TcpBackendConfig::defaults_for(
      ProtocolKind::kHyParView, 2, 1);
  ASSERT_EQ(cfg.stats_port, -1);
  auto cluster = Cluster::tcp(cfg);
  cluster.run(Experiment("noop").stabilize(1));
  EXPECT_EQ(dynamic_cast<TcpBackend&>(cluster.backend()).stats_exporter(),
            nullptr);
}

}  // namespace
}  // namespace hyparview::harness
