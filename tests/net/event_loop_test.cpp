#include "hyparview/net/event_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace hyparview::net {
namespace {

TEST(EventLoopTest, RunUntilPredicateImmediatelyTrue) {
  EventLoop loop;
  EXPECT_TRUE(loop.run_until([] { return true; }, seconds(1)));
}

TEST(EventLoopTest, RunUntilTimesOut) {
  EventLoop loop;
  const TimePoint start = loop.now();
  EXPECT_FALSE(loop.run_until([] { return false; }, milliseconds(50)));
  EXPECT_GE(loop.now() - start, milliseconds(45));
}

TEST(EventLoopTest, TimerFires) {
  EventLoop loop;
  bool fired = false;
  loop.schedule(milliseconds(10), [&] { fired = true; });
  EXPECT_TRUE(loop.run_until([&] { return fired; }, seconds(2)));
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule(milliseconds(20), [&] { order.push_back(2); });
  EXPECT_TRUE(loop.run_until([&] { return order.size() == 3; }, seconds(2)));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool fired = false;
  const auto id = loop.schedule(milliseconds(10), [&] { fired = true; });
  loop.cancel(id);
  loop.run_until([] { return false; }, milliseconds(60));
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, ZeroDelayTimerRunsPromptly) {
  EventLoop loop;
  bool fired = false;
  loop.schedule(0, [&] { fired = true; });
  EXPECT_TRUE(loop.run_until([&] { return fired; }, seconds(1)));
}

TEST(EventLoopTest, TimerMayScheduleAnotherTimer) {
  EventLoop loop;
  int stage = 0;
  loop.schedule(milliseconds(5), [&] {
    stage = 1;
    loop.schedule(milliseconds(5), [&] { stage = 2; });
  });
  EXPECT_TRUE(loop.run_until([&] { return stage == 2; }, seconds(2)));
}

TEST(EventLoopTest, PostFromAnotherThreadExecutes) {
  EventLoop loop;
  std::atomic<bool> done{false};
  std::thread poster([&] { loop.post([&] { done = true; }); });
  EXPECT_TRUE(
      loop.run_until([&] { return done.load(); }, seconds(2)));
  poster.join();
}

TEST(EventLoopTest, StopTerminatesRun) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  loop.post([&] { loop.stop(); });
  runner.join();
  SUCCEED();
}

TEST(EventLoopTest, NowIsMonotonic) {
  EventLoop loop;
  const TimePoint a = loop.now();
  const TimePoint b = loop.now();
  EXPECT_LE(a, b);
}

TEST(EventLoopTest, ManyTimersAllFire) {
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    loop.schedule(milliseconds(1 + i % 10), [&] { ++fired; });
  }
  EXPECT_TRUE(loop.run_until([&] { return fired == 100; }, seconds(5)));
}

}  // namespace
}  // namespace hyparview::net
