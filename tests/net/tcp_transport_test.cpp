#include "hyparview/net/tcp_transport.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <vector>

namespace hyparview::net {
namespace {

class RecordingEndpoint final : public membership::Endpoint {
 public:
  void deliver(const NodeId& from, const wire::Message& msg) override {
    deliveries.emplace_back(from, msg);
  }
  void send_failed(const NodeId& to, const wire::Message& msg) override {
    failures.emplace_back(to, msg);
  }
  void link_closed(const NodeId& peer) override {
    closed_links.push_back(peer);
  }

  std::vector<std::pair<NodeId, wire::Message>> deliveries;
  std::vector<std::pair<NodeId, wire::Message>> failures;
  std::vector<NodeId> closed_links;
};

class TcpTransportTest : public ::testing::Test {
 protected:
  std::unique_ptr<TcpTransport> make_transport(RecordingEndpoint* ep,
                                               std::uint64_t seed = 1) {
    TcpTransportConfig cfg;
    cfg.rng_seed = seed;
    return std::make_unique<TcpTransport>(loop_, ep, cfg);
  }

  EventLoop loop_;
};

TEST_F(TcpTransportTest, BindsEphemeralPortOnLoopback) {
  RecordingEndpoint ep;
  auto t = make_transport(&ep);
  EXPECT_EQ(t->local_id().ip, 0x7F000001u);
  EXPECT_NE(t->local_id().port, 0u);
}

TEST_F(TcpTransportTest, DistinctTransportsGetDistinctPorts) {
  RecordingEndpoint ep;
  auto a = make_transport(&ep);
  auto b = make_transport(&ep);
  EXPECT_NE(a->local_id(), b->local_id());
}

TEST_F(TcpTransportTest, SendDeliversMessage) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  EXPECT_EQ(eb.deliveries[0].first, a->local_id());
  EXPECT_TRUE(std::holds_alternative<wire::Join>(eb.deliveries[0].second));
}

TEST_F(TcpTransportTest, ManyMessagesArriveInOrder) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    a->send(b->local_id(), wire::Gossip{i, 0, 0});
  }
  ASSERT_TRUE(loop_.run_until(
      [&] { return eb.deliveries.size() == kCount; }, seconds(10)));
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(std::get<wire::Gossip>(eb.deliveries[i].second).msg_id, i);
  }
}

TEST_F(TcpTransportTest, BurstOfMaxCapacityFramesRoundTrips) {
  // The flat codec bounds every frame, so the old multi-megabyte
  // single-frame case is impossible by design. What the stream parser must
  // still handle is a burst of back-to-back frames arriving in arbitrary
  // read-chunk alignments: thousands of max-capacity shuffles sent in one
  // go exercise reassembly across frame boundaries.
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  wire::Shuffle big;
  big.origin = a->local_id();
  big.ttl = 3;
  for (std::uint32_t i = 0; i < wire::kMaxShuffleEntries; ++i) {
    big.entries.push_back(NodeId{i, 1});
  }
  constexpr std::size_t kFrames = 3'000;
  for (std::size_t i = 0; i < kFrames; ++i) {
    a->send(b->local_id(), big);
  }
  ASSERT_TRUE(loop_.run_until([&] { return eb.deliveries.size() >= kFrames; },
                              seconds(10)));
  for (const auto& [from, msg] : eb.deliveries) {
    ASSERT_EQ(std::get<wire::Shuffle>(msg).entries, big.entries);
  }
}

TEST_F(TcpTransportTest, BidirectionalTrafficOverOneLink) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Gossip{1, 0, 0});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  b->send(a->local_id(), wire::Gossip{2, 0, 0});
  ASSERT_TRUE(loop_.run_until([&] { return !ea.deliveries.empty(); },
                              seconds(5)));
  EXPECT_EQ(std::get<wire::Gossip>(ea.deliveries[0].second).msg_id, 2u);
}

TEST_F(TcpTransportTest, ConnectToLiveTransportSucceeds) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  bool called = false;
  bool ok = false;
  a->connect(b->local_id(), [&](bool result) {
    called = true;
    ok = result;
  });
  ASSERT_TRUE(loop_.run_until([&] { return called; }, seconds(5)));
  EXPECT_TRUE(ok);
}

TEST_F(TcpTransportTest, ConnectToDeadPortFails) {
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  // Grab a port that is then released: connection attempts must fail.
  NodeId dead;
  {
    RecordingEndpoint tmp_ep;
    auto tmp = make_transport(&tmp_ep, 9);
    dead = tmp->local_id();
    tmp->shutdown();
  }
  bool called = false;
  bool ok = true;
  a->connect(dead, [&](bool result) {
    called = true;
    ok = result;
  });
  ASSERT_TRUE(loop_.run_until([&] { return called; }, seconds(5)));
  EXPECT_FALSE(ok);
}

TEST_F(TcpTransportTest, SendToDeadPortReportsFailure) {
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  NodeId dead;
  {
    RecordingEndpoint tmp_ep;
    auto tmp = make_transport(&tmp_ep, 9);
    dead = tmp->local_id();
    tmp->shutdown();
  }
  a->send(dead, wire::Neighbor{true});
  ASSERT_TRUE(
      loop_.run_until([&] { return !ea.failures.empty(); }, seconds(5)));
  EXPECT_EQ(ea.failures[0].first, dead);
  EXPECT_TRUE(std::holds_alternative<wire::Neighbor>(ea.failures[0].second));
}

TEST_F(TcpTransportTest, PeerShutdownReportsLinkClosed) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  b->shutdown();
  ASSERT_TRUE(loop_.run_until([&] { return !ea.closed_links.empty(); },
                              seconds(5)));
  EXPECT_EQ(ea.closed_links[0], b->local_id());
}

TEST_F(TcpTransportTest, GracefulDisconnectDoesNotNotifyInitiator) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  a->disconnect(b->local_id());
  loop_.run_until([] { return false; }, milliseconds(200));
  EXPECT_TRUE(ea.closed_links.empty());
  EXPECT_TRUE(ea.failures.empty());
}

TEST_F(TcpTransportTest, DisconnectFlushesPendingMessageFirst) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  // DISCONNECT courtesy pattern: message then teardown.
  a->send(b->local_id(), wire::Disconnect{});
  a->disconnect(b->local_id());
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  EXPECT_TRUE(
      std::holds_alternative<wire::Disconnect>(eb.deliveries[0].second));
}

TEST_F(TcpTransportTest, SimultaneousDialsBothDirectionsStillDeliver) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Gossip{1, 0, 0});
  b->send(a->local_id(), wire::Gossip{2, 0, 0});
  ASSERT_TRUE(loop_.run_until(
      [&] { return !ea.deliveries.empty() && !eb.deliveries.empty(); },
      seconds(5)));
  EXPECT_EQ(std::get<wire::Gossip>(eb.deliveries[0].second).msg_id, 1u);
  EXPECT_EQ(std::get<wire::Gossip>(ea.deliveries[0].second).msg_id, 2u);
}

// --- malicious peers ---------------------------------------------------
// A raw socket speaking garbage at the transport: each hostile frame may
// cost only its own connection (closed + counted in TransportStats), never
// the epoll loop or other peers' traffic. The adversarial tier's TCP story
// rests on these bounds.

/// Plain blocking loopback socket to `to` — a peer outside the transport's
/// framing discipline. Loopback connects complete via the listen backlog,
/// so the event loop need not run first.
class RawSocket {
 public:
  explicit RawSocket(const NodeId& to) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(to.port);
    addr.sin_addr.s_addr = htonl(to.ip);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawSocket(const RawSocket&) = delete;
  RawSocket& operator=(const RawSocket&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Length-prefixed frame with an arbitrary (possibly lying) prefix.
  void send_frame(std::uint32_t claimed_len,
                  const std::vector<std::uint8_t>& body) {
    std::vector<std::uint8_t> frame;
    frame.push_back(static_cast<std::uint8_t>(claimed_len));
    frame.push_back(static_cast<std::uint8_t>(claimed_len >> 8));
    frame.push_back(static_cast<std::uint8_t>(claimed_len >> 16));
    frame.push_back(static_cast<std::uint8_t>(claimed_len >> 24));
    frame.insert(frame.end(), body.begin(), body.end());
    send_bytes(frame);
  }

  /// True once the transport closed its side (read returns 0 or error).
  [[nodiscard]] bool closed_by_peer() {
    std::uint8_t buf[64];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    return n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST_F(TcpTransportTest, OversizedFrameHeaderClosesOnlyThatConnection) {
  RecordingEndpoint eb;
  auto b = make_transport(&eb, 2);

  RawSocket attacker(b->local_id());
  ASSERT_TRUE(attacker.connected());
  // A length prefix far past max_frame_bytes; no body ever follows.
  attacker.send_frame(0xFFFF'FFFFu, {});
  ASSERT_TRUE(loop_.run_until(
      [&] { return b->stats().oversized_frames == 1; }, seconds(5)));
  EXPECT_EQ(b->stats().malformed_frames, 1u);

  // The loop is not wedged: an honest transport still talks to b.
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  EXPECT_TRUE(std::holds_alternative<wire::Join>(eb.deliveries[0].second));

  // The attacker lost its connection (drain the loop so the FIN lands).
  loop_.run_until([&] { return attacker.closed_by_peer(); }, seconds(5));
  EXPECT_TRUE(attacker.closed_by_peer());
}

TEST_F(TcpTransportTest, UndecodableFrameBodyCountsMalformed) {
  RecordingEndpoint eb;
  auto b = make_transport(&eb, 2);

  RawSocket attacker(b->local_id());
  ASSERT_TRUE(attacker.connected());
  // Honest-looking length, garbage body (0xFF is no message tag).
  attacker.send_frame(8, std::vector<std::uint8_t>(8, 0xFF));
  ASSERT_TRUE(loop_.run_until(
      [&] { return b->stats().malformed_frames == 1; }, seconds(5)));
  EXPECT_EQ(b->stats().oversized_frames, 0u);
  EXPECT_TRUE(eb.deliveries.empty());

  // Other traffic unaffected.
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
}

TEST_F(TcpTransportTest, FrameBeforeHelloIsRejectedAndCounted) {
  RecordingEndpoint eb;
  auto b = make_transport(&eb, 2);

  RawSocket attacker(b->local_id());
  ASSERT_TRUE(attacker.connected());
  // A perfectly well-formed frame — but the connection never identified
  // itself with a HELLO, so it must not reach the endpoint.
  const auto body = wire::encode_bytes(wire::Join{});
  attacker.send_frame(static_cast<std::uint32_t>(body.size()), body);
  ASSERT_TRUE(loop_.run_until(
      [&] { return b->stats().frames_before_hello == 1; }, seconds(5)));
  EXPECT_TRUE(eb.deliveries.empty());
}

TEST_F(TcpTransportTest, ByteDribbleAcrossPrefixBoundaryStillRejects) {
  RecordingEndpoint eb;
  auto b = make_transport(&eb, 2);

  RawSocket attacker(b->local_id());
  ASSERT_TRUE(attacker.connected());
  // The oversized prefix arrives one byte at a time: the parser must wait
  // for the full prefix, then reject — reassembly cannot be tricked into
  // reading a partial length.
  for (const unsigned byte : {0xFFu, 0xFFu, 0xFFu, 0xFFu}) {
    attacker.send_bytes({static_cast<std::uint8_t>(byte)});
    loop_.run_until([] { return false; }, milliseconds(10));
  }
  ASSERT_TRUE(loop_.run_until(
      [&] { return b->stats().oversized_frames == 1; }, seconds(5)));
}

TEST_F(TcpTransportTest, ShutdownIsIdempotent) {
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  a->shutdown();
  a->shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace hyparview::net
