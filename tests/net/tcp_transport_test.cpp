#include "hyparview/net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace hyparview::net {
namespace {

class RecordingEndpoint final : public membership::Endpoint {
 public:
  void deliver(const NodeId& from, const wire::Message& msg) override {
    deliveries.emplace_back(from, msg);
  }
  void send_failed(const NodeId& to, const wire::Message& msg) override {
    failures.emplace_back(to, msg);
  }
  void link_closed(const NodeId& peer) override {
    closed_links.push_back(peer);
  }

  std::vector<std::pair<NodeId, wire::Message>> deliveries;
  std::vector<std::pair<NodeId, wire::Message>> failures;
  std::vector<NodeId> closed_links;
};

class TcpTransportTest : public ::testing::Test {
 protected:
  std::unique_ptr<TcpTransport> make_transport(RecordingEndpoint* ep,
                                               std::uint64_t seed = 1) {
    TcpTransportConfig cfg;
    cfg.rng_seed = seed;
    return std::make_unique<TcpTransport>(loop_, ep, cfg);
  }

  EventLoop loop_;
};

TEST_F(TcpTransportTest, BindsEphemeralPortOnLoopback) {
  RecordingEndpoint ep;
  auto t = make_transport(&ep);
  EXPECT_EQ(t->local_id().ip, 0x7F000001u);
  EXPECT_NE(t->local_id().port, 0u);
}

TEST_F(TcpTransportTest, DistinctTransportsGetDistinctPorts) {
  RecordingEndpoint ep;
  auto a = make_transport(&ep);
  auto b = make_transport(&ep);
  EXPECT_NE(a->local_id(), b->local_id());
}

TEST_F(TcpTransportTest, SendDeliversMessage) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  EXPECT_EQ(eb.deliveries[0].first, a->local_id());
  EXPECT_TRUE(std::holds_alternative<wire::Join>(eb.deliveries[0].second));
}

TEST_F(TcpTransportTest, ManyMessagesArriveInOrder) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    a->send(b->local_id(), wire::Gossip{i, 0, 0});
  }
  ASSERT_TRUE(loop_.run_until(
      [&] { return eb.deliveries.size() == kCount; }, seconds(10)));
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(std::get<wire::Gossip>(eb.deliveries[i].second).msg_id, i);
  }
}

TEST_F(TcpTransportTest, BurstOfMaxCapacityFramesRoundTrips) {
  // The flat codec bounds every frame, so the old multi-megabyte
  // single-frame case is impossible by design. What the stream parser must
  // still handle is a burst of back-to-back frames arriving in arbitrary
  // read-chunk alignments: thousands of max-capacity shuffles sent in one
  // go exercise reassembly across frame boundaries.
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  wire::Shuffle big;
  big.origin = a->local_id();
  big.ttl = 3;
  for (std::uint32_t i = 0; i < wire::kMaxShuffleEntries; ++i) {
    big.entries.push_back(NodeId{i, 1});
  }
  constexpr std::size_t kFrames = 3'000;
  for (std::size_t i = 0; i < kFrames; ++i) {
    a->send(b->local_id(), big);
  }
  ASSERT_TRUE(loop_.run_until([&] { return eb.deliveries.size() >= kFrames; },
                              seconds(10)));
  for (const auto& [from, msg] : eb.deliveries) {
    ASSERT_EQ(std::get<wire::Shuffle>(msg).entries, big.entries);
  }
}

TEST_F(TcpTransportTest, BidirectionalTrafficOverOneLink) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Gossip{1, 0, 0});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  b->send(a->local_id(), wire::Gossip{2, 0, 0});
  ASSERT_TRUE(loop_.run_until([&] { return !ea.deliveries.empty(); },
                              seconds(5)));
  EXPECT_EQ(std::get<wire::Gossip>(ea.deliveries[0].second).msg_id, 2u);
}

TEST_F(TcpTransportTest, ConnectToLiveTransportSucceeds) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  bool called = false;
  bool ok = false;
  a->connect(b->local_id(), [&](bool result) {
    called = true;
    ok = result;
  });
  ASSERT_TRUE(loop_.run_until([&] { return called; }, seconds(5)));
  EXPECT_TRUE(ok);
}

TEST_F(TcpTransportTest, ConnectToDeadPortFails) {
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  // Grab a port that is then released: connection attempts must fail.
  NodeId dead;
  {
    RecordingEndpoint tmp_ep;
    auto tmp = make_transport(&tmp_ep, 9);
    dead = tmp->local_id();
    tmp->shutdown();
  }
  bool called = false;
  bool ok = true;
  a->connect(dead, [&](bool result) {
    called = true;
    ok = result;
  });
  ASSERT_TRUE(loop_.run_until([&] { return called; }, seconds(5)));
  EXPECT_FALSE(ok);
}

TEST_F(TcpTransportTest, SendToDeadPortReportsFailure) {
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  NodeId dead;
  {
    RecordingEndpoint tmp_ep;
    auto tmp = make_transport(&tmp_ep, 9);
    dead = tmp->local_id();
    tmp->shutdown();
  }
  a->send(dead, wire::Neighbor{true});
  ASSERT_TRUE(
      loop_.run_until([&] { return !ea.failures.empty(); }, seconds(5)));
  EXPECT_EQ(ea.failures[0].first, dead);
  EXPECT_TRUE(std::holds_alternative<wire::Neighbor>(ea.failures[0].second));
}

TEST_F(TcpTransportTest, PeerShutdownReportsLinkClosed) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  b->shutdown();
  ASSERT_TRUE(loop_.run_until([&] { return !ea.closed_links.empty(); },
                              seconds(5)));
  EXPECT_EQ(ea.closed_links[0], b->local_id());
}

TEST_F(TcpTransportTest, GracefulDisconnectDoesNotNotifyInitiator) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Join{});
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  a->disconnect(b->local_id());
  loop_.run_until([] { return false; }, milliseconds(200));
  EXPECT_TRUE(ea.closed_links.empty());
  EXPECT_TRUE(ea.failures.empty());
}

TEST_F(TcpTransportTest, DisconnectFlushesPendingMessageFirst) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  // DISCONNECT courtesy pattern: message then teardown.
  a->send(b->local_id(), wire::Disconnect{});
  a->disconnect(b->local_id());
  ASSERT_TRUE(loop_.run_until([&] { return !eb.deliveries.empty(); },
                              seconds(5)));
  EXPECT_TRUE(
      std::holds_alternative<wire::Disconnect>(eb.deliveries[0].second));
}

TEST_F(TcpTransportTest, SimultaneousDialsBothDirectionsStillDeliver) {
  RecordingEndpoint ea;
  RecordingEndpoint eb;
  auto a = make_transport(&ea, 1);
  auto b = make_transport(&eb, 2);

  a->send(b->local_id(), wire::Gossip{1, 0, 0});
  b->send(a->local_id(), wire::Gossip{2, 0, 0});
  ASSERT_TRUE(loop_.run_until(
      [&] { return !ea.deliveries.empty() && !eb.deliveries.empty(); },
      seconds(5)));
  EXPECT_EQ(std::get<wire::Gossip>(eb.deliveries[0].second).msg_id, 1u);
  EXPECT_EQ(std::get<wire::Gossip>(ea.deliveries[0].second).msg_id, 2u);
}

TEST_F(TcpTransportTest, ShutdownIsIdempotent) {
  RecordingEndpoint ea;
  auto a = make_transport(&ea, 1);
  a->shutdown();
  a->shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace hyparview::net
