// Cluster-scale HyParView over real TCP sockets through the backend-
// agnostic harness: 32 nodes, each with its own listening socket and
// connection cache, driven by the same declarative Experiment spec the sim
// backend runs — the §5 reliability pipeline (stabilize → crash a fraction
// → probe broadcasts) with the protocol code unchanged.
//
// Registered under the `net` label, so the TSan CI job covers it.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/tcp_backend.hpp"

#include "support/test_tiers.hpp"

namespace hyparview::harness {
namespace {

/// The shared reliability scenario: warm probes on the stable overlay, a
/// 25% crash wave, traffic-driven repair, then the probes that must reach
/// every survivor again. One spec object, two backends.
Experiment reliability_spec() {
  Experiment spec("cross_backend_reliability");
  spec.stabilize(3)
      .broadcast(3, "warm")
      .crash(0.25)
      .broadcast(6, "repair")
      .cycles(2)
      .broadcast(4, "probe");
  return spec;
}

TEST(TcpBackendTest, ThirtyTwoNodeReliabilityScenario) {
  auto cluster = Cluster::tcp(
      TcpBackendConfig::defaults_for(ProtocolKind::kHyParView, 32, 1234));
  const ExperimentResult result = cluster.run(reliability_spec());

  EXPECT_EQ(result.backend, std::string("tcp"));
  EXPECT_EQ(cluster->alive_count(), 24u);  // 32 - ⌊0.25·32⌋

  // Stable overlay: the flood reaches every node over real sockets.
  EXPECT_GE(result.phase("warm").avg_reliability(), 0.99);
  // After the crash wave + repair traffic + two shuffle rounds, probes
  // must reach (essentially) every survivor again. Real-socket timing is
  // not deterministic, so the floor is a hair under the sim's 100%.
  EXPECT_GE(result.phase("probe").last_reliability(), 0.95);
  EXPECT_GT(cluster->events_processed(), 0u);
}

TEST(TcpBackendTest, SameSpecSameProtocolCodeOnSimBackend) {
  auto cluster = Cluster::sim(
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, 32, 1234));
  const ExperimentResult result = cluster.run(reliability_spec());

  EXPECT_EQ(result.backend, std::string("sim"));
  EXPECT_EQ(cluster->alive_count(), 24u);
  EXPECT_GE(result.phase("warm").avg_reliability(), 0.99);
  // The deterministic substrate holds the paper's full promise.
  EXPECT_GE(result.phase("probe").avg_reliability(), 0.99);
}

TEST(TcpBackendTest, GracefulLeavePurgesActiveViewsWithoutFailureDetection) {
  auto cluster = Cluster::tcp(
      TcpBackendConfig::defaults_for(ProtocolKind::kHyParView, 12, 77));
  cluster.run(Experiment("stabilize_only").stabilize(3));

  Backend& b = cluster.backend();
  // Three graceful departures (Protocol::leave): goodbyes must flush and
  // survivors must drop the leavers before any failure detector could run.
  std::vector<NodeId> leavers;
  for (std::size_t victim : {std::size_t{2}, std::size_t{5}, std::size_t{9}}) {
    leavers.push_back(b.id_of(victim));
    b.leave_node(victim, /*graceful=*/true);
  }
  for (std::size_t i = 0; i < b.node_count(); ++i) {
    if (!b.alive(i)) continue;
    for (const NodeId& peer : b.protocol(i).dissemination_view()) {
      for (const NodeId& leaver : leavers) {
        EXPECT_NE(peer, leaver) << "node " << i << " kept a graceful leaver";
      }
    }
  }
  // And the smaller cluster still floods completely.
  const auto probe = b.broadcast_one();
  EXPECT_EQ(probe.delivered, b.alive_count());
}

TEST(TcpBackendTest, ElasticGrowthJoinsThroughRandomContacts) {
  HPV_FULL_TIER_ONLY();
  auto cluster = Cluster::tcp(
      TcpBackendConfig::defaults_for(ProtocolKind::kHyParView, 8, 5));
  cluster.run(Experiment("stabilize_only").stabilize(2));
  Backend& b = cluster.backend();
  const std::size_t added_a = b.add_node();
  const std::size_t added_b = b.add_node();
  b.run_cycles(2);
  EXPECT_EQ(b.alive_count(), 10u);
  EXPECT_FALSE(b.protocol(added_a).dissemination_view().empty());
  EXPECT_FALSE(b.protocol(added_b).dissemination_view().empty());
  const auto probe = b.broadcast_one();
  EXPECT_EQ(probe.delivered, 10u);
}

TEST(TcpBackendTest, NeverDeliveringBroadcastTerminatesAtHardTimeout) {
  // Cyclon at fanout 0 (random-fanout gossip, zero targets — HyParView
  // would flood its active view regardless): the source delivers its own
  // broadcast locally and the gossip then goes nowhere. With the quiet
  // window configured far above the hard timeout, termination must come
  // from broadcast_timeout — the wait must neither hang (regression: a
  // never-delivering broadcast outliving its deadline) nor be cut short by
  // a quiet-window misfire before the first observation.
  TcpBackendConfig config =
      TcpBackendConfig::defaults_for(ProtocolKind::kCyclon, 4, 9);
  config.broadcast_timeout = milliseconds(300);
  config.broadcast_quiet_window = seconds(30);  // > timeout, on purpose
  TcpBackend backend(config);
  backend.build();
  backend.settle();
  backend.set_fanout(0);

  const auto start = std::chrono::steady_clock::now();
  const analysis::MessageResult result = backend.broadcast_from(0);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Only the source's own local delivery can have landed.
  EXPECT_LT(result.delivered, backend.alive_count());
  // Ended by the hard timeout: not instantly (no pre-progress quiet-window
  // misfire)…
  EXPECT_GE(elapsed, std::chrono::milliseconds(250));
  // …and not wedged until the 30 s quiet window or forever. Generous bound
  // for loaded CI machines.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(TcpBackendTest, StalledFloodEndsAtQuietWindowBeforeFullTimeout) {
  // Same stalled gossip, but with the quiet window far below the timeout:
  // once the source's local delivery lands (first observation), the quiet
  // cutoff engages and returns long before the 30 s deadline — partial
  // floods must not cost the whole timeout per probe.
  TcpBackendConfig config =
      TcpBackendConfig::defaults_for(ProtocolKind::kCyclon, 4, 11);
  config.broadcast_timeout = seconds(30);
  config.broadcast_quiet_window = milliseconds(120);
  TcpBackend backend(config);
  backend.build();
  backend.settle();
  backend.set_fanout(0);

  const auto start = std::chrono::steady_clock::now();
  const analysis::MessageResult result = backend.broadcast_from(0);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_LT(result.delivered, backend.alive_count());
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

}  // namespace
}  // namespace hyparview::harness
