// End-to-end HyParView over real TCP sockets: an in-process cluster on the
// loopback interface, sharing one event loop.
//
// Two tiers: the default CTest registration runs with HPV_QUICK=1 and keeps
// the three core scenarios (join symmetry, flood delivery, crash repair) —
// real-socket settle times make each cluster build ~0.5s, and this file
// used to dominate the whole suite's wall time. The remaining scenarios run
// in the `full` tier (-DHPV_FULL_TESTS=ON + `ctest -L full`, exercised in
// CI, including under TSan).
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "hyparview/core/hyparview.hpp"
#include "hyparview/gossip/node_runtime.hpp"
#include "hyparview/net/tcp_transport.hpp"

#include "support/test_tiers.hpp"

namespace hyparview::net {
namespace {

class ClusterObserver final : public gossip::DeliveryObserver {
 public:
  void on_deliver(const NodeId& node, std::uint64_t msg_id,
                  std::uint16_t /*hops*/) override {
    deliveries[msg_id].insert(node.raw());
  }
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      deliveries;
};

/// One HyParView node over TCP: transport + protocol + gossip runtime.
struct TcpNode {
  TcpNode(EventLoop& loop, gossip::DeliveryObserver* observer,
          std::uint64_t seed, std::size_t warm_cache = 0) {
    TcpTransportConfig tcfg;
    tcfg.rng_seed = seed;
    transport = std::make_unique<TcpTransport>(loop, nullptr, tcfg);
    core::Config pcfg;
    pcfg.active_capacity = 4;
    pcfg.passive_capacity = 12;
    pcfg.warm_cache_size = warm_cache;
    gossip::GossipConfig gcfg;
    gcfg.mode = gossip::Mode::kFlood;
    runtime = std::make_unique<gossip::NodeRuntime>(
        *transport, std::make_unique<core::HyParView>(*transport, pcfg), gcfg,
        observer);
    transport->set_endpoint(runtime.get());
  }

  [[nodiscard]] NodeId id() const { return transport->local_id(); }
  [[nodiscard]] core::HyParView& protocol() {
    return static_cast<core::HyParView&>(runtime->protocol());
  }

  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<gossip::NodeRuntime> runtime;
};

class TcpClusterTest : public ::testing::Test {
 protected:
  void build_cluster(std::size_t n, std::size_t warm_cache = 0) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(
          std::make_unique<TcpNode>(loop_, &observer_, 1000 + i, warm_cache));
    }
    nodes_[0]->protocol().start(std::nullopt);
    for (std::size_t i = 1; i < n; ++i) {
      nodes_[i]->protocol().start(nodes_[0]->id());
      // Let each join settle briefly, mirroring the one-by-one join of §5.
      loop_.run_until([] { return false; }, milliseconds(20));
    }
    run_cycles(3);
  }

  void run_cycles(int cycles) {
    for (int c = 0; c < cycles; ++c) {
      for (auto& node : nodes_) node->protocol().on_cycle();
      loop_.run_until([] { return false; }, milliseconds(50));
    }
  }

  /// Waits until `msg_id` reached `expect` nodes (or times out).
  bool await_delivery(std::uint64_t msg_id, std::size_t expect,
                      Duration timeout = seconds(10)) {
    return loop_.run_until(
        [&] { return observer_.deliveries[msg_id].size() >= expect; },
        timeout);
  }

  EventLoop loop_;
  ClusterObserver observer_;
  std::vector<std::unique_ptr<TcpNode>> nodes_;
};

TEST_F(TcpClusterTest, JoinFormsSymmetricActiveViews) {
  build_cluster(8);
  // Symmetry is maintained under traffic (asymmetry left by join races is
  // healed by the DISCONNECT-on-foreign-flood rule); run a few broadcasts
  // and shuffle rounds before asserting the invariant.
  for (std::uint64_t id = 900; id < 904; ++id) {
    nodes_[id % nodes_.size()]->runtime->gossip().broadcast(id);
    loop_.run_until([] { return false; }, milliseconds(40));
  }
  run_cycles(2);
  for (auto& node : nodes_) {
    EXPECT_FALSE(node->protocol().active_view().empty())
        << node->id().to_string();
  }
  // Symmetry check across the cluster.
  for (auto& node : nodes_) {
    for (const NodeId& peer : node->protocol().active_view()) {
      auto it = std::find_if(
          nodes_.begin(), nodes_.end(),
          [&](const auto& other) { return other->id() == peer; });
      ASSERT_NE(it, nodes_.end());
      const auto& peer_view = (*it)->protocol().active_view();
      EXPECT_TRUE(std::find(peer_view.begin(), peer_view.end(), node->id()) !=
                  peer_view.end())
          << "asymmetric TCP link " << node->id().to_string() << " <-> "
          << peer.to_string();
    }
  }
}

TEST_F(TcpClusterTest, BroadcastFloodsWholeCluster) {
  build_cluster(8);
  nodes_[3]->runtime->gossip().broadcast(42);
  EXPECT_TRUE(await_delivery(42, nodes_.size()));
}

TEST_F(TcpClusterTest, SequentialBroadcastsAllDelivered) {
  HPV_FULL_TIER_ONLY();
  build_cluster(6);
  for (std::uint64_t id = 100; id < 110; ++id) {
    nodes_[id % nodes_.size()]->runtime->gossip().broadcast(id);
    EXPECT_TRUE(await_delivery(id, nodes_.size())) << "msg " << id;
  }
}

TEST_F(TcpClusterTest, NodeCrashDetectedAndRepairedByTraffic) {
  build_cluster(8);
  // Hard-kill one node (no DISCONNECTs): neighbors must detect via TCP.
  const NodeId victim = nodes_[4]->id();
  nodes_[4]->transport->shutdown();
  auto dead = std::move(nodes_[4]);
  nodes_.erase(nodes_.begin() + 4);

  // Drive traffic so the failure detector and repair run.
  for (std::uint64_t id = 200; id < 206; ++id) {
    nodes_[id % nodes_.size()]->runtime->gossip().broadcast(id);
    loop_.run_until([] { return false; }, milliseconds(60));
  }
  run_cycles(2);

  // The dead node must be gone from every active view...
  for (auto& node : nodes_) {
    const auto& view = node->protocol().active_view();
    EXPECT_TRUE(std::find(view.begin(), view.end(), victim) == view.end())
        << node->id().to_string();
  }
  // ...and broadcasts still reach all survivors.
  nodes_[0]->runtime->gossip().broadcast(999);
  EXPECT_TRUE(await_delivery(999, nodes_.size()));
}

TEST_F(TcpClusterTest, ShufflePopulatesPassiveViews) {
  HPV_FULL_TIER_ONLY();
  build_cluster(10);
  run_cycles(5);
  std::size_t with_passive = 0;
  for (auto& node : nodes_) {
    if (!node->protocol().passive_view().empty()) ++with_passive;
  }
  // Shuffles + join walks must have spread backup knowledge to most nodes.
  EXPECT_GE(with_passive, nodes_.size() / 2);
}

TEST_F(TcpClusterTest, WarmCacheOpensRealConnectionsToPassiveMembers) {
  HPV_FULL_TIER_ONLY();
  build_cluster(10, /*warm_cache=*/2);
  run_cycles(6);
  std::size_t warmed = 0;
  for (auto& node : nodes_) {
    const auto& warm = node->protocol().warm_cache();
    const auto& passive = node->protocol().passive_view();
    for (const NodeId& w : warm) {
      EXPECT_TRUE(std::find(passive.begin(), passive.end(), w) !=
                  passive.end())
          << "warm entry outside passive view over TCP";
    }
    if (!warm.empty()) ++warmed;
  }
  EXPECT_GE(warmed, nodes_.size() / 2) << "warm cache never filled over TCP";
  // The cluster still floods correctly with the extra standing links.
  nodes_[1]->runtime->gossip().broadcast(777);
  EXPECT_TRUE(await_delivery(777, nodes_.size()));
}

TEST_F(TcpClusterTest, GracefulLeaveRemovesNodeWithoutFailureDetection) {
  HPV_FULL_TIER_ONLY();
  build_cluster(8);
  const NodeId leaver = nodes_[2]->id();
  // Say goodbye, let the DISCONNECTs flush, then kill the process.
  nodes_[2]->protocol().leave();
  loop_.run_until([] { return false; }, milliseconds(60));
  nodes_[2]->transport->shutdown();
  auto dead = std::move(nodes_[2]);
  nodes_.erase(nodes_.begin() + 2);
  loop_.run_until([] { return false; }, milliseconds(40));

  // Every survivor dropped the leaver from its active view *before* any
  // broadcast traffic could trigger the failure detector.
  for (auto& node : nodes_) {
    const auto& view = node->protocol().active_view();
    EXPECT_TRUE(std::find(view.begin(), view.end(), leaver) == view.end())
        << node->id().to_string() << " kept the leaver";
  }
  nodes_[0]->runtime->gossip().broadcast(888);
  EXPECT_TRUE(await_delivery(888, nodes_.size()));
}

}  // namespace
}  // namespace hyparview::net
