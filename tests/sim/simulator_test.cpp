#include "hyparview/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hyparview::sim {
namespace {

/// Records every upcall for assertions.
class RecordingHandler final : public membership::Endpoint {
 public:
  struct Delivery {
    NodeId from;
    wire::Message msg;
  };
  struct Failure {
    NodeId to;
    wire::Message msg;
  };

  void deliver(const NodeId& from, const wire::Message& msg) override {
    deliveries.push_back({from, msg});
  }
  void send_failed(const NodeId& to, const wire::Message& msg) override {
    failures.push_back({to, msg});
  }
  void link_closed(const NodeId& peer) override {
    closed_links.push_back(peer);
  }

  std::vector<Delivery> deliveries;
  std::vector<Failure> failures;
  std::vector<NodeId> closed_links;
};

class SimulatorTest : public ::testing::Test {
 protected:
  SimConfig config_{};
};

TEST_F(SimulatorTest, AddNodesAssignsDenseIndices) {
  Simulator sim(config_);
  RecordingHandler h;
  EXPECT_EQ(sim.add_node(&h), NodeId::from_index(0));
  EXPECT_EQ(sim.add_node(&h), NodeId::from_index(1));
  EXPECT_EQ(sim.node_count(), 2u);
  EXPECT_EQ(sim.alive_count(), 2u);
}

TEST_F(SimulatorTest, DeliversMessageWithLatency) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);

  sim.env(a).send(b, wire::Join{});
  EXPECT_TRUE(hb.deliveries.empty());  // asynchronous
  sim.run_until_quiescent();
  ASSERT_EQ(hb.deliveries.size(), 1u);
  EXPECT_EQ(hb.deliveries[0].from, a);
  EXPECT_TRUE(std::holds_alternative<wire::Join>(hb.deliveries[0].msg));
  EXPECT_GE(sim.now(), config_.latency_min);
  EXPECT_LE(sim.now(), config_.latency_max);
}

TEST_F(SimulatorTest, SendOpensSymmetricLink) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  EXPECT_FALSE(sim.linked(a, b));
  sim.env(a).send(b, wire::Join{});
  EXPECT_TRUE(sim.linked(a, b));
  EXPECT_TRUE(sim.linked(b, a));
}

TEST_F(SimulatorTest, DisconnectClosesLocallyThenNotifiesRemote) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.env(b).disconnect(a);
  // b's side closes immediately; a still holds a half-open link until the
  // FIN notification is dispatched.
  EXPECT_FALSE(sim.linked(b, a) && !sim.linked(a, b));
  sim.run_until_quiescent();
  EXPECT_FALSE(sim.linked(a, b));
  EXPECT_FALSE(sim.linked(b, a));
  ASSERT_EQ(ha.closed_links.size(), 1u);
  EXPECT_EQ(ha.closed_links[0], b);
}

TEST_F(SimulatorTest, MutualDisconnectSuppressesNotifications) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  // Both ends close (the polite DISCONNECT pattern): nobody is notified.
  sim.env(a).disconnect(b);
  sim.env(b).disconnect(a);
  sim.run_until_quiescent();
  EXPECT_TRUE(ha.closed_links.empty());
  EXPECT_TRUE(hb.closed_links.empty());
}

TEST_F(SimulatorTest, CloseNotificationArrivesAfterInFlightMessages) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  // Message then immediate close: the data must be processed first, like a
  // FIN queued behind the stream.
  sim.env(a).send(b, wire::Disconnect{});
  sim.env(a).disconnect(b);
  bool saw_msg_first = false;
  while (sim.step()) {
    if (!hb.deliveries.empty() && hb.closed_links.empty()) {
      saw_msg_first = true;
    }
  }
  EXPECT_TRUE(saw_msg_first);
  ASSERT_EQ(hb.deliveries.size(), 1u);
}

TEST_F(SimulatorTest, SendToCrashedNodeFailsBack) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.crash(b);
  sim.env(a).send(b, wire::Neighbor{true});
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  ASSERT_EQ(ha.failures.size(), 1u);
  EXPECT_EQ(ha.failures[0].to, b);
  EXPECT_TRUE(std::holds_alternative<wire::Neighbor>(ha.failures[0].msg));
  EXPECT_EQ(sim.sends_failed(), 1u);
}

TEST_F(SimulatorTest, CrashWhileInFlightAlsoFailsBack) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.crash(b);  // after send, before delivery
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  ASSERT_EQ(ha.failures.size(), 1u);
}

TEST_F(SimulatorTest, DetectOnSendDoesNotNotifyPeersOfCrash) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  sim.crash(b);
  sim.run_until_quiescent();
  EXPECT_TRUE(ha.closed_links.empty());
}

TEST_F(SimulatorTest, NotifyOnCrashClosesLinks) {
  config_.notify_on_crash = true;
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  sim.crash(b);
  sim.run_until_quiescent();
  ASSERT_EQ(ha.closed_links.size(), 1u);
  EXPECT_EQ(ha.closed_links[0], b);
}

TEST_F(SimulatorTest, CrashedNodeSendsNothing) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.crash(a);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  EXPECT_EQ(sim.messages_sent(), 0u);
}

// --- Blocked (slow) node semantics: uniformly inert -------------------------
// A frozen process must not initiate anything: do_send already refused, and
// these pin the dial-out paths to the same rule (regression tests for the
// blocked-node inconsistency where a blocked node could still connect() and
// have connect callbacks fire while its timers were dropped). Completions
// the *network* hands a blocked node are the flip side: they buffer and
// replay on unblock — dropping them would silently wedge protocol state
// machines waiting on a dial or send outcome.

TEST_F(SimulatorTest, BlockedNodeCannotDialOut) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.block(a);
  bool called = false;
  sim.env(a).connect(b, [&](bool) { called = true; });
  sim.run_until_quiescent();
  EXPECT_FALSE(called) << "a frozen process reached its dial loop";
  EXPECT_FALSE(sim.linked(a, b));
  EXPECT_EQ(sim.connections_opened(), 0u);
  // The dial never left the frozen process, so unblocking resurrects
  // nothing.
  sim.unblock(a);
  sim.run_until_quiescent();
  EXPECT_FALSE(called);
  EXPECT_FALSE(sim.linked(a, b));
}

TEST_F(SimulatorTest, ConnectResultBuffersWhileBlockedAndReplaysOnUnblock) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  bool called = false;
  bool result = false;
  sim.env(a).connect(b, [&](bool ok) {
    called = true;
    result = ok;
  });
  sim.block(a);  // freezes after dialing, before the result arrives
  sim.run_until_quiescent();
  // The kernel completed the handshake (the link exists) but the frozen
  // application has not observed the completion yet.
  EXPECT_FALSE(called);
  EXPECT_TRUE(sim.linked(a, b));
  sim.unblock(a);
  sim.run_until_quiescent();
  EXPECT_TRUE(called);
  EXPECT_TRUE(result);
}

TEST_F(SimulatorTest, SendFailureBuffersWhileBlockedAndReplaysOnUnblock) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.crash(b);
  sim.env(a).send(b, wire::Join{});
  sim.block(a);  // freezes before the RST comes back
  sim.run_until_quiescent();
  EXPECT_TRUE(ha.failures.empty());
  EXPECT_EQ(sim.sends_failed(), 1u);  // counted when the RST arrived
  sim.unblock(a);
  sim.run_until_quiescent();
  ASSERT_EQ(ha.failures.size(), 1u);
  EXPECT_EQ(ha.failures[0].to, b);
  EXPECT_EQ(sim.sends_failed(), 1u);  // the replay is not double-counted
}

TEST_F(SimulatorTest, BlockedNodeStillAcceptsInboundDials) {
  // Blocking freezes the application, not the peer's kernel handshake: an
  // inbound dial from a live node still succeeds (§5.5 — senders only give
  // up once the flow-control window toward the frozen node fills).
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.block(b);
  bool ok = false;
  sim.env(a).connect(b, [&](bool result) { ok = result; });
  sim.run_until_quiescent();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(sim.linked(a, b));
}

TEST_F(SimulatorTest, ConnectToAliveSucceeds) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  bool called = false;
  bool result = false;
  sim.env(a).connect(b, [&](bool ok) {
    called = true;
    result = ok;
  });
  EXPECT_FALSE(called);  // asynchronous
  sim.run_until_quiescent();
  EXPECT_TRUE(called);
  EXPECT_TRUE(result);
  EXPECT_TRUE(sim.linked(a, b));
}

TEST_F(SimulatorTest, ConnectToCrashedFails) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  sim.crash(b);
  bool result = true;
  sim.env(a).connect(b, [&](bool ok) { result = ok; });
  sim.run_until_quiescent();
  EXPECT_FALSE(result);
  EXPECT_FALSE(sim.linked(a, b));
}

TEST_F(SimulatorTest, ScheduleRunsTask) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  int runs = 0;
  sim.env(a).schedule(milliseconds(5), [&] { ++runs; });
  sim.run_until_quiescent();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST_F(SimulatorTest, ScheduledTaskDroppedIfNodeCrashes) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  int runs = 0;
  sim.env(a).schedule(milliseconds(5), [&] { ++runs; });
  sim.crash(a);
  sim.run_until_quiescent();
  EXPECT_EQ(runs, 0);
}

TEST_F(SimulatorTest, TimeAdvancesMonotonically) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  std::vector<TimePoint> times;
  for (int i = 0; i < 10; ++i) {
    sim.env(a).send(b, wire::Gossip{static_cast<std::uint64_t>(i), 0, 0});
  }
  TimePoint last = -1;
  while (sim.step()) {
    EXPECT_GE(sim.now(), last);
    last = sim.now();
  }
}

TEST_F(SimulatorTest, FifoAmongEqualTimestamps) {
  // With zero latency, messages between the same pair keep send order.
  config_.latency_min = 0;
  config_.latency_max = 0;
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  for (std::uint64_t i = 0; i < 20; ++i) {
    sim.env(a).send(b, wire::Gossip{i, 0, 0});
  }
  sim.run_until_quiescent();
  ASSERT_EQ(hb.deliveries.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(std::get<wire::Gossip>(hb.deliveries[i].msg).msg_id, i);
  }
}

TEST_F(SimulatorTest, CountersTrackTraffic) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  sim.env(a).send(b, wire::Join{});
  sim.env(a).send(b, wire::Disconnect{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.messages_sent(), 2u);
  EXPECT_EQ(sim.messages_delivered(), 2u);
  EXPECT_EQ(sim.sent_by_type()[wire::type_tag(wire::Message{wire::Join{}})],
            1u);
  sim.reset_counters();
  EXPECT_EQ(sim.messages_sent(), 0u);
}

TEST_F(SimulatorTest, ByteCountersChargeWireCostPerSend) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  const wire::Message join = wire::Join{};
  const wire::Message gossip = wire::Gossip{7, 0, 128};
  sim.env(a).send(b, join);
  sim.env(a).send(b, gossip);
  sim.run_until_quiescent();
  EXPECT_EQ(sim.bytes_sent(), wire::wire_cost(join) + wire::wire_cost(gossip));
  EXPECT_EQ(sim.bytes_by_type()[wire::type_tag(gossip)],
            wire::wire_cost(gossip));
  sim.reset_counters();
  EXPECT_EQ(sim.bytes_sent(), 0u);
  EXPECT_EQ(sim.bytes_by_type()[wire::type_tag(join)], 0u);
}

TEST_F(SimulatorTest, ConnectionCounterCountsEstablishmentsOnce) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  const NodeId c = sim.add_node(&h);
  // Two sends over one (implicitly dialed) link: one handshake.
  sim.env(a).send(b, wire::Join{});
  sim.env(a).send(b, wire::Disconnect{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.connections_opened(), 1u);
  // Explicit connect to a fresh peer: a second handshake.
  bool connected = false;
  sim.env(a).connect(c, [&](bool ok) { connected = ok; });
  sim.run_until_quiescent();
  EXPECT_TRUE(connected);
  EXPECT_EQ(sim.connections_opened(), 2u);
  // connect() over the already-open link is free.
  sim.env(a).connect(c, [](bool) {});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.connections_opened(), 2u);
  // Failed sends never open connections.
  sim.crash(c);
  sim.env(a).send(c, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.connections_opened(), 2u);
}

// --- Bounded (watermark) drains ---------------------------------------------

TEST_F(SimulatorTest, BoundedDrainRetiresWatermarkedCascades) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  const std::uint64_t mark = sim.next_event_seq();
  sim.env(a).send(b, wire::Join{});
  const std::uint64_t processed = sim.run_until_quiescent_from(mark);
  EXPECT_EQ(processed, 1u);
  ASSERT_EQ(hb.deliveries.size(), 1u);
  EXPECT_TRUE(sim.queue_empty());
}

TEST_F(SimulatorTest, BoundedDrainLeavesPreWatermarkEventsQueued) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  // A long-delay timer scheduled before the watermark must survive the
  // bounded drain untouched (that is the whole point: incremental
  // quiescence does not retire unrelated pending work).
  int timer_runs = 0;
  sim.env(a).schedule(milliseconds(100), [&] { ++timer_runs; });
  const std::uint64_t mark = sim.next_event_seq();
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent_from(mark);
  EXPECT_EQ(hb.deliveries.size(), 1u);
  EXPECT_EQ(timer_runs, 0);
  EXPECT_FALSE(sim.queue_empty());
  sim.run_until_quiescent();
  EXPECT_EQ(timer_runs, 1);
}

TEST_F(SimulatorTest, BoundedDrainRunsEarlierEventsThatFallDueFirst) {
  // A pre-watermark event due *before* the watermarked traffic settles is
  // processed in time order (the drain never reorders the simulation); only
  // strictly later pre-watermark events stay queued.
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  int early = 0;
  int late = 0;
  sim.env(a).schedule(0, [&] { ++early; });
  sim.env(a).schedule(milliseconds(100), [&] { ++late; });
  const std::uint64_t mark = sim.next_event_seq();
  sim.env(a).send(b, wire::Join{});  // delivers within [0.5ms, 1.5ms]
  sim.run_until_quiescent_from(mark);
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(hb.deliveries.size(), 1u);
}

TEST_F(SimulatorTest, BoundedDrainMatchesFullDrainOnEmptyQueue) {
  // With an empty pre-existing queue the bounded drain is event-for-event
  // identical to run_until_quiescent() — the property Network::build relies
  // on to keep the serial bootstrap bit-identical.
  auto run_digest = [&](bool bounded) {
    Simulator sim(config_);
    RecordingHandler ha;
    RecordingHandler hb;
    const NodeId a = sim.add_node(&ha);
    const NodeId b = sim.add_node(&hb);
    for (std::uint64_t i = 0; i < 20; ++i) {
      const std::uint64_t mark = sim.next_event_seq();
      sim.env(a).send(b, wire::Gossip{i, 0, 0});
      sim.env(b).send(a, wire::Gossip{100 + i, 0, 0});
      if (bounded) {
        sim.run_until_quiescent_from(mark);
      } else {
        sim.run_until_quiescent();
      }
    }
    return std::pair{sim.now(), sim.messages_delivered()};
  };
  EXPECT_EQ(run_digest(true), run_digest(false));
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  auto run_digest = [&]() {
    Simulator sim(config_);
    RecordingHandler ha;
    RecordingHandler hb;
    const NodeId a = sim.add_node(&ha);
    const NodeId b = sim.add_node(&hb);
    for (std::uint64_t i = 0; i < 50; ++i) {
      sim.env(a).send(b, wire::Gossip{i, 0, 0});
      sim.env(b).send(a, wire::Gossip{100 + i, 0, 0});
    }
    sim.run_until_quiescent();
    return sim.now();
  };
  EXPECT_EQ(run_digest(), run_digest());
}

TEST_F(SimulatorTest, PerNodeRngStreamsDiffer) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (sim.env(a).rng().next() == sim.env(b).rng().next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST_F(SimulatorTest, AliveCountTracksCrashes) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  sim.add_node(&h);
  sim.add_node(&h);
  EXPECT_EQ(sim.alive_count(), 3u);
  sim.crash(a);
  EXPECT_EQ(sim.alive_count(), 2u);
  sim.crash(a);  // idempotent
  EXPECT_EQ(sim.alive_count(), 2u);
  EXPECT_FALSE(sim.alive(a));
}

TEST_F(SimulatorTest, FixedLatencyExactDeliveryTime) {
  config_.latency_min = milliseconds(3);
  config_.latency_max = milliseconds(3);
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.now(), milliseconds(3));
}

TEST_F(SimulatorTest, InvertedLatencyBandRejectedAtConstruction) {
  config_.latency_min = milliseconds(5);
  config_.latency_max = milliseconds(2);
  EXPECT_THROW(Simulator{config_}, CheckError);
}

TEST_F(SimulatorTest, NegativeLatencyMinRejectedAtConstruction) {
  config_.latency_min = -milliseconds(1);
  config_.latency_max = milliseconds(2);
  EXPECT_THROW(Simulator{config_}, CheckError);
}

TEST_F(SimulatorTest, SetLatencyRejectsInvertedBandAndKeepsOldBand) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  EXPECT_THROW(sim.set_latency(milliseconds(9), milliseconds(1)), CheckError);
  EXPECT_THROW(sim.set_latency(-milliseconds(1), milliseconds(1)), CheckError);
  // The failed calls must not have disturbed the configured band.
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_GE(sim.now(), config_.latency_min);
  EXPECT_LE(sim.now(), config_.latency_max);
}

TEST_F(SimulatorTest, SetLatencyZeroWidthBandIsValid) {
  // min == max is a legitimate degenerate band (deterministic-latency
  // experiments); draw_latency must not divide/modulo by the zero width.
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  sim.set_latency(milliseconds(7), milliseconds(7));
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.now(), milliseconds(7));
  ASSERT_EQ(h.deliveries.size(), 1u);
}

TEST_F(SimulatorTest, EventQueueKindSelectableFromConfig) {
  config_.event_queue = EventQueueKind::kHeap;
  Simulator heap_sim(config_);
  EXPECT_STREQ(heap_sim.event_queue_name(), "heap");
  config_.event_queue = EventQueueKind::kCalendar;
  Simulator cal_sim(config_);
  EXPECT_STREQ(cal_sim.event_queue_name(), "calendar");
}

}  // namespace
}  // namespace hyparview::sim
