#include "hyparview/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hyparview::sim {
namespace {

/// Records every upcall for assertions.
class RecordingHandler final : public membership::Endpoint {
 public:
  struct Delivery {
    NodeId from;
    wire::Message msg;
  };
  struct Failure {
    NodeId to;
    wire::Message msg;
  };

  void deliver(const NodeId& from, const wire::Message& msg) override {
    deliveries.push_back({from, msg});
  }
  void send_failed(const NodeId& to, const wire::Message& msg) override {
    failures.push_back({to, msg});
  }
  void link_closed(const NodeId& peer) override {
    closed_links.push_back(peer);
  }

  std::vector<Delivery> deliveries;
  std::vector<Failure> failures;
  std::vector<NodeId> closed_links;
};

class SimulatorTest : public ::testing::Test {
 protected:
  SimConfig config_{};
};

TEST_F(SimulatorTest, AddNodesAssignsDenseIndices) {
  Simulator sim(config_);
  RecordingHandler h;
  EXPECT_EQ(sim.add_node(&h), NodeId::from_index(0));
  EXPECT_EQ(sim.add_node(&h), NodeId::from_index(1));
  EXPECT_EQ(sim.node_count(), 2u);
  EXPECT_EQ(sim.alive_count(), 2u);
}

TEST_F(SimulatorTest, DeliversMessageWithLatency) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);

  sim.env(a).send(b, wire::Join{});
  EXPECT_TRUE(hb.deliveries.empty());  // asynchronous
  sim.run_until_quiescent();
  ASSERT_EQ(hb.deliveries.size(), 1u);
  EXPECT_EQ(hb.deliveries[0].from, a);
  EXPECT_TRUE(std::holds_alternative<wire::Join>(hb.deliveries[0].msg));
  EXPECT_GE(sim.now(), config_.latency_min);
  EXPECT_LE(sim.now(), config_.latency_max);
}

TEST_F(SimulatorTest, SendOpensSymmetricLink) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  EXPECT_FALSE(sim.linked(a, b));
  sim.env(a).send(b, wire::Join{});
  EXPECT_TRUE(sim.linked(a, b));
  EXPECT_TRUE(sim.linked(b, a));
}

TEST_F(SimulatorTest, DisconnectClosesLocallyThenNotifiesRemote) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.env(b).disconnect(a);
  // b's side closes immediately; a still holds a half-open link until the
  // FIN notification is dispatched.
  EXPECT_FALSE(sim.linked(b, a) && !sim.linked(a, b));
  sim.run_until_quiescent();
  EXPECT_FALSE(sim.linked(a, b));
  EXPECT_FALSE(sim.linked(b, a));
  ASSERT_EQ(ha.closed_links.size(), 1u);
  EXPECT_EQ(ha.closed_links[0], b);
}

TEST_F(SimulatorTest, MutualDisconnectSuppressesNotifications) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  // Both ends close (the polite DISCONNECT pattern): nobody is notified.
  sim.env(a).disconnect(b);
  sim.env(b).disconnect(a);
  sim.run_until_quiescent();
  EXPECT_TRUE(ha.closed_links.empty());
  EXPECT_TRUE(hb.closed_links.empty());
}

TEST_F(SimulatorTest, CloseNotificationArrivesAfterInFlightMessages) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  // Message then immediate close: the data must be processed first, like a
  // FIN queued behind the stream.
  sim.env(a).send(b, wire::Disconnect{});
  sim.env(a).disconnect(b);
  bool saw_msg_first = false;
  while (sim.step()) {
    if (!hb.deliveries.empty() && hb.closed_links.empty()) {
      saw_msg_first = true;
    }
  }
  EXPECT_TRUE(saw_msg_first);
  ASSERT_EQ(hb.deliveries.size(), 1u);
}

TEST_F(SimulatorTest, SendToCrashedNodeFailsBack) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.crash(b);
  sim.env(a).send(b, wire::Neighbor{true});
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  ASSERT_EQ(ha.failures.size(), 1u);
  EXPECT_EQ(ha.failures[0].to, b);
  EXPECT_TRUE(std::holds_alternative<wire::Neighbor>(ha.failures[0].msg));
  EXPECT_EQ(sim.sends_failed(), 1u);
}

TEST_F(SimulatorTest, CrashWhileInFlightAlsoFailsBack) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.crash(b);  // after send, before delivery
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  ASSERT_EQ(ha.failures.size(), 1u);
}

TEST_F(SimulatorTest, DetectOnSendDoesNotNotifyPeersOfCrash) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  sim.crash(b);
  sim.run_until_quiescent();
  EXPECT_TRUE(ha.closed_links.empty());
}

TEST_F(SimulatorTest, NotifyOnCrashClosesLinks) {
  config_.notify_on_crash = true;
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  sim.crash(b);
  sim.run_until_quiescent();
  ASSERT_EQ(ha.closed_links.size(), 1u);
  EXPECT_EQ(ha.closed_links[0], b);
}

TEST_F(SimulatorTest, CrashedNodeSendsNothing) {
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  sim.crash(a);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_TRUE(hb.deliveries.empty());
  EXPECT_EQ(sim.messages_sent(), 0u);
}

TEST_F(SimulatorTest, ConnectToAliveSucceeds) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  bool called = false;
  bool result = false;
  sim.env(a).connect(b, [&](bool ok) {
    called = true;
    result = ok;
  });
  EXPECT_FALSE(called);  // asynchronous
  sim.run_until_quiescent();
  EXPECT_TRUE(called);
  EXPECT_TRUE(result);
  EXPECT_TRUE(sim.linked(a, b));
}

TEST_F(SimulatorTest, ConnectToCrashedFails) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  sim.crash(b);
  bool result = true;
  sim.env(a).connect(b, [&](bool ok) { result = ok; });
  sim.run_until_quiescent();
  EXPECT_FALSE(result);
  EXPECT_FALSE(sim.linked(a, b));
}

TEST_F(SimulatorTest, ScheduleRunsTask) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  int runs = 0;
  sim.env(a).schedule(milliseconds(5), [&] { ++runs; });
  sim.run_until_quiescent();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST_F(SimulatorTest, ScheduledTaskDroppedIfNodeCrashes) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  int runs = 0;
  sim.env(a).schedule(milliseconds(5), [&] { ++runs; });
  sim.crash(a);
  sim.run_until_quiescent();
  EXPECT_EQ(runs, 0);
}

TEST_F(SimulatorTest, TimeAdvancesMonotonically) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  std::vector<TimePoint> times;
  for (int i = 0; i < 10; ++i) {
    sim.env(a).send(b, wire::Gossip{static_cast<std::uint64_t>(i), 0, 0});
  }
  TimePoint last = -1;
  while (sim.step()) {
    EXPECT_GE(sim.now(), last);
    last = sim.now();
  }
}

TEST_F(SimulatorTest, FifoAmongEqualTimestamps) {
  // With zero latency, messages between the same pair keep send order.
  config_.latency_min = 0;
  config_.latency_max = 0;
  Simulator sim(config_);
  RecordingHandler ha;
  RecordingHandler hb;
  const NodeId a = sim.add_node(&ha);
  const NodeId b = sim.add_node(&hb);
  for (std::uint64_t i = 0; i < 20; ++i) {
    sim.env(a).send(b, wire::Gossip{i, 0, 0});
  }
  sim.run_until_quiescent();
  ASSERT_EQ(hb.deliveries.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(std::get<wire::Gossip>(hb.deliveries[i].msg).msg_id, i);
  }
}

TEST_F(SimulatorTest, CountersTrackTraffic) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  sim.env(a).send(b, wire::Join{});
  sim.env(a).send(b, wire::Disconnect{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.messages_sent(), 2u);
  EXPECT_EQ(sim.messages_delivered(), 2u);
  EXPECT_EQ(sim.sent_by_type()[wire::type_tag(wire::Message{wire::Join{}})],
            1u);
  sim.reset_counters();
  EXPECT_EQ(sim.messages_sent(), 0u);
}

TEST_F(SimulatorTest, ByteCountersChargeWireCostPerSend) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  const wire::Message join = wire::Join{};
  const wire::Message gossip = wire::Gossip{7, 0, 128};
  sim.env(a).send(b, join);
  sim.env(a).send(b, gossip);
  sim.run_until_quiescent();
  EXPECT_EQ(sim.bytes_sent(), wire::wire_cost(join) + wire::wire_cost(gossip));
  EXPECT_EQ(sim.bytes_by_type()[wire::type_tag(gossip)],
            wire::wire_cost(gossip));
  sim.reset_counters();
  EXPECT_EQ(sim.bytes_sent(), 0u);
  EXPECT_EQ(sim.bytes_by_type()[wire::type_tag(join)], 0u);
}

TEST_F(SimulatorTest, ConnectionCounterCountsEstablishmentsOnce) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  const NodeId c = sim.add_node(&h);
  // Two sends over one (implicitly dialed) link: one handshake.
  sim.env(a).send(b, wire::Join{});
  sim.env(a).send(b, wire::Disconnect{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.connections_opened(), 1u);
  // Explicit connect to a fresh peer: a second handshake.
  bool connected = false;
  sim.env(a).connect(c, [&](bool ok) { connected = ok; });
  sim.run_until_quiescent();
  EXPECT_TRUE(connected);
  EXPECT_EQ(sim.connections_opened(), 2u);
  // connect() over the already-open link is free.
  sim.env(a).connect(c, [](bool) {});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.connections_opened(), 2u);
  // Failed sends never open connections.
  sim.crash(c);
  sim.env(a).send(c, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.connections_opened(), 2u);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  auto run_digest = [&]() {
    Simulator sim(config_);
    RecordingHandler ha;
    RecordingHandler hb;
    const NodeId a = sim.add_node(&ha);
    const NodeId b = sim.add_node(&hb);
    for (std::uint64_t i = 0; i < 50; ++i) {
      sim.env(a).send(b, wire::Gossip{i, 0, 0});
      sim.env(b).send(a, wire::Gossip{100 + i, 0, 0});
    }
    sim.run_until_quiescent();
    return sim.now();
  };
  EXPECT_EQ(run_digest(), run_digest());
}

TEST_F(SimulatorTest, PerNodeRngStreamsDiffer) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (sim.env(a).rng().next() == sim.env(b).rng().next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST_F(SimulatorTest, AliveCountTracksCrashes) {
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  sim.add_node(&h);
  sim.add_node(&h);
  EXPECT_EQ(sim.alive_count(), 3u);
  sim.crash(a);
  EXPECT_EQ(sim.alive_count(), 2u);
  sim.crash(a);  // idempotent
  EXPECT_EQ(sim.alive_count(), 2u);
  EXPECT_FALSE(sim.alive(a));
}

TEST_F(SimulatorTest, FixedLatencyExactDeliveryTime) {
  config_.latency_min = milliseconds(3);
  config_.latency_max = milliseconds(3);
  Simulator sim(config_);
  RecordingHandler h;
  const NodeId a = sim.add_node(&h);
  const NodeId b = sim.add_node(&h);
  sim.env(a).send(b, wire::Join{});
  sim.run_until_quiescent();
  EXPECT_EQ(sim.now(), milliseconds(3));
}

}  // namespace
}  // namespace hyparview::sim
