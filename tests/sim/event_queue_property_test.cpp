// Property suite for the pluggable event scheduler (ISSUE 6 tentpole).
//
// The contract under test: the CalendarQueue pops the exact same (at, seq)
// sequence as the MinHeap for any workload the simulator can generate —
// monotonic-in-time pushes, same-timestamp FIFO ties, far-horizon timers,
// latency-band spikes that re-bucket the wheel mid-run, and bounded-drain
// watermark scans. Bit-identical pop order is what makes
// HPV_EVENT_QUEUE=heap|calendar an apples-to-apples A/B at a fixed seed.
#include "hyparview/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hyparview/common/rng.hpp"
#include "hyparview/sim/calendar_queue.hpp"
#include "hyparview/sim/min_heap.hpp"
#include "hyparview/sim/simulator.hpp"

namespace hyparview::sim {
namespace {

struct Ev {
  TimePoint at = 0;
  std::uint64_t seq = 0;
};

using HeapQueue = MinHeap<Ev, EventQueue<Ev>::AtSeqLess>;

/// Drives a calendar queue and a heap through one interleaved random
/// workload, asserting the popped (at, seq) streams never diverge.
///
/// Pushes honor the simulator's scheduling invariant (never before `now`,
/// the timestamp of the last dispatched event); everything else — burst
/// sizes, far-timer fraction, spike cadence — is randomized per trial.
void run_mixed_trial(Rng& rng, Duration initial_band, int steps) {
  CalendarQueue<Ev> calendar(initial_band);
  HeapQueue heap;

  TimePoint now = 0;
  std::uint64_t seq = 0;
  Duration band = initial_band;

  const auto push_both = [&](TimePoint at) {
    calendar.push({at, seq});
    heap.push({at, seq});
    ++seq;
  };

  for (int step = 0; step < steps; ++step) {
    const std::uint64_t op = rng.below(100);
    if (op < 55) {
      // Push burst: mostly near-horizon arrivals inside the live band, a
      // tail of long timers far beyond the wheel year (failure detection,
      // harness alarms), and occasional at == now immediates + exact ties.
      const int burst = 1 + static_cast<int>(rng.below(8));
      for (int i = 0; i < burst; ++i) {
        const std::uint64_t shape = rng.below(10);
        TimePoint at = now;
        if (shape < 6) {
          at = now + static_cast<Duration>(
                         rng.below(static_cast<std::uint64_t>(band) + 1));
        } else if (shape < 8) {
          at = now;  // immediate: same-timestamp FIFO tie break
        } else {
          at = now + band * static_cast<Duration>(2 + rng.below(4000));
        }
        push_both(at);
      }
    } else if (op < 85) {
      // Pop burst: both structures must yield the identical stream.
      std::size_t burst = 1 + rng.below(8);
      while (burst-- > 0 && !heap.empty()) {
        const Ev a = calendar.pop();
        const Ev b = heap.pop();
        ASSERT_EQ(a.at, b.at) << "divergence at seq " << b.seq;
        ASSERT_EQ(a.seq, b.seq) << "tie-break divergence at t=" << b.at;
        ASSERT_GE(a.at, now) << "pop went backwards in time";
        now = a.at;
      }
      ASSERT_EQ(calendar.size(), heap.size());
    } else if (op < 93) {
      // Latency spike (set_latency fault injection): the calendar re-derives
      // its bucket width and re-buckets in place; order must survive.
      band = 1 + static_cast<Duration>(rng.below(200'000));
      calendar.set_band(0, band);
    } else {
      // Bounded-drain watermark accounting: for_each must see exactly the
      // pending set (same count of events at-or-above any watermark).
      const std::uint64_t watermark = rng.below(seq + 1);
      std::uint64_t cal_count = 0;
      calendar.for_each([&](const Ev& ev) {
        if (ev.seq >= watermark) ++cal_count;
      });
      std::uint64_t heap_count = 0;
      for (const Ev& ev : heap.items()) {
        if (ev.seq >= watermark) ++heap_count;
      }
      ASSERT_EQ(cal_count, heap_count);
    }
  }

  // Full drain: every remaining event, in lockstep.
  while (!heap.empty()) {
    const Ev a = calendar.pop();
    const Ev b = heap.pop();
    ASSERT_EQ(a.at, b.at);
    ASSERT_EQ(a.seq, b.seq);
    ASSERT_GE(a.at, now);
    now = a.at;
  }
  ASSERT_TRUE(calendar.empty());
}

TEST(EventQueueProperty, CalendarMatchesHeapUnderMixedWorkload) {
  Rng rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    const Duration band = 1 + static_cast<Duration>(rng.below(50'000));
    run_mixed_trial(rng, band, 400);
  }
}

TEST(EventQueueProperty, CalendarMatchesHeapWithDegenerateBands) {
  Rng rng(7);
  // band_max == 0 (zero-width latency) collapses the wheel to 1-tick
  // buckets; the structure must still order correctly.
  run_mixed_trial(rng, 0, 300);
  run_mixed_trial(rng, 1, 300);
}

TEST(EventQueueProperty, FarTimersAcrossEmptyYears) {
  // Sparse far-only workload: every event lands beyond the wheel horizon,
  // so every pop exercises the jump-to-earliest-far path instead of
  // stepping bucket by bucket through empty years.
  CalendarQueue<Ev> calendar(100);
  HeapQueue heap;
  Rng rng(99);
  TimePoint at = 0;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    at += 1'000'000 + static_cast<Duration>(rng.below(1'000'000'000));
    calendar.push({at, seq});
    heap.push({at, seq});
  }
  while (!heap.empty()) {
    const Ev a = calendar.pop();
    const Ev b = heap.pop();
    ASSERT_EQ(a.at, b.at);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(EventQueueProperty, WrapMigrationInstallsFarEventsInTime) {
  // Adversarial schedule for the wrap sweep: an event just past the wheel
  // horizon at push time (so it starts in the far list), then enough
  // near-horizon traffic to walk the cursor right up to — and past — the
  // far event's window. The wrap sweep must install it before its window
  // is reached, or it pops late (out of order vs the heap).
  for (const Duration band : {Duration{1}, Duration{37}, Duration{4096}}) {
    CalendarQueue<Ev> calendar(band);
    HeapQueue heap;
    std::uint64_t seq = 0;
    const Duration width = calendar.bucket_width();
    const TimePoint just_past_horizon =
        width * static_cast<Duration>(calendar.bucket_count() + 2);
    calendar.push({just_past_horizon, seq});
    heap.push({just_past_horizon, seq});
    ++seq;
    // Dense near traffic: one event per bucket width, well past the far
    // event's timestamp, so the cursor crosses the wrap boundary while the
    // far event is due in between.
    for (TimePoint t = 0;
         t < just_past_horizon + width * 64; t += std::max<Duration>(1, width)) {
      calendar.push({t, seq});
      heap.push({t, seq});
      ++seq;
    }
    while (!heap.empty()) {
      const Ev a = calendar.pop();
      const Ev b = heap.pop();
      ASSERT_EQ(a.at, b.at) << "band=" << band;
      ASSERT_EQ(a.seq, b.seq) << "band=" << band;
    }
  }
}

TEST(EventQueueProperty, WrapperDispatchesToConfiguredStructure) {
  EventQueue<Ev> heap_q(EventQueueKind::kHeap, 1000);
  EventQueue<Ev> cal_q(EventQueueKind::kCalendar, 1000);
  EXPECT_STREQ(heap_q.name(), "heap");
  EXPECT_STREQ(cal_q.name(), "calendar");
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const auto at = static_cast<TimePoint>((seq * 7919) % 5000);
    // Out-of-order pushes are fine before any pop (now == 0).
    heap_q.push({at, seq});
    cal_q.push({at, seq});
  }
  ASSERT_EQ(heap_q.size(), cal_q.size());
  while (!heap_q.empty()) {
    const Ev a = cal_q.pop();
    const Ev b = heap_q.pop();
    ASSERT_EQ(a.at, b.at);
    ASSERT_EQ(a.seq, b.seq);
  }
}

TEST(EventQueueProperty, EnvSelectionResolvesAndRejectsUnknown) {
  const char* saved = std::getenv("HPV_EVENT_QUEUE");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("HPV_EVENT_QUEUE");
  EXPECT_EQ(resolve_event_queue_kind(EventQueueKind::kAuto),
            EventQueueKind::kCalendar);
  ::setenv("HPV_EVENT_QUEUE", "heap", 1);
  EXPECT_EQ(resolve_event_queue_kind(EventQueueKind::kAuto),
            EventQueueKind::kHeap);
  // Explicit config wins over the env knob.
  EXPECT_EQ(resolve_event_queue_kind(EventQueueKind::kCalendar),
            EventQueueKind::kCalendar);
  ::setenv("HPV_EVENT_QUEUE", "calendar", 1);
  EXPECT_EQ(resolve_event_queue_kind(EventQueueKind::kAuto),
            EventQueueKind::kCalendar);
  // An unknown value must fail the run, not silently measure the wrong
  // structure.
  ::setenv("HPV_EVENT_QUEUE", "splay", 1);
  EXPECT_THROW(resolve_event_queue_kind(EventQueueKind::kAuto), CheckError);

  if (saved != nullptr) {
    ::setenv("HPV_EVENT_QUEUE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("HPV_EVENT_QUEUE");
  }
}

/// Endpoint that relays every delivery to a pseudo-random peer a bounded
/// number of times — enough traffic shape (fan-in ties, cascades) to catch
/// an ordering divergence at the simulator level.
class RelayEndpoint final : public membership::Endpoint {
 public:
  RelayEndpoint(Simulator* sim, std::uint32_t self, std::uint32_t n,
                std::uint64_t seed)
      : sim_(sim), self_(self), n_(n), rng_(seed) {}

  void deliver(const NodeId& from, const wire::Message& msg) override {
    (void)from;
    (void)msg;
    ++deliveries;
    if (hops_left_ > 0) {
      --hops_left_;
      const auto peer = static_cast<std::uint32_t>(rng_.below(n_));
      if (peer != self_) {
        sim_->env(NodeId::from_index(self_))
            .send(NodeId::from_index(peer), wire::Join{});
      }
    }
  }
  void send_failed(const NodeId&, const wire::Message&) override {
    ++failures;
  }
  void link_closed(const NodeId&) override { ++closes; }

  void arm(int hops) { hops_left_ += hops; }

  std::uint64_t deliveries = 0;
  std::uint64_t failures = 0;
  std::uint64_t closes = 0;

 private:
  Simulator* sim_;
  std::uint32_t self_;
  std::uint32_t n_;
  Rng rng_;
  int hops_left_ = 0;
};

struct SimTrace {
  std::uint64_t events = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  TimePoint final_now = 0;
  std::vector<std::uint64_t> per_node_deliveries;

  bool operator==(const SimTrace&) const = default;
};

/// Runs one scripted relay workload — watermark drains, a latency spike, a
/// crash — and returns every observable counter.
SimTrace run_scripted_sim(EventQueueKind kind) {
  constexpr std::uint32_t kNodes = 24;
  SimConfig config;
  config.event_queue = kind;
  config.seed = 4242;
  Simulator sim(config);

  std::vector<std::unique_ptr<RelayEndpoint>> endpoints;
  endpoints.reserve(kNodes);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    endpoints.push_back(
        std::make_unique<RelayEndpoint>(&sim, i, kNodes, 1000 + i));
    sim.add_node(endpoints.back().get());
  }

  for (int round = 0; round < 6; ++round) {
    const std::uint64_t watermark = sim.next_event_seq();
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      endpoints[i]->arm(4);
      const std::uint32_t peer =
          (i * 7 + static_cast<std::uint32_t>(round)) % kNodes;
      if (peer == i) continue;
      sim.env(NodeId::from_index(i))
          .send(NodeId::from_index(peer), wire::Join{});
    }
    if (round == 2) sim.set_latency(milliseconds(5), milliseconds(40));
    if (round == 4) sim.crash(NodeId::from_index(3));
    // Alternate full drains with bounded watermark drains so both paths
    // run on both structures.
    if (round % 2 == 0) {
      sim.run_until_quiescent();
    } else {
      sim.run_until_quiescent_from(watermark);
    }
  }
  sim.run_until_quiescent();

  SimTrace trace;
  trace.events = sim.events_processed();
  trace.sent = sim.messages_sent();
  trace.delivered = sim.messages_delivered();
  trace.bytes = sim.bytes_sent();
  trace.final_now = sim.now();
  for (const auto& ep : endpoints) {
    trace.per_node_deliveries.push_back(ep->deliveries);
  }
  return trace;
}

TEST(EventQueueProperty, SimulatorRunsBitIdenticalAcrossQueues) {
  const SimTrace heap_trace = run_scripted_sim(EventQueueKind::kHeap);
  const SimTrace calendar_trace = run_scripted_sim(EventQueueKind::kCalendar);
  EXPECT_EQ(heap_trace, calendar_trace);
  EXPECT_GT(heap_trace.events, 0u);
  EXPECT_GT(heap_trace.delivered, 0u);
}

}  // namespace
}  // namespace hyparview::sim
