#include "hyparview/sim/min_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "hyparview/common/rng.hpp"

namespace hyparview::sim {
namespace {

struct IntLess {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(MinHeapTest, EmptyInitially) {
  MinHeap<int, IntLess> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

TEST(MinHeapTest, PushPopOrdered) {
  MinHeap<int, IntLess> heap;
  for (const int v : {5, 1, 4, 2, 3}) heap.push(v);
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.pop());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(MinHeapTest, TopDoesNotRemove) {
  MinHeap<int, IntLess> heap;
  heap.push(7);
  heap.push(3);
  EXPECT_EQ(heap.top(), 3);
  EXPECT_EQ(heap.size(), 2u);
}

TEST(MinHeapTest, HandlesDuplicates) {
  MinHeap<int, IntLess> heap;
  for (const int v : {2, 2, 1, 1, 3}) heap.push(v);
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.pop());
  EXPECT_EQ(out, (std::vector<int>{1, 1, 2, 2, 3}));
}

TEST(MinHeapTest, RandomizedAgainstSort) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    MinHeap<int, IntLess> heap;
    std::vector<int> reference;
    const int n = 1 + static_cast<int>(rng.below(200));
    for (int i = 0; i < n; ++i) {
      const int v = static_cast<int>(rng.below(1000));
      heap.push(v);
      reference.push_back(v);
    }
    std::sort(reference.begin(), reference.end());
    std::vector<int> out;
    while (!heap.empty()) out.push_back(heap.pop());
    EXPECT_EQ(out, reference);
  }
}

TEST(MinHeapTest, InterleavedPushPop) {
  MinHeap<int, IntLess> heap;
  heap.push(10);
  heap.push(5);
  EXPECT_EQ(heap.pop(), 5);
  heap.push(1);
  heap.push(7);
  EXPECT_EQ(heap.pop(), 1);
  EXPECT_EQ(heap.pop(), 7);
  EXPECT_EQ(heap.pop(), 10);
  EXPECT_TRUE(heap.empty());
}

TEST(MinHeapTest, MoveOnlyPayload) {
  struct PtrLess {
    bool operator()(const std::unique_ptr<int>& a,
                    const std::unique_ptr<int>& b) const {
      return *a < *b;
    }
  };
  MinHeap<std::unique_ptr<int>, PtrLess> heap;
  heap.push(std::make_unique<int>(3));
  heap.push(std::make_unique<int>(1));
  heap.push(std::make_unique<int>(2));
  EXPECT_EQ(*heap.pop(), 1);
  EXPECT_EQ(*heap.pop(), 2);
  EXPECT_EQ(*heap.pop(), 3);
}

TEST(MinHeapTest, ClearEmpties) {
  MinHeap<int, IntLess> heap;
  heap.push(1);
  heap.push(2);
  heap.clear();
  EXPECT_TRUE(heap.empty());
}

/// Simulator-event-shaped POD: primary key (time) with a sequence-number
/// tie break, exactly the ordering run_until_quiescent depends on for
/// deterministic replay.
struct FakeEvent {
  std::int64_t at = 0;
  std::uint64_t seq = 0;
};

struct FakeEventLess {
  bool operator()(const FakeEvent& a, const FakeEvent& b) const {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
};

TEST(MinHeapTest, TieBreaksBysequenceNumber) {
  MinHeap<FakeEvent, FakeEventLess> heap;
  // Same timestamp pushed out of sequence order; pops must come back in
  // push (seq) order, which is what makes simultaneous events deterministic.
  heap.push({5, 3});
  heap.push({5, 1});
  heap.push({2, 4});
  heap.push({5, 2});
  heap.push({2, 0});
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  while (!heap.empty()) {
    const FakeEvent ev = heap.pop();
    out.emplace_back(ev.at, ev.seq);
  }
  const std::vector<std::pair<std::int64_t, std::uint64_t>> expected = {
      {2, 0}, {2, 4}, {5, 1}, {5, 2}, {5, 3}};
  EXPECT_EQ(out, expected);
}

TEST(MinHeapTest, RandomizedTieBreakMatchesStableOrder) {
  Rng rng(11);
  MinHeap<FakeEvent, FakeEventLess> heap;
  std::vector<FakeEvent> reference;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    const auto at = static_cast<std::int64_t>(rng.below(10));  // many ties
    heap.push({at, seq});
    reference.push_back({at, seq});
  }
  std::sort(reference.begin(), reference.end(),
            [](const FakeEvent& a, const FakeEvent& b) {
              return FakeEventLess{}(a, b);
            });
  for (const FakeEvent& want : reference) {
    const FakeEvent got = heap.pop();
    EXPECT_EQ(got.at, want.at);
    EXPECT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(heap.empty());
}

/// Move-sensitive payload: self-move-assignment is observable (and counted),
/// the way real-world types — the EventLoop's TimerTask closures, any type
/// that releases resources before adopting the source's — are allowed to
/// clobber themselves on `x = std::move(x)`.
struct MoveSensitive {
  inline static int self_move_assigns = 0;

  explicit MoveSensitive(int v) : value(v) {}
  MoveSensitive(MoveSensitive&& other) noexcept : value(other.value) {
    other.value = -1;  // moved-from marker
  }
  MoveSensitive& operator=(MoveSensitive&& other) noexcept {
    if (this == &other) {
      ++self_move_assigns;  // a correct container never does this
      return *this;
    }
    value = other.value;
    other.value = -1;
    return *this;
  }
  MoveSensitive(const MoveSensitive&) = delete;
  MoveSensitive& operator=(const MoveSensitive&) = delete;

  int value;
};

struct MoveSensitiveLess {
  bool operator()(const MoveSensitive& a, const MoveSensitive& b) const {
    return a.value < b.value;
  }
};

TEST(MinHeapTest, PopNeverSelfMoveAssigns) {
  // Regression: pop() used to fill the root hole with `front() =
  // std::move(back())` even when size() == 1, where front and back alias —
  // a self-move-assignment the element type may clobber on.
  MoveSensitive::self_move_assigns = 0;
  MinHeap<MoveSensitive, MoveSensitiveLess> heap;

  // The single-element case is the one that aliased.
  heap.push(MoveSensitive(42));
  EXPECT_EQ(heap.pop().value, 42);
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(MoveSensitive::self_move_assigns, 0);

  // Draining any heap ends in the single-element case; interleave to cover
  // the repeated-last-pop path too.
  for (const int v : {9, 3, 7, 1, 5}) heap.push(MoveSensitive(v));
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.pop().value);
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5, 7, 9}));
  EXPECT_EQ(MoveSensitive::self_move_assigns, 0);
}

TEST(MinHeapTest, ReservePreservesContentsAndOrder) {
  MinHeap<int, IntLess> heap;
  heap.push(3);
  heap.push(1);
  heap.reserve(1024);
  heap.push(2);
  EXPECT_EQ(heap.pop(), 1);
  EXPECT_EQ(heap.pop(), 2);
  EXPECT_EQ(heap.pop(), 3);
}

}  // namespace
}  // namespace hyparview::sim
