#include "hyparview/sim/slot_pool.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace hyparview::sim {
namespace {

TEST(SlotPoolTest, PutReturnsDenseIndices) {
  SlotPool<int> pool;
  EXPECT_EQ(pool.put(10), 0u);
  EXPECT_EQ(pool.put(20), 1u);
  EXPECT_EQ(pool.put(30), 2u);
  EXPECT_EQ(pool[0], 10);
  EXPECT_EQ(pool[2], 30);
  EXPECT_EQ(pool.in_use(), 3u);
}

TEST(SlotPoolTest, TakeMovesOutAndRecyclesSlot) {
  SlotPool<std::string> pool;
  const auto i = pool.put("hello");
  EXPECT_EQ(pool.take(i), "hello");
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.free_count(), 1u);
  // The freed slot is reused before the slab grows.
  const auto j = pool.put("world");
  EXPECT_EQ(j, i);
  EXPECT_EQ(pool.capacity(), 1u);
}

TEST(SlotPoolTest, ReleaseRecyclesWithoutMoving) {
  SlotPool<int> pool;
  const auto i = pool.put(5);
  pool.release(i);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.put(6), i);
  EXPECT_EQ(pool[i], 6);
}

TEST(SlotPoolTest, LifoRecyclingKeepsSlabAtHighWaterMark) {
  SlotPool<int> pool;
  // Steady state: one payload in flight at a time → slab stays at size 1.
  std::uint32_t slot = pool.put(0);
  for (int round = 1; round < 1000; ++round) {
    EXPECT_EQ(pool.take(slot), round - 1);
    slot = pool.put(round);
  }
  EXPECT_EQ(pool.capacity(), 1u);
}

TEST(SlotPoolTest, MoveOnlyPayloads) {
  SlotPool<std::unique_ptr<int>> pool;
  const auto i = pool.put(std::make_unique<int>(42));
  auto out = pool.take(i);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SlotPoolTest, InterleavedPutTake) {
  SlotPool<int> pool;
  const auto a = pool.put(1);
  const auto b = pool.put(2);
  const auto c = pool.put(3);
  EXPECT_EQ(pool.take(b), 2);
  const auto d = pool.put(4);  // reuses b's slot (LIFO free list)
  EXPECT_EQ(d, b);
  EXPECT_EQ(pool.take(a), 1);
  EXPECT_EQ(pool.take(c), 3);
  EXPECT_EQ(pool.take(d), 4);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.capacity(), 3u);
}

TEST(SlotPoolTest, ReserveDoesNotChangeLogicalState) {
  SlotPool<int> pool;
  pool.reserve(128);
  EXPECT_EQ(pool.capacity(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.put(1), 0u);
}

}  // namespace
}  // namespace hyparview::sim
