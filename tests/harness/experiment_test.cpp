// Declarative Experiment specs vs the hand-rolled legacy loops, and the
// batched run_cycles contract.
//
// The experiment runner promises that a spec executed on the sim backend is
// *bit-identical* to the historical driver loop it replaced at a fixed seed
// (same RNG draws, same event sequence). These tests pin that promise for
// fig1- and fig2-shaped pipelines, for the healing experiment, and pin
// CycleOptions::batch: batch == 1 is event-for-event the per-node-drain
// path; batch > 1 (whole-round and multi-round) stays deterministic and
// semantically healthy.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "hyparview/harness/experiment.hpp"

namespace hyparview::harness {
namespace {

constexpr std::size_t kNodes = 150;
constexpr std::uint64_t kSeed = 7;

std::vector<double> phase_rels(const ExperimentResult& result,
                               const std::string& label) {
  return result.phase(label).reliabilities;
}

TEST(ExperimentSpecTest, Fig1SpecBitIdenticalToLegacyLoop) {
  const std::vector<std::size_t> fanouts = {2, 4, 6};
  constexpr std::size_t kMsgs = 6;

  // The hand-rolled fig1 pipeline, exactly as the legacy driver wrote it.
  Network legacy(
      NetworkConfig::defaults_for(ProtocolKind::kCyclon, kNodes, kSeed));
  legacy.build();
  legacy.run_cycles(10);
  std::vector<double> legacy_rels;
  for (const std::size_t fanout : fanouts) {
    legacy.set_fanout(fanout);
    for (std::size_t m = 0; m < kMsgs; ++m) {
      legacy_rels.push_back(legacy.broadcast_one().reliability());
    }
  }

  // The same pipeline as a declarative spec.
  auto cluster = Cluster::sim(
      NetworkConfig::defaults_for(ProtocolKind::kCyclon, kNodes, kSeed));
  Experiment spec("fig1_smoke");
  spec.stabilize(10);
  for (const std::size_t fanout : fanouts) {
    spec.set_fanout(fanout)
        .broadcast(kMsgs, "fanout" + std::to_string(fanout));
  }
  const ExperimentResult result = cluster.run(spec);

  std::vector<double> spec_rels;
  for (const std::size_t fanout : fanouts) {
    const auto rels = phase_rels(result, "fanout" + std::to_string(fanout));
    spec_rels.insert(spec_rels.end(), rels.begin(), rels.end());
  }
  EXPECT_EQ(legacy_rels, spec_rels);
  EXPECT_EQ(legacy.simulator().events_processed(),
            cluster->events_processed());
  EXPECT_EQ(result.events, cluster->events_processed());
}

TEST(ExperimentSpecTest, Fig2SpecBitIdenticalToLegacyLoop) {
  constexpr std::size_t kMsgs = 10;
  constexpr double kFraction = 0.5;

  // Legacy fig2 point: stabilized network, reserve, crash, measure.
  Network legacy(
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, kNodes, kSeed));
  legacy.build();
  legacy.run_cycles(10);
  legacy.recorder().reserve(kMsgs);
  legacy.fail_random_fraction(kFraction);
  std::vector<std::size_t> legacy_delivered;
  std::vector<double> legacy_rels;
  for (std::size_t m = 0; m < kMsgs; ++m) {
    const auto r = legacy.broadcast_one();
    legacy_delivered.push_back(r.delivered);
    legacy_rels.push_back(r.reliability());
  }

  auto cluster = Cluster::sim(
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, kNodes, kSeed));
  const ExperimentResult result = cluster.run(Experiment("fig2_smoke")
                                                  .stabilize(10)
                                                  .crash(kFraction)
                                                  .broadcast(kMsgs, "measure"));

  const PhaseResult& measure = result.phase("measure");
  std::vector<std::size_t> spec_delivered;
  for (const auto& r : measure.broadcasts) spec_delivered.push_back(r.delivered);
  EXPECT_EQ(legacy_delivered, spec_delivered);
  EXPECT_EQ(legacy_rels, measure.reliabilities);
  EXPECT_EQ(legacy.simulator().events_processed(),
            cluster->events_processed());
  EXPECT_EQ(legacy.alive_count(), cluster->alive_count());
}

TEST(ExperimentSpecTest, HealingExperimentBitIdenticalToLegacyLoop) {
  auto cfg =
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, kNodes, kSeed);
  HealingConfig hcfg;
  hcfg.fail_fraction = 0.6;
  hcfg.probes_per_cycle = 4;
  hcfg.max_cycles = 20;
  hcfg.stabilization_cycles = 10;

  // The historical hand-rolled healing loop (what run_healing_experiment
  // used to be before it became an Experiment spec).
  HealingResult legacy;
  {
    Network net(cfg);
    net.build();
    net.run_cycles(hcfg.stabilization_cycles);
    double sum = 0.0;
    for (std::size_t i = 0; i < hcfg.probes_per_cycle; ++i) {
      sum += net.broadcast_one().reliability();
    }
    legacy.baseline_reliability =
        sum / static_cast<double>(hcfg.probes_per_cycle);
    net.fail_random_fraction(hcfg.fail_fraction);
    for (std::size_t cycle = 1; cycle <= hcfg.max_cycles; ++cycle) {
      net.run_cycles(1);
      double probe_sum = 0.0;
      for (std::size_t i = 0; i < hcfg.probes_per_cycle; ++i) {
        probe_sum += net.broadcast_one().reliability();
      }
      const double reliability =
          probe_sum / static_cast<double>(hcfg.probes_per_cycle);
      legacy.per_cycle_reliability.push_back(reliability);
      if (reliability >= legacy.baseline_reliability) {
        legacy.cycles_to_heal = cycle;
        legacy.recovered = true;
        break;
      }
    }
    if (!legacy.recovered) legacy.cycles_to_heal = hcfg.max_cycles;
    legacy.events_processed = net.simulator().events_processed();
  }

  const HealingResult fresh = run_healing_experiment(cfg, hcfg);
  EXPECT_EQ(legacy.baseline_reliability, fresh.baseline_reliability);
  EXPECT_EQ(legacy.per_cycle_reliability, fresh.per_cycle_reliability);
  EXPECT_EQ(legacy.cycles_to_heal, fresh.cycles_to_heal);
  EXPECT_EQ(legacy.recovered, fresh.recovered);
  EXPECT_EQ(legacy.events_processed, fresh.events_processed);
}

TEST(ExperimentSpecTest, LeavePhaseRemovesGracefulDeparturesFromActiveViews) {
  auto cluster = Cluster::sim(
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 11));
  const ExperimentResult result = cluster.run(Experiment("leave_wave")
                                                  .stabilize(5)
                                                  .leave(8, /*graceful=*/1.0)
                                                  .broadcast(5, "after"));
  // Goodbyes repair proactively: the post-wave floods lose nobody.
  EXPECT_EQ(result.phase("after").min_reliability(), 1.0);
  // No survivor's dissemination view still points at a departed node.
  Backend& b = cluster.backend();
  for (std::size_t i = 0; i < b.node_count(); ++i) {
    if (!b.alive(i)) continue;
    for (const NodeId& peer : b.protocol(i).dissemination_view()) {
      EXPECT_TRUE(b.alive(peer.ip))
          << "node " << i << " kept departed peer " << peer.to_string();
    }
  }
}

TEST(ExperimentSpecTest, ConsecutiveRunsComposeOnOneCluster) {
  auto cluster = Cluster::sim(
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 3));
  const auto first = cluster.run(Experiment("phase_a").stabilize(5));
  const std::uint64_t events_after_first = cluster->events_processed();
  EXPECT_GT(events_after_first, 0u);
  // The second run must continue the same built overlay, not rebuild.
  const auto second =
      cluster.run(Experiment("phase_b").broadcast(3, "probe"));
  EXPECT_EQ(second.phase("probe").avg_reliability(), 1.0);
  EXPECT_EQ(cluster->node_count(), 64u);
  EXPECT_GT(cluster->events_processed(), events_after_first);
  EXPECT_EQ(second.events,
            cluster->events_processed() - events_after_first);
  (void)first;
}

// --- CycleOptions::batch ----------------------------------------------------

struct CycleFingerprint {
  std::uint64_t events = 0;
  std::vector<std::size_t> in_degrees;
  std::vector<double> probe_rels;

  friend bool operator==(const CycleFingerprint&,
                         const CycleFingerprint&) = default;
};

CycleFingerprint fingerprint(Network& net, std::size_t probes) {
  CycleFingerprint fp;
  fp.events = net.simulator().events_processed();
  fp.in_degrees = net.dissemination_graph(false).in_degrees();
  for (std::size_t i = 0; i < probes; ++i) {
    fp.probe_rels.push_back(net.broadcast_one().reliability());
  }
  return fp;
}

TEST(BatchedCyclesTest, BatchOneBitIdenticalToPerNodeDrainLoop) {
  const auto cfg =
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, 128, 21);

  Network batched(cfg);
  batched.build();
  batched.run_cycles(3, CycleOptions{.batch = 1});

  // The historical loop, emulated verbatim: one iota before the rounds,
  // one master-RNG shuffle per round, one quiescence drain per alive node.
  Network manual(cfg);
  manual.build();
  std::vector<std::size_t> order(manual.node_count());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t round = 0; round < 3; ++round) {
    manual.simulator().rng().shuffle(order);
    for (const std::size_t i : order) {
      if (!manual.alive(i)) continue;
      manual.protocol(i).on_cycle();
      manual.simulator().run_until_quiescent();
    }
  }

  EXPECT_EQ(fingerprint(batched, 4), fingerprint(manual, 4));
}

TEST(BatchedCyclesTest, WholeRoundAndMultiRoundBatchesDeterministic) {
  for (const std::size_t batch : {std::size_t{16}, std::size_t{10'000}}) {
    const auto run_once = [batch] {
      Network net(
          NetworkConfig::defaults_for(ProtocolKind::kHyParView, 128, 9));
      net.build();
      net.run_cycles(4, CycleOptions{.batch = batch});
      return fingerprint(net, 4);
    };
    const CycleFingerprint a = run_once();
    const CycleFingerprint b = run_once();
    EXPECT_EQ(a, b) << "batch=" << batch;
    // Whole-round batching changes event interleaving, not semantics: the
    // stable overlay still floods losslessly.
    for (const double rel : a.probe_rels) EXPECT_EQ(rel, 1.0);
  }
}

TEST(BatchedCyclesTest, BatchedCyclesViaExperimentSpec) {
  auto cluster = Cluster::sim(
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, 128, 13));
  const auto result =
      cluster.run(Experiment("batched")
                      .stabilize(4, CycleOptions{.batch = 128})
                      .broadcast(3, "probe"));
  EXPECT_EQ(result.phase("probe").min_reliability(), 1.0);
}

}  // namespace
}  // namespace hyparview::harness
