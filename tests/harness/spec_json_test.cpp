// JSON spec codec tests.
//
// Four pins, in increasing strength:
//  1. every committed specs/<name>.json is byte-equal to its canonical
//     C++-built spec (builtin_spec) — a drifted file or schema change
//     fails here with the regeneration command in the message;
//  2. a spec loaded from JSON runs bit-identical (event counts) to the
//     same experiment hand-built through the Experiment builder API;
//  3. randomized phase programs survive to_json → dump → parse →
//     from_json unchanged, and the reloaded copy replays bit-identical;
//  4. schema violations throw CheckError naming the offending key path
//     (a typo must fail the run, not silently fall back to a default).
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/json.hpp"
#include "hyparview/harness/spec_json.hpp"

namespace hyparview::harness {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SpecJsonTest, CommittedFilesPinnedToBuiltins) {
  const std::vector<std::string> names = builtin_spec_names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    const std::string path = spec_path(name);
    SCOPED_TRACE(path);
    const std::string committed = slurp(path);
    ASSERT_FALSE(committed.empty()) << "missing committed spec file";
    EXPECT_EQ(committed, spec_to_json(builtin_spec(name)).dump(2))
        << "regenerate with: hpv_run --emit=" << name << " > " << path;
  }
}

TEST(SpecJsonTest, CommittedFilesReload) {
  for (const std::string& name : builtin_spec_names()) {
    SCOPED_TRACE(name);
    const RunSpec spec = load_spec_file(spec_path(name));
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.experiment.phases().empty());
    // Full-document round trip: reload of the dump is byte-stable.
    const std::string dumped = spec_to_json(spec).dump(2);
    EXPECT_EQ(dumped,
              spec_to_json(spec_from_json(json::Value::parse(dumped)))
                  .dump(2));
  }
}

constexpr const char* kSmallSpec = R"({
  "name": "small",
  "network": {"protocol": "HyParView", "nodes": 200, "seed": 7},
  "phases": [
    {"kind": "stabilize", "cycles": 10},
    {"kind": "crash", "fraction": 0.3},
    {"kind": "broadcast", "count": 5, "label": "measure"}
  ]
})";

TEST(SpecJsonTest, LoadedSpecRunsBitIdenticalToHandBuilt) {
  const RunSpec spec = spec_from_json(json::Value::parse(kSmallSpec));
  auto loaded = Cluster::sim(spec.net);
  const auto loaded_result = loaded.run(spec.experiment);

  auto built = Cluster::sim(
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, 200, 7));
  const auto built_result = built.run(Experiment("small")
                                          .stabilize(10)
                                          .crash(0.3)
                                          .broadcast(5, "measure"));

  EXPECT_EQ(loaded->events_processed(), built->events_processed());
  EXPECT_EQ(loaded_result.events, built_result.events);
  EXPECT_EQ(loaded_result.phase("measure").avg_reliability(),
            built_result.phase("measure").avg_reliability());
}

/// A random but runnable phase program: small cycle/broadcast counts, crash
/// fractions bounded away from total collapse.
Experiment random_experiment(std::mt19937& rng, int index) {
  Experiment spec("prop" + std::to_string(index));
  std::uniform_int_distribution<int> kind_dist(0, 6);
  std::uniform_int_distribution<std::size_t> small(1, 6);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  const int phases = 1 + static_cast<int>(rng() % 5);
  for (int i = 0; i < phases; ++i) {
    // Built with += rather than `"p" + std::to_string(i)`: the rvalue
    // string operator+ trips GCC 12's spurious -Wrestrict (PR 105651)
    // under -Werror once inlining decisions shift.
    std::string label = "p";
    label += std::to_string(i);
    switch (kind_dist(rng)) {
      case 0:
        spec.stabilize(small(rng), {}, label);
        break;
      case 1:
        spec.set_fanout(small(rng), label);
        break;
      case 2:
        spec.crash(0.5 * frac(rng), label);
        break;
      case 3:
        spec.leave(small(rng), frac(rng), label);
        break;
      case 4:
        spec.broadcast(small(rng), label);
        break;
      case 5: {
        ChurnConfig churn;
        churn.cycles = small(rng);
        churn.joins_per_cycle = small(rng);
        churn.leaves_per_cycle = small(rng);
        churn.graceful_fraction = frac(rng);
        churn.probes_per_cycle = 1;
        spec.churn(churn, label);
        break;
      }
      case 6: {
        HeavyChurnConfig heavy;
        heavy.cycles = small(rng);
        heavy.joins_per_cycle = small(rng);
        heavy.dist = (rng() % 2 == 0) ? HeavyChurnConfig::Dist::kPareto
                                      : HeavyChurnConfig::Dist::kLognormal;
        heavy.pareto_alpha = 1.0 + frac(rng);
        heavy.lognormal_mu = frac(rng);
        heavy.graceful_fraction = frac(rng);
        heavy.probes_per_cycle = 1;
        spec.heavy_churn(heavy, label);
        break;
      }
      default:
        break;
    }
  }
  return spec;
}

TEST(SpecJsonTest, RandomizedRoundTripIsByteStable) {
  std::mt19937 rng(42);
  for (int i = 0; i < 50; ++i) {
    const Experiment spec = random_experiment(rng, i);
    const std::string dumped = spec.to_json().dump(2);
    SCOPED_TRACE(dumped);
    const Experiment reloaded =
        Experiment::from_json(json::Value::parse(dumped));
    EXPECT_EQ(dumped, reloaded.to_json().dump(2));
    // Compact form parses back to the same document too.
    EXPECT_EQ(dumped, Experiment::from_json(
                          json::Value::parse(spec.to_json().dump()))
                          .to_json()
                          .dump(2));
  }
}

TEST(SpecJsonTest, RandomizedRoundTripReplaysBitIdentical) {
  std::mt19937 rng(7);
  for (int i = 0; i < 3; ++i) {
    const Experiment spec = random_experiment(rng, i);
    SCOPED_TRACE(spec.to_json().dump(2));
    const Experiment reloaded =
        Experiment::from_json(json::Value::parse(spec.to_json().dump()));
    const auto cfg =
        NetworkConfig::defaults_for(ProtocolKind::kHyParView, 150, 11);
    auto original = Cluster::sim(cfg);
    auto replay = Cluster::sim(cfg);
    const auto original_result = original.run(spec);
    const auto replay_result = replay.run(reloaded);
    EXPECT_EQ(original->events_processed(), replay->events_processed());
    EXPECT_EQ(original_result.events, replay_result.events);
  }
}

/// Expects `text` to be rejected with a CheckError whose message contains
/// `needle` (the offending key path).
void expect_rejected(const std::string& text, const std::string& needle) {
  SCOPED_TRACE(text);
  try {
    (void)spec_from_json(json::Value::parse(text));
    FAIL() << "expected CheckError mentioning \"" << needle << "\"";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(SpecJsonTest, RejectsUnknownKeysNamingFullPath) {
  expect_rejected(R"({"name":"x","network":{"nodez":10},"phases":[]})",
                  "network.nodez");
  expect_rejected(R"({"name":"x","phases":[],"phasez":[]})", "spec.phasez");
  expect_rejected(
      R"({"name":"x","phases":[{"kind":"crash","fraction":0.5,"frac":1}]})",
      "frac");
}

TEST(SpecJsonTest, RejectsWrongTypes) {
  expect_rejected(R"({"name":"x","network":{"nodes":"ten"},"phases":[]})",
                  "network.nodes");
  expect_rejected(R"({"name":"x","phases":{}})", "phases");
}

TEST(SpecJsonTest, RejectsOutOfRangeValues) {
  expect_rejected(R"({"name":"x","phases":[{"kind":"crash","fraction":1.5}]})",
                  "fraction");
  expect_rejected(R"({"name":"x","tcp":{"stats_port":70000},"phases":[]})",
                  "stats_port");
}

TEST(SpecJsonTest, RejectsUnknownPhaseKind) {
  expect_rejected(R"({"name":"x","phases":[{"kind":"warp"}]})", "kind");
}

TEST(SpecJsonTest, RejectsUnknownBuiltinName) {
  EXPECT_THROW((void)builtin_spec("fig99"), CheckError);
}

}  // namespace
}  // namespace hyparview::harness
