// fig4 sharding contract: run_healing_experiment points fanned out across
// the SweepRunner thread pool must be bit-identical to the serial loop.
//
// Each healing repetition builds its own Network from a (config, seed)
// pair and never touches another point's state, so the result is a pure
// function of its inputs — the sharded sweep may only change wall-clock
// order. This is the same determinism contract sweep_runner_test pins for
// fig2/fig3; here it covers the fig4 driver's HealingResult aggregation
// (baseline reliability, per-cycle trajectories, cycles-to-heal, event
// counts). The TSan CI job runs this binary to race-check the pool under
// the healing workload.
#include <gtest/gtest.h>

#include <functional>

#include "hyparview/harness/network.hpp"
#include "hyparview/harness/sweep_runner.hpp"

namespace hyparview::harness {
namespace {

bool identical(const HealingResult& a, const HealingResult& b) {
  return a.baseline_reliability == b.baseline_reliability &&
         a.per_cycle_reliability == b.per_cycle_reliability &&
         a.cycles_to_heal == b.cycles_to_heal && a.recovered == b.recovered &&
         a.events_processed == b.events_processed;
}

/// The fig4 grid at test scale: (fraction × kind) points, row-major — the
/// exact sharding shape of bench/fig4_healing_time.cpp.
std::vector<std::pair<double, ProtocolKind>> test_points() {
  std::vector<std::pair<double, ProtocolKind>> points;
  for (const double fraction : {0.3, 0.6}) {
    for (const auto kind :
         {ProtocolKind::kHyParView, ProtocolKind::kCyclonAcked}) {
      points.emplace_back(fraction, kind);
    }
  }
  return points;
}

HealingResult run_point(double fraction, ProtocolKind kind) {
  auto cfg = NetworkConfig::defaults_for(
      kind, 128, 42 + static_cast<std::uint64_t>(fraction * 100));
  HealingConfig hcfg;
  hcfg.fail_fraction = fraction;
  hcfg.probes_per_cycle = 3;
  hcfg.max_cycles = 8;
  hcfg.stabilization_cycles = 5;
  return run_healing_experiment(cfg, hcfg);
}

TEST(HealingShardTest, ShardedRepetitionsBitIdenticalToSerialLoop) {
  const auto points = test_points();

  // Serial reference: the plain loop, in index order.
  std::vector<HealingResult> serial;
  serial.reserve(points.size());
  for (const auto& [fraction, kind] : points) {
    serial.push_back(run_point(fraction, kind));
  }

  // Sharded: one job per point, results into pre-sized slots, aggregated
  // in index order after run() returns (the SweepRunner contract).
  for (const std::size_t threads : {1u, 4u}) {
    std::vector<HealingResult> sharded(points.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      jobs.push_back([&, i] {
        sharded[i] = run_point(points[i].first, points[i].second);
      });
    }
    SweepRunner runner(threads);
    const auto seconds = runner.run(jobs);
    ASSERT_EQ(seconds.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_TRUE(identical(serial[i], sharded[i]))
          << "point " << i << " diverged at " << threads << " threads: "
          << "serial(cycles=" << serial[i].cycles_to_heal
          << ", events=" << serial[i].events_processed << ") vs sharded(cycles="
          << sharded[i].cycles_to_heal
          << ", events=" << sharded[i].events_processed << ")";
    }
  }
}

TEST(HealingShardTest, HealingResultIsAPureFunctionOfConfigAndSeed) {
  // The premise the sharding rests on: repeated runs of one point agree
  // exactly, including the full per-cycle reliability trajectory.
  const auto a = run_point(0.5, ProtocolKind::kHyParView);
  const auto b = run_point(0.5, ProtocolKind::kHyParView);
  EXPECT_TRUE(identical(a, b));
  EXPECT_GT(a.baseline_reliability, 0.9);  // sane healing experiment
}

}  // namespace
}  // namespace hyparview::harness
