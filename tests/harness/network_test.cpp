#include "hyparview/harness/network.hpp"

#include <gtest/gtest.h>

#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/scale.hpp"

namespace hyparview::harness {
namespace {

TEST(NetworkConfigTest, DefaultsMatchPaperSection51) {
  const auto cfg =
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, 10'000, 42);
  EXPECT_EQ(cfg.fanout, 4u);
  EXPECT_EQ(cfg.hyparview.active_capacity, 5u);   // fanout + 1
  EXPECT_EQ(cfg.hyparview.passive_capacity, 30u);
  EXPECT_EQ(cfg.hyparview.arwl, 6);
  EXPECT_EQ(cfg.hyparview.prwl, 3);
  EXPECT_EQ(cfg.hyparview.shuffle_ka, 3u);
  EXPECT_EQ(cfg.hyparview.shuffle_kp, 4u);
  EXPECT_EQ(cfg.cyclon.view_capacity, 35u);  // active + passive
  EXPECT_EQ(cfg.cyclon.shuffle_length, 14u);
  EXPECT_EQ(cfg.cyclon.join_walk_ttl, 5);
  EXPECT_EQ(cfg.scamp.c, 4u);
  EXPECT_EQ(cfg.gossip.mode, gossip::Mode::kFlood);
}

TEST(NetworkConfigTest, GossipModePerProtocol) {
  EXPECT_EQ(NetworkConfig::defaults_for(ProtocolKind::kCyclon, 100, 1)
                .gossip.mode,
            gossip::Mode::kRandomFanout);
  EXPECT_EQ(NetworkConfig::defaults_for(ProtocolKind::kCyclonAcked, 100, 1)
                .gossip.mode,
            gossip::Mode::kRandomFanoutAcked);
  EXPECT_TRUE(NetworkConfig::defaults_for(ProtocolKind::kCyclonAcked, 100, 1)
                  .cyclon.purge_on_unreachable);
  EXPECT_FALSE(NetworkConfig::defaults_for(ProtocolKind::kCyclon, 100, 1)
                   .cyclon.purge_on_unreachable);
  EXPECT_EQ(NetworkConfig::defaults_for(ProtocolKind::kScamp, 100, 1)
                .gossip.mode,
            gossip::Mode::kRandomFanout);
}

TEST(NetworkTest, BuildJoinsEveryNode) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 1);
  Network net(cfg);
  net.build();
  EXPECT_EQ(net.node_count(), 100u);
  EXPECT_EQ(net.alive_count(), 100u);
  // Every node ends up with a non-empty active view.
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_FALSE(net.protocol(i).dissemination_view().empty()) << i;
  }
}

TEST(NetworkTest, FailRandomFractionCrashesExactCount) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 100, 2);
  Network net(cfg);
  net.build();
  net.fail_random_fraction(0.3);
  EXPECT_EQ(net.alive_count(), 70u);
  net.fail_random_fraction(0.5);
  EXPECT_EQ(net.alive_count(), 35u);
}

TEST(NetworkTest, FailZeroAndValidation) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 3);
  Network net(cfg);
  net.build();
  net.fail_random_fraction(0.0);
  EXPECT_EQ(net.alive_count(), 64u);
  EXPECT_THROW(net.fail_random_fraction(1.5), CheckError);
}

TEST(NetworkTest, BroadcastRecordsReliability) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 128, 4);
  Network net(cfg);
  net.build();
  net.run_cycles(3);
  const auto result = net.broadcast_one();
  EXPECT_EQ(result.alive_nodes, 128u);
  EXPECT_EQ(result.delivered, 128u);
  EXPECT_DOUBLE_EQ(result.reliability(), 1.0);
  EXPECT_GT(result.max_hops, 0u);
}

TEST(NetworkTest, BroadcastManyCollectsSequentialResults) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kCyclon, 128, 5);
  Network net(cfg);
  net.build();
  net.run_cycles(3);
  const auto results = net.broadcast_many(5);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_GT(r.delivered, 0u);
    EXPECT_EQ(r.alive_nodes, 128u);
  }
}

TEST(NetworkTest, DissemGraphAliveOnlyFiltersDead) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 64, 6);
  Network net(cfg);
  net.build();
  net.fail_random_fraction(0.5);
  const auto full = net.dissemination_graph(false);
  const auto alive = net.dissemination_graph(true);
  EXPECT_EQ(full.node_count(), 64u);
  EXPECT_EQ(alive.node_count(), 64u);
  EXPECT_LT(alive.edge_count(), full.edge_count());
}

TEST(NetworkTest, ViewAccuracyDropsAfterFailures) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kCyclon, 128, 7);
  Network net(cfg);
  net.build();
  net.run_cycles(3);
  EXPECT_NEAR(net.view_accuracy(), 1.0, 1e-9);
  net.fail_random_fraction(0.5);
  const double acc = net.view_accuracy();
  // Plain Cyclon keeps dead entries: accuracy ≈ fraction alive.
  EXPECT_NEAR(acc, 0.5, 0.12);
}

TEST(NetworkTest, AliveMaskMatchesSimulator) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 32, 8);
  Network net(cfg);
  net.build();
  net.fail_random_fraction(0.25);
  const auto mask = net.alive_mask();
  std::size_t alive = 0;
  for (const bool b : mask) alive += b ? 1 : 0;
  EXPECT_EQ(alive, net.alive_count());
}

TEST(NetworkTest, AddNodeFailsFastWhenNoAliveContactExists) {
  // Regression: add_node used to spin forever in its contact-selection
  // loop when the joiner was the only alive node (every draw came back as
  // the joiner itself). It must fail fast instead.
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 4, 3);
  Network net(cfg);
  net.build();
  net.fail_random_fraction(1.0);
  ASSERT_EQ(net.alive_count(), 0u);
  EXPECT_THROW(net.add_node(), CheckError);
  // The failed join must not have registered a zombie node.
  EXPECT_EQ(net.node_count(), 4u);
}

TEST(NetworkTest, AddNodeStillWorksWithOneSurvivor) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 4, 3);
  Network net(cfg);
  net.build();
  // Kill everyone but node 0: the joiner's only possible contact.
  for (std::size_t i = 1; i < net.node_count(); ++i) {
    net.simulator().crash(net.id_of(i));
  }
  const std::size_t joined = net.add_node();
  EXPECT_TRUE(net.alive(joined));
  EXPECT_FALSE(
      net.protocol(joined).dissemination_view().empty());
}

TEST(NetworkTest, BatchedBuildProducesAConnectedOverlay) {
  // join_batch > 1 overlaps join traffic (bench mode): different event
  // interleaving, same macroscopic result — every node joined, broadcast
  // reaches everyone.
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 96, 11);
  Network net(cfg);
  net.build(BuildOptions{/*join_batch=*/16});
  net.run_cycles(5);
  EXPECT_EQ(net.alive_count(), 96u);
  EXPECT_DOUBLE_EQ(net.broadcast_one().reliability(), 1.0);
}

TEST(NetworkTest, SerialBuildIsDefaultAndMatchesExplicitBatchOne) {
  // build() and build({.join_batch = 1}) must be bit-identical: the
  // watermark drains degenerate to full drains on an empty queue.
  const auto digest = [](const BuildOptions& opts) {
    auto cfg = NetworkConfig::defaults_for(ProtocolKind::kCyclon, 64, 5);
    Network net(cfg);
    net.build(opts);
    return std::pair{net.simulator().events_processed(),
                     net.simulator().bytes_sent()};
  };
  EXPECT_EQ(digest(BuildOptions{}), digest(BuildOptions{1}));
}

TEST(NetworkTest, RejectsTinyNetworks) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 1, 9);
  EXPECT_THROW(Network net(cfg), CheckError);
}

TEST(HealingTest, HealthyNetworkHealsInstantly) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 128, 10);
  HealingConfig hcfg;
  hcfg.fail_fraction = 0.0;
  hcfg.stabilization_cycles = 3;
  hcfg.max_cycles = 5;
  const auto result = run_healing_experiment(cfg, hcfg);
  EXPECT_TRUE(result.recovered);
  EXPECT_EQ(result.cycles_to_heal, 1u);
  EXPECT_DOUBLE_EQ(result.baseline_reliability, 1.0);
}

TEST(HealingTest, HyParViewHealsQuicklyAfterModerateFailure) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kHyParView, 256, 11);
  HealingConfig hcfg;
  hcfg.fail_fraction = 0.4;
  hcfg.stabilization_cycles = 5;
  hcfg.max_cycles = 10;
  const auto result = run_healing_experiment(cfg, hcfg);
  EXPECT_TRUE(result.recovered);
  EXPECT_LE(result.cycles_to_heal, 3u);
}

TEST(HealingTest, CyclonAckedHealsWithinAFewCyclesAtModerateFailure) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kCyclonAcked, 256, 12);
  HealingConfig hcfg;
  hcfg.fail_fraction = 0.4;
  hcfg.stabilization_cycles = 5;
  hcfg.max_cycles = 15;
  const auto result = run_healing_experiment(cfg, hcfg);
  EXPECT_TRUE(result.recovered);
  EXPECT_LE(result.cycles_to_heal, 10u);
}

TEST(NetworkTest, SetFanoutRaisesRandomGossipReliability) {
  auto cfg = NetworkConfig::defaults_for(ProtocolKind::kCyclon, 400, 13);
  Network net(cfg);
  net.build();
  net.run_cycles(5);

  const auto average = [&](std::size_t fanout) {
    net.set_fanout(fanout);
    double sum = 0.0;
    constexpr int kMsgs = 15;
    for (int i = 0; i < kMsgs; ++i) sum += net.broadcast_one().reliability();
    return sum / kMsgs;
  };
  const double low = average(1);
  const double high = average(6);
  EXPECT_LT(low, 0.9);
  EXPECT_GT(high, 0.98);
  EXPECT_EQ(net.config().fanout, 6u);
}

TEST(BenchScaleTest, QuickModeShrinks) {
  ::setenv("HPV_QUICK", "1", 1);
  const auto s = BenchScale::from_env(1000);
  EXPECT_EQ(s.nodes, 1000u);
  EXPECT_EQ(s.messages, 100u);
  ::unsetenv("HPV_QUICK");
}

TEST(BenchScaleTest, EnvOverrides) {
  ::setenv("HPV_NODES", "2500", 1);
  ::setenv("HPV_MSGS", "77", 1);
  ::setenv("HPV_RUNS", "3", 1);
  ::setenv("HPV_SEED", "99", 1);
  const auto s = BenchScale::from_env(1000);
  EXPECT_EQ(s.nodes, 2500u);
  EXPECT_EQ(s.messages, 77u);
  EXPECT_EQ(s.runs, 3u);
  EXPECT_EQ(s.seed, 99u);
  ::unsetenv("HPV_NODES");
  ::unsetenv("HPV_MSGS");
  ::unsetenv("HPV_RUNS");
  ::unsetenv("HPV_SEED");
}

TEST(BenchScaleTest, DefaultsArePaperScale) {
  const auto s = BenchScale::from_env(1000);
  EXPECT_EQ(s.nodes, 10'000u);
  EXPECT_EQ(s.messages, 1000u);
  EXPECT_EQ(s.runs, 1u);
}

TEST(KindNameTest, AllKindsNamed) {
  EXPECT_STREQ(kind_name(ProtocolKind::kHyParView), "HyParView");
  EXPECT_STREQ(kind_name(ProtocolKind::kCyclon), "Cyclon");
  EXPECT_STREQ(kind_name(ProtocolKind::kCyclonAcked), "CyclonAcked");
  EXPECT_STREQ(kind_name(ProtocolKind::kScamp), "Scamp");
  EXPECT_EQ(all_protocol_kinds().size(), 4u);
}

}  // namespace
}  // namespace hyparview::harness
