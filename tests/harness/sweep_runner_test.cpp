#include "hyparview/harness/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "hyparview/harness/network.hpp"

namespace hyparview::harness {
namespace {

TEST(SweepRunnerTest, ResolvesAtLeastOneThread) {
  const SweepRunner runner;
  EXPECT_GE(runner.threads(), 1u);
  const SweepRunner four(4);
  EXPECT_EQ(four.threads(), 4u);
}

TEST(SweepRunnerTest, RunsEveryJobExactlyOnce) {
  constexpr std::size_t kJobs = 23;
  std::vector<std::atomic<int>> runs(kJobs);
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back([&runs, i] { ++runs[i]; });
  }
  const SweepRunner runner(4);
  const std::vector<double> seconds = runner.run(jobs);
  ASSERT_EQ(seconds.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << i;
    EXPECT_GE(seconds[i], 0.0);
  }
}

TEST(SweepRunnerTest, SingleThreadRunsInline) {
  // threads == 1 is the serial reference path: jobs execute on the calling
  // thread, in index order.
  std::vector<std::size_t> order;
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < 5; ++i) {
    jobs.push_back([&order, i] { order.push_back(i); });
  }
  SweepRunner(1).run(jobs);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepRunnerTest, EmptyJobListIsFine) {
  EXPECT_TRUE(SweepRunner(4).run({}).empty());
}

/// The determinism contract behind the threaded figure sweeps: each point is
/// a pure function of (config, seed), so the threaded fan-out must produce
/// bit-identical per-point results to the serial loop.
TEST(SweepRunnerTest, ThreadedNetworkSweepBitIdenticalToSerial) {
  struct Point {
    ProtocolKind kind;
    double fraction;
    std::uint64_t seed;
  };
  std::vector<Point> points;
  for (const auto kind : {ProtocolKind::kHyParView, ProtocolKind::kCyclon}) {
    for (const double fraction : {0.2, 0.5}) {
      for (const std::uint64_t seed : {3ull, 11ull}) {
        points.push_back({kind, fraction, seed});
      }
    }
  }

  const auto sweep = [&](std::size_t threads) {
    // One result slot per point; each job owns its Network.
    std::vector<std::vector<double>> results(points.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < points.size(); ++i) {
      jobs.push_back([&, i] {
        const Point& p = points[i];
        auto cfg = NetworkConfig::defaults_for(p.kind, 48, p.seed);
        Network net(cfg);
        net.build();
        net.run_cycles(5);
        net.fail_random_fraction(p.fraction);
        std::vector<double>& out = results[i];
        for (int m = 0; m < 5; ++m) {
          out.push_back(net.broadcast_one().reliability());
        }
        out.push_back(static_cast<double>(net.simulator().messages_sent()));
        out.push_back(static_cast<double>(net.simulator().bytes_sent()));
        out.push_back(
            static_cast<double>(net.simulator().events_processed()));
      });
    }
    SweepRunner(threads).run(jobs);
    return results;
  };

  const auto serial = sweep(1);
  const auto threaded = sweep(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "point " << i;
  }
}

}  // namespace
}  // namespace hyparview::harness
