// Env-var parsing for the bench scale knobs (HPV_NODES, HPV_MSGS, HPV_RUNS,
// HPV_SEED, HPV_QUICK). These drive every figure binary and the CI smoke
// tier, so the precedence rules are load-bearing.
#include "hyparview/harness/scale.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hyparview::harness {
namespace {

const char* const kVars[] = {"HPV_NODES", "HPV_MSGS", "HPV_RUNS", "HPV_SEED",
                             "HPV_QUICK"};

/// Clears all scale variables before each test and restores the originals
/// afterwards, so these tests compose with an HPV_QUICK=1 CI invocation.
class BenchScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* v : kVars) {
      const char* cur = std::getenv(v);
      saved_.emplace_back(v, cur ? std::optional<std::string>(cur)
                                 : std::nullopt);
      ::unsetenv(v);
    }
  }

  void TearDown() override {
    for (const auto& [name, value] : saved_) {
      if (value) {
        ::setenv(name, value->c_str(), 1);
      } else {
        ::unsetenv(name);
      }
    }
  }

  static void set(const char* name, const char* value) {
    ::setenv(name, value, 1);
  }

 private:
  std::vector<std::pair<const char*, std::optional<std::string>>> saved_;
};

TEST_F(BenchScaleTest, DefaultsMatchPaperScale) {
  const auto s = BenchScale::from_env(500);
  EXPECT_EQ(s.nodes, 10'000u);
  EXPECT_EQ(s.messages, 500u);  // the per-figure paper value passed in
  EXPECT_EQ(s.runs, 1u);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_FALSE(s.quick);
}

TEST_F(BenchScaleTest, ExplicitOverridesWin) {
  set("HPV_NODES", "2500");
  set("HPV_MSGS", "77");
  set("HPV_RUNS", "3");
  set("HPV_SEED", "1234");
  const auto s = BenchScale::from_env(500);
  EXPECT_EQ(s.nodes, 2500u);
  EXPECT_EQ(s.messages, 77u);
  EXPECT_EQ(s.runs, 3u);
  EXPECT_EQ(s.seed, 1234u);
  EXPECT_FALSE(s.quick);
}

TEST_F(BenchScaleTest, QuickShrinksNodesAndCapsMessages) {
  set("HPV_QUICK", "1");
  const auto s = BenchScale::from_env(500);
  EXPECT_TRUE(s.quick);
  EXPECT_EQ(s.nodes, 1'000u);
  EXPECT_EQ(s.messages, 100u);  // min(default, 100)
}

TEST_F(BenchScaleTest, QuickKeepsSmallDefaultMessageCount) {
  set("HPV_QUICK", "1");
  const auto s = BenchScale::from_env(30);
  EXPECT_EQ(s.messages, 30u);  // already below the quick cap
}

TEST_F(BenchScaleTest, ExplicitNodesOverridesQuickShrink) {
  set("HPV_QUICK", "1");
  set("HPV_NODES", "250");
  set("HPV_MSGS", "12");
  const auto s = BenchScale::from_env(500);
  EXPECT_TRUE(s.quick);
  EXPECT_EQ(s.nodes, 250u);
  EXPECT_EQ(s.messages, 12u);
}

TEST_F(BenchScaleTest, QuickFlagFalseValuesAreOff) {
  set("HPV_QUICK", "0");
  EXPECT_FALSE(BenchScale::from_env(500).quick);
  set("HPV_QUICK", "false");
  EXPECT_FALSE(BenchScale::from_env(500).quick);
}

TEST_F(BenchScaleTest, FloorsProtectDegenerateValues) {
  set("HPV_NODES", "1");
  set("HPV_RUNS", "0");
  const auto s = BenchScale::from_env(500);
  EXPECT_EQ(s.nodes, 16u);  // minimum viable overlay
  EXPECT_EQ(s.runs, 1u);
}

}  // namespace
}  // namespace hyparview::harness
