#include "hyparview/common/logging.hpp"

#include <gtest/gtest.h>

namespace hyparview {
namespace {

/// Restores the global level after each test (it is process-wide state).
class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_(log_level()) {}
  ~LoggingTest() override { set_log_level(saved_); }

  LogLevel saved_;
};

TEST_F(LoggingTest, SetLevelOverridesAndSticks) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, EnabledIsMonotoneInSeverity) {
  set_log_level(LogLevel::kInfo);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
}

TEST_F(LoggingTest, ErrorLevelSuppressesEverythingElse) {
  set_log_level(LogLevel::kError);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
}

TEST_F(LoggingTest, TraceLevelEnablesEverything) {
  set_log_level(LogLevel::kTrace);
  for (const auto level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                           LogLevel::kDebug, LogLevel::kTrace}) {
    EXPECT_TRUE(log_enabled(level));
  }
}

TEST_F(LoggingTest, MacroCompilesAndRespectsLevel) {
  set_log_level(LogLevel::kError);
  // Must not crash and must format printf-style arguments; output goes to
  // stderr and is not asserted on (the level gate is the contract).
  HPV_LOG_ERROR("logging test %d %s", 42, "ok");
  HPV_LOG_TRACE("suppressed %d", 1);
  SUCCEED();
}

TEST_F(LoggingTest, LogWriteTruncatesOversizedMessages) {
  set_log_level(LogLevel::kError);
  const std::string huge(8192, 'x');
  // Internal buffer is 1 KiB; vsnprintf must truncate, not overflow.
  log_write(LogLevel::kError, "%s", huge.c_str());
  SUCCEED();
}

}  // namespace
}  // namespace hyparview
