#include "hyparview/common/node_id.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "hyparview/common/assert.hpp"

namespace hyparview {
namespace {

TEST(NodeIdTest, DefaultIsZero) {
  NodeId id;
  EXPECT_EQ(id.ip, 0u);
  EXPECT_EQ(id.port, 0u);
  EXPECT_EQ(id.raw(), 0u);
}

TEST(NodeIdTest, FromIndexRoundTrip) {
  const NodeId id = NodeId::from_index(1234);
  EXPECT_EQ(id.ip, 1234u);
  EXPECT_EQ(id.port, 0u);
}

TEST(NodeIdTest, EqualityAndOrdering) {
  const NodeId a{1, 10};
  const NodeId b{1, 11};
  const NodeId c{2, 0};
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(NodeIdTest, RawPacksIpAndPort) {
  const NodeId id{0xDEADBEEF, 0xCAFE};
  EXPECT_EQ(id.raw(), (static_cast<std::uint64_t>(0xDEADBEEF) << 16) | 0xCAFE);
}

TEST(NodeIdTest, SimIndexToString) {
  EXPECT_EQ(NodeId::from_index(7).to_string(), "#7");
}

TEST(NodeIdTest, AddressToString) {
  const NodeId id{(127u << 24) | 1u, 8080};
  EXPECT_EQ(id.to_string(), "127.0.0.1:8080");
}

TEST(NodeIdTest, ParseIndexForm) {
  EXPECT_EQ(NodeId::parse("#42"), NodeId::from_index(42));
}

TEST(NodeIdTest, ParseAddressForm) {
  const NodeId id = NodeId::parse("10.1.2.3:9000");
  EXPECT_EQ(id.ip, (10u << 24) | (1u << 16) | (2u << 8) | 3u);
  EXPECT_EQ(id.port, 9000u);
}

TEST(NodeIdTest, ParseRoundTripsToString) {
  for (const char* text : {"#0", "#4294967295", "1.2.3.4:1", "255.255.255.255:65535"}) {
    EXPECT_EQ(NodeId::parse(text).to_string(), text);
  }
}

TEST(NodeIdTest, ParseRejectsGarbage) {
  EXPECT_THROW((void)NodeId::parse(""), CheckError);
  EXPECT_THROW((void)NodeId::parse("nonsense"), CheckError);
  EXPECT_THROW((void)NodeId::parse("300.1.1.1:80"), CheckError);
  EXPECT_THROW((void)NodeId::parse("1.1.1.1:99999"), CheckError);
  EXPECT_THROW((void)NodeId::parse("#notanumber"), CheckError);
}

TEST(NodeIdTest, SentinelIsDistinct) {
  EXPECT_NE(kNoNode, NodeId{});
  EXPECT_NE(kNoNode, NodeId::from_index(0xFFFFFFFF));  // port differs
}

TEST(NodeIdTest, HashSpreadsSequentialIds) {
  NodeIdHash hasher;
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(hasher(NodeId::from_index(i)));
  }
  // All distinct for sequential inputs (splitmix64 finalizer is a bijection).
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace hyparview
