#include "hyparview/common/time.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace hyparview {
namespace {

TEST(TimeTest, UnitConstructorsScaleToMicroseconds) {
  EXPECT_EQ(microseconds(0), 0);
  EXPECT_EQ(microseconds(7), 7);
  EXPECT_EQ(milliseconds(1), 1'000);
  EXPECT_EQ(milliseconds(250), 250'000);
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(seconds(60), 60'000'000);
}

TEST(TimeTest, UnitsCompose) {
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(2) + milliseconds(500), microseconds(2'500'000));
}

TEST(TimeTest, NegativeDurationsAllowed) {
  // Durations are signed (deltas, clamps); the constructors must not mangle
  // negative values.
  EXPECT_EQ(milliseconds(-3), -3'000);
  EXPECT_EQ(seconds(-1), -1'000'000);
}

TEST(TimeTest, ConstexprUsable) {
  constexpr Duration d = seconds(5);
  static_assert(d == 5'000'000);
  EXPECT_EQ(d, 5'000'000);
}

TEST(TimeTest, LargeValuesDoNotOverflowInt64Range) {
  // ~292,000 years of microseconds fit in int64; a century must be safe.
  constexpr Duration century = seconds(100LL * 365 * 24 * 3600);
  EXPECT_GT(century, 0);
  EXPECT_LT(century, std::numeric_limits<TimePoint>::max());
}

}  // namespace
}  // namespace hyparview
