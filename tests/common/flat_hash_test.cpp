#include "hyparview/common/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hyparview/common/rng.hpp"

namespace hyparview {
namespace {

TEST(FlatMapTest, EmptyMapFindsNothing) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.contains(42));
  EXPECT_FALSE(map.erase(42));
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<std::uint64_t, int> map;
  map.insert(1, 10);
  map.insert(2, 20);
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), 10);
  EXPECT_EQ(*map.find(2), 20);
  EXPECT_EQ(map.find(3), nullptr);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.erase(1));
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_EQ(*map.find(2), 20);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, InsertOverwritesExistingKey) {
  FlatMap<std::uint32_t, std::uint32_t> map;
  map.insert(7, 1);
  map.insert(7, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(7), 2u);
}

TEST(FlatMapTest, GrowsPastInitialCapacity) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 0; k < 1000; ++k) map.insert(k, k * 3);
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k * 3);
  }
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<std::uint64_t, int> map;
  map.reserve(100);
  const std::size_t cap = map.capacity();
  EXPECT_GE(cap, 100u);
  for (std::uint64_t k = 0; k < 100; ++k) map.insert(k, 0);
  EXPECT_EQ(map.capacity(), cap);  // no growth happened
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 50; ++k) map.insert(k, 1);
  const std::size_t cap = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.find(10), nullptr);
  map.insert(10, 2);
  EXPECT_EQ(*map.find(10), 2);
}

TEST(FlatMapTest, EraseKeepsProbeChainsReachable) {
  // Backward-shift deletion: erasing from the middle of a probe chain must
  // not orphan entries that probed past the erased slot. Dense sequential
  // keys force shared chains at small table sizes.
  FlatMap<std::uint32_t, std::uint32_t> map;
  for (std::uint32_t k = 0; k < 12; ++k) map.insert(k, k);
  for (std::uint32_t victim = 0; victim < 12; victim += 3) {
    EXPECT_TRUE(map.erase(victim));
  }
  for (std::uint32_t k = 0; k < 12; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(map.find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.find(k), nullptr) << k;
      EXPECT_EQ(*map.find(k), k);
    }
  }
}

TEST(FlatMapTest, RandomizedAgainstUnorderedMapReference) {
  Rng rng(2024);
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.below(512);  // small key space → collisions
    switch (rng.below(3)) {
      case 0: {
        const std::uint64_t value = rng.next();
        map.insert(key, value);
        ref[key] = value;
        break;
      }
      case 1: {
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        const auto it = ref.find(key);
        const std::uint64_t* found = map.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Full sweep at the end.
  for (const auto& [key, value] : ref) {
    ASSERT_NE(map.find(key), nullptr);
    EXPECT_EQ(*map.find(key), value);
  }
}

}  // namespace
}  // namespace hyparview
