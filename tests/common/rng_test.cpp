#include "hyparview/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace hyparview {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 600);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(23);
  const std::vector<int> items = {4, 8, 15, 16, 23, 42};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_NE(std::find(items.begin(), items.end(), v), items.end());
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleSizeAndDistinctness) {
  Rng rng(31);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  const auto s = rng.sample(items, 10);
  ASSERT_EQ(s.size(), 10u);
  auto sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(RngTest, SampleMoreThanAvailableReturnsAll) {
  Rng rng(37);
  const std::vector<int> items = {1, 2, 3};
  auto s = rng.sample(items, 10);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, items);
}

TEST(RngTest, SampleEmptyInput) {
  Rng rng(41);
  const std::vector<int> items;
  EXPECT_TRUE(rng.sample(items, 5).empty());
}

TEST(RngTest, SampleIsUniform) {
  // Each of 5 elements should appear in a 2-sample with probability 2/5.
  Rng rng(43);
  const std::vector<int> items = {0, 1, 2, 3, 4};
  std::map<int, int> appearances;
  constexpr int kDraws = 25'000;
  for (int i = 0; i < kDraws; ++i) {
    for (const int v : rng.sample(items, 2)) ++appearances[v];
  }
  for (const auto& [value, count] : appearances) {
    EXPECT_NEAR(static_cast<double>(count) / kDraws, 0.4, 0.02) << value;
  }
}

TEST(RngTest, DeriveSeedIndependentStreams) {
  const std::uint64_t master = 99;
  Rng a(derive_seed(master, 0));
  Rng b(derive_seed(master, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DeriveSeedDeterministic) {
  EXPECT_EQ(derive_seed(5, 7), derive_seed(5, 7));
  EXPECT_NE(derive_seed(5, 7), derive_seed(5, 8));
  EXPECT_NE(derive_seed(5, 7), derive_seed(6, 7));
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace hyparview
