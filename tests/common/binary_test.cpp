#include "hyparview/common/binary.hpp"

#include <gtest/gtest.h>

namespace hyparview {
namespace {

TEST(BinaryTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryTest, NodeIdRoundTrip) {
  BinaryWriter w;
  const NodeId id{0xC0A80001, 4000};
  w.node_id(id);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.node_id(), id);
}

TEST(BinaryTest, NodeIdListRoundTrip) {
  // The writer frames a list as u16 count + ids; the reader side has no
  // vector-returning list helper by design (wire lists are bounded — see
  // wire.cpp's capacity-checked readers), so decode field-by-field here.
  BinaryWriter w;
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 100; ++i) ids.push_back(NodeId::from_index(i));
  w.node_ids(ids);
  BinaryReader r(w.bytes());
  ASSERT_EQ(r.u16(), ids.size());
  for (const NodeId& id : ids) EXPECT_EQ(r.node_id(), id);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryTest, EmptyNodeIdList) {
  BinaryWriter w;
  w.node_ids({});
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryTest, StringRoundTrip) {
  BinaryWriter w;
  w.str("hello gossip");
  w.str("");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello gossip");
  EXPECT_EQ(r.str(), "");
}

TEST(BinaryTest, BlobRoundTrip) {
  BinaryWriter w;
  const std::vector<std::uint8_t> data = {0, 1, 2, 255, 254};
  w.blob(data);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.blob(), data);
}

TEST(BinaryTest, TruncatedReadThrows) {
  BinaryWriter w;
  w.u16(7);
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.u32(), CheckError);
}

TEST(BinaryTest, TruncatedStringThrows) {
  BinaryWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.str(), CheckError);
}

TEST(BinaryTest, RemainingTracksPosition) {
  BinaryWriter w;
  w.u32(1);
  w.u32(2);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryTest, TakeMovesBuffer) {
  BinaryWriter w;
  w.u8(9);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BinaryTest, LittleEndianLayout) {
  BinaryWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[1], 0x03);
  EXPECT_EQ(w.bytes()[2], 0x02);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

}  // namespace
}  // namespace hyparview
