// Direct tests for the contract-check macros (ROADMAP gap: common/assert
// was only exercised indirectly). Death tests pin the abort path and its
// diagnostic format; the NDEBUG behavior of HPV_ASSERT is verified in
// whichever mode this binary was compiled (both branches are covered across
// the CI matrix: RelWithDebInfo defines NDEBUG, the sanitizer Debug build
// does not).
#include "hyparview/common/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hyparview {
namespace {

TEST(AssertTest, CheckPassesOnTrue) {
  int evaluations = 0;
  HPV_CHECK((++evaluations, true));
  EXPECT_EQ(evaluations, 1);  // evaluated exactly once
}

TEST(AssertDeathTest, CheckAbortsOnFalseWithDiagnostic) {
  EXPECT_DEATH(HPV_CHECK(1 + 1 == 3), "HPV_CHECK failed: 1 \\+ 1 == 3");
}

TEST(AssertDeathTest, CheckDiagnosticNamesFile) {
  EXPECT_DEATH(HPV_CHECK(false), "assert_test\\.cpp");
}

TEST(AssertTest, CheckThrowPassesOnTrue) {
  EXPECT_NO_THROW(HPV_CHECK_THROW(true, "unused"));
}

TEST(AssertTest, CheckThrowThrowsCheckErrorWithMessage) {
  EXPECT_THROW(
      {
        try {
          HPV_CHECK_THROW(false, "bad config value");
        } catch (const CheckError& e) {
          EXPECT_STREQ(e.what(), "bad config value");
          throw;
        }
      },
      CheckError);
}

TEST(AssertTest, CheckErrorIsARuntimeError) {
  // Callers catch std::runtime_error / std::exception at API boundaries.
  const CheckError err("boom");
  const std::runtime_error& base = err;
  EXPECT_EQ(std::string(base.what()), "boom");
}

#ifdef NDEBUG

TEST(AssertTest, AssertIsCompiledOutUnderNdebug) {
  // The expression must not even be evaluated: HPV_ASSERT expands to
  // ((void)0), so side effects vanish (guards may therefore never carry
  // side effects the release build relies on).
  int evaluations = 0;
  HPV_ASSERT((++evaluations, true));
  HPV_ASSERT((++evaluations, false));  // would abort in debug builds
  EXPECT_EQ(evaluations, 0);
}

#else

TEST(AssertTest, AssertEvaluatesAndPassesInDebug) {
  int evaluations = 0;
  HPV_ASSERT((++evaluations, true));
  EXPECT_EQ(evaluations, 1);
}

TEST(AssertDeathTest, AssertAbortsOnFalseInDebug) {
  EXPECT_DEATH(HPV_ASSERT(false), "HPV_ASSERT failed: false");
}

#endif

}  // namespace
}  // namespace hyparview
