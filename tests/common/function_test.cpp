#include "hyparview/common/function.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace hyparview {
namespace {

TEST(InplaceFunctionTest, DefaultConstructedIsEmpty) {
  InplaceFunction<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  InplaceFunction<void()> null_fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InplaceFunctionTest, InvokesLambdaWithCaptures) {
  int calls = 0;
  InplaceFunction<void()> fn = [&calls] { ++calls; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFunctionTest, ForwardsArgumentsAndReturnsValues) {
  InplaceFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
  InplaceFunction<bool(bool)> negate = [](bool v) { return !v; };
  EXPECT_TRUE(negate(false));
}

TEST(InplaceFunctionTest, MoveTransfersStateAndEmptiesSource) {
  int calls = 0;
  InplaceFunction<void()> a = [&calls] { ++calls; };
  InplaceFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InplaceFunctionTest, MoveAssignmentDestroysPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  InplaceFunction<void()> holder = [token] { (void)*token; };
  token.reset();
  EXPECT_FALSE(watch.expired());  // alive inside the wrapper
  holder = [] {};
  EXPECT_TRUE(watch.expired());  // old capture destroyed on assignment
}

TEST(InplaceFunctionTest, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InplaceFunction<void()> holder = [token] { (void)*token; };
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InplaceFunctionTest, MoveOnlyCapturesSupported) {
  auto ptr = std::make_unique<int>(99);
  InplaceFunction<int()> fn = [p = std::move(ptr)] { return *p; };
  EXPECT_EQ(fn(), 99);
}

TEST(InplaceFunctionTest, ResetAndNullAssignmentEmpty) {
  InplaceFunction<void()> fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = [] {};
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InplaceFunctionTest, WideningMoveAcrossCapacities) {
  int calls = 0;
  InplaceFunction<void(), 32> small = [&calls] { ++calls; };
  InplaceFunction<void(), 96> big = std::move(small);
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(big));
  big();
  EXPECT_EQ(calls, 1);

  InplaceFunction<void(), 32> empty_small;
  InplaceFunction<void(), 96> empty_big = std::move(empty_small);
  EXPECT_FALSE(static_cast<bool>(empty_big));
}

TEST(InplaceFunctionTest, CapacityBoundaryCaptureFits) {
  // Exactly-at-capacity capture must compile and run (the static_assert
  // gate is sizeof <= Capacity).
  struct Big {
    char data[48];
  };
  Big big{};
  big.data[0] = 'x';
  InplaceFunction<char(), 48> fn = [big] { return big.data[0]; };
  EXPECT_EQ(fn(), 'x');
}

TEST(InplaceFunctionTest, SelfMoveAssignmentIsSafe) {
  int calls = 0;
  InplaceFunction<void()> fn = [&calls] { ++calls; };
  auto& ref = fn;
  fn = std::move(ref);
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(calls, 1);
}

TEST(InplaceFunctionTest, StressMoveChainKeepsCallable) {
  // Heap-shaped usage: the simulator's pools move callbacks repeatedly.
  int total = 0;
  InplaceFunction<void()> fn = [&total] { ++total; };
  for (int i = 0; i < 100; ++i) {
    InplaceFunction<void()> tmp = std::move(fn);
    fn = std::move(tmp);
  }
  fn();
  EXPECT_EQ(total, 1);
}

}  // namespace
}  // namespace hyparview
