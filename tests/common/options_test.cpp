#include "hyparview/common/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "hyparview/common/assert.hpp"

namespace hyparview {
namespace {

TEST(EnvTest, MissingVariableFallsBack) {
  ::unsetenv("HPV_TEST_MISSING");
  EXPECT_EQ(env_int("HPV_TEST_MISSING", 77), 77);
  EXPECT_EQ(env_double("HPV_TEST_MISSING", 1.5), 1.5);
  EXPECT_FALSE(env_flag("HPV_TEST_MISSING", false));
  EXPECT_TRUE(env_flag("HPV_TEST_MISSING", true));
  EXPECT_FALSE(env_string("HPV_TEST_MISSING").has_value());
}

TEST(EnvTest, ParsesValues) {
  ::setenv("HPV_TEST_INT", "123", 1);
  ::setenv("HPV_TEST_DOUBLE", "2.25", 1);
  ::setenv("HPV_TEST_FLAG", "1", 1);
  EXPECT_EQ(env_int("HPV_TEST_INT", 0), 123);
  EXPECT_DOUBLE_EQ(env_double("HPV_TEST_DOUBLE", 0.0), 2.25);
  EXPECT_TRUE(env_flag("HPV_TEST_FLAG", false));
  ::unsetenv("HPV_TEST_INT");
  ::unsetenv("HPV_TEST_DOUBLE");
  ::unsetenv("HPV_TEST_FLAG");
}

TEST(EnvTest, MalformedIntFallsBack) {
  ::setenv("HPV_TEST_BAD", "12abc", 1);
  EXPECT_EQ(env_int("HPV_TEST_BAD", 5), 5);
  ::unsetenv("HPV_TEST_BAD");
}

// Out-of-range values used to slip through as LLONG_MAX / ±HUGE_VAL:
// strtoll/strtod saturate with errno==ERANGE but still satisfy the
// `*end=='\0'` shape check. They must fail loudly, not misconfigure a run.
TEST(EnvTest, IntOverflowFailsLoudly) {
  ::setenv("HPV_THREADS", "99999999999999999999", 1);
  EXPECT_THROW((void)env_int("HPV_THREADS", 4), CheckError);
  ::setenv("HPV_THREADS", "-99999999999999999999", 1);
  EXPECT_THROW((void)env_int("HPV_THREADS", 4), CheckError);
  ::unsetenv("HPV_THREADS");
}

TEST(EnvTest, DoubleOverflowUnderflowAndInfFailLoudly) {
  ::setenv("HPV_TEST_D", "1e999", 1);
  EXPECT_THROW((void)env_double("HPV_TEST_D", 1.0), CheckError);
  ::setenv("HPV_TEST_D", "-1e999", 1);
  EXPECT_THROW((void)env_double("HPV_TEST_D", 1.0), CheckError);
  // Denormal underflow also sets ERANGE: the parsed value is not the one
  // that was written, so it is rejected the same way.
  ::setenv("HPV_TEST_D", "1e-999", 1);
  EXPECT_THROW((void)env_double("HPV_TEST_D", 1.0), CheckError);
  // "inf"/"nan" parse cleanly (errno==0) — rejected by the finiteness check.
  ::setenv("HPV_TEST_D", "inf", 1);
  EXPECT_THROW((void)env_double("HPV_TEST_D", 1.0), CheckError);
  ::setenv("HPV_TEST_D", "nan", 1);
  EXPECT_THROW((void)env_double("HPV_TEST_D", 1.0), CheckError);
  ::unsetenv("HPV_TEST_D");
}

TEST(EnvTest, ErrorNamesTheVariable) {
  ::setenv("HPV_TEST_HUGE", "99999999999999999999", 1);
  try {
    (void)env_int("HPV_TEST_HUGE", 4);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("HPV_TEST_HUGE"), std::string::npos)
        << e.what();
  }
  ::unsetenv("HPV_TEST_HUGE");
}

TEST(EnvTest, FlagAcceptsSynonyms) {
  for (const char* v : {"1", "true", "yes", "on"}) {
    ::setenv("HPV_TEST_FLAG2", v, 1);
    EXPECT_TRUE(env_flag("HPV_TEST_FLAG2", false)) << v;
  }
  ::setenv("HPV_TEST_FLAG2", "0", 1);
  EXPECT_FALSE(env_flag("HPV_TEST_FLAG2", true));
  ::unsetenv("HPV_TEST_FLAG2");
}

TEST(ArgParserTest, KeyValueAndFlags) {
  const char* argv[] = {"prog", "--nodes=500", "--verbose", "input.txt"};
  ArgParser args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("nodes", 0), 500);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(ArgParserTest, Defaults) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get("name", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.5), 0.5);
}

TEST(ArgParserTest, DoubleParsing) {
  const char* argv[] = {"prog", "--rate=0.75"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.75);
}

TEST(ArgParserTest, MalformedNumberFallsBack) {
  const char* argv[] = {"prog", "--n=xyz"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 3), 3);
}

TEST(ArgParserTest, FlagWithoutValueIsOne) {
  const char* argv[] = {"prog", "--quick"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.get("quick", ""), "1");
}

TEST(ArgParserTest, NumericOverflowFailsLoudly) {
  const char* argv[] = {"prog", "--n=99999999999999999999", "--x=1e999"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_THROW((void)args.get_int("n", 3), CheckError);
  EXPECT_THROW((void)args.get_double("x", 0.5), CheckError);
}

TEST(ArgParserTest, CheckKnownAcceptsKnownFlags) {
  const char* argv[] = {"prog", "--nodes=500", "--verbose", "input.txt"};
  ArgParser args(4, const_cast<char**>(argv));
  EXPECT_NO_THROW(args.check_known({"nodes", "verbose", "seed"}));
}

// The regression the satellite names: a typo like --backnd=tcp used to be
// silently dropped, running the sim default instead of TCP.
TEST(ArgParserTest, CheckKnownRejectsUnknownFlag) {
  const char* argv[] = {"prog", "--backnd=tcp"};
  ArgParser args(2, const_cast<char**>(argv));
  try {
    args.check_known({"backend", "nodes"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("--backnd"), std::string::npos)
        << e.what();
  }
}

TEST(ArgParserTest, CheckKnownReportsFirstUnknownInArgvOrder) {
  const char* argv[] = {"prog", "--zz=1", "--aa=2"};
  ArgParser args(3, const_cast<char**>(argv));
  try {
    args.check_known({});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    // Deterministic: command-line order, not hash order.
    EXPECT_NE(std::string(e.what()).find("--zz"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace hyparview
