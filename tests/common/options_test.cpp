#include "hyparview/common/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace hyparview {
namespace {

TEST(EnvTest, MissingVariableFallsBack) {
  ::unsetenv("HPV_TEST_MISSING");
  EXPECT_EQ(env_int("HPV_TEST_MISSING", 77), 77);
  EXPECT_EQ(env_double("HPV_TEST_MISSING", 1.5), 1.5);
  EXPECT_FALSE(env_flag("HPV_TEST_MISSING", false));
  EXPECT_TRUE(env_flag("HPV_TEST_MISSING", true));
  EXPECT_FALSE(env_string("HPV_TEST_MISSING").has_value());
}

TEST(EnvTest, ParsesValues) {
  ::setenv("HPV_TEST_INT", "123", 1);
  ::setenv("HPV_TEST_DOUBLE", "2.25", 1);
  ::setenv("HPV_TEST_FLAG", "1", 1);
  EXPECT_EQ(env_int("HPV_TEST_INT", 0), 123);
  EXPECT_DOUBLE_EQ(env_double("HPV_TEST_DOUBLE", 0.0), 2.25);
  EXPECT_TRUE(env_flag("HPV_TEST_FLAG", false));
  ::unsetenv("HPV_TEST_INT");
  ::unsetenv("HPV_TEST_DOUBLE");
  ::unsetenv("HPV_TEST_FLAG");
}

TEST(EnvTest, MalformedIntFallsBack) {
  ::setenv("HPV_TEST_BAD", "12abc", 1);
  EXPECT_EQ(env_int("HPV_TEST_BAD", 5), 5);
  ::unsetenv("HPV_TEST_BAD");
}

TEST(EnvTest, FlagAcceptsSynonyms) {
  for (const char* v : {"1", "true", "yes", "on"}) {
    ::setenv("HPV_TEST_FLAG2", v, 1);
    EXPECT_TRUE(env_flag("HPV_TEST_FLAG2", false)) << v;
  }
  ::setenv("HPV_TEST_FLAG2", "0", 1);
  EXPECT_FALSE(env_flag("HPV_TEST_FLAG2", true));
  ::unsetenv("HPV_TEST_FLAG2");
}

TEST(ArgParserTest, KeyValueAndFlags) {
  const char* argv[] = {"prog", "--nodes=500", "--verbose", "input.txt"};
  ArgParser args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("nodes", 0), 500);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(ArgParserTest, Defaults) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get("name", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.5), 0.5);
}

TEST(ArgParserTest, DoubleParsing) {
  const char* argv[] = {"prog", "--rate=0.75"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.75);
}

TEST(ArgParserTest, MalformedNumberFallsBack) {
  const char* argv[] = {"prog", "--n=xyz"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 3), 3);
}

TEST(ArgParserTest, FlagWithoutValueIsOne) {
  const char* argv[] = {"prog", "--quick"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.get("quick", ""), "1");
}

}  // namespace
}  // namespace hyparview
