#include "hyparview/common/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/rng.hpp"

namespace hyparview::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_EQ(Value::parse("true").as_bool(), true);
  EXPECT_EQ(Value::parse("false").as_bool(), false);
  EXPECT_EQ(Value::parse("42").as_int(), 42);
  EXPECT_EQ(Value::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(Value::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value::parse("-1e3").as_double(), -1000.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntAndDoubleAreDistinctKinds) {
  EXPECT_TRUE(Value::parse("42").is_int());
  EXPECT_FALSE(Value::parse("42").is_double());
  EXPECT_TRUE(Value::parse("42.0").is_double());
  EXPECT_FALSE(Value::parse("42.0").is_int());
  // Ints convert through as_double, never the reverse.
  EXPECT_DOUBLE_EQ(Value::parse("42").as_double(), 42.0);
  EXPECT_THROW((void)Value::parse("42.0").as_int(), CheckError);
}

TEST(JsonParse, ObjectKeepsInsertionOrder) {
  const Value v = Value::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->as_int(), 2);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, NestedStructure) {
  const Value v = Value::parse(
      R"({"name": "fig1", "phases": [{"kind": "stabilize", "cycles": 50},
          {"kind": "broadcast", "count": 100}], "ok": true})");
  ASSERT_EQ(v.find("phases")->as_array().size(), 2u);
  EXPECT_EQ(v.find("phases")->as_array()[0].find("kind")->as_string(),
            "stabilize");
  EXPECT_EQ(v.find("phases")->as_array()[1].find("count")->as_int(), 100);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Value::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(Value::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Value::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)Value::parse(""), CheckError);
  EXPECT_THROW((void)Value::parse("{"), CheckError);
  EXPECT_THROW((void)Value::parse("[1,]"), CheckError);
  EXPECT_THROW((void)Value::parse("{\"a\":1,}"), CheckError);
  EXPECT_THROW((void)Value::parse("{\"a\" 1}"), CheckError);
  EXPECT_THROW((void)Value::parse("tru"), CheckError);
  EXPECT_THROW((void)Value::parse("\"unterminated"), CheckError);
  EXPECT_THROW((void)Value::parse("1 2"), CheckError);
  EXPECT_THROW((void)Value::parse("-"), CheckError);
  EXPECT_THROW((void)Value::parse("\"\\x\""), CheckError);
  EXPECT_THROW((void)Value::parse("\"\\ud83d\""), CheckError);  // lone high
  EXPECT_THROW((void)Value::parse("\"\\ude00\""), CheckError);  // lone low
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW((void)Value::parse(R"({"a": 1, "a": 2})"), CheckError);
}

TEST(JsonParse, RejectsIntegerOverflow) {
  // strtoll-style saturation must not leak through the codec: 2^63 is out of
  // int64 range and must be a parse error, not LLONG_MAX.
  EXPECT_THROW((void)Value::parse("9223372036854775808"), CheckError);
  EXPECT_THROW((void)Value::parse("99999999999999999999"), CheckError);
  EXPECT_EQ(Value::parse("9223372036854775807").as_int(),
            INT64_C(9223372036854775807));
}

TEST(JsonParse, ErrorsCarryLineNumbers) {
  try {
    (void)Value::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParse, DepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)Value::parse(deep), CheckError);
}

TEST(JsonDump, CompactAndStable) {
  Value tags = Value::array();
  tags.push_back(Value("a"));
  Value v = Value::object();
  v.set("name", "spec").set("nodes", 300).set("rate", 0.5);
  v.set("tags", std::move(tags));
  EXPECT_EQ(v.dump(), R"({"name":"spec","nodes":300,"rate":0.5,"tags":["a"]})");
}

TEST(JsonDump, DoubleKindSurvivesRoundTrip) {
  // An integral-valued double serializes with a trailing ".0" so it
  // re-parses as a double, not an int.
  EXPECT_EQ(Value(2.0).dump(), "2.0");
  EXPECT_EQ(Value(std::int64_t{2}).dump(), "2");
  EXPECT_TRUE(Value::parse(Value(2.0).dump()).is_double());
  EXPECT_TRUE(Value::parse(Value(std::int64_t{2}).dump()).is_int());
}

TEST(JsonDump, RejectsNonFinite) {
  EXPECT_THROW((void)Value(std::numeric_limits<double>::infinity()).dump(),
               CheckError);
  EXPECT_THROW((void)Value(std::numeric_limits<double>::quiet_NaN()).dump(),
               CheckError);
}

TEST(JsonDump, PrettyPrint) {
  Value v = Value::object();
  v.set("a", 1);
  Value arr = Value::array();
  arr.push_back(Value(2));
  v.set("b", std::move(arr));
  EXPECT_EQ(v.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(Value(std::string("a\x01" "b\nc\"d")).dump(),
            R"("a\u0001b\nc\"d")");
}

// Random value trees survive dump → parse with exact equality (kinds
// included). Seeded Rng, so a failure reproduces.
Value random_value(Rng& rng, int depth) {
  const std::uint64_t pick = rng.below(depth >= 4 ? 5 : 7);
  switch (pick) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.below(2) == 0);
    case 2:
      return Value(static_cast<std::int64_t>(rng.next()));
    case 3: {
      // Mix magnitudes; keep finite.
      const double mant =
          static_cast<double>(static_cast<std::int64_t>(rng.next())) / 997.0;
      return Value(mant);
    }
    case 4: {
      std::string s;
      const std::uint64_t len = rng.below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.below(0x5F) + 0x20));
      }
      return Value(std::move(s));
    }
    case 5: {
      Value arr = Value::array();
      const std::uint64_t len = rng.below(4);
      for (std::uint64_t i = 0; i < len; ++i) {
        arr.push_back(random_value(rng, depth + 1));
      }
      return arr;
    }
    default: {
      Value obj = Value::object();
      const std::uint64_t len = rng.below(4);
      for (std::uint64_t i = 0; i < len; ++i) {
        obj.set("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return obj;
    }
  }
}

TEST(JsonProperty, RoundTripPreservesValueAndKind) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 500; ++i) {
    const Value original = random_value(rng, 0);
    const std::string text = original.dump();
    const Value reparsed = Value::parse(text);
    ASSERT_EQ(reparsed, original) << "iteration " << i << ": " << text;
    // Serialization is a pure function of the value: dump(parse(dump(v)))
    // is byte-identical.
    ASSERT_EQ(reparsed.dump(), text) << "iteration " << i;
    // Pretty output re-parses to the same value too.
    ASSERT_EQ(Value::parse(original.dump(2)), original) << "iteration " << i;
  }
}

}  // namespace
}  // namespace hyparview::json
