// Side-by-side comparison of all four membership protocols on the same
// scenario: stabilize, crash half the network, measure the next 50
// broadcasts — a miniature of the paper's Figure 2/3 story.
//
//   $ ./protocol_comparison [--nodes=1000] [--kill=0.5] [--msgs=50] [--seed=3]
#include <cstdio>

#include "hyparview/analysis/table.hpp"
#include "hyparview/common/options.hpp"
#include "hyparview/harness/network.hpp"

using namespace hyparview;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 1000));
  const double kill = args.get_double("kill", 0.5);
  const auto msgs = static_cast<std::size_t>(args.get_int("msgs", 50));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::printf("scenario: %zu nodes, stabilize, crash %.0f%%, send %zu "
              "messages\n\n",
              nodes, kill * 100, msgs);

  analysis::Table table({"protocol", "dissemination", "stable rel.",
                         "post-crash rel.", "msg#1 rel.", "final rel."});

  for (const auto kind : harness::all_protocol_kinds()) {
    auto config = harness::NetworkConfig::defaults_for(kind, nodes, seed);
    harness::Network net(config);
    net.build();
    net.run_cycles(10);

    double stable = 0.0;
    for (int i = 0; i < 10; ++i) stable += net.broadcast_one().reliability();
    stable /= 10;

    net.fail_random_fraction(kill);
    double post_sum = 0.0;
    double first = 0.0;
    double last = 0.0;
    for (std::size_t m = 0; m < msgs; ++m) {
      const double r = net.broadcast_one().reliability();
      if (m == 0) first = r;
      last = r;
      post_sum += r;
    }

    const char* dissemination =
        kind == harness::ProtocolKind::kHyParView
            ? "flood active view"
            : (kind == harness::ProtocolKind::kCyclonAcked
                   ? "fanout-4 + acks"
                   : "fanout-4 gossip");
    const auto pct = [](double v) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100);
      return std::string(buf);
    };
    table.add_row({harness::kind_name(kind), dissemination, pct(stable),
                   pct(post_sum / static_cast<double>(msgs)), pct(first),
                   pct(last)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: HyParView's flood plus TCP failure detection keeps "
              "reliability at ~100%% through the crash; CyclonAcked recovers "
              "as acks purge dead entries; plain Cyclon/Scamp stay degraded "
              "until their periodic mechanisms run.\n");
  return 0;
}
