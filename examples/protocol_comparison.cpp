// Side-by-side comparison of all four membership protocols on the same
// scenario: stabilize, crash half the network, measure the next 50
// broadcasts — a miniature of the paper's Figure 2/3 story.
//
//   $ ./protocol_comparison [--nodes=1000] [--kill=0.5] [--msgs=50]
//                           [--seed=3] [--backend=sim|tcp]
//
// The scenario is ONE declarative harness::Experiment; --backend picks the
// substrate it runs on. The default deterministic simulator reproduces the
// paper; --backend=tcp hosts every node on a real TCP socket (shrink
// --nodes to ~32 — real handshakes cost real time) and runs the identical
// spec with the identical protocol code.
#include <cstdio>

#include "hyparview/analysis/table.hpp"
#include "hyparview/common/options.hpp"
#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/tcp_backend.hpp"

using namespace hyparview;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.check_known({"backend", "nodes", "kill", "msgs", "seed"});
  const bool use_tcp = args.get("backend", "sim") == "tcp";
  // One socket (plus connections) per node: a sim-scale default would blow
  // the fd limit over TCP, so the substrate picks its own default size.
  const auto nodes = static_cast<std::size_t>(
      args.get_int("nodes", use_tcp ? 32 : 1000));
  const double kill = args.get_double("kill", 0.5);
  const auto msgs = static_cast<std::size_t>(args.get_int("msgs", 50));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::printf("scenario: %zu nodes over %s, stabilize, crash %.0f%%, send "
              "%zu messages\n\n",
              nodes, use_tcp ? "TCP" : "the simulator", kill * 100, msgs);

  // The shared spec — every protocol (and both backends) runs this.
  harness::Experiment spec("protocol_comparison");
  spec.stabilize(10)
      .broadcast(10, "stable")
      .crash(kill)
      .broadcast(msgs, "post_crash");

  analysis::Table table({"protocol", "dissemination", "stable rel.",
                         "post-crash rel.", "msg#1 rel.", "final rel."});

  for (const auto kind : harness::all_protocol_kinds()) {
    auto cluster =
        use_tcp ? harness::Cluster::tcp(
                      harness::TcpBackendConfig::defaults_for(kind, nodes,
                                                              seed))
                : harness::Cluster::sim(
                      harness::NetworkConfig::defaults_for(kind, nodes,
                                                           seed));
    const harness::ExperimentResult result = cluster.run(spec);
    const harness::PhaseResult& post = result.phase("post_crash");

    const char* dissemination =
        kind == harness::ProtocolKind::kHyParView
            ? "flood active view"
            : (kind == harness::ProtocolKind::kCyclonAcked
                   ? "fanout-4 + acks"
                   : "fanout-4 gossip");
    const auto pct = [](double v) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100);
      return std::string(buf);
    };
    table.add_row({harness::kind_name(kind), dissemination,
                   pct(result.phase("stable").avg_reliability()),
                   pct(post.avg_reliability()),
                   pct(post.reliabilities.empty() ? 0.0
                                                  : post.reliabilities.front()),
                   pct(post.last_reliability())});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: HyParView's flood plus TCP failure detection keeps "
              "reliability at ~100%% through the crash; CyclonAcked recovers "
              "as acks purge dead entries; plain Cyclon/Scamp stay degraded "
              "until their periodic mechanisms run.\n");
  return 0;
}
