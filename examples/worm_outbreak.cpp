// Worm outbreak scenario (paper §1): a worm takes down a huge fraction of
// the system *simultaneously* — e.g. every machine running one OS version —
// and the broadcast overlay must keep delivering and heal itself.
//
//   $ ./worm_outbreak [--nodes=2000] [--kill=0.8] [--msgs=60] [--seed=7]
//
// Prints the reliability of each message after the outbreak, the view
// accuracy as the failure detector purges dead neighbors, and the healing
// progress over membership rounds.
#include <cstdio>

#include "hyparview/common/options.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

using namespace hyparview;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.check_known({"nodes", "kill", "msgs", "seed"});
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 2000));
  const double kill = args.get_double("kill", 0.8);
  const auto msgs = static_cast<std::size_t>(args.get_int("msgs", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  auto config = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, nodes, seed);
  harness::Network net(config);

  std::printf("building %zu-node HyParView overlay...\n", nodes);
  net.build();
  net.run_cycles(20);
  std::printf("pre-outbreak: accuracy %.3f, broadcast reliability %.1f%%\n",
              net.view_accuracy(), net.broadcast_one().reliability() * 100);

  std::printf("\n*** worm fires: %.0f%% of all nodes crash simultaneously "
              "***\n\n",
              kill * 100);
  net.fail_random_fraction(kill);
  std::printf("%zu survivors; view accuracy now %.3f\n", net.alive_count(),
              net.view_accuracy());

  std::printf("\nmessages after the outbreak (reactive repair only):\n");
  for (std::size_t m = 1; m <= msgs; ++m) {
    const auto r = net.broadcast_one();
    if (m <= 10 || m % 10 == 0) {
      std::printf("  msg %3zu: %5.1f%% of survivors (accuracy %.3f)\n", m,
                  r.reliability() * 100, net.view_accuracy());
    }
  }

  std::printf("\nmembership rounds (shuffles + promotions):\n");
  for (int cycle = 1; cycle <= 3; ++cycle) {
    net.run_cycles(1);
    double sum = 0.0;
    for (int i = 0; i < 10; ++i) sum += net.broadcast_one().reliability();
    std::printf("  after round %d: avg reliability %5.1f%%\n", cycle,
                sum * 10);
  }

  const auto alive_graph = net.dissemination_graph(true);
  const auto survivors = alive_graph.induced_subgraph(net.alive_mask());
  std::printf("\nsurvivor overlay: largest component %zu / %zu\n",
              graph::largest_weakly_connected_component(survivors),
              net.alive_count());
  return 0;
}
