// Quickstart: a 64-node simulated HyParView overlay in ~40 lines of API use.
//
//   $ ./quickstart [--nodes=64] [--seed=42]
//
// Builds the overlay (everyone joins through node #0), runs a few membership
// rounds, broadcasts a message, and prints what the protocol maintained.
#include <cstdio>

#include "hyparview/common/options.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

using namespace hyparview;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.check_known({"nodes", "seed"});
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  // 1. Configure a HyParView network (paper defaults: active view 5,
  //    passive view 30, ARWL 6, PRWL 3).
  auto config = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, nodes, seed);
  harness::Network net(config);

  // 2. Everyone joins through a contact node, then a few shuffle rounds run.
  net.build();
  net.run_cycles(5);

  // 3. Broadcast: HyParView floods the symmetric active-view overlay.
  const auto result = net.broadcast_one();
  std::printf("broadcast delivered to %zu/%zu nodes (%.1f%%) within %u hops\n",
              result.delivered, result.alive_nodes,
              result.reliability() * 100.0, result.max_hops);

  // 4. Inspect what the membership protocol built.
  const auto graph = net.dissemination_graph(false);
  std::printf("overlay: %zu nodes, %zu active-view links, connected=%s\n",
              graph.node_count(), graph.edge_count() / 2,
              graph::is_weakly_connected(graph) ? "yes" : "no");

  const auto& proto =
      static_cast<core::HyParView&>(net.protocol(nodes / 2));
  std::printf("node #%zu active view :", nodes / 2);
  for (const auto& peer : proto.active_view()) {
    std::printf(" %s", peer.to_string().c_str());
  }
  std::printf("\nnode #%zu passive view:", nodes / 2);
  for (const auto& peer : proto.passive_view()) {
    std::printf(" %s", peer.to_string().c_str());
  }
  std::printf("\n");

  // 5. Kill a third of the network and watch the flood still deliver.
  net.fail_random_fraction(1.0 / 3.0);
  const auto after = net.broadcast_one();
  std::printf("after 33%% failures: delivered to %zu/%zu survivors (%.1f%%)\n",
              after.delivered, after.alive_nodes,
              after.reliability() * 100.0);
  return 0;
}
