// HyParView over real TCP sockets: an in-process cluster on 127.0.0.1.
//
//   $ ./tcp_cluster [--nodes=16] [--msgs=5] [--kill=1]
//
// Starts N nodes (each with its own listening socket and HyParView
// instance), joins them through node 0, runs shuffle rounds on a timer,
// broadcasts, then hard-kills a node and shows the failure detector and
// repair in action. Everything runs on one event loop thread — the same
// protocol code the simulator executes, now over the kernel's TCP stack.
#include <cstdio>
#include <memory>
#include <unordered_set>
#include <vector>

#include "hyparview/common/options.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/gossip/node_runtime.hpp"
#include "hyparview/net/tcp_transport.hpp"

using namespace hyparview;

namespace {

class CountingObserver final : public gossip::DeliveryObserver {
 public:
  void on_deliver(const NodeId& node, std::uint64_t msg_id,
                  std::uint16_t /*hops*/) override {
    deliveries[msg_id].insert(node.raw());
  }
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      deliveries;
};

struct TcpNode {
  TcpNode(net::EventLoop& loop, gossip::DeliveryObserver* observer,
          std::uint64_t seed) {
    net::TcpTransportConfig tcfg;
    tcfg.rng_seed = seed;
    transport = std::make_unique<net::TcpTransport>(loop, nullptr, tcfg);
    gossip::GossipConfig gcfg;
    gcfg.mode = gossip::Mode::kFlood;
    runtime = std::make_unique<gossip::NodeRuntime>(
        *transport, std::make_unique<core::HyParView>(*transport, core::Config{}),
        gcfg, observer);
    transport->set_endpoint(runtime.get());
  }

  [[nodiscard]] core::HyParView& protocol() {
    return static_cast<core::HyParView&>(runtime->protocol());
  }

  std::unique_ptr<net::TcpTransport> transport;
  std::unique_ptr<gossip::NodeRuntime> runtime;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto node_count = static_cast<std::size_t>(args.get_int("nodes", 16));
  const auto msgs = static_cast<std::uint64_t>(args.get_int("msgs", 5));
  const bool kill_one = args.get_int("kill", 1) != 0;

  net::EventLoop loop;
  CountingObserver observer;
  std::vector<std::unique_ptr<TcpNode>> nodes;

  std::printf("starting %zu TCP nodes on 127.0.0.1...\n", node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    nodes.push_back(std::make_unique<TcpNode>(loop, &observer, 100 + i));
    std::printf("  node %2zu listening at %s\n", i,
                nodes.back()->transport->local_id().to_string().c_str());
  }

  nodes[0]->protocol().start(std::nullopt);
  for (std::size_t i = 1; i < node_count; ++i) {
    nodes[i]->protocol().start(nodes[0]->transport->local_id());
    loop.run_until([] { return false; }, milliseconds(15));
  }
  for (int c = 0; c < 3; ++c) {
    for (auto& n : nodes) n->protocol().on_cycle();
    loop.run_until([] { return false; }, milliseconds(50));
  }

  std::printf("\nbroadcasting %llu messages...\n",
              static_cast<unsigned long long>(msgs));
  for (std::uint64_t id = 1; id <= msgs; ++id) {
    nodes[id % node_count]->runtime->gossip().broadcast(id);
    loop.run_until(
        [&] { return observer.deliveries[id].size() >= node_count; },
        seconds(5));
    std::printf("  msg %llu delivered to %zu/%zu nodes\n",
                static_cast<unsigned long long>(id),
                observer.deliveries[id].size(), node_count);
  }

  if (kill_one && node_count > 3) {
    const std::size_t victim = node_count / 2;
    std::printf("\nhard-killing node %zu (%s) — no goodbye, TCP must "
                "notice...\n",
                victim, nodes[victim]->transport->local_id().to_string().c_str());
    nodes[victim]->transport->shutdown();
    auto dead = std::move(nodes[victim]);
    nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(victim));

    for (std::uint64_t id = msgs + 1; id <= msgs + 4; ++id) {
      nodes[id % nodes.size()]->runtime->gossip().broadcast(id);
      loop.run_until(
          [&] { return observer.deliveries[id].size() >= nodes.size(); },
          seconds(5));
      std::printf("  msg %llu delivered to %zu/%zu survivors\n",
                  static_cast<unsigned long long>(id),
                  observer.deliveries[id].size(), nodes.size());
    }
    for (auto& n : nodes) n->protocol().on_cycle();
    loop.run_until([] { return false; }, milliseconds(100));
  }

  std::printf("\nfinal active views:\n");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::printf("  %s ->", nodes[i]->transport->local_id().to_string().c_str());
    for (const auto& peer : nodes[i]->protocol().active_view()) {
      std::printf(" %s", peer.to_string().c_str());
    }
    std::printf("\n");
  }

  for (auto& n : nodes) n->transport->shutdown();
  return 0;
}
