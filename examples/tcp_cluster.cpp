// HyParView over real TCP sockets: an in-process cluster on 127.0.0.1,
// driven through the backend-agnostic harness (harness::TcpBackend).
//
//   $ ./tcp_cluster [--nodes=16] [--msgs=5] [--kill=1]
//
// Starts N nodes (each with its own listening socket and HyParView
// instance), joins them through node 0, runs shuffle rounds, broadcasts,
// then hard-kills a node and shows the failure detector and repair in
// action. The build → stabilize → measure → fail → re-measure pipeline is
// a declarative harness::Experiment — the very same spec type (and
// protocol code) the simulator figures run; only the Cluster factory
// differs. Everything runs on one event loop thread over the kernel's TCP
// stack.
#include <cstdio>

#include "hyparview/common/options.hpp"
#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/tcp_backend.hpp"

using namespace hyparview;

namespace {

void print_phase(const harness::ExperimentResult& result,
                 const char* label, std::size_t cluster_size) {
  const harness::PhaseResult& phase = result.phase(label);
  for (std::size_t m = 0; m < phase.broadcasts.size(); ++m) {
    const auto& r = phase.broadcasts[m];
    std::printf("  msg %zu delivered to %zu/%zu nodes (%.1f%%)\n", m + 1,
                r.delivered, cluster_size, 100.0 * r.reliability());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.check_known({"nodes", "msgs", "kill"});
  const auto node_count = static_cast<std::size_t>(args.get_int("nodes", 16));
  const auto msgs = static_cast<std::size_t>(args.get_int("msgs", 5));
  const bool kill_one = args.get_int("kill", 1) != 0;

  auto config = harness::TcpBackendConfig::defaults_for(
      harness::ProtocolKind::kHyParView, node_count, /*seed=*/100);
  auto cluster = harness::Cluster::tcp(config);

  std::printf("starting %zu TCP nodes on 127.0.0.1...\n", node_count);
  harness::Experiment spec("tcp_cluster_demo");
  spec.stabilize(3).broadcast(msgs, "stable");
  if (kill_one && node_count > 3) {
    spec.leave(1, /*graceful_fraction=*/0.0, "hard_kill")
        .broadcast(4, "post_crash")
        .cycles(2, {}, "repair_rounds");
  }
  const harness::ExperimentResult result = cluster.run(spec);

  for (std::size_t i = 0; i < cluster->node_count(); ++i) {
    std::printf("  node %2zu listening at %s\n", i,
                cluster->id_of(i).to_string().c_str());
  }

  std::printf("\nbroadcasting %zu messages on the stable overlay...\n", msgs);
  print_phase(result, "stable", node_count);

  if (result.has_phase("post_crash")) {
    std::printf("\nhard-killed one node (no goodbye — TCP had to notice); "
                "%zu survivors:\n",
                cluster->alive_count());
    print_phase(result, "post_crash", cluster->alive_count());
  }

  std::printf("\nfinal active views:\n");
  for (std::size_t i = 0; i < cluster->node_count(); ++i) {
    if (!cluster->alive(i)) continue;
    std::printf("  %s ->", cluster->id_of(i).to_string().c_str());
    for (const NodeId& peer : cluster->protocol(i).dissemination_view()) {
      std::printf(" %s", peer.to_string().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
