// Elastic swarm scenario: a long-running deployment that is never "stable" —
// machines of two hardware classes join and leave continuously (autoscaling,
// spot-instance preemption, deploys) while the application broadcasts.
//
// Exercises the three §6/§2.4 extensions together on one overlay:
//   * heterogeneous degrees (big nodes take proportionally more links),
//   * the CREW-style warm connection cache (repairs skip the dial),
//   * graceful leave vs crash departures under sustained churn.
//
//   $ ./elastic_swarm [--nodes=2000] [--cycles=30] [--churn=0.02]
//                     [--graceful=0.5] [--warm=3] [--seed=11]
#include <cstdio>

#include "hyparview/common/options.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/graph/metrics.hpp"
#include "hyparview/harness/network.hpp"

using namespace hyparview;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.check_known({"nodes", "cycles", "churn", "graceful", "warm", "seed"});
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 2000));
  const auto cycles = static_cast<std::size_t>(args.get_int("cycles", 30));
  const double churn_rate = args.get_double("churn", 0.02);
  const double graceful = args.get_double("graceful", 0.5);
  const auto warm = static_cast<std::size_t>(args.get_int("warm", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  auto config = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, nodes, seed);
  config.hyparview.warm_cache_size = warm;
  // 10% beefy nodes carry ~3x the links of the fleet's small instances.
  config.hyparview_classes = {{0.10, 13, 60}, {0.90, 4, 30}};

  harness::Network net(config);
  std::printf("building a %zu-node two-class overlay (warm cache %zu)...\n",
              nodes, warm);
  net.build();
  net.run_cycles(20);
  std::printf("steady state: reliability %.1f%%, accuracy %.3f\n\n",
              net.broadcast_one().reliability() * 100, net.view_accuracy());

  const auto per_cycle =
      static_cast<std::size_t>(churn_rate * static_cast<double>(nodes));
  std::printf("running %zu cycles of churn: %zu joins + %zu departures per "
              "cycle (%.0f%% graceful)...\n",
              cycles, per_cycle, per_cycle, graceful * 100);

  harness::ChurnConfig churn;
  churn.cycles = cycles;
  churn.joins_per_cycle = per_cycle;
  churn.leaves_per_cycle = per_cycle;
  churn.graceful_fraction = graceful;
  churn.probes_per_cycle = 3;
  const auto stats = net.run_churn(churn);

  for (std::size_t c = 0; c < stats.per_cycle_reliability.size(); ++c) {
    if (c % 5 == 0 || c + 1 == stats.per_cycle_reliability.size()) {
      std::printf("  cycle %2zu: reliability %5.1f%%\n", c + 1,
                  stats.per_cycle_reliability[c] * 100);
    }
  }
  std::printf("\nover the whole run: avg %.2f%%, worst cycle %.2f%% "
              "(%zu joins, %zu graceful leaves, %zu crashes)\n",
              stats.avg_reliability * 100, stats.min_reliability * 100,
              stats.joins, stats.graceful_leaves, stats.crashes);

  // How much repair ran over pre-opened connections?
  std::uint64_t promotions = 0;
  std::uint64_t warm_promotions = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (!net.alive(i)) continue;
    if (const auto* hpv =
            dynamic_cast<const core::HyParView*>(&net.protocol(i))) {
      promotions += hpv->stats().promotions;
      warm_promotions += hpv->stats().warm_promotions;
    }
  }
  std::printf("repairs: %llu promotions, %llu initiated over warm links\n",
              static_cast<unsigned long long>(promotions),
              static_cast<unsigned long long>(warm_promotions));

  const auto g = net.dissemination_graph(true);
  std::printf("final overlay: %zu alive, largest component %zu, accuracy "
              "%.3f\n",
              net.alive_count(),
              graph::largest_weakly_connected_component(
                  g.induced_subgraph(net.alive_mask())),
              net.view_accuracy());
  return 0;
}
