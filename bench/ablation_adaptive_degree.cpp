// Extension E2 (paper §6 future work) — adaptive fanouts via heterogeneous
// degrees: "nodes would be required to adapt their degree (and in-degree)".
//
// In HyParView's deterministic flood a node's active-view size is its
// fanout, and symmetry makes it its in-degree too. We compare a homogeneous
// overlay (every node active=5, the paper setup) against heterogeneous
// ones where a small class of high-capacity nodes takes proportionally more
// links under a matched *total link budget* (Σ capacity ≈ 5n):
//
//   uniform-5         : 100% of nodes, capacity 5            (baseline)
//   supernodes-10%    : 10% capacity 13 / 90% capacity 4.1→4 (hub-ish)
//   supernodes-1%     : 1% capacity 55 / 99% capacity 4.5→5  (strong hubs)
//
// Reported: stable reliability and hops, load share carried by the
// high-capacity class (gossip frames forwarded), and reliability after a
// 50% / 80% failure burst (hubs crash too — the interesting risk).
#include "bench_common.hpp"

#include "hyparview/core/hyparview.hpp"

using namespace hyparview;

namespace {

struct Scenario {
  const char* name;
  std::vector<harness::HyParViewClass> classes;  // empty = homogeneous
};

std::uint64_t forwarded_by_class(harness::Network& net, std::size_t cls) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    if (net.node_class(i) == cls) {
      total += net.runtime(i).gossip().messages_forwarded();
    }
  }
  return total;
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/100);
  bench::JsonRecorder bench_json("ablation_adaptive_degree", scale);
  bench::print_header(
      "Extension E2 — adaptive degree / heterogeneous fanout (HyParView)",
      "paper §6 future work: adapt node degree to capacity", scale);

  const std::vector<Scenario> scenarios = {
      {"uniform-5", {}},
      {"super-10%x13", {{0.10, 13, 60}, {0.90, 4, 30}}},
      {"super-1%x55", {{0.01, 55, 120}, {0.99, 5, 30}}},
  };
  const std::vector<double> fractions = {0.5, 0.8};

  analysis::Table table({"overlay", "stable rel", "max hops",
                         "hub load share", "rel @50% fail", "rel @80% fail"});

  for (const auto& scenario : scenarios) {
    bench::Stopwatch watch;
    double stable_rel = 0.0;
    double max_hops = 0.0;
    double hub_share = 0.0;
    std::vector<double> post_failure;

    for (const double fraction : fractions) {
      auto cfg = bench::sim_config(harness::ProtocolKind::kHyParView,
                                   scale.nodes, scale.seed);
      cfg.hyparview_classes = scenario.classes;
      auto cluster = harness::Cluster::sim(cfg);
      cluster.run(harness::Experiment("adaptive_stabilize")
                      .stabilize(50, bench::env_cycle_options()));
      harness::SimBackend& net = *cluster.sim_backend();

      if (fraction == fractions.front()) {
        // Stable-phase metrics, measured once.
        const std::size_t stable_msgs = std::max<std::size_t>(
            scale.messages / 2, 10);
        const auto stable = cluster.run(
            harness::Experiment("adaptive_stable")
                .broadcast(stable_msgs, "stable"));
        double rel_sum = 0.0;
        double hops_sum = 0.0;
        for (const auto& r : stable.phase("stable").broadcasts) {
          rel_sum += r.reliability();
          hops_sum += r.max_hops;
        }
        stable_rel = rel_sum / static_cast<double>(stable_msgs);
        max_hops = hops_sum / static_cast<double>(stable_msgs);
        if (!scenario.classes.empty()) {
          const double hub_frames =
              static_cast<double>(forwarded_by_class(net, 0));
          double total_frames = hub_frames;
          for (std::size_t c = 1; c < scenario.classes.size(); ++c) {
            total_frames += static_cast<double>(forwarded_by_class(net, c));
          }
          hub_share = total_frames == 0.0 ? 0.0 : hub_frames / total_frames;
        }
      }

      const auto post = cluster.run(
          harness::Experiment("adaptive_post_failure")
              .crash(fraction)
              .broadcast(scale.messages, "measure"));
      post_failure.push_back(post.phase("measure").avg_reliability());
      bench_json.add_events(net.events_processed());
    }

    table.add_row({scenario.name, analysis::fmt_percent(stable_rel, 1),
                   analysis::fmt(max_hops, 1),
                   scenario.classes.empty()
                       ? std::string("n/a")
                       : analysis::fmt_percent(hub_share, 1),
                   analysis::fmt_percent(post_failure[0], 1),
                   analysis::fmt_percent(post_failure[1], 1)});
    std::printf("[%s done in %.1fs]\n", scenario.name, watch.seconds());
  }
  std::cout << table.to_string();
  std::printf(
      "expected shape: heterogeneous overlays shorten delivery paths (hubs "
      "fan out wider) and concentrate load on the high-capacity class, at "
      "matched total link budget; resilience to random mass failures stays "
      "high because the passive-view repair does not depend on hubs "
      "surviving.\n");
  return 0;
}
