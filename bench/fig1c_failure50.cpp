// Figure 1(c): reliability of the first 100 messages after 50% of the nodes
// crash, for Cyclon and Scamp (fanout 4), before any membership cycle runs.
//
// Paper anchor: reliability is lost — no message reaches more than ~85% of
// the surviving nodes, many far fewer.
//
// Pipeline: stabilize → crash(0.5) → measured broadcasts, as one
// declarative Experiment per protocol.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/100);
  bench::JsonRecorder bench_json("fig1c_failure50", scale);
  bench::print_header("Figure 1c — messages after 50% failures",
                      "paper §3.2, Fig. 1(c)", scale);

  analysis::Table series({"msg#", "Cyclon", "Scamp"});
  std::vector<std::vector<double>> columns;

  for (const auto kind :
       {harness::ProtocolKind::kCyclon, harness::ProtocolKind::kScamp}) {
    bench::Stopwatch watch;
    auto cluster = bench::sim_cluster(kind, scale.nodes, scale.seed);
    const auto result =
        cluster.run(harness::Experiment("fig1c")
                        .stabilize(50, bench::env_cycle_options())
                        .crash(0.5)
                        .broadcast(scale.messages, "measure"));
    columns.push_back(result.phase("measure").reliabilities);
    bench_json.add_events(cluster->events_processed());
    bench::add_phase_timings(bench_json, result,
                             std::string(harness::kind_name(kind)) + "_");
    std::printf("[%s done in %.1fs]\n", harness::kind_name(kind),
                watch.seconds());
  }

  for (std::size_t m = 0; m < scale.messages; ++m) {
    if (m % 5 != 0 && m + 1 != scale.messages) continue;  // thin the series
    series.add_row({std::to_string(m + 1),
                    analysis::fmt_percent(columns[0][m], 1),
                    analysis::fmt_percent(columns[1][m], 1)});
  }
  std::cout << series.to_string();

  const auto cy = analysis::summarize(columns[0]);
  const auto sc = analysis::summarize(columns[1]);
  std::printf("Cyclon: avg %s max %s | Scamp: avg %s max %s | paper: no "
              "delivery above ~85%%\n",
              analysis::fmt_percent(cy.mean, 1).c_str(),
              analysis::fmt_percent(cy.max, 1).c_str(),
              analysis::fmt_percent(sc.mean, 1).c_str(),
              analysis::fmt_percent(sc.max, 1).c_str());
  return 0;
}
