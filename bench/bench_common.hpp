// Shared helpers for the experiment drivers (one binary per paper figure).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "hyparview/analysis/stats.hpp"
#include "hyparview/analysis/table.hpp"
#include "hyparview/common/options.hpp"
#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/scale.hpp"
#include "hyparview/harness/spec_json.hpp"
#include "hyparview/harness/sweep_runner.hpp"

namespace hyparview::bench {

inline void print_header(const char* experiment, const char* paper_ref,
                         const harness::BenchScale& scale) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("nodes=%zu messages=%zu runs=%zu seed=%llu%s\n",
              scale.nodes, scale.messages, scale.runs,
              static_cast<unsigned long long>(scale.seed),
              scale.quick ? " (HPV_QUICK)" : "");
  std::printf("Scale with HPV_NODES / HPV_MSGS / HPV_RUNS / HPV_SEED / HPV_QUICK=1.\n");
  std::printf("==================================================================\n");
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Standard sim config for a figure driver. HPV_JOIN_BATCH > 1 opts into
/// the batched bootstrap (overlapped join traffic per incremental drain — a
/// bench-scale mode; the default 1 is the paper's serial join-then-drain
/// methodology).
inline harness::NetworkConfig sim_config(harness::ProtocolKind kind,
                                         std::size_t nodes,
                                         std::uint64_t seed) {
  auto cfg = harness::NetworkConfig::defaults_for(kind, nodes, seed);
  cfg.build_options.join_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("HPV_JOIN_BATCH", 1)));
  return cfg;
}

/// A sim Cluster ready for Experiment specs (env-tuned bootstrap).
inline harness::Cluster sim_cluster(harness::ProtocolKind kind,
                                    std::size_t nodes, std::uint64_t seed) {
  return harness::Cluster::sim(sim_config(kind, nodes, seed));
}

/// Loads a committed experiment spec (specs/<name>.json; HPV_SPEC_DIR
/// overrides the directory) and returns its phase program. The committed
/// file pins the program's *shape*; drivers patch the scale-dependent knobs
/// (broadcast counts, cycle batching, crash fractions) through
/// mutable_phases(), so env-scaled runs stay bit-identical to the
/// historical hand-built specs.
inline harness::Experiment load_spec_experiment(const std::string& name) {
  return harness::load_spec_file(harness::spec_path(name)).experiment;
}

/// Membership-round drain batching for the stabilize/heal phases.
/// HPV_CYCLE_BATCH > 1 opts into whole-round (or, above the node count,
/// multi-round) event batches; the default 1 is the paper's PeerSim
/// semantics, bit-identical to the historical per-node drain.
inline harness::CycleOptions env_cycle_options() {
  harness::CycleOptions options;
  options.batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("HPV_CYCLE_BATCH", 1)));
  return options;
}

/// Machine-readable benchmark record, written as BENCH_<name>.json in the
/// working directory so the perf trajectory is tracked across PRs (diffable,
/// greppable, trivially parsed by CI).
inline void write_bench_json(
    const char* name, const harness::BenchScale& scale, double wall_seconds,
    std::uint64_t events,
    const std::vector<std::pair<std::string, double>>& extra = {}) {
  const std::string path = std::string("BENCH_") + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", name);
  std::fprintf(f, "  \"nodes\": %zu,\n", scale.nodes);
  std::fprintf(f, "  \"messages\": %zu,\n", scale.messages);
  std::fprintf(f, "  \"runs\": %zu,\n", scale.runs);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(scale.seed));
  std::fprintf(f, "  \"quick\": %s,\n", scale.quick ? "true" : "false");
  std::fprintf(f, "  \"wall_seconds\": %.3f,\n", wall_seconds);
  std::fprintf(f, "  \"events\": %llu,\n",
               static_cast<unsigned long long>(events));
  std::fprintf(f, "  \"events_per_second\": %.0f",
               wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                                  : 0.0);
  for (const auto& [key, value] : extra) {
    std::fprintf(f, ",\n  \"%s\": %g", key.c_str(), value);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("[bench json → %s]\n", path.c_str());
}

/// Appends the per-phase timing fields of an experiment run to the BENCH
/// json (phase_seconds_<prefix><label>); bench_compare.py knows these are
/// informational. Instant phases (fanout switches) are skipped.
template <typename Recorder>
inline void add_phase_timings(Recorder& rec,
                              const harness::ExperimentResult& result,
                              const std::string& prefix = "") {
  for (const harness::PhaseResult& phase : result.phases) {
    if (phase.kind == harness::Experiment::PhaseKind::kSetFanout) continue;
    rec.add_metric("phase_seconds_" + prefix + phase.label,
                   phase.wall_seconds);
  }
}

/// Guards worker-side progress prints inside sweep jobs (see run_sweep).
inline std::mutex& sweep_print_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// RAII bench record: starts timing at construction, accumulates simulator
/// event counts as networks finish, writes BENCH_<name>.json on destruction
/// (so a driver cannot forget the emit and every exit path is covered).
class JsonRecorder {
 public:
  JsonRecorder(const char* name, const harness::BenchScale& scale)
      : name_(name), scale_(scale) {}

  JsonRecorder(const JsonRecorder&) = delete;
  JsonRecorder& operator=(const JsonRecorder&) = delete;

  ~JsonRecorder() {
    write_bench_json(name_, scale_, watch_.seconds(), events_, extra_);
  }

  void add_events(std::uint64_t n) { events_ += n; }
  void add_metric(std::string key, double value) {
    extra_.emplace_back(std::move(key), value);
  }

 private:
  const char* name_;
  harness::BenchScale scale_;
  Stopwatch watch_;
  std::uint64_t events_ = 0;
  std::vector<std::pair<std::string, double>> extra_;
};

/// Shared scaffolding for the threaded sweep drivers (fig2/fig3 and the
/// ablations): announces the fan-out, runs the jobs on a SweepRunner
/// (HPV_THREADS), records the resolved thread count on `rec`, and returns
/// per-job wall seconds for the drivers' point_seconds_* metrics. Jobs must
/// follow the SweepRunner determinism contract (own Network, own result
/// slot); guard worker-side progress prints with sweep_print_mutex().
inline std::vector<double> run_sweep(
    const std::vector<std::function<void()>>& jobs, JsonRecorder& rec) {
  harness::SweepRunner runner;
  const std::size_t threads = std::min(runner.threads(), jobs.size());
  std::printf("[sweep: %zu points across %zu threads]\n", jobs.size(),
              threads);
  std::vector<double> seconds = runner.run(jobs);
  rec.add_metric("threads", static_cast<double>(threads));
  return seconds;
}

}  // namespace hyparview::bench
