// Shared helpers for the experiment drivers (one binary per paper figure).
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "hyparview/analysis/stats.hpp"
#include "hyparview/analysis/table.hpp"
#include "hyparview/harness/network.hpp"
#include "hyparview/harness/scale.hpp"

namespace hyparview::bench {

inline void print_header(const char* experiment, const char* paper_ref,
                         const harness::BenchScale& scale) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("nodes=%zu messages=%zu runs=%zu seed=%llu%s\n",
              scale.nodes, scale.messages, scale.runs,
              static_cast<unsigned long long>(scale.seed),
              scale.quick ? " (HPV_QUICK)" : "");
  std::printf("Scale with HPV_NODES / HPV_MSGS / HPV_RUNS / HPV_SEED / HPV_QUICK=1.\n");
  std::printf("==================================================================\n");
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Builds and stabilizes one network (the common §5 preamble).
inline std::unique_ptr<harness::Network> stabilized_network(
    harness::ProtocolKind kind, std::size_t nodes, std::uint64_t seed,
    std::size_t cycles = 50) {
  auto cfg = harness::NetworkConfig::defaults_for(kind, nodes, seed);
  auto net = std::make_unique<harness::Network>(cfg);
  net->build();
  net->run_cycles(cycles);
  return net;
}

}  // namespace hyparview::bench
