// Figure 1(a)/(b): fanout vs. reliability for Cyclon and Scamp on a stable
// 10,000-node overlay (50 gossip messages per fanout). HyParView's
// deterministic flood is included as the reference row (its "fanout" is the
// whole active view).
//
// Paper anchor points: Cyclon needs fanout 5 for >99% and 6 for ~99.9%;
// Scamp needs fanout 6 for >99%.
//
// Pipeline: one declarative Experiment per (protocol, run) — stabilize,
// then per fanout a set_fanout + measured-broadcast phase — run on a sim
// Cluster. Bit-identical to the historical hand-rolled loop at a fixed
// seed (pinned by experiment_test).
//
// The phase programs load from the committed specs/fig1.json and
// specs/fig1_reference.json; only the scale-dependent knobs (broadcast
// counts, cycle batching) are patched from the env.
#include "bench_common.hpp"

using namespace hyparview;

namespace {

std::string fanout_label(std::size_t fanout) {
  return "fanout" + std::to_string(fanout);
}

/// Loads specs/<name>.json and rescales it: broadcast counts follow
/// HPV_MSGS, membership rounds follow HPV_CYCLE_BATCH.
harness::Experiment scaled_spec(const std::string& name,
                                std::size_t messages) {
  harness::Experiment spec = bench::load_spec_experiment(name);
  for (auto& phase : spec.mutable_phases()) {
    if (phase.kind == harness::Experiment::PhaseKind::kCycles) {
      phase.cycle_options = bench::env_cycle_options();
    } else if (phase.kind == harness::Experiment::PhaseKind::kBroadcast) {
      phase.count = messages;
    }
  }
  return spec;
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/50);
  bench::JsonRecorder bench_json("fig1_fanout_reliability", scale);
  bench::print_header("Figure 1a/1b — fanout vs reliability (stable overlay)",
                      "paper §3.1, Fig. 1(a)(b)", scale);

  const std::vector<std::size_t> fanouts = {1, 2, 3, 4, 5, 6, 7, 8};
  analysis::Table table({"protocol", "fanout", "avg reliability",
                         "min reliability", "paper"});

  const harness::Experiment spec = scaled_spec("fig1", scale.messages);
  for (const auto kind :
       {harness::ProtocolKind::kCyclon, harness::ProtocolKind::kScamp}) {
    for (std::size_t run = 0; run < scale.runs; ++run) {
      bench::Stopwatch watch;
      auto cluster = bench::sim_cluster(kind, scale.nodes, scale.seed + run);
      const auto result = cluster.run(spec);

      for (const std::size_t fanout : fanouts) {
        const auto summary =
            analysis::summarize(result.phase(fanout_label(fanout)).reliabilities);
        std::string paper;
        if (kind == harness::ProtocolKind::kCyclon && fanout == 5) {
          paper = ">99%";
        } else if (kind == harness::ProtocolKind::kCyclon && fanout == 6) {
          paper = "~99.9%";
        } else if (kind == harness::ProtocolKind::kScamp && fanout == 6) {
          paper = ">99%";
        }
        table.add_row({harness::kind_name(kind), std::to_string(fanout),
                       analysis::fmt_percent(summary.mean, 2),
                       analysis::fmt_percent(summary.min, 2), paper});
      }
      bench_json.add_events(cluster->events_processed());
      if (run == 0) {
        bench::add_phase_timings(bench_json, result,
                                 std::string(harness::kind_name(kind)) + "_");
      }
      std::printf("[%s run %zu done in %.1fs]\n", harness::kind_name(kind),
                  run, watch.seconds());
    }
  }

  // HyParView reference: flood of the active view (fanout column = |active|-1).
  {
    auto cluster = bench::sim_cluster(harness::ProtocolKind::kHyParView,
                                      scale.nodes, scale.seed);
    const auto result =
        cluster.run(scaled_spec("fig1_reference", scale.messages));
    bench_json.add_events(cluster->events_processed());
    bench::add_phase_timings(bench_json, result, "HyParView_");
    const auto summary =
        analysis::summarize(result.phase("flood").reliabilities);
    table.add_row({"HyParView (flood)", "4*",
                   analysis::fmt_percent(summary.mean, 2),
                   analysis::fmt_percent(summary.min, 2), "100%"});
  }

  std::cout << table.to_string();
  std::printf("* HyParView floods its symmetric active view (size fanout+1); "
              "reliability is 100%% while the overlay is connected.\n");
  return 0;
}
