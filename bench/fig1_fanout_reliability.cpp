// Figure 1(a)/(b): fanout vs. reliability for Cyclon and Scamp on a stable
// 10,000-node overlay (50 gossip messages per fanout). HyParView's
// deterministic flood is included as the reference row (its "fanout" is the
// whole active view).
//
// Paper anchor points: Cyclon needs fanout 5 for >99% and 6 for ~99.9%;
// Scamp needs fanout 6 for >99%.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/50);
  bench::JsonRecorder bench_json("fig1_fanout_reliability", scale);
  bench::print_header("Figure 1a/1b — fanout vs reliability (stable overlay)",
                      "paper §3.1, Fig. 1(a)(b)", scale);

  const std::vector<std::size_t> fanouts = {1, 2, 3, 4, 5, 6, 7, 8};
  analysis::Table table({"protocol", "fanout", "avg reliability",
                         "min reliability", "paper"});

  for (const auto kind :
       {harness::ProtocolKind::kCyclon, harness::ProtocolKind::kScamp}) {
    for (std::size_t run = 0; run < scale.runs; ++run) {
      bench::Stopwatch watch;
      auto net = bench::stabilized_network(kind, scale.nodes,
                                           scale.seed + run, 50);
      for (const std::size_t fanout : fanouts) {
        net->set_fanout(fanout);
        std::vector<double> rels;
        for (std::size_t m = 0; m < scale.messages; ++m) {
          rels.push_back(net->broadcast_one().reliability());
        }
        const auto summary = analysis::summarize(rels);
        std::string paper;
        if (kind == harness::ProtocolKind::kCyclon && fanout == 5) {
          paper = ">99%";
        } else if (kind == harness::ProtocolKind::kCyclon && fanout == 6) {
          paper = "~99.9%";
        } else if (kind == harness::ProtocolKind::kScamp && fanout == 6) {
          paper = ">99%";
        }
        table.add_row({harness::kind_name(kind), std::to_string(fanout),
                       analysis::fmt_percent(summary.mean, 2),
                       analysis::fmt_percent(summary.min, 2), paper});
      }
      bench_json.add_events(net->simulator().events_processed());
      std::printf("[%s run %zu done in %.1fs]\n", harness::kind_name(kind),
                  run, watch.seconds());
    }
  }

  // HyParView reference: flood of the active view (fanout column = |active|-1).
  {
    auto net = bench::stabilized_network(harness::ProtocolKind::kHyParView,
                                         scale.nodes, scale.seed, 50);
    std::vector<double> rels;
    for (std::size_t m = 0; m < scale.messages; ++m) {
      rels.push_back(net->broadcast_one().reliability());
    }
    bench_json.add_events(net->simulator().events_processed());
    const auto summary = analysis::summarize(rels);
    table.add_row({"HyParView (flood)", "4*",
                   analysis::fmt_percent(summary.mean, 2),
                   analysis::fmt_percent(summary.min, 2), "100%"});
  }

  std::cout << table.to_string();
  std::printf("* HyParView floods its symmetric active view (size fanout+1); "
              "reliability is 100%% while the overlay is connected.\n");
  return 0;
}
