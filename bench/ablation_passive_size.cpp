// Ablation A1 (paper §6 future work): how the passive view size relates to
// the resilience level — reliability right after massive failures, for
// passive capacities 5..60.
//
// Every (passive size, fraction) cell is an independent Network, so the grid
// fans out across threads (harness::SweepRunner, HPV_THREADS) with results
// bit-identical to the serial loop.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/200);
  bench::JsonRecorder bench_json("ablation_passive_size", scale);
  bench::print_header(
      "Ablation A1 — passive view size vs resilience (HyParView)",
      "paper §6 (future work): passive size vs supported failures", scale);

  const std::vector<std::size_t> passive_sizes = {5, 10, 20, 30, 60};
  const std::vector<double> fractions = {0.60, 0.80, 0.90, 0.95};

  struct Cell {
    double avg = 0.0;
    double last = 0.0;
    std::uint64_t events = 0;
  };
  std::vector<Cell> cells(passive_sizes.size() * fractions.size());

  std::vector<std::function<void()>> jobs;
  for (std::size_t p = 0; p < passive_sizes.size(); ++p) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      jobs.push_back([&, p, f] {
        auto cfg = bench::sim_config(harness::ProtocolKind::kHyParView,
                                     scale.nodes,
                                     scale.seed + passive_sizes[p]);
        cfg.hyparview.passive_capacity = passive_sizes[p];
        auto cluster = harness::Cluster::sim(cfg);
        const auto result =
            cluster.run(harness::Experiment("passive_size_cell")
                            .stabilize(50, bench::env_cycle_options())
                            .crash(fractions[f])
                            .broadcast(scale.messages, "measure"));
        Cell& cell = cells[p * fractions.size() + f];
        cell.last = result.phase("measure").last_reliability();
        cell.avg = result.phase("measure").avg_reliability();
        cell.events = cluster->events_processed();
        const std::lock_guard<std::mutex> lock(bench::sweep_print_mutex());
        std::printf("[passive=%zu @ %.0f%%: %s]\n", passive_sizes[p],
                    fractions[f] * 100,
                    analysis::fmt_percent(cell.avg, 1).c_str());
      });
    }
  }

  const std::vector<double> cell_seconds = bench::run_sweep(jobs, bench_json);

  analysis::Table table({"passive size", "failure%", "avg reliability",
                         "final reliability"});
  for (std::size_t p = 0; p < passive_sizes.size(); ++p) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const Cell& cell = cells[p * fractions.size() + f];
      table.add_row({std::to_string(passive_sizes[p]),
                     analysis::fmt(fractions[f] * 100.0, 0),
                     analysis::fmt_percent(cell.avg, 1),
                     analysis::fmt_percent(cell.last, 1)});
      bench_json.add_events(cell.events);
      bench_json.add_metric(
          std::string("point_seconds_p") + std::to_string(passive_sizes[p]) +
              "_f" + analysis::fmt(fractions[f] * 100.0, 0),
          cell_seconds[p * fractions.size() + f]);
    }
  }
  std::cout << table.to_string();
  std::printf("expected: larger passive views sustain higher failure rates; "
              "tiny passive views run out of repair candidates.\n");
  return 0;
}
