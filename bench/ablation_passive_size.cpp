// Ablation A1 (paper §6 future work): how the passive view size relates to
// the resilience level — reliability right after massive failures, for
// passive capacities 5..60.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/200);
  bench::JsonRecorder bench_json("ablation_passive_size", scale);
  bench::print_header(
      "Ablation A1 — passive view size vs resilience (HyParView)",
      "paper §6 (future work): passive size vs supported failures", scale);

  const std::vector<std::size_t> passive_sizes = {5, 10, 20, 30, 60};
  const std::vector<double> fractions = {0.60, 0.80, 0.90, 0.95};

  analysis::Table table({"passive size", "failure%", "avg reliability",
                         "final reliability"});
  for (const std::size_t passive : passive_sizes) {
    for (const double fraction : fractions) {
      bench::Stopwatch watch;
      auto cfg = harness::NetworkConfig::defaults_for(
          harness::ProtocolKind::kHyParView, scale.nodes,
          scale.seed + passive);
      cfg.hyparview.passive_capacity = passive;
      harness::Network net(cfg);
      net.build();
      net.run_cycles(50);
      net.fail_random_fraction(fraction);
      double sum = 0.0;
      double last = 0.0;
      for (std::size_t m = 0; m < scale.messages; ++m) {
        last = net.broadcast_one().reliability();
        sum += last;
      }
      bench_json.add_events(net.simulator().events_processed());
      table.add_row({std::to_string(passive),
                     analysis::fmt(fraction * 100.0, 0),
                     analysis::fmt_percent(
                         sum / static_cast<double>(scale.messages), 1),
                     analysis::fmt_percent(last, 1)});
      std::printf("[passive=%zu @ %.0f%%: %.1fs]\n", passive, fraction * 100,
                  watch.seconds());
    }
  }
  std::cout << table.to_string();
  std::printf("expected: larger passive views sustain higher failure rates; "
              "tiny passive views run out of repair candidates.\n");
  return 0;
}
