// Figure 2: average reliability of 1000 messages sent right after a massive
// failure (no membership cycles in between, reactive steps allowed), for
// failure rates 10%..95%, across all four protocols.
//
// Paper anchors: HyParView ≈ flat near 100% below 90% failures and ~90% even
// at 95%; CyclonAcked competitive up to ~70%; Cyclon and Scamp below 50%
// reliability once failures exceed ~50%.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/1000);
  bench::JsonRecorder bench_json("fig2_reliability_vs_failures", scale);
  bench::print_header("Figure 2 — reliability of 1000 messages vs failure %",
                      "paper §5.2, Fig. 2", scale);

  const std::vector<double> fractions = {0.10, 0.20, 0.30, 0.40, 0.50,
                                         0.60, 0.70, 0.80, 0.90, 0.95};
  analysis::Table table({"failure%", "HyParView", "CyclonAcked", "Cyclon",
                         "Scamp"});

  std::vector<std::vector<std::string>> rows(
      fractions.size(), std::vector<std::string>(5));
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    rows[f][0] = analysis::fmt(fractions[f] * 100.0, 0);
  }

  std::size_t column = 1;
  for (const auto kind : harness::all_protocol_kinds()) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      double sum = 0.0;
      bench::Stopwatch watch;
      for (std::size_t run = 0; run < scale.runs; ++run) {
        auto net = bench::stabilized_network(
            kind, scale.nodes, scale.seed + run * 1000 + f, 50);
        net->fail_random_fraction(fractions[f]);
        double acc = 0.0;
        for (std::size_t m = 0; m < scale.messages; ++m) {
          acc += net->broadcast_one().reliability();
        }
        sum += acc / static_cast<double>(scale.messages);
        bench_json.add_events(net->simulator().events_processed());
      }
      rows[f][column] =
          analysis::fmt_percent(sum / static_cast<double>(scale.runs), 1);
      std::printf("[%s @ %.0f%%: %s in %.1fs]\n", harness::kind_name(kind),
                  fractions[f] * 100.0, rows[f][column].c_str(),
                  watch.seconds());
    }
    ++column;
  }

  for (auto& row : rows) table.add_row(std::move(row));
  std::cout << table.to_string();
  std::printf("paper shape: HyParView ~100%% through 80-90%%, ~90%% at 95%%; "
              "CyclonAcked high to 70%%; Cyclon/Scamp <50%% past 50%% "
              "failures.\n");
  return 0;
}
