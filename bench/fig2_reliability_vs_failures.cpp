// Figure 2: average reliability of 1000 messages sent right after a massive
// failure (no membership cycles in between, reactive steps allowed), for
// failure rates 10%..95%, across all four protocols.
//
// Paper anchors: HyParView ≈ flat near 100% below 90% failures and ~90% even
// at 95%; CyclonAcked competitive up to ~70%; Cyclon and Scamp below 50%
// reliability once failures exceed ~50%.
//
// Every (protocol, failure-fraction, run) point is an independent Cluster
// running the same declarative Experiment (stabilize → crash → measure),
// seeded from (config, seed) alone, so the sweep fans out across threads
// (harness::SweepRunner, HPV_THREADS); per-point results and the aggregated
// table are bit-identical to the serial loop.
//
// The phase program loads from the committed specs/fig2.json; each point
// copies the template and rewrites the crash fraction (plus the env-scaled
// broadcast count and cycle batching).
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/1000);
  bench::JsonRecorder bench_json("fig2_reliability_vs_failures", scale);
  bench::print_header("Figure 2 — reliability of 1000 messages vs failure %",
                      "paper §5.2, Fig. 2", scale);

  const std::vector<double> fractions = {0.10, 0.20, 0.30, 0.40, 0.50,
                                         0.60, 0.70, 0.80, 0.90, 0.95};
  analysis::Table table({"failure%", "HyParView", "CyclonAcked", "Cyclon",
                         "Scamp"});

  std::vector<std::vector<std::string>> rows(
      fractions.size(), std::vector<std::string>(5));
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    rows[f][0] = analysis::fmt(fractions[f] * 100.0, 0);
  }

  // One job per (protocol, fraction, run) point; slots are pre-sized so
  // aggregation below reads them in deterministic index order.
  struct Point {
    harness::ProtocolKind kind;
    std::size_t f = 0;
    std::size_t run = 0;
    double reliability = 0.0;
    std::uint64_t events = 0;
  };
  std::vector<Point> points;
  for (const auto kind : harness::all_protocol_kinds()) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      for (std::size_t run = 0; run < scale.runs; ++run) {
        points.push_back({kind, f, run, 0.0, 0});
      }
    }
  }

  // Shared phase-program template; each job copies it and rewrites the
  // crash fraction (SweepRunner jobs own their Experiment copy).
  harness::Experiment spec_template = bench::load_spec_experiment("fig2");
  for (auto& phase : spec_template.mutable_phases()) {
    if (phase.kind == harness::Experiment::PhaseKind::kCycles) {
      phase.cycle_options = bench::env_cycle_options();
    } else if (phase.kind == harness::Experiment::PhaseKind::kBroadcast) {
      phase.count = scale.messages;
    }
  }

  std::vector<std::function<void()>> jobs;
  jobs.reserve(points.size());
  for (Point& point : points) {
    jobs.push_back([&, p = &point] {
      auto cluster = bench::sim_cluster(p->kind, scale.nodes,
                                        scale.seed + p->run * 1000 + p->f);
      harness::Experiment spec = spec_template;
      for (auto& phase : spec.mutable_phases()) {
        if (phase.kind == harness::Experiment::PhaseKind::kCrash) {
          phase.fraction = fractions[p->f];
        }
      }
      const auto result = cluster.run(spec);
      p->reliability = result.phase("measure").avg_reliability();
      p->events = cluster->events_processed();
      const std::lock_guard<std::mutex> lock(bench::sweep_print_mutex());
      std::printf("[%s @ %.0f%% run %zu: %s]\n", harness::kind_name(p->kind),
                  fractions[p->f] * 100.0, p->run,
                  analysis::fmt_percent(p->reliability, 1).c_str());
    });
  }

  const std::vector<double> point_seconds = bench::run_sweep(jobs, bench_json);

  // Deterministic aggregation: index order == serial order.
  std::size_t column = 1;
  std::size_t next_point = 0;
  for (const auto kind : harness::all_protocol_kinds()) {
    (void)kind;
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      double sum = 0.0;
      double seconds = 0.0;
      for (std::size_t run = 0; run < scale.runs; ++run, ++next_point) {
        sum += points[next_point].reliability;
        seconds += point_seconds[next_point];
        bench_json.add_events(points[next_point].events);
      }
      rows[f][column] =
          analysis::fmt_percent(sum / static_cast<double>(scale.runs), 1);
      bench_json.add_metric(
          std::string("point_seconds_") +
              harness::kind_name(points[next_point - 1].kind) + "_f" +
              analysis::fmt(fractions[f] * 100.0, 0),
          seconds);
    }
    ++column;
  }
  for (auto& row : rows) table.add_row(std::move(row));
  std::cout << table.to_string();
  std::printf("paper shape: HyParView ~100%% through 80-90%%, ~90%% at 95%%; "
              "CyclonAcked high to 70%%; Cyclon/Scamp <50%% past 50%% "
              "failures.\n");
  return 0;
}
