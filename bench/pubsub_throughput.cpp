// Extension — Plumtree payload plane vs eager gossip under sustained
// pub/sub traffic (ROADMAP 4).
//
// The paper's dissemination experiments measure discrete broadcast waves;
// real pub/sub systems stream. This driver runs the committed
// specs/pubsub_{plumtree,eager}.json programs — stabilize, a steady-state
// multi-source stream, the same stream under a 25% midpoint crash — on both
// broadcast engines and compares the cost of full reliability:
//
//   * eager gossip floods the payload on every active link, so each message
//     costs ~degree × n payload transmissions;
//   * Plumtree (Leitão/Pereira/Rodrigues, SRDS'07) pushes the payload only
//     on tree links and sends IHave digests on the rest, collapsing the
//     steady-state payload cost to ~n-1 transmissions per message.
//
// The driver HARD-FAILS unless Plumtree holds at least eager reliability
// with at least 40% fewer payload bytes on the wire in steady state — the
// headline claim of the payload plane. Every sim leg runs twice and any
// divergence in event counts or traffic counters also hard-fails:
// determinism is part of what this bench certifies. bytes_on_wire_* /
// latency_to_last_* fields land in BENCH_pubsub_throughput.json
// (informational in bench_compare; plumtree_events/eager_events gate
// exactly).
#include "bench_common.hpp"

#include <cstdlib>
#include <string>

using namespace hyparview;

namespace {

struct PubSubOutcome {
  harness::PubSubStats steady;
  harness::PubSubStats churn;
  std::uint64_t events = 0;
};

/// Exact equality over every deterministic field — the two certification
/// runs must agree bit-for-bit on the sim backend.
bool identical(const harness::PubSubStats& a, const harness::PubSubStats& b) {
  return a.published == b.published && a.payload_bytes == b.payload_bytes &&
         a.control_bytes == b.control_bytes &&
         a.messages_forwarded == b.messages_forwarded &&
         a.duplicates == b.duplicates && a.grafts == b.grafts &&
         a.prunes == b.prunes && a.avg_reliability == b.avg_reliability &&
         a.min_reliability == b.min_reliability &&
         a.avg_latency_us == b.avg_latency_us &&
         a.max_latency_us == b.max_latency_us;
}

bool identical(const PubSubOutcome& a, const PubSubOutcome& b) {
  return a.events == b.events && identical(a.steady, b.steady) &&
         identical(a.churn, b.churn);
}

/// Payload + control: everything the engines put on the wire.
std::uint64_t bytes_on_wire(const harness::PubSubStats& s) {
  return s.payload_bytes + s.control_bytes;
}

/// One engine leg: load the committed spec, patch the scale-dependent knobs
/// (node count, seed, tick counts), run it on a fresh sim cluster.
PubSubOutcome run_leg(const std::string& spec_name,
                      const harness::BenchScale& scale,
                      std::size_t steady_ticks, std::size_t churn_ticks) {
  harness::RunSpec spec =
      harness::load_spec_file(harness::spec_path(spec_name));
  spec.net.node_count = scale.nodes;
  spec.net.seed = scale.seed;
  spec.net.sim.seed = scale.seed;
  spec.net.build_options.join_batch =
      bench::sim_config(spec.net.kind, scale.nodes, scale.seed)
          .build_options.join_batch;

  harness::Experiment exp = spec.experiment;
  for (auto& phase : exp.mutable_phases()) {
    switch (phase.kind) {
      case harness::Experiment::PhaseKind::kCycles:
        phase.cycle_options = bench::env_cycle_options();
        break;
      case harness::Experiment::PhaseKind::kPubSub:
        phase.pubsub.ticks =
            phase.label == "steady" ? steady_ticks : churn_ticks;
        break;
      default:
        break;
    }
  }

  auto cluster = harness::Cluster::sim(spec.net);
  const auto result = cluster.run(exp);
  return {result.phase("steady").pubsub, result.phase("churn").pubsub,
          cluster->events_processed()};
}

PubSubOutcome certified(const char* label, const std::string& spec_name,
                        const harness::BenchScale& scale,
                        std::size_t steady_ticks, std::size_t churn_ticks) {
  const PubSubOutcome first =
      run_leg(spec_name, scale, steady_ticks, churn_ticks);
  const PubSubOutcome second =
      run_leg(spec_name, scale, steady_ticks, churn_ticks);
  if (!identical(first, second)) {
    std::fprintf(
        stderr,
        "pubsub_throughput: DETERMINISM VIOLATION in %s: run1 {events=%llu "
        "payload=%llu dups=%llu} vs run2 {events=%llu payload=%llu "
        "dups=%llu}\n",
        label, static_cast<unsigned long long>(first.events),
        static_cast<unsigned long long>(first.steady.payload_bytes),
        static_cast<unsigned long long>(first.steady.duplicates),
        static_cast<unsigned long long>(second.events),
        static_cast<unsigned long long>(second.steady.payload_bytes),
        static_cast<unsigned long long>(second.steady.duplicates));
    std::exit(1);
  }
  return first;
}

void add_phase_metrics(bench::JsonRecorder& rec, const std::string& engine,
                       const char* phase, const harness::PubSubStats& s) {
  rec.add_metric("reliability_" + engine + "_" + phase, s.avg_reliability);
  rec.add_metric("bytes_on_wire_" + engine + "_" + phase,
                 static_cast<double>(bytes_on_wire(s)));
  rec.add_metric("latency_to_last_" + engine + "_" + phase, s.avg_latency_us);
}

}  // namespace

int main() {
  // Paper program: 8 sources × 2 msgs/tick × 25 steady ticks = 400 messages
  // (HPV_MSGS scales the tick counts; sources × rate stay pinned by the
  // committed spec so the in-flight concurrency regime is preserved).
  const auto scale = harness::BenchScale::from_env(/*messages=*/400);
  bench::JsonRecorder bench_json("pubsub_throughput", scale);
  bench::print_header(
      "Extension — Plumtree payload plane vs eager gossip (pub/sub streams)",
      "Leitão/Pereira/Rodrigues, \"Epidemic Broadcast Trees\" (SRDS'07), on "
      "the HyParView overlay of §5",
      scale);

  const std::size_t steady_ticks =
      std::max<std::size_t>(2, scale.messages / 16);
  const std::size_t churn_ticks =
      std::max<std::size_t>(2, steady_ticks * 2 / 5);

  bench::Stopwatch plumtree_watch;
  const PubSubOutcome plumtree = certified("plumtree", "pubsub_plumtree",
                                           scale, steady_ticks, churn_ticks);
  std::printf("[plumtree: %.1fs ×2 runs]\n", plumtree_watch.seconds());
  bench::Stopwatch eager_watch;
  const PubSubOutcome eager =
      certified("eager", "pubsub_eager", scale, steady_ticks, churn_ticks);
  std::printf("[eager: %.1fs ×2 runs]\n", eager_watch.seconds());

  analysis::Table table({"engine", "phase", "reliability %", "payload MB",
                         "control MB", "dups/msg", "grafts", "prunes",
                         "avg latency"});
  const auto add_row = [&](const char* engine, const char* phase,
                           const harness::PubSubStats& s) {
    table.add_row(
        {engine, phase, analysis::fmt_percent(s.avg_reliability, 2),
         analysis::fmt(static_cast<double>(s.payload_bytes) / 1e6, 2),
         analysis::fmt(static_cast<double>(s.control_bytes) / 1e6, 2),
         analysis::fmt(s.published == 0
                           ? 0.0
                           : static_cast<double>(s.duplicates) /
                                 static_cast<double>(s.published),
                       1),
         std::to_string(s.grafts), std::to_string(s.prunes),
         analysis::fmt(s.avg_latency_us / 1000.0, 2) + "ms"});
  };
  add_row("plumtree", "steady", plumtree.steady);
  add_row("plumtree", "churn", plumtree.churn);
  add_row("eager", "steady", eager.steady);
  add_row("eager", "churn", eager.churn);
  std::cout << table.to_string();

  // ×2: both certification runs contribute simulator events.
  bench_json.add_events(plumtree.events * 2 + eager.events * 2);
  bench_json.add_metric("plumtree_events",
                        static_cast<double>(plumtree.events));
  bench_json.add_metric("eager_events", static_cast<double>(eager.events));
  add_phase_metrics(bench_json, "plumtree", "steady", plumtree.steady);
  add_phase_metrics(bench_json, "plumtree", "churn", plumtree.churn);
  add_phase_metrics(bench_json, "eager", "steady", eager.steady);
  add_phase_metrics(bench_json, "eager", "churn", eager.churn);

  // --- Hard gates: the payload-plane claim itself ------------------------
  const double payload_ratio =
      eager.steady.payload_bytes == 0
          ? 1.0
          : static_cast<double>(plumtree.steady.payload_bytes) /
                static_cast<double>(eager.steady.payload_bytes);
  std::printf(
      "steady state: plumtree %.2f%% reliability at %.1f%% of eager's "
      "payload bytes (%.2fx total wire bytes)\n",
      100.0 * plumtree.steady.avg_reliability, 100.0 * payload_ratio,
      eager.steady.payload_bytes + eager.steady.control_bytes == 0
          ? 1.0
          : static_cast<double>(bytes_on_wire(plumtree.steady)) /
                static_cast<double>(bytes_on_wire(eager.steady)));
  bench_json.add_metric("bytes_on_wire_payload_ratio", payload_ratio);

  bool failed = false;
  if (plumtree.steady.avg_reliability < eager.steady.avg_reliability) {
    std::fprintf(stderr,
                 "pubsub_throughput: GATE FAIL: plumtree steady reliability "
                 "%.6f below eager %.6f\n",
                 plumtree.steady.avg_reliability,
                 eager.steady.avg_reliability);
    failed = true;
  }
  if (payload_ratio > 0.6) {
    std::fprintf(stderr,
                 "pubsub_throughput: GATE FAIL: plumtree payload bytes are "
                 "%.1f%% of eager's (gate: <= 60%%)\n",
                 100.0 * payload_ratio);
    failed = true;
  }
  if (failed) return 1;

  std::printf(
      "expected shape: both engines deliver to every correct node; eager "
      "pays ~degree payload copies per delivery while Plumtree's tree "
      "converges after the first waves and drops payload duplicates to "
      "~zero (IHave digests on lazy links are an order of magnitude "
      "smaller); under the midpoint crash Plumtree grafts the tree back "
      "together and reliability recovers within the tick.\n");
  return 0;
}
