// Figure 5: in-degree distribution of the overlay after stabilization.
//
// Paper anchors: HyParView concentrates almost all nodes at in-degree 5
// (the symmetric active view size); Cyclon spreads over a wide range;
// Scamp has a long tail including nodes known by a single other node.
#include "bench_common.hpp"

#include "hyparview/graph/metrics.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/0);
  bench::JsonRecorder bench_json("fig5_indegree_distribution", scale);
  bench::print_header("Figure 5 — in-degree distribution after stabilization",
                      "paper §5.4, Fig. 5", scale);

  for (const auto kind : harness::all_protocol_kinds()) {
    bench::Stopwatch watch;
    auto cluster = bench::sim_cluster(kind, scale.nodes, scale.seed);
    cluster.run(harness::Experiment("fig5_stabilize")
                    .stabilize(50, bench::env_cycle_options()));
    const auto g = cluster->dissemination_graph(false);
    const auto hist = graph::in_degree_histogram(g);
    std::printf("\n%s (built in %.1fs):\n", harness::kind_name(kind),
                watch.seconds());
    analysis::Table table({"in-degree", "nodes", "fraction"});
    // Bucket the tail so Scamp/Cyclon tables stay readable.
    const std::size_t max_individual = 20;
    std::size_t tail = 0;
    for (std::size_t d = 0; d < hist.size(); ++d) {
      if (d <= max_individual) {
        if (hist[d] == 0) continue;
        table.add_row({std::to_string(d), std::to_string(hist[d]),
                       analysis::fmt_percent(
                           static_cast<double>(hist[d]) /
                               static_cast<double>(scale.nodes),
                           2)});
      } else {
        tail += hist[d];
      }
    }
    if (tail > 0) {
      table.add_row({">" + std::to_string(max_individual),
                     std::to_string(tail),
                     analysis::fmt_percent(static_cast<double>(tail) /
                                               static_cast<double>(scale.nodes),
                                           2)});
    }
    std::cout << table.to_string();

    bench_json.add_events(cluster->events_processed());
    const auto indeg = g.in_degrees();
    std::vector<double> values(indeg.begin(), indeg.end());
    const auto summary = analysis::summarize(values);
    std::printf("mean in-degree %.2f, stddev %.2f, min %.0f, max %.0f\n",
                summary.mean, summary.stddev, summary.min, summary.max);
  }
  std::printf("\npaper shape: HyParView pinned at |active|=5; Cyclon wide; "
              "Scamp long-tailed with some in-degree-1 nodes.\n");
  return 0;
}
