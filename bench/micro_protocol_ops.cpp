// Microbenchmarks (google-benchmark): protocol hot paths and substrate
// throughput. These complement the figure drivers with per-operation costs.
#include <benchmark/benchmark.h>

#include "../tests/support/fake_env.hpp"
#include "hyparview/baselines/cyclon.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/membership/wire.hpp"
#include "hyparview/sim/simulator.hpp"

namespace hyparview {
namespace {

NodeId nid(std::uint32_t i) { return NodeId::from_index(i); }

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(35));
  }
}
BENCHMARK(BM_RngBelow);

void BM_RngSample(benchmark::State& state) {
  Rng rng(1);
  std::vector<NodeId> pool;
  for (std::uint32_t i = 0; i < 35; ++i) pool.push_back(nid(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rng.sample(pool, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_RngSample)->Arg(4)->Arg(8)->Arg(14);

void BM_WireEncodeGossip(benchmark::State& state) {
  const wire::Message msg = wire::Gossip{0xABCD, 7, 128};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_bytes(msg));
  }
}
BENCHMARK(BM_WireEncodeGossip);

void BM_WireRoundTripShuffle(benchmark::State& state) {
  wire::Shuffle sh;
  sh.origin = nid(1);
  sh.ttl = 6;
  for (std::uint32_t i = 0; i < 8; ++i) sh.entries.push_back(nid(i));
  const wire::Message msg = sh;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_bytes(wire::encode_bytes(msg)));
  }
}
BENCHMARK(BM_WireRoundTripShuffle);

void BM_WireEncodedSize(benchmark::State& state) {
  // Per-send cost of the simulator's byte accounting: must stay far below
  // an actual encode (no allocation).
  wire::Shuffle sh;
  sh.origin = nid(1);
  sh.ttl = 6;
  for (std::uint32_t i = 0; i < 8; ++i) sh.entries.push_back(nid(i));
  const wire::Message msg = sh;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encoded_size(msg));
  }
}
BENCHMARK(BM_WireEncodedSize);

void BM_HyParViewWarmCacheRefresh(benchmark::State& state) {
  test::FakeEnv env(nid(0));
  core::Config cfg;
  cfg.warm_cache_size = static_cast<std::size_t>(state.range(0));
  core::HyParView proto(env, cfg);
  for (std::uint32_t i = 0; i < cfg.active_capacity; ++i) {
    proto.handle(nid(100 + i), wire::Join{});
  }
  // A full-capacity reply (the flat wire format bounds shuffle lists at
  // kMaxShuffleEntries) seeds the passive view for the refresh loop.
  std::vector<NodeId> entries;
  for (std::uint32_t i = 0; i < wire::kMaxShuffleEntries; ++i) {
    entries.push_back(nid(200 + i));
  }
  proto.handle(nid(99), wire::ShuffleReply{{}, entries});
  for (auto _ : state) {
    proto.on_cycle();
    // Complete the dials so every iteration refreshes from a warm state.
    for (std::size_t i = 0; i < env.connects.size(); ++i) {
      if (!env.connects[i].completed) env.complete_connect(i, true);
    }
    env.clear();
  }
}
BENCHMARK(BM_HyParViewWarmCacheRefresh)->Arg(0)->Arg(3)->Arg(6);

void BM_HyParViewHandleJoin(benchmark::State& state) {
  test::FakeEnv env(nid(0));
  core::HyParView proto(env, core::Config{});
  std::uint32_t next = 1;
  for (auto _ : state) {
    proto.handle(nid(next++ % 1000 + 1), wire::Join{});
    env.sent.clear();
  }
}
BENCHMARK(BM_HyParViewHandleJoin);

void BM_HyParViewBroadcastTargets(benchmark::State& state) {
  test::FakeEnv env(nid(0));
  core::HyParView proto(env, core::Config{});
  for (std::uint32_t i = 1; i <= 5; ++i) proto.handle(nid(i), wire::Join{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.broadcast_targets(4, nid(1)));
  }
}
BENCHMARK(BM_HyParViewBroadcastTargets);

void BM_HyParViewShuffleIntegration(benchmark::State& state) {
  test::FakeEnv env(nid(0));
  core::HyParView proto(env, core::Config{});
  for (std::uint32_t i = 1; i <= 5; ++i) proto.handle(nid(i), wire::Join{});
  std::uint32_t next = 10;
  for (auto _ : state) {
    wire::ShuffleReply reply;
    for (int i = 0; i < 8; ++i) reply.entries.push_back(nid(next++));
    proto.handle(nid(1), reply);
    env.sent.clear();
  }
}
BENCHMARK(BM_HyParViewShuffleIntegration);

void BM_CyclonShuffleRound(benchmark::State& state) {
  test::FakeEnv env(nid(0));
  baselines::Cyclon proto(env, baselines::CyclonConfig{});
  for (std::uint32_t i = 1; i <= 35; ++i) {
    proto.handle(nid(99), wire::CyclonJoinGift{{nid(i), 0}});
  }
  for (auto _ : state) {
    proto.on_cycle();
    env.sent.clear();
  }
}
BENCHMARK(BM_CyclonShuffleRound);

void BM_CyclonBroadcastTargets(benchmark::State& state) {
  test::FakeEnv env(nid(0));
  baselines::Cyclon proto(env, baselines::CyclonConfig{});
  for (std::uint32_t i = 1; i <= 35; ++i) {
    proto.handle(nid(99), wire::CyclonJoinGift{{nid(i), 0}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto.broadcast_targets(4, nid(1)));
  }
}
BENCHMARK(BM_CyclonBroadcastTargets);

/// Endpoint that drops everything: measures pure simulator throughput.
class NullHandler final : public membership::Endpoint {
 public:
  void deliver(const NodeId&, const wire::Message&) override {}
  void send_failed(const NodeId&, const wire::Message&) override {}
  void link_closed(const NodeId&) override {}
};

void BM_SimulatorEventThroughput(benchmark::State& state) {
  sim::SimConfig cfg;
  sim::Simulator sim(cfg);
  NullHandler handler;
  const NodeId a = sim.add_node(&handler);
  const NodeId b = sim.add_node(&handler);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 1000; ++i) {
      sim.env(a).send(b, wire::Gossip{static_cast<std::uint64_t>(i), 0, 0});
    }
    state.ResumeTiming();
    sim.run_until_quiescent();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace
}  // namespace hyparview

BENCHMARK_MAIN();
