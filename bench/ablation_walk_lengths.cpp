// Ablation A2: ARWL / PRWL random-walk lengths — their effect on overlay
// quality straight after the join phase (no stabilization cycles), which is
// exactly what the join walks are responsible for.
#include "bench_common.hpp"

#include "hyparview/graph/metrics.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/50);
  bench::JsonRecorder bench_json("ablation_walk_lengths", scale);
  bench::print_header("Ablation A2 — ARWL/PRWL walk lengths (HyParView)",
                      "paper §4.2 parameters (ARWL=6, PRWL=3 in §5.1)", scale);

  struct Setting {
    std::uint8_t arwl;
    std::uint8_t prwl;
  };
  const std::vector<Setting> settings = {{1, 0}, {3, 1}, {6, 3},
                                         {8, 5}, {12, 6}};

  analysis::Table table({"ARWL", "PRWL", "connected?", "in-deg stddev",
                         "mean passive fill", "reliability(50 msgs)"});
  for (const auto& s : settings) {
    bench::Stopwatch watch;
    auto cfg = bench::sim_config(harness::ProtocolKind::kHyParView,
                                 scale.nodes, scale.seed);
    cfg.hyparview.arwl = s.arwl;
    cfg.hyparview.prwl = s.prwl;
    auto cluster = harness::Cluster::sim(cfg);
    // An empty spec runs the build alone: joins only, no membership
    // rounds — isolate the walk behaviour.
    cluster.run(harness::Experiment("walk_joins"));
    harness::Backend& net = cluster.backend();

    const auto g = net.dissemination_graph(false);
    const auto indeg = g.in_degrees();
    std::vector<double> values(indeg.begin(), indeg.end());
    const auto summary = analysis::summarize(values);

    double passive_total = 0.0;
    for (std::size_t i = 0; i < net.node_count(); ++i) {
      passive_total +=
          static_cast<double>(net.protocol(i).backup_view().size());
    }
    const double passive_fill =
        passive_total / static_cast<double>(net.node_count()) /
        static_cast<double>(cfg.hyparview.passive_capacity);

    const auto measure = cluster.run(
        harness::Experiment("walk_reliability")
            .broadcast(scale.messages, "rel"));
    const double rel = measure.phase("rel").avg_reliability();

    bench_json.add_events(net.events_processed());
    table.add_row({std::to_string(s.arwl), std::to_string(s.prwl),
                   graph::is_weakly_connected(g) ? "yes" : "NO",
                   analysis::fmt(summary.stddev, 2),
                   analysis::fmt_percent(passive_fill, 1),
                   analysis::fmt_percent(rel, 2)});
    std::printf("[ARWL=%u PRWL=%u: %.1fs]\n", s.arwl, s.prwl, watch.seconds());
  }
  std::cout << table.to_string();
  std::printf("expected: short walks concentrate joiners near the contact "
              "(higher in-degree spread, emptier passive views); the paper's "
              "6/3 keeps the overlay connected with passive views primed.\n");
  return 0;
}
