// Ablation A4 — the CREW-style connection cache (§2.4): HyParView with
// warm_cache_size pre-opened connections to passive-view members.
//
// The paper notes CREW's open-connection cache "can be applied in
// HyParView, by pre-opening connections to some of the members of the
// passive view" but does not evaluate it. This bench quantifies the trade:
//
//   * standing cost — extra connection dials per node per membership cycle
//     (cache refresh), measured over 10 quiet cycles;
//   * repair speed — after a massive failure, how much of the active-view
//     repair runs over pre-opened links (warm promotions), how many dials
//     dissemination-time repair needs, and the reliability of the early
//     post-failure broadcasts;
//   * hygiene — cache-refresh dials double as liveness probes of the
//     passive view, expunging dead candidates before repair needs them.
#include "bench_common.hpp"

using namespace hyparview;

namespace {

/// Per-node warm-promotion counters (0 for non-HyParView nodes).
std::vector<std::uint64_t> warm_promotions_per_node(harness::Network& net) {
  std::vector<std::uint64_t> out(net.node_count(), 0);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto* hpv = dynamic_cast<const core::HyParView*>(&net.protocol(i));
    if (hpv != nullptr) out[i] = hpv->stats().warm_promotions;
  }
  return out;
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/100);
  bench::JsonRecorder bench_json("ablation_warm_cache", scale);
  bench::print_header(
      "Ablation A4 — warm passive-connection cache (CREW §2.4)",
      "paper §2.4 (CREW comparison): pre-opened connections to passive members",
      scale);

  const std::vector<std::size_t> cache_sizes = {0, 3, 6};
  const std::vector<double> fractions = {0.50, 0.80, 0.90};

  analysis::Table table({"warm", "failure%", "idle dials/node/cycle",
                         "first-10 reliability", "avg reliability",
                         "warm promos/node", "repair dials/node"});

  for (const double fraction : fractions) {
    for (const std::size_t warm : cache_sizes) {
      bench::Stopwatch watch;
      auto cfg = bench::sim_config(harness::ProtocolKind::kHyParView,
                                   scale.nodes, scale.seed);
      cfg.hyparview.warm_cache_size = warm;
      auto cluster = harness::Cluster::sim(cfg);
      cluster.run(harness::Experiment("warm_stabilize")
                      .stabilize(50, bench::env_cycle_options()));
      harness::SimBackend& net = *cluster.sim_backend();

      // Standing cost of the cache at steady state (counters reset between
      // the metered Experiment phases — runs compose on one Cluster).
      auto& sim = net.simulator();
      sim.reset_counters();
      cluster.run(harness::Experiment("warm_idle")
                      .cycles(10, bench::env_cycle_options()));
      const double idle_dials =
          static_cast<double>(sim.connections_opened()) /
          static_cast<double>(net.alive_count()) / 10.0;

      const auto warm_promos_before = warm_promotions_per_node(net);

      net.fail_random_fraction(fraction);
      sim.reset_counters();
      const auto measure =
          cluster.run(harness::Experiment("warm_measure")
                          .broadcast(scale.messages, "measure"));
      const auto& rels = measure.phase("measure").reliabilities;
      double sum = 0.0;
      double first10 = 0.0;
      for (std::size_t m = 0; m < rels.size(); ++m) {
        sum += rels[m];
        if (m < 10) first10 += rels[m];
      }
      const double alive = static_cast<double>(net.alive_count());
      const auto warm_promos_after = warm_promotions_per_node(net);
      std::uint64_t repair_warm_promos = 0;
      for (std::size_t i = 0; i < warm_promos_after.size(); ++i) {
        if (net.alive(i)) {
          repair_warm_promos += warm_promos_after[i] - warm_promos_before[i];
        }
      }

      table.add_row(
          {std::to_string(warm), analysis::fmt(fraction * 100.0, 0),
           analysis::fmt(idle_dials, 3),
           analysis::fmt_percent(first10 / 10.0, 1),
           analysis::fmt_percent(sum / static_cast<double>(scale.messages), 1),
           analysis::fmt(static_cast<double>(repair_warm_promos) / alive, 2),
           analysis::fmt(static_cast<double>(sim.connections_opened()) / alive,
                         2)});
      bench_json.add_events(sim.events_processed());
      std::printf("[warm=%zu @ %.0f%%: %.1fs]\n", warm, fraction * 100,
                  watch.seconds());
    }
  }
  std::cout << table.to_string();
  std::printf(
      "expected: the cache trades a small steady dial rate for repair that "
      "needs fewer dissemination-time dials (warm promotions replace them); "
      "reliability is already near-perfect without it, so the gain shows in "
      "repair traffic and latency, not delivery counts.\n");
  return 0;
}
