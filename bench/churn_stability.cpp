// Extension E1 — reliability under *continuous* churn.
//
// The paper's evaluation (§5) studies one catastrophic failure burst; real
// deployments also face steady turnover (the §2.1 "dynamic changes in the
// system"). Every cycle, `rate`·n nodes join and `rate`·n depart (half
// gracefully via the protocol's leave primitive, half by crashing), while
// probe broadcasts measure the reliability applications observe. Columns
// report the average and worst per-cycle reliability over the churn run,
// plus the health of the surviving overlay afterwards.
#include "bench_common.hpp"

#include "hyparview/graph/metrics.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/100);
  bench::JsonRecorder bench_json("churn_stability", scale);
  bench::print_header(
      "Extension E1 — reliability under continuous churn",
      "extends §5.2 (single failure burst) to steady join/leave turnover",
      scale);

  const std::vector<double> rates = {0.005, 0.02, 0.05};
  constexpr std::size_t kChurnCycles = 30;

  analysis::Table table({"protocol", "churn %/cycle", "avg reliability",
                         "min reliability", "connected %", "accuracy"});

  for (const auto kind : harness::all_protocol_kinds()) {
    for (const double rate : rates) {
      bench::Stopwatch watch;
      harness::ChurnConfig churn;
      churn.cycles = kChurnCycles;
      churn.joins_per_cycle =
          static_cast<std::size_t>(rate * static_cast<double>(scale.nodes));
      churn.leaves_per_cycle = churn.joins_per_cycle;
      churn.graceful_fraction = 0.5;
      churn.probes_per_cycle = 2;

      auto cluster = bench::sim_cluster(kind, scale.nodes, scale.seed);
      const auto result =
          cluster.run(harness::Experiment("churn_stability")
                          .stabilize(50, bench::env_cycle_options())
                          .churn(churn, "churn"));
      const harness::ChurnStats& stats = result.phase("churn").churn;

      const auto g = cluster->dissemination_graph(/*alive_only=*/true);
      const double connected =
          static_cast<double>(graph::largest_weakly_connected_component(g)) /
          static_cast<double>(cluster->alive_count());

      bench_json.add_events(cluster->events_processed());
      table.add_row({harness::kind_name(kind),
                     analysis::fmt(rate * 100.0, 1),
                     analysis::fmt_percent(stats.avg_reliability, 1),
                     analysis::fmt_percent(stats.min_reliability, 1),
                     analysis::fmt_percent(connected, 1),
                     analysis::fmt(cluster->view_accuracy(), 3)});
      std::printf("[%s @ %.1f%%/cycle: %.1fs (%zu joins, %zu leaves, %zu "
                  "crashes)]\n",
                  harness::kind_name(kind), rate * 100.0, watch.seconds(),
                  stats.joins, stats.graceful_leaves, stats.crashes);
    }
  }
  std::cout << table.to_string();
  std::printf(
      "expected shape: HyParView holds ~100%% through every rate (reactive "
      "repair keeps pace with turnover); CyclonAcked close behind; plain "
      "Cyclon/Scamp degrade as stale entries accumulate faster than their "
      "cyclic/lease refresh can purge them.\n");
  return 0;
}
