// Packet / byte overhead accounting (paper §6 future work: "measure the
// packet overhead of our approach due to the use of TCP" — the PlanetLab
// experiment the authors defer).
//
// For every protocol, after the standard §5 stabilization preamble, two
// phases are metered with the simulator's traffic counters:
//
//   1. steady-state membership maintenance — 10 cycles with no broadcasts:
//      control frames, control bytes and TCP connection establishments per
//      node per cycle (HyParView keeps its active-view connections open, so
//      its recurring dial cost is just the shuffle-reply temporaries);
//   2. dissemination — broadcasts with no membership cycles: gossip frames
//      and bytes per broadcast, redundancy (extra copies per delivery), ack
//      frames (CyclonAcked), and the repair traffic the broadcasts trigger.
//
// The paper's qualitative claim (§5.5): the small fanout is what makes
// flooding every link affordable — HyParView's data redundancy should sit
// near active-degree-1 ≈ fanout while random-fanout protocols pay the same
// fanout in duplicates *plus* failed deliveries, and its steady-state dial
// rate should be far below Cyclon's one-temporary-connection-per-shuffle.
#include "bench_common.hpp"

#include "hyparview/membership/wire.hpp"

using namespace hyparview;

namespace {

struct PhaseTraffic {
  double msgs_per_node = 0.0;
  double bytes_per_node = 0.0;
  double conns_per_node = 0.0;
  std::uint64_t gossip_frames = 0;
  std::uint64_t gossip_bytes = 0;
  std::uint64_t ack_frames = 0;
  std::uint64_t control_bytes = 0;  ///< everything but gossip + acks
};

PhaseTraffic snapshot(const sim::Simulator& sim, std::size_t nodes,
                      std::size_t rounds) {
  PhaseTraffic t;
  const auto gossip_tag = wire::type_tag(wire::Message{wire::Gossip{}});
  const auto ack_tag = wire::type_tag(wire::Message{wire::GossipAck{}});
  const double denom = static_cast<double>(nodes) * static_cast<double>(rounds);
  t.msgs_per_node = static_cast<double>(sim.messages_sent()) / denom;
  t.bytes_per_node = static_cast<double>(sim.bytes_sent()) / denom;
  t.conns_per_node = static_cast<double>(sim.connections_opened()) / denom;
  t.gossip_frames = sim.sent_by_type()[gossip_tag];
  t.gossip_bytes = sim.bytes_by_type()[gossip_tag];
  t.ack_frames = sim.sent_by_type()[ack_tag];
  t.control_bytes =
      sim.bytes_sent() - t.gossip_bytes - sim.bytes_by_type()[ack_tag];
  return t;
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/100);
  bench::JsonRecorder bench_json("overhead_accounting", scale);
  bench::print_header(
      "Overhead accounting — control/data frames, bytes and TCP dials",
      "paper §6 future work (PlanetLab packet-overhead measurement)", scale);

  constexpr std::size_t kMaintenanceCycles = 10;

  analysis::Table maint({"protocol", "ctrl msgs/node/cycle",
                         "ctrl bytes/node/cycle", "dials/node/cycle"});
  analysis::Table dissem({"protocol", "frames/bcast", "KB/bcast", "redundancy",
                          "acks/bcast", "repair bytes/bcast", "reliability"});

  for (const auto kind : harness::all_protocol_kinds()) {
    bench::Stopwatch watch;
    auto cfg = bench::sim_config(kind, scale.nodes, scale.seed);
    // This experiment meters wire cost, so CyclonAcked ships its ack frames
    // for real instead of the implicit transport-level modeling.
    cfg.gossip.explicit_acks = true;
    auto cluster = harness::Cluster::sim(cfg);
    cluster.run(harness::Experiment("overhead_stabilize")
                    .stabilize(50, bench::env_cycle_options()));
    harness::SimBackend& net = *cluster.sim_backend();
    auto& sim = net.simulator();

    // Phase 1: membership maintenance only (counters reset between the
    // metered Experiment phases — runs compose on one Cluster).
    sim.reset_counters();
    cluster.run(harness::Experiment("overhead_maintenance")
                    .cycles(kMaintenanceCycles, bench::env_cycle_options()));
    const auto maintenance =
        snapshot(sim, net.alive_count(), kMaintenanceCycles);
    maint.add_row({harness::kind_name(kind),
                   analysis::fmt(maintenance.msgs_per_node, 2),
                   analysis::fmt(maintenance.bytes_per_node, 1),
                   analysis::fmt(maintenance.conns_per_node, 3)});

    // Phase 2: dissemination only (stable overlay, no cycles in between —
    // the §5.2 regime).
    sim.reset_counters();
    const auto dissemination = cluster.run(
        harness::Experiment("overhead_dissemination")
            .broadcast(scale.messages, "bcast"));
    std::size_t delivered = 0;
    for (const auto& r : dissemination.phase("bcast").broadcasts) {
      delivered += r.delivered;
    }
    const auto traffic = snapshot(sim, net.alive_count(), scale.messages);
    const double bcasts = static_cast<double>(scale.messages);
    const double redundancy =
        delivered == 0 ? 0.0
                       : static_cast<double>(traffic.gossip_frames) /
                                 static_cast<double>(delivered) -
                             1.0;
    double reliability_sum = 0.0;
    for (const auto& r : net.recorder().results()) {
      reliability_sum += r.reliability();
    }
    const auto& results = net.recorder().results();
    const std::size_t tail =
        std::min(results.size(), scale.messages);  // this phase's messages
    double tail_rel = 0.0;
    for (std::size_t i = results.size() - tail; i < results.size(); ++i) {
      tail_rel += results[i].reliability();
    }
    dissem.add_row(
        {harness::kind_name(kind),
         analysis::fmt(static_cast<double>(traffic.gossip_frames) / bcasts, 0),
         analysis::fmt(
             static_cast<double>(traffic.gossip_bytes) / bcasts / 1024.0, 1),
         analysis::fmt(redundancy, 3),
         analysis::fmt(static_cast<double>(traffic.ack_frames) / bcasts, 0),
         analysis::fmt(static_cast<double>(traffic.control_bytes) / bcasts, 1),
         analysis::fmt(100.0 * tail_rel / static_cast<double>(tail), 1) + "%"});
    bench_json.add_events(sim.events_processed());
    std::printf("[%s done in %.1fs]\n", harness::kind_name(kind),
                watch.seconds());
  }

  std::printf("\n--- steady-state membership maintenance (%zu cycles, no "
              "broadcasts) ---\n",
              kMaintenanceCycles);
  std::cout << maint.to_string();
  std::printf("\n--- dissemination (%zu broadcasts, stable overlay, no "
              "cycles) ---\n",
              scale.messages);
  std::cout << dissem.to_string();
  std::printf(
      "expected shape: HyParView's recurring dials are only the shuffle-reply "
      "temporaries (~1/node/cycle) and it floods with redundancy ≈ "
      "active-degree-1 ≈ fanout; Cyclon/Scamp pay the same fanout-sized "
      "redundancy; CyclonAcked additionally ships one ack frame per gossip "
      "frame received (≈ frames/bcast).\n");
  return 0;
}
