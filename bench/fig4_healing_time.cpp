// Figure 4: membership cycles needed to regain the pre-failure reliability,
// per failure percentage (10 probe broadcasts per cycle).
//
// Paper anchors: HyParView heals in 1-2 cycles below 80% (≤4 at 90%);
// Cyclon's healing time grows almost linearly with the failure percentage;
// Scamp is omitted (healing depends on its lease).
//
// The (failure-fraction × protocol) healing repetitions are statistically
// independent — each builds its own Network from a (config, seed) pair — so
// they shard across the harness::SweepRunner thread pool (HPV_THREADS).
// Results land in pre-sized slots and are aggregated in index order, which
// makes the threaded run bit-identical to the serial loop (tested by
// healing_shard_test).
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/10);
  bench::JsonRecorder bench_json("fig4_healing_time", scale);
  bench::print_header("Figure 4 — healing time (membership cycles)",
                      "paper §5.3, Fig. 4", scale);

  const std::vector<double> fractions = {0.10, 0.20, 0.30, 0.40, 0.50,
                                         0.60, 0.70, 0.80, 0.90};
  const std::vector<harness::ProtocolKind> kinds = {
      harness::ProtocolKind::kHyParView, harness::ProtocolKind::kCyclonAcked,
      harness::ProtocolKind::kCyclon};

  // Plain Cyclon's tail converges slowly (dead entries recirculate until
  // aging expels them); give it room so the % dependence is visible.
  constexpr std::size_t kMaxCycles = 100;
  const std::string not_recovered = ">" + std::to_string(kMaxCycles);

  // One job per (fraction, kind) point, row-major, each writing only its own
  // pre-sized result slot (the SweepRunner determinism contract).
  const std::size_t point_count = fractions.size() * kinds.size();
  std::vector<harness::HealingResult> results(point_count);
  std::vector<std::function<void()>> jobs;
  jobs.reserve(point_count);
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const double fraction = fractions[f];
      const auto kind = kinds[k];
      const std::size_t slot = f * kinds.size() + k;
      jobs.push_back([&, fraction, kind, slot] {
        bench::Stopwatch watch;
        // run_healing_experiment is itself a declarative Experiment spec on
        // a sim Cluster (stabilize → baseline → crash → heal_until).
        auto cfg = bench::sim_config(
            kind, scale.nodes,
            scale.seed + static_cast<std::uint64_t>(fraction * 100));
        harness::HealingConfig hcfg;
        hcfg.fail_fraction = fraction;
        hcfg.probes_per_cycle = scale.messages;
        hcfg.max_cycles = kMaxCycles;
        hcfg.stabilization_cycles = 50;
        results[slot] = harness::run_healing_experiment(cfg, hcfg);
        const std::lock_guard<std::mutex> lock(bench::sweep_print_mutex());
        std::printf("[%s @ %.0f%%: %s cycles in %.1fs]\n",
                    harness::kind_name(kind), fraction * 100.0,
                    results[slot].recovered
                        ? std::to_string(results[slot].cycles_to_heal).c_str()
                        : not_recovered.c_str(),
                    watch.seconds());
      });
    }
  }
  bench::run_sweep(jobs, bench_json);

  analysis::Table table({"failure%", "HyParView", "CyclonAcked", "Cyclon",
                         "paper (HyParView)"});
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    std::vector<std::string> row;
    row.push_back(analysis::fmt(fractions[f] * 100.0, 0));
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& result = results[f * kinds.size() + k];
      bench_json.add_events(result.events_processed);
      row.push_back(result.recovered ? std::to_string(result.cycles_to_heal)
                                     : not_recovered);
    }
    row.push_back(fractions[f] < 0.8 ? "1-2" : "<=4");
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();
  std::printf("Scamp omitted as in the paper: its healing time is governed "
              "by the lease period.\n");
  return 0;
}
