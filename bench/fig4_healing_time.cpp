// Figure 4: membership cycles needed to regain the pre-failure reliability,
// per failure percentage (10 probe broadcasts per cycle).
//
// Paper anchors: HyParView heals in 1-2 cycles below 80% (≤4 at 90%);
// Cyclon's healing time grows almost linearly with the failure percentage;
// Scamp is omitted (healing depends on its lease).
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/10);
  bench::JsonRecorder bench_json("fig4_healing_time", scale);
  bench::print_header("Figure 4 — healing time (membership cycles)",
                      "paper §5.3, Fig. 4", scale);

  const std::vector<double> fractions = {0.10, 0.20, 0.30, 0.40, 0.50,
                                         0.60, 0.70, 0.80, 0.90};
  const std::vector<harness::ProtocolKind> kinds = {
      harness::ProtocolKind::kHyParView, harness::ProtocolKind::kCyclonAcked,
      harness::ProtocolKind::kCyclon};

  analysis::Table table({"failure%", "HyParView", "CyclonAcked", "Cyclon",
                         "paper (HyParView)"});
  for (const double fraction : fractions) {
    std::vector<std::string> row;
    row.push_back(analysis::fmt(fraction * 100.0, 0));
    for (const auto kind : kinds) {
      bench::Stopwatch watch;
      auto cfg = harness::NetworkConfig::defaults_for(
          kind, scale.nodes,
          scale.seed + static_cast<std::uint64_t>(fraction * 100));
      harness::HealingConfig hcfg;
      hcfg.fail_fraction = fraction;
      hcfg.probes_per_cycle = scale.messages;
      // Plain Cyclon's tail converges slowly (dead entries recirculate until
      // aging expels them); give it room so the % dependence is visible.
      hcfg.max_cycles = 100;
      hcfg.stabilization_cycles = 50;
      const auto result = harness::run_healing_experiment(cfg, hcfg);
      bench_json.add_events(result.events_processed);
      row.push_back(result.recovered ? std::to_string(result.cycles_to_heal)
                                     : (">" + std::to_string(hcfg.max_cycles)));
      std::printf("[%s @ %.0f%%: %s cycles in %.1fs]\n",
                  harness::kind_name(kind), fraction * 100.0,
                  row.back().c_str(), watch.seconds());
    }
    row.push_back(fraction < 0.8 ? "1-2" : "<=4");
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();
  std::printf("Scamp omitted as in the paper: its healing time is governed "
              "by the lease period.\n");
  return 0;
}
