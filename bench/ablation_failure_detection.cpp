// Ablation A3: failure-detection modelling choices (DESIGN.md):
//  1. detect-on-send (paper model) vs notify-on-crash,
//  2. re-routing the in-flight message to a substitute target on failure.
// Scenario: figure-2 style burst after a 60% / 90% crash wave, HyParView.
//
// The (variant, fraction) cells are independent Networks, fanned out across
// threads by harness::SweepRunner (HPV_THREADS); results are bit-identical
// to the serial loop.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/200);
  bench::JsonRecorder bench_json("ablation_failure_detection", scale);
  bench::print_header("Ablation A3 — failure detection & re-routing",
                      "modelling choices behind §4.3 / DESIGN.md", scale);

  analysis::Table table({"variant", "60% failures", "90% failures"});
  struct Variant {
    const char* name;
    bool notify;
    bool reroute;
  };
  const std::vector<Variant> variants = {
      {"detect-on-send (paper)", false, false},
      {"detect-on-send + reroute", false, true},
      {"notify-on-crash", true, false},
      {"notify-on-crash + reroute", true, true},
  };
  const std::vector<double> fractions = {0.60, 0.90};

  struct Cell {
    double reliability = 0.0;
    std::uint64_t events = 0;
  };
  std::vector<Cell> cells(variants.size() * fractions.size());

  std::vector<std::function<void()>> jobs;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      jobs.push_back([&, v, f] {
        auto cfg = bench::sim_config(harness::ProtocolKind::kHyParView,
                                     scale.nodes, scale.seed);
        cfg.sim.notify_on_crash = variants[v].notify;
        cfg.gossip.reroute_on_failure = variants[v].reroute;
        auto cluster = harness::Cluster::sim(cfg);
        harness::Experiment spec("failure_detection_cell");
        spec.stabilize(50, bench::env_cycle_options())
            .crash(fractions[f]);
        if (cfg.sim.notify_on_crash) {
          spec.settle();  // let the crash notifications land first
        }
        spec.broadcast(scale.messages, "measure");
        const auto result = cluster.run(spec);
        Cell& cell = cells[v * fractions.size() + f];
        cell.reliability = result.phase("measure").avg_reliability();
        cell.events = cluster->events_processed();
        const std::lock_guard<std::mutex> lock(bench::sweep_print_mutex());
        std::printf("[%s @ %.0f%%: %s]\n", variants[v].name,
                    fractions[f] * 100,
                    analysis::fmt_percent(cell.reliability, 1).c_str());
      });
    }
  }

  const std::vector<double> cell_seconds = bench::run_sweep(jobs, bench_json);

  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row = {variants[v].name};
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const Cell& cell = cells[v * fractions.size() + f];
      row.push_back(analysis::fmt_percent(cell.reliability, 1));
      bench_json.add_events(cell.events);
      bench_json.add_metric(std::string("point_seconds_v") +
                               std::to_string(v) + "_f" +
                               analysis::fmt(fractions[f] * 100.0, 0),
                           cell_seconds[v * fractions.size() + f]);
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();
  std::printf("expected: notify-on-crash repairs before the first message; "
              "re-routing buys reliability on the first few messages after "
              "the crash wave.\n");
  return 0;
}
