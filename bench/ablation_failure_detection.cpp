// Ablation A3: failure-detection modelling choices (DESIGN.md):
//  1. detect-on-send (paper model) vs notify-on-crash,
//  2. re-routing the in-flight message to a substitute target on failure.
// Scenario: figure-2 style burst after a 60% / 90% crash wave, HyParView.
#include "bench_common.hpp"

using namespace hyparview;

namespace {

double burst_reliability(harness::NetworkConfig cfg, double fraction,
                         std::size_t messages, bench::JsonRecorder* rec) {
  harness::Network net(cfg);
  net.build();
  net.run_cycles(50);
  net.fail_random_fraction(fraction);
  if (cfg.sim.notify_on_crash) {
    net.simulator().run_until_quiescent();  // crash notifications propagate
  }
  double sum = 0.0;
  for (std::size_t m = 0; m < messages; ++m) {
    sum += net.broadcast_one().reliability();
  }
  rec->add_events(net.simulator().events_processed());
  return sum / static_cast<double>(messages);
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/200);
  bench::JsonRecorder bench_json("ablation_failure_detection", scale);
  bench::print_header("Ablation A3 — failure detection & re-routing",
                      "modelling choices behind §4.3 / DESIGN.md", scale);

  analysis::Table table({"variant", "60% failures", "90% failures"});
  struct Variant {
    const char* name;
    bool notify;
    bool reroute;
  };
  const std::vector<Variant> variants = {
      {"detect-on-send (paper)", false, false},
      {"detect-on-send + reroute", false, true},
      {"notify-on-crash", true, false},
      {"notify-on-crash + reroute", true, true},
  };

  for (const auto& v : variants) {
    std::vector<std::string> row = {v.name};
    for (const double fraction : {0.60, 0.90}) {
      bench::Stopwatch watch;
      auto cfg = harness::NetworkConfig::defaults_for(
          harness::ProtocolKind::kHyParView, scale.nodes, scale.seed);
      cfg.sim.notify_on_crash = v.notify;
      cfg.gossip.reroute_on_failure = v.reroute;
      row.push_back(analysis::fmt_percent(
          burst_reliability(cfg, fraction, scale.messages, &bench_json), 1));
      std::printf("[%s @ %.0f%%: %.1fs]\n", v.name, fraction * 100,
                  watch.seconds());
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();
  std::printf("expected: notify-on-crash repairs before the first message; "
              "re-routing buys reliability on the first few messages after "
              "the crash wave.\n");
  return 0;
}
