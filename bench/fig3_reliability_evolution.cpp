// Figure 3(a)-(f): per-message reliability evolution after failures of
// 20/40/60/70/80/95%, for all four protocols.
//
// Paper anchors: HyParView recovers almost immediately (first messages near
// 100%); CyclonAcked needs ~25 messages and stalls above ~80% failures;
// Cyclon and Scamp stay flat (no failure detector) until membership cycles
// run.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/1000);
  bench::JsonRecorder bench_json("fig3_reliability_evolution", scale);
  bench::print_header("Figure 3 — reliability evolution after failures",
                      "paper §5.2, Fig. 3(a)-(f)", scale);

  const std::vector<double> fractions = {0.20, 0.40, 0.60, 0.70, 0.80, 0.95};
  // Sample the series densely at the start (recovery happens there).
  const auto report_points = [&](std::size_t total) {
    std::vector<std::size_t> points;
    for (std::size_t m = 1; m <= total; ++m) {
      if (m <= 30 || m % (total / 20 == 0 ? 1 : total / 20) == 0 ||
          m == total) {
        points.push_back(m);
      }
    }
    return points;
  };

  for (const double fraction : fractions) {
    std::printf("\n--- Figure 3: %0.f%% failures ---\n", fraction * 100.0);
    std::vector<std::vector<double>> series;
    for (const auto kind : harness::all_protocol_kinds()) {
      bench::Stopwatch watch;
      auto net = bench::stabilized_network(
          kind, scale.nodes,
          scale.seed + static_cast<std::uint64_t>(fraction * 100), 50);
      net->fail_random_fraction(fraction);
      std::vector<double> rels;
      rels.reserve(scale.messages);
      for (std::size_t m = 0; m < scale.messages; ++m) {
        rels.push_back(net->broadcast_one().reliability());
      }
      bench_json.add_events(net->simulator().events_processed());
      std::printf("[%s done in %.1fs]\n", harness::kind_name(kind),
                  watch.seconds());
      series.push_back(std::move(rels));
    }

    analysis::Table table({"msg#", "HyParView", "CyclonAcked", "Cyclon",
                           "Scamp"});
    for (const std::size_t m : report_points(scale.messages)) {
      table.add_row({std::to_string(m),
                     analysis::fmt_percent(series[0][m - 1], 1),
                     analysis::fmt_percent(series[1][m - 1], 1),
                     analysis::fmt_percent(series[2][m - 1], 1),
                     analysis::fmt_percent(series[3][m - 1], 1)});
    }
    std::cout << table.to_string();
  }
  return 0;
}
