// Figure 3(a)-(f): per-message reliability evolution after failures of
// 20/40/60/70/80/95%, for all four protocols.
//
// Paper anchors: HyParView recovers almost immediately (first messages near
// 100%); CyclonAcked needs ~25 messages and stalls above ~80% failures;
// Cyclon and Scamp stay flat (no failure detector) until membership cycles
// run.
//
// Each (fraction, protocol) series is an independent Cluster running the
// same declarative Experiment (stabilize → crash → measure), so the whole
// figure fans out across threads (harness::SweepRunner, HPV_THREADS) with
// per-(config,seed) results bit-identical to the serial loop.
#include "bench_common.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/1000);
  bench::JsonRecorder bench_json("fig3_reliability_evolution", scale);
  bench::print_header("Figure 3 — reliability evolution after failures",
                      "paper §5.2, Fig. 3(a)-(f)", scale);

  const std::vector<double> fractions = {0.20, 0.40, 0.60, 0.70, 0.80, 0.95};
  // Sample the series densely at the start (recovery happens there).
  const auto report_points = [&](std::size_t total) {
    std::vector<std::size_t> points;
    for (std::size_t m = 1; m <= total; ++m) {
      if (m <= 30 || m % (total / 20 == 0 ? 1 : total / 20) == 0 ||
          m == total) {
        points.push_back(m);
      }
    }
    return points;
  };

  // One job per (fraction, protocol) series, fraction-major so aggregation
  // below can walk the slots in the serial reporting order.
  struct Series {
    double fraction = 0.0;
    harness::ProtocolKind kind;
    std::vector<double> rels;
    std::uint64_t events = 0;
  };
  std::vector<Series> series;
  for (const double fraction : fractions) {
    for (const auto kind : harness::all_protocol_kinds()) {
      series.push_back({fraction, kind, {}, 0});
    }
  }

  std::vector<std::function<void()>> jobs;
  jobs.reserve(series.size());
  for (Series& s : series) {
    jobs.push_back([&, p = &s] {
      auto cluster = bench::sim_cluster(
          p->kind, scale.nodes,
          scale.seed + static_cast<std::uint64_t>(p->fraction * 100));
      const auto result =
          cluster.run(harness::Experiment("fig3_series")
                          .stabilize(50, bench::env_cycle_options())
                          .crash(p->fraction)
                          .broadcast(scale.messages, "evolution"));
      p->rels = result.phase("evolution").reliabilities;
      p->events = cluster->events_processed();
      const std::lock_guard<std::mutex> lock(bench::sweep_print_mutex());
      std::printf("[%s @ %.0f%% done]\n", harness::kind_name(p->kind),
                  p->fraction * 100.0);
    });
  }

  const std::vector<double> series_seconds = bench::run_sweep(jobs, bench_json);

  std::size_t next_series = 0;
  for (const double fraction : fractions) {
    std::printf("\n--- Figure 3: %0.f%% failures ---\n", fraction * 100.0);
    const Series* base = &series[next_series];
    for (std::size_t k = 0; k < harness::all_protocol_kinds().size();
         ++k, ++next_series) {
      bench_json.add_events(series[next_series].events);
      bench_json.add_metric(
          std::string("point_seconds_") +
              harness::kind_name(series[next_series].kind) + "_f" +
              analysis::fmt(fraction * 100.0, 0),
          series_seconds[next_series]);
    }

    analysis::Table table({"msg#", "HyParView", "CyclonAcked", "Cyclon",
                           "Scamp"});
    for (const std::size_t m : report_points(scale.messages)) {
      table.add_row({std::to_string(m),
                     analysis::fmt_percent(base[0].rels[m - 1], 1),
                     analysis::fmt_percent(base[1].rels[m - 1], 1),
                     analysis::fmt_percent(base[2].rels[m - 1], 1),
                     analysis::fmt_percent(base[3].rels[m - 1], 1)});
    }
    std::cout << table.to_string();
  }
  return 0;
}
