// Scheduler A/B: the same HyParView workload (bootstrap → stabilize →
// broadcast probes) under the binary-heap and calendar-queue event
// schedulers, at the same seed.
//
// Two jobs in one driver:
//  * correctness gate — the two runs must process the *exact same number of
//    events* (the queues pop the same (at, seq) stream, so any divergence
//    is a scheduler bug; the driver hard-fails, and the smoke registration
//    makes CI re-prove it continuously);
//  * perf record — BENCH_calendar_queue.json carries events/sec for both
//    structures plus their ratio, so the 100k-node claim (ROADMAP item 2)
//    is a measured number, not an extrapolation. It also re-times the
//    stabilize phase under HPV_CYCLE_BATCH-style whole-round drains on the
//    calendar queue (the PR 5 hypothesis that lost 2x to heap growth).
//
// HPV_EVENT_QUEUE is ignored here on purpose: both kinds are pinned
// explicitly via SimConfig so the A/B cannot be half-overridden from the
// environment.
#include "bench_common.hpp"

using namespace hyparview;

namespace {

struct KindRun {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double stabilize_seconds = 0.0;
};

KindRun run_workload(sim::EventQueueKind kind, const harness::BenchScale& scale,
                     const harness::CycleOptions& cycles) {
  bench::Stopwatch watch;
  auto cfg = bench::sim_config(harness::ProtocolKind::kHyParView, scale.nodes,
                               scale.seed);
  cfg.sim.event_queue = kind;
  auto cluster = harness::Cluster::sim(cfg);
  harness::Experiment spec("scheduler_ab");
  spec.stabilize(50, cycles).broadcast(scale.messages, "probe");
  const auto result = cluster.run(spec);

  KindRun out;
  out.events = cluster->events_processed();
  out.seconds = watch.seconds();
  out.stabilize_seconds = result.phases.front().wall_seconds;
  const auto reliability =
      analysis::summarize(result.phase("probe").reliabilities);
  std::printf("[%-8s %zu nodes: %llu events in %.2fs → %.0f events/s, "
              "probe reliability %s]\n",
              sim::event_queue_kind_name(kind), scale.nodes,
              static_cast<unsigned long long>(out.events), out.seconds,
              out.seconds > 0 ? static_cast<double>(out.events) / out.seconds
                              : 0.0,
              analysis::fmt_percent(reliability.mean, 2).c_str());
  return out;
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/20);
  bench::JsonRecorder bench_json("calendar_queue", scale);
  bench::print_header("Scheduler A/B — calendar queue vs binary heap",
                      "ROADMAP item 2 (100k-node event scheduler)", scale);

  const auto heap =
      run_workload(sim::EventQueueKind::kHeap, scale, bench::env_cycle_options());
  const auto calendar = run_workload(sim::EventQueueKind::kCalendar, scale,
                                     bench::env_cycle_options());

  // The bit-identity gate: same seed + same workload must mean the same
  // event stream under either scheduler.
  if (heap.events != calendar.events) {
    std::fprintf(stderr,
                 "FAIL: scheduler divergence — heap processed %llu events, "
                 "calendar %llu\n",
                 static_cast<unsigned long long>(heap.events),
                 static_cast<unsigned long long>(calendar.events));
    return 1;
  }
  std::printf("[bit-identity OK: both schedulers processed %llu events]\n",
              static_cast<unsigned long long>(heap.events));

  // Whole-round drain batching (different event interleaving — run
  // separately, never mixed into the A/B above). This is the deep-queue
  // regime: a round's whole event wave (~12 events x N nodes) is pending at
  // once, so the scheduler — not the protocol handlers — dominates. The
  // per-node-drain A/B above spends ~93% of its events in a near-empty
  // queue where any scheduler is a handful of ns; here the two structures
  // actually diverge (PR 5 measured whole-round batching losing 2x on the
  // heap — the regression that motivated the calendar queue).
  harness::CycleOptions whole_round;
  whole_round.batch = scale.nodes;
  const auto heap_batched =
      run_workload(sim::EventQueueKind::kHeap, scale, whole_round);
  const auto batched =
      run_workload(sim::EventQueueKind::kCalendar, scale, whole_round);
  if (heap_batched.events != batched.events) {
    std::fprintf(stderr,
                 "FAIL: scheduler divergence under whole-round batching — "
                 "heap processed %llu events, calendar %llu\n",
                 static_cast<unsigned long long>(heap_batched.events),
                 static_cast<unsigned long long>(batched.events));
    return 1;
  }
  std::printf(
      "[bit-identity OK: both batched schedulers processed %llu events]\n",
      static_cast<unsigned long long>(batched.events));

  bench_json.add_events(heap.events + calendar.events + heap_batched.events +
                        batched.events);
  const auto rate = [](const KindRun& r) {
    return r.seconds > 0 ? static_cast<double>(r.events) / r.seconds : 0.0;
  };
  bench_json.add_metric("heap_events_per_second", rate(heap));
  bench_json.add_metric("calendar_events_per_second", rate(calendar));
  bench_json.add_metric("speedup_calendar_over_heap",
                        rate(heap) > 0 ? rate(calendar) / rate(heap) : 0.0);
  bench_json.add_metric("speedup_whole_round_stabilize",
                        batched.stabilize_seconds > 0
                            ? calendar.stabilize_seconds /
                                  batched.stabilize_seconds
                            : 0.0);
  bench_json.add_metric("speedup_whole_round_calendar_over_heap",
                        batched.stabilize_seconds > 0
                            ? heap_batched.stabilize_seconds /
                                  batched.stabilize_seconds
                            : 0.0);
  return 0;
}
