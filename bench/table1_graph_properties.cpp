// Table 1: graph properties after 50 stabilization cycles — average
// clustering coefficient, average shortest path, and the average "maximum
// hops to delivery" over broadcast messages.
//
// Paper values (10,000 nodes):
//   Cyclon    0.006836  2.60426   10.6
//   Scamp     0.022476  3.35398   14.1
//   HyParView 0.00092   6.38542    9.0
#include "bench_common.hpp"

#include "hyparview/graph/metrics.hpp"

using namespace hyparview;

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/50);
  bench::JsonRecorder bench_json("table1_graph_properties", scale);
  bench::print_header("Table 1 — graph properties after stabilization",
                      "paper §5.4, Table 1", scale);

  struct PaperRow {
    harness::ProtocolKind kind;
    const char* clustering;
    const char* asp;
    const char* hops;
  };
  const std::vector<PaperRow> rows = {
      {harness::ProtocolKind::kCyclon, "0.006836", "2.60426", "10.6"},
      {harness::ProtocolKind::kScamp, "0.022476", "3.35398", "14.1"},
      {harness::ProtocolKind::kHyParView, "0.00092", "6.38542", "9.0"},
  };

  analysis::Table table({"protocol", "clustering", "paper", "avg shortest path",
                         "paper", "max hops to delivery", "paper"});

  for (const auto& row : rows) {
    bench::Stopwatch watch;
    auto cluster = bench::sim_cluster(row.kind, scale.nodes, scale.seed);
    cluster.run(harness::Experiment("table1_stabilize")
                    .stabilize(50, bench::env_cycle_options()));

    const auto g = cluster->dissemination_graph(false);
    const double clustering =
        graph::average_clustering(g.undirected_closure());

    Rng sampler(scale.seed * 31 + 7);
    const auto paths = graph::shortest_path_stats(g, /*max_sources=*/256,
                                                  sampler);

    // "Maximum hops to delivery": average over messages of the last
    // delivery's hop distance.
    const auto measure = cluster.run(
        harness::Experiment("table1_hops").broadcast(scale.messages, "hops"));
    double hops_sum = 0.0;
    for (const auto& r : measure.phase("hops").broadcasts) {
      hops_sum += r.max_hops;
    }
    const double avg_max_hops =
        hops_sum / static_cast<double>(std::max<std::size_t>(scale.messages, 1));

    bench_json.add_events(cluster->events_processed());
    table.add_row({harness::kind_name(row.kind),
                   analysis::fmt(clustering, 6), row.clustering,
                   analysis::fmt(paths.average_shortest_path, 5), row.asp,
                   analysis::fmt(avg_max_hops, 1), row.hops});
    std::printf("[%s done in %.1fs; %zu BFS sources, %zu unreachable pairs]\n",
                harness::kind_name(row.kind), watch.seconds(),
                paths.sampled_sources, paths.unreachable_pairs);
  }
  std::cout << table.to_string();
  std::printf("paper shape: HyParView clustering << Cyclon < Scamp; "
              "HyParView ASP larger (small active view) yet fewest delivery "
              "hops (floods all links).\n");
  return 0;
}
