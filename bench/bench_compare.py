#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json records.

Every bench driver emits a machine-readable BENCH_<name>.json (wall seconds,
simulator events, events/sec, scale knobs). This script diffs freshly
emitted records (anywhere under --fresh-dir, e.g. the CMake build tree after
`ctest -L smoke`) against the committed baselines in --baseline-dir and
fails when

  * events_per_second dropped by more than --tolerance (default 25%), or
  * a zero-allocation metric (*_allocs) became nonzero, or
  * a deterministic event count (`events`, `*_events`) changed at all —
    those are bit-identical at matching scale+seed on any machine, so an
    exact mismatch is a behavior change, never noise.

Scale-mismatched pairs (different nodes/messages/runs/seed/quick) are
skipped with a notice instead of compared: throughput is only meaningful at
identical scale.

Renamed drivers keep their baselines: RENAMED_BENCHES maps an old baseline
file name to the name the driver emits today, so a rename does not silently
drop the record out of the gate (an old-named baseline whose new-named fresh
record exists is compared under the new name).

Per-phase timing fields (phase_seconds_*, emitted by the Experiment-driven
drivers) and A/B ratio fields (speedup_*, emitted by the calendar_queue
scheduler driver) are informational: they are reported when both records
carry them but never gate — walls and ratios of walls are too machine-noisy
to fail on. Per-structure throughputs (*_events_per_second, e.g. the
scheduler A/B's heap/calendar rates) gate exactly like the aggregate.

Baselines are machine-relative. Refresh them on the reference machine with:

    ctest --test-dir build -L smoke
    python3 bench/bench_compare.py --fresh-dir build --update-baselines

Tolerance can also come from HPV_BENCH_TOLERANCE (a fraction, e.g. 0.25).
"""

import argparse
import json
import os
import pathlib
import shutil
import sys

SCALE_KEYS = ("nodes", "messages", "runs", "seed", "quick")

# Old baseline file name → the name the (renamed) driver emits today. Add an
# entry whenever a bench driver (and hence its BENCH_<name>.json) is renamed,
# then refresh the baseline under the new name at the next opportunity.
RENAMED_BENCHES = {}

# Informational per-record fields: reported, never gated. phase_seconds_*
# are too machine-noisy to fail on; speedup_* (the scheduler A/B driver's
# calendar-vs-heap and drain-batching ratios) are ratios of two noisy walls.
# The adversarial driver's overlay-health fields (eclipse_*,
# honest_component_*, reliability_*) are deterministic measurements, not
# throughputs — drift there is a behavior change to investigate, not a perf
# regression to gate on. Same for the pub/sub driver's traffic fields
# (bytes_on_wire_*, latency_to_last_*): the hard gate for those lives in
# the driver itself (Plumtree-vs-eager reduction check) and in the exact
# *_events comparison below.
INFO_FIELD_PREFIXES = ("phase_seconds_", "speedup_", "eclipse_",
                       "honest_component_", "reliability_",
                       "bytes_on_wire_", "latency_to_last_")
PHASE_FIELD_PREFIX = "phase_seconds_"

# Per-structure throughput fields (e.g. the calendar_queue driver's
# heap_events_per_second / calendar_events_per_second) gate exactly like the
# aggregate events_per_second: a regression in one scheduler must not hide
# inside a combined-run aggregate.
RATE_FIELD_SUFFIX = "_events_per_second"


def find_bench_files(root: pathlib.Path):
    # ctest runs each driver from its registering directory, so the same
    # record can exist at several depths of the build tree (build/,
    # build/tests/, build/bench/). The newest emission is the one this run
    # produced; older duplicates are leftovers from earlier invocations.
    files = {}
    for p in sorted(root.rglob("BENCH_*.json"),
                    key=lambda p: p.stat().st_mtime):
        files[p.name] = p
    return files


def load(path: pathlib.Path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        type=pathlib.Path)
    parser.add_argument("--fresh-dir", default="build", type=pathlib.Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("HPV_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional events/sec drop (default 0.25 = 25%%)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy fresh records over the baselines instead "
                             "of comparing")
    args = parser.parse_args()

    fresh = find_bench_files(args.fresh_dir)
    if not fresh:
        print(f"bench_compare: no BENCH_*.json under {args.fresh_dir} — "
              "run the smoke benches first (ctest -L smoke)")
        return 1

    if args.update_baselines:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for name, path in fresh.items():
            shutil.copy(path, args.baseline_dir / name)
            print(f"bench_compare: baseline updated: {name}")
        return 0

    baselines = find_bench_files(args.baseline_dir)
    if not baselines:
        print(f"bench_compare: no baselines under {args.baseline_dir}")
        return 1

    failures = []
    compared = 0
    for name, base_path in sorted(baselines.items()):
        fresh_name = RENAMED_BENCHES.get(name, name)
        if fresh_name not in fresh:
            print(f"bench_compare: SKIP {name}: not emitted by this run")
            continue
        if fresh_name != name:
            print(f"bench_compare: NOTE {name}: driver renamed, comparing "
                  f"against {fresh_name} (refresh the baseline under the "
                  "new name)")
        base = load(base_path)
        new = load(fresh[fresh_name])
        if any(base.get(k) != new.get(k) for k in SCALE_KEYS):
            base_scale = {k: base.get(k) for k in SCALE_KEYS}
            new_scale = {k: new.get(k) for k in SCALE_KEYS}
            print(f"bench_compare: SKIP {name}: scale mismatch "
                  f"(baseline {base_scale}, fresh {new_scale})")
            continue
        compared += 1

        rate_keys = ["events_per_second"] + sorted(
            k for k in base if k.endswith(RATE_FIELD_SUFFIX))
        for rate_key in rate_keys:
            base_eps = float(base.get(rate_key, 0.0))
            new_eps = float(new.get(rate_key, 0.0))
            if base_eps <= 0.0:
                continue
            ratio = new_eps / base_eps
            verdict = "OK"
            if ratio < 1.0 - args.tolerance:
                verdict = "FAIL"
                failures.append(
                    f"{name}: {rate_key} regressed {base_eps:,.0f} → "
                    f"{new_eps:,.0f} ({ratio:.2f}x, tolerance "
                    f"{1.0 - args.tolerance:.2f}x)")
            print(f"bench_compare: {verdict} {name}: {rate_key} "
                  f"{base_eps:,.0f} → {new_eps:,.0f} ({ratio:.2f}x)")

        # Informational fields (phase walls, A/B speedup ratios): reported
        # when both records carry them, never gated.
        info_keys = sorted(k for k in new
                           if k.startswith(INFO_FIELD_PREFIXES) and k in base)
        for key in info_keys:
            base_v = float(base[key])
            new_v = float(new[key])
            drift = "" if base_v <= 0.0 else f" ({new_v / base_v:.2f}x)"
            print(f"bench_compare: info {name}: {key} "
                  f"{base_v:.3f} → {new_v:.3f}{drift}")

        # Bit-identity fields: at matching scale+seed the simulator event
        # count is deterministic and machine-independent, so `events` (and
        # any *_events counter) must match EXACTLY. A drift here is a
        # behavior change — scheduler order, RNG draws, protocol logic —
        # hiding in a perf record, and hardened-build/refactor PRs lean on
        # this as their "numbers unchanged" proof.
        for key in sorted(k for k in base
                          if k == "events" or k.endswith("_events")):
            if key not in new:
                continue
            base_events = int(base[key])
            new_events = int(new[key])
            if base_events != new_events:
                failures.append(
                    f"{name}: {key} changed {base_events:,} → "
                    f"{new_events:,} — deterministic event count must be "
                    "bit-identical at matching scale+seed")
                print(f"bench_compare: FAIL {name}: {key} "
                      f"{base_events:,} → {new_events:,} (must be exact)")
            else:
                print(f"bench_compare: OK {name}: {key} bit-identical "
                      f"({base_events:,})")

        for key, base_value in base.items():
            if key.startswith(INFO_FIELD_PREFIXES):
                continue  # informational, handled above
            if key.endswith("_allocs") and float(base_value) == 0.0:
                new_value = float(new.get(key, 0.0))
                if new_value != 0.0:
                    failures.append(
                        f"{name}: {key} was 0, now {new_value:.0f} — the "
                        "zero-allocation steady state regressed")
                    print(f"bench_compare: FAIL {name}: {key} "
                          f"0 → {new_value:.0f}")

    # A fresh bench with no committed baseline is unguarded: surface it so
    # new drivers cannot silently escape the gate.
    guarded = set(baselines) | {RENAMED_BENCHES.get(n, n) for n in baselines}
    for name in sorted(set(fresh) - guarded):
        print(f"bench_compare: NOTICE {name}: no committed baseline — add "
              "one with --update-baselines to put it under the gate")

    if compared == 0:
        print("bench_compare: nothing compared (all skipped) — treat as "
              "failure so CI cannot silently lose the gate")
        return 1
    if failures:
        print("\nbench_compare: PERF REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench_compare: {compared} bench(es) within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
