// Extension E3 — overlay survival under Byzantine minorities (ROADMAP 3).
//
// A 10% adversarial minority attacks the membership layer three ways (view
// poisoning, selective gossip dropping, sybil join floods — see
// harness/adversary.hpp), plus a trace-driven churn workload with
// heavy-tailed (Pareto) session lengths. For HyParView and the Cyclon/Scamp
// baselines the table reports the damage each attack achieved: the eclipse
// ratio (honest dissemination-view slots the adversary holds), the poisoned
// share of backup views, the largest honest component, and post-attack
// broadcast reliability.
//
// Every sim leg runs TWICE and the driver hard-fails on any divergence in
// the measured health metrics or event counts — re-proving on every run
// that the adversarial pipeline is bit-identical at a fixed seed. A TCP leg
// runs the same specs over real sockets (32 nodes, one epoll loop;
// fabricated identities are dead loopback ports), sanity-floored rather
// than pinned: real time is statistical.
#include "bench_common.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "hyparview/harness/adversary.hpp"
#include "hyparview/harness/tcp_backend.hpp"

using namespace hyparview;

namespace {

struct AttackOutcome {
  double eclipse = 0.0;
  double backup_poison = 0.0;
  double honest_component = 0.0;
  double reliability = 0.0;
  std::uint64_t events = 0;

  bool operator==(const AttackOutcome&) const = default;
};

std::string lower_name(harness::ProtocolKind kind) {
  std::string name = harness::kind_name(kind);
  for (char& ch : name) ch = static_cast<char>(std::tolower(ch));
  return name;
}

/// The committed specs/adversarial_<attack>.json pins the phase program
/// (stabilize → [sybil burst] → pressure cycles → probe broadcast); the
/// scale-dependent knobs are patched per leg.
harness::Experiment attack_spec(harness::AttackKind attack,
                                std::size_t sybils_per_burst,
                                std::size_t probes,
                                const harness::CycleOptions& options) {
  harness::Experiment spec = bench::load_spec_experiment(
      std::string("adversarial_") + harness::attack_name(attack));
  for (auto& phase : spec.mutable_phases()) {
    switch (phase.kind) {
      case harness::Experiment::PhaseKind::kCycles:
        phase.cycle_options = options;
        break;
      case harness::Experiment::PhaseKind::kBroadcast:
        phase.count = probes;
        break;
      case harness::Experiment::PhaseKind::kSybilBurst:
        phase.count = sybils_per_burst;
        break;
      default:
        break;
    }
  }
  return spec;
}

AttackOutcome run_attack_sim(harness::ProtocolKind kind,
                             harness::AttackKind attack,
                             const harness::BenchScale& scale,
                             std::size_t probes) {
  auto cfg = bench::sim_config(kind, scale.nodes, scale.seed);
  cfg.adversary.attack = attack;
  cfg.adversary.fraction = 0.10;
  auto cluster = harness::Cluster::sim(cfg);
  const auto result = cluster.run(attack_spec(
      attack, cfg.adversary.sybils_per_burst, probes,
      bench::env_cycle_options()));

  const auto health = harness::collect_overlay_health(cluster.backend());
  return {health.eclipse_ratio(), health.backup_poison_ratio(),
          health.honest_component_fraction(),
          result.phase("after").avg_reliability(),
          cluster->events_processed()};
}

/// Heavy-tailed churn leg (honest population; the stress is the workload
/// shape, not misbehavior): avg probe reliability doubles as the outcome.
AttackOutcome run_heavy_churn_sim(harness::ProtocolKind kind,
                                  const harness::BenchScale& scale) {
  auto cfg = bench::sim_config(kind, scale.nodes, scale.seed);
  auto cluster = harness::Cluster::sim(cfg);
  harness::HeavyChurnConfig churn;
  churn.cycles = 20;
  churn.joins_per_cycle = std::max<std::size_t>(1, scale.nodes / 100);
  const auto result =
      cluster.run(harness::Experiment("heavy_churn")
                      .stabilize(20, bench::env_cycle_options())
                      .heavy_churn(churn));
  const auto health = harness::collect_overlay_health(cluster.backend());
  const auto& heavy = result.phase("heavy_churn").heavy;
  return {health.eclipse_ratio(), health.backup_poison_ratio(),
          health.honest_component_fraction(), heavy.avg_reliability,
          cluster->events_processed()};
}

/// Runs a sim leg twice and hard-fails the whole driver on divergence:
/// determinism is part of what this bench certifies, not a test-only nicety.
template <typename Fn>
AttackOutcome certified(const char* label, Fn&& leg) {
  const AttackOutcome first = leg();
  const AttackOutcome second = leg();
  if (!(first == second)) {
    std::fprintf(stderr,
                 "adversarial_attacks: DETERMINISM VIOLATION in %s: "
                 "run1 {eclipse=%.17g rel=%.17g events=%llu} vs "
                 "run2 {eclipse=%.17g rel=%.17g events=%llu}\n",
                 label, first.eclipse, first.reliability,
                 static_cast<unsigned long long>(first.events),
                 second.eclipse, second.reliability,
                 static_cast<unsigned long long>(second.events));
    std::exit(1);
  }
  return first;
}

}  // namespace

int main() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/100);
  bench::JsonRecorder bench_json("adversarial", scale);
  bench::print_header(
      "Extension E3 — overlay survival under Byzantine minorities",
      "adversarial extension of §5 (attacks the paper's §3 robustness "
      "claims head-on)",
      scale);

  const std::vector<harness::ProtocolKind> kinds = {
      harness::ProtocolKind::kHyParView, harness::ProtocolKind::kCyclon,
      harness::ProtocolKind::kScamp};
  const std::vector<harness::AttackKind> attacks = {
      harness::AttackKind::kPoison, harness::AttackKind::kDrop,
      harness::AttackKind::kSybil};

  analysis::Table table({"protocol", "attack", "eclipse %", "backup %",
                         "honest comp %", "reliability %"});

  for (const auto kind : kinds) {
    const std::string proto = lower_name(kind);
    for (const auto attack : attacks) {
      bench::Stopwatch watch;
      const std::string label = proto + "_" + harness::attack_name(attack);
      const AttackOutcome out = certified(label.c_str(), [&] {
        return run_attack_sim(kind, attack, scale, scale.messages);
      });
      // ×2: both certification runs contribute simulator events.
      bench_json.add_events(out.events * 2);
      bench_json.add_metric("eclipse_" + label, out.eclipse);
      bench_json.add_metric("honest_component_" + label,
                            out.honest_component);
      bench_json.add_metric("reliability_" + label, out.reliability);
      table.add_row({harness::kind_name(kind), harness::attack_name(attack),
                     analysis::fmt_percent(out.eclipse, 1),
                     analysis::fmt_percent(out.backup_poison, 1),
                     analysis::fmt_percent(out.honest_component, 1),
                     analysis::fmt_percent(out.reliability, 1)});
      std::printf("[%s: %.1fs ×2 runs]\n", label.c_str(), watch.seconds());
    }
    // Heavy-tailed trace churn rides along as the fourth workload row.
    bench::Stopwatch watch;
    const AttackOutcome churn = certified(
        (proto + "_heavychurn").c_str(),
        [&] { return run_heavy_churn_sim(kind, scale); });
    bench_json.add_events(churn.events * 2);
    bench_json.add_metric("reliability_" + proto + "_heavychurn",
                          churn.reliability);
    table.add_row({harness::kind_name(kind), "heavy churn",
                   analysis::fmt_percent(churn.eclipse, 1),
                   analysis::fmt_percent(churn.backup_poison, 1),
                   analysis::fmt_percent(churn.honest_component, 1),
                   analysis::fmt_percent(churn.reliability, 1)});
    std::printf("[%s_heavychurn: %.1fs ×2 runs]\n", proto.c_str(),
                watch.seconds());
  }
  std::cout << table.to_string();

  // --- TCP leg: the identical specs over real sockets --------------------
  // 32 nodes on one epoll loop; HyParView only (the baselines' TCP behavior
  // adds wall-clock without adding information — their damage profile is
  // established by the sim matrix above).
  std::printf("\n[tcp leg: 32 real-socket nodes, HyParView]\n");
  for (const auto attack : attacks) {
    bench::Stopwatch watch;
    auto cfg = harness::TcpBackendConfig::defaults_for(
        harness::ProtocolKind::kHyParView, 32, scale.seed);
    cfg.adversary.attack = attack;
    cfg.adversary.fraction = 0.10;
    auto cluster = harness::Cluster::tcp(cfg);
    const auto result = cluster.run(attack_spec(
        attack, cfg.adversary.sybils_per_burst, /*probes=*/10, {}));
    const auto health = harness::collect_overlay_health(cluster.backend());
    const std::string label =
        std::string("tcp_hyparview_") + harness::attack_name(attack);
    bench_json.add_metric("eclipse_" + label, health.eclipse_ratio());
    bench_json.add_metric("reliability_" + label,
                          result.phase("after").avg_reliability());
    std::printf("[%s: eclipse %.1f%%, reliability %.1f%%, %.1fs]\n",
                label.c_str(), 100.0 * health.eclipse_ratio(),
                100.0 * result.phase("after").avg_reliability(),
                watch.seconds());
  }
  {
    bench::Stopwatch watch;
    auto cfg = harness::TcpBackendConfig::defaults_for(
        harness::ProtocolKind::kHyParView, 32, scale.seed);
    auto cluster = harness::Cluster::tcp(cfg);
    harness::HeavyChurnConfig churn;
    churn.cycles = 6;
    churn.joins_per_cycle = 2;
    churn.probes_per_cycle = 1;
    const auto result = cluster.run(
        harness::Experiment("heavy_churn").stabilize(3).heavy_churn(churn));
    bench_json.add_metric("reliability_tcp_hyparview_heavychurn",
                          result.phase("heavy_churn").heavy.avg_reliability);
    std::printf("[tcp_hyparview_heavychurn: reliability %.1f%%, %.1fs]\n",
                100.0 * result.phase("heavy_churn").heavy.avg_reliability,
                watch.seconds());
  }

  std::printf(
      "expected shape: HyParView bounds the eclipse ratio (reactive repair "
      "plus the ka+kp shuffle-mutation budget purge poisoned entries) while "
      "plain Cyclon collapses under poisoning — its single aging view "
      "integrates poisoned replies wholesale; selective dropping degrades "
      "everyone mildly (droppers still deliver, they just refuse to relay); "
      "sybil floods heal once failure detection purges the fabricated "
      "identities.\n");
  return 0;
}
