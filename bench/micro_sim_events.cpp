// Microbenchmark + invariant check for the simulator event pipeline.
//
// Six claims are verified, not just measured:
//  1. steady-state message delivery (the dissemination hot path: send →
//     queue → deliver → re-send) performs ZERO heap allocations per event —
//     the slim-POD event queue and the free-list payload pools recycle
//     everything after warm-up;
//  2. steady-state timer scheduling (Env::schedule → kTask dispatch) is
//     likewise allocation-free thanks to InplaceFunction + the task pool;
//  3. the full broadcast pipeline — gossip dedup window, per-node
//     forwarding buffers, broadcast recorder — is allocation-free once the
//     dedup windows are saturated and the recorder storage is reserved
//     (DedupWindow ring + probe table, BroadcastRecorder::reserve);
//  4. the shuffle wire path — flat SHUFFLE frames relayed through the POD
//     message slab — moves frames with plain bounded copies, zero
//     allocations per hop (the old vector-payload frames allocated on
//     every relay);
//  5. full HyParView membership rounds (shuffle walks, replies, passive
//     integration, promotion episodes) run allocation-free end to end once
//     the protocol scratch buffers and slabs are warm;
//  6. the Plumtree payload plane (TreeGossip push, IHave digests, graft
//     timers, prune decisions, link scores, payload cache) is likewise
//     allocation-free once the dedup/cache rings are saturated and the
//     eager tree has converged.
//
// The binary exits non-zero if any steady-state phase allocates, so it
// doubles as a CI regression gate (wired into CTest under the smoke label).
// Throughput (events/sec) is printed and recorded in
// BENCH_micro_sim_events.json for cross-PR tracking.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"
#include "hyparview/harness/network.hpp"
#include "hyparview/sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting global allocator: every heap allocation in the process bumps the
// counter. The steady-state phases below assert the delta is exactly zero.
void* operator new(std::size_t size) {
  ++g_allocs;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocs;
  const auto a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hyparview {
namespace {

/// Endpoint that answers every delivered gossip frame with another one until
/// `remaining` runs out — a two-node ping-pong that keeps exactly one
/// message event in flight, exercising the deliver path millions of times.
class PingPong final : public membership::Endpoint {
 public:
  PingPong(membership::Env& env, NodeId peer, std::uint64_t exchanges)
      : env_(env), peer_(peer), remaining_(exchanges) {}

  void deliver(const NodeId& /*from*/, const wire::Message& msg) override {
    if (remaining_ == 0) return;
    --remaining_;
    const auto& gossip = std::get<wire::Gossip>(msg);
    wire::Gossip next = gossip;
    next.hops = static_cast<std::uint16_t>(gossip.hops + 1);
    env_.send(peer_, next);
  }

  void send_failed(const NodeId&, const wire::Message&) override {}
  void link_closed(const NodeId&) override {}

  void reset(std::uint64_t exchanges) { remaining_ = exchanges; }

 private:
  membership::Env& env_;
  NodeId peer_;
  std::uint64_t remaining_;
};

/// Endpoint that relays every delivered SHUFFLE frame back to the peer —
/// a frame copy plus a send, exactly the shape of HyParView's walk relay —
/// until `remaining` runs out. Exercises the flat-frame slab path (put /
/// take of a max-capacity bounded node-list) once per event.
class ShufflePong final : public membership::Endpoint {
 public:
  ShufflePong(membership::Env& env, NodeId peer, std::uint64_t exchanges)
      : env_(env), peer_(peer), remaining_(exchanges) {}

  void deliver(const NodeId& /*from*/, const wire::Message& msg) override {
    if (remaining_ == 0) return;
    --remaining_;
    const auto& shuffle = std::get<wire::Shuffle>(msg);
    wire::Shuffle next = shuffle;  // POD copy, like a walk relay
    next.ttl = next.ttl > 0 ? static_cast<std::uint8_t>(next.ttl - 1) : 6;
    env_.send(peer_, next);
  }

  void send_failed(const NodeId&, const wire::Message&) override {}
  void link_closed(const NodeId&) override {}

  void reset(std::uint64_t exchanges) { remaining_ = exchanges; }

 private:
  membership::Env& env_;
  NodeId peer_;
  std::uint64_t remaining_;
};

/// Self-re-arming timer chain: each fired task schedules the next one,
/// exercising the task pool's put/take recycling.
struct TimerChain {
  membership::Env* env = nullptr;
  std::uint64_t remaining = 0;

  void arm() {
    if (remaining == 0) return;
    --remaining;
    env->schedule(microseconds(10), [this] { arm(); });
  }
};

int run() {
  const auto scale = harness::BenchScale::from_env(/*messages=*/0);
  std::printf("micro_sim_events — event-pipeline throughput & allocation "
              "audit\n");

  sim::SimConfig cfg;
  cfg.seed = scale.seed;
  sim::Simulator sim(cfg);
  const NodeId a = sim.add_node(nullptr);
  const NodeId b = sim.add_node(nullptr);
  PingPong ha(sim.env(a), b, 0);
  PingPong hb(sim.env(b), a, 0);
  sim.set_handler(a, &ha);
  sim.set_handler(b, &hb);

  // --- Phase 1: deliver path -------------------------------------------------
  constexpr std::uint64_t kWarmup = 20'000;
  const std::uint64_t exchanges = scale.quick ? 200'000 : 2'000'000;

  // Warm-up: links open, pools and queue grow to their steady footprint.
  ha.reset(kWarmup);
  hb.reset(kWarmup);
  sim.env(a).send(b, wire::Gossip{1, 0, 64});
  sim.run_until_quiescent();

  ha.reset(exchanges);
  hb.reset(exchanges);
  const std::uint64_t allocs_before = g_allocs.load();
  bench::Stopwatch watch;
  sim.env(a).send(b, wire::Gossip{2, 0, 64});
  const std::uint64_t deliver_events = sim.run_until_quiescent();
  const double deliver_seconds = watch.seconds();
  const std::uint64_t deliver_allocs = g_allocs.load() - allocs_before;

  std::printf("deliver path : %llu events in %.3fs (%.0f events/sec), "
              "%llu heap allocations\n",
              static_cast<unsigned long long>(deliver_events), deliver_seconds,
              static_cast<double>(deliver_events) / deliver_seconds,
              static_cast<unsigned long long>(deliver_allocs));

  // --- Phase 2: timer path ---------------------------------------------------
  TimerChain chain{&sim.env(a), kWarmup};
  chain.arm();
  sim.run_until_quiescent();

  chain.remaining = scale.quick ? 100'000 : 1'000'000;
  const std::uint64_t timer_allocs_before = g_allocs.load();
  bench::Stopwatch timer_watch;
  chain.arm();
  const std::uint64_t timer_events = sim.run_until_quiescent();
  const double timer_seconds = timer_watch.seconds();
  const std::uint64_t timer_allocs = g_allocs.load() - timer_allocs_before;

  std::printf("timer path   : %llu events in %.3fs (%.0f events/sec), "
              "%llu heap allocations\n",
              static_cast<unsigned long long>(timer_events), timer_seconds,
              static_cast<double>(timer_events) / timer_seconds,
              static_cast<unsigned long long>(timer_allocs));

  // --- Phase 3: broadcast path (gossip dedup + recorder) ---------------------
  // A real HyParView flood network: every broadcast exercises remember()
  // in each node's dedup window, the reused forwarding buffers, and the
  // recorder's begin/deliver/duplicate accounting. The dedup windows are
  // deliberately smaller than the message budget so the warm-up saturates
  // them (ring + probe table at final size, evictions active) — from then
  // on the whole pipeline must be allocation-free.
  const std::size_t bcast_warmup = 300;
  const std::size_t bcast_messages = scale.quick ? 1'000 : 5'000;
  auto netcfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 64, scale.seed);
  netcfg.gossip.dedup_window = 256;  // < warm-up: evictions in steady state
  harness::Network net(netcfg);
  net.build();
  net.run_cycles(10);
  net.recorder().reserve(bcast_warmup + bcast_messages);
  for (std::size_t m = 0; m < bcast_warmup; ++m) net.broadcast_one();

  const std::uint64_t bcast_events_before = net.simulator().events_processed();
  const std::uint64_t bcast_allocs_before = g_allocs.load();
  bench::Stopwatch bcast_watch;
  double reliability = 0.0;
  for (std::size_t m = 0; m < bcast_messages; ++m) {
    reliability += net.broadcast_one().reliability();
  }
  const double bcast_seconds = bcast_watch.seconds();
  const std::uint64_t bcast_allocs = g_allocs.load() - bcast_allocs_before;
  const std::uint64_t bcast_events =
      net.simulator().events_processed() - bcast_events_before;
  reliability /= static_cast<double>(bcast_messages);

  std::printf("broadcast path: %llu events in %.3fs (%.0f events/sec), "
              "%llu heap allocations, reliability %.4f\n",
              static_cast<unsigned long long>(bcast_events), bcast_seconds,
              static_cast<double>(bcast_events) / bcast_seconds,
              static_cast<unsigned long long>(bcast_allocs), reliability);

  // --- Phase 4: shuffle wire path --------------------------------------------
  // Max-rate relay of flat SHUFFLE frames between two nodes: each hop reads
  // the delivered frame, copies it (exactly what HyParView's walk relay
  // does) and sends it on. Every event moves a bounded node-list payload
  // through the POD message slab — the membership equivalent of phase 1.
  ShufflePong sa(sim.env(a), b, 0);
  ShufflePong sb(sim.env(b), a, 0);
  sim.set_handler(a, &sa);
  sim.set_handler(b, &sb);
  wire::Shuffle seed_frame;
  seed_frame.origin = a;
  seed_frame.ttl = 6;
  for (std::uint32_t i = 0; i < wire::kMaxShuffleEntries; ++i) {
    seed_frame.entries.push_back(NodeId::from_index(i));
  }
  sa.reset(kWarmup);
  sb.reset(kWarmup);
  sim.env(a).send(b, seed_frame);
  sim.run_until_quiescent();

  const std::uint64_t shuffle_exchanges = scale.quick ? 200'000 : 2'000'000;
  sa.reset(shuffle_exchanges);
  sb.reset(shuffle_exchanges);
  const std::uint64_t shuffle_allocs_before = g_allocs.load();
  bench::Stopwatch shuffle_watch;
  sim.env(a).send(b, seed_frame);
  const std::uint64_t shuffle_events = sim.run_until_quiescent();
  const double shuffle_seconds = shuffle_watch.seconds();
  const std::uint64_t shuffle_allocs = g_allocs.load() - shuffle_allocs_before;

  std::printf("shuffle path : %llu events in %.3fs (%.0f events/sec), "
              "%llu heap allocations\n",
              static_cast<unsigned long long>(shuffle_events), shuffle_seconds,
              static_cast<double>(shuffle_events) / shuffle_seconds,
              static_cast<unsigned long long>(shuffle_allocs));

  // --- Phase 5: membership rounds (full HyParView protocol) ------------------
  // Real membership cycles on a flood network: every round each node runs
  // its periodic action — shuffle initiation, TTL walks, replies, passive
  // integration with eviction preference, promotion episodes — and the
  // traffic drains. After warm-up (views full, scratch vectors and slabs at
  // steady footprint) the entire membership control plane must not touch
  // the allocator.
  auto memcfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 64, scale.seed);
  harness::Network memnet(memcfg);
  memnet.build();
  memnet.run_cycles(10);

  const std::size_t membership_cycles = scale.quick ? 40 : 200;
  const std::uint64_t mem_events_before = memnet.simulator().events_processed();
  const std::uint64_t mem_allocs_before = g_allocs.load();
  bench::Stopwatch mem_watch;
  memnet.run_cycles(membership_cycles);
  const double mem_seconds = mem_watch.seconds();
  const std::uint64_t mem_allocs = g_allocs.load() - mem_allocs_before;
  const std::uint64_t mem_events =
      memnet.simulator().events_processed() - mem_events_before;

  std::printf("membership   : %llu events in %.3fs (%.0f events/sec), "
              "%llu heap allocations\n",
              static_cast<unsigned long long>(mem_events), mem_seconds,
              static_cast<double>(mem_events) / mem_seconds,
              static_cast<unsigned long long>(mem_allocs));

  // --- Phase 6: Plumtree payload plane ---------------------------------------
  // The tree-broadcast engine on a real overlay: every wave exercises the
  // eager/lazy split (TreeGossip + IHave), the per-link score windows, the
  // payload cache, and — through IHave-before-eager races — the
  // missing-entry table and graft-timer chain. Dedup and cache rings are
  // sized below the warm-up budget so evictions are active, and warm-up
  // also converges the eager subgraph to the spanning tree; from then on
  // the whole payload plane must be allocation-free.
  auto treecfg = harness::NetworkConfig::defaults_for(
      harness::ProtocolKind::kHyParView, 64, scale.seed);
  treecfg.gossip.engine = gossip::Engine::kPlumtree;
  treecfg.gossip.dedup_window = 256;  // < warm-up: evictions in steady state
  treecfg.gossip.cache_window = 256;
  harness::Network treenet(treecfg);
  treenet.build();
  treenet.run_cycles(10);
  const std::size_t tree_messages = scale.quick ? 1'000 : 5'000;
  treenet.recorder().reserve(bcast_warmup + tree_messages);
  for (std::size_t m = 0; m < bcast_warmup; ++m) treenet.broadcast_one();

  const std::uint64_t tree_events_before = treenet.simulator().events_processed();
  const std::uint64_t tree_allocs_before = g_allocs.load();
  bench::Stopwatch tree_watch;
  double tree_reliability = 0.0;
  for (std::size_t m = 0; m < tree_messages; ++m) {
    tree_reliability += treenet.broadcast_one().reliability();
  }
  const double tree_seconds = tree_watch.seconds();
  const std::uint64_t tree_allocs = g_allocs.load() - tree_allocs_before;
  const std::uint64_t tree_events =
      treenet.simulator().events_processed() - tree_events_before;
  tree_reliability /= static_cast<double>(tree_messages);

  std::printf("plumtree path: %llu events in %.3fs (%.0f events/sec), "
              "%llu heap allocations, reliability %.4f\n",
              static_cast<unsigned long long>(tree_events), tree_seconds,
              static_cast<double>(tree_events) / tree_seconds,
              static_cast<unsigned long long>(tree_allocs), tree_reliability);

  bench::write_bench_json(
      "micro_sim_events", scale,
      deliver_seconds + timer_seconds + bcast_seconds + shuffle_seconds +
          mem_seconds + tree_seconds,
      deliver_events + timer_events + bcast_events + shuffle_events +
          mem_events + tree_events,
      {{"deliver_events_per_second",
        static_cast<double>(deliver_events) / deliver_seconds},
       {"timer_events_per_second",
        static_cast<double>(timer_events) / timer_seconds},
       {"broadcast_events_per_second",
        static_cast<double>(bcast_events) / bcast_seconds},
       {"shuffle_events_per_second",
        static_cast<double>(shuffle_events) / shuffle_seconds},
       {"membership_events_per_second",
        static_cast<double>(mem_events) / mem_seconds},
       {"plumtree_events_per_second",
        static_cast<double>(tree_events) / tree_seconds},
       {"deliver_allocs", static_cast<double>(deliver_allocs)},
       {"timer_allocs", static_cast<double>(timer_allocs)},
       {"broadcast_allocs", static_cast<double>(bcast_allocs)},
       {"shuffle_allocs", static_cast<double>(shuffle_allocs)},
       {"membership_allocs", static_cast<double>(mem_allocs)},
       {"plumtree_allocs", static_cast<double>(tree_allocs)}});

  if (deliver_allocs != 0 || timer_allocs != 0 || bcast_allocs != 0 ||
      shuffle_allocs != 0 || mem_allocs != 0 || tree_allocs != 0) {
    std::printf("FAIL: steady-state event processing allocated "
                "(deliver=%llu, timer=%llu, broadcast=%llu, shuffle=%llu, "
                "membership=%llu, plumtree=%llu); the zero-allocation "
                "invariant of the slim-event/slot-pool/flat-wire design "
                "regressed.\n",
                static_cast<unsigned long long>(deliver_allocs),
                static_cast<unsigned long long>(timer_allocs),
                static_cast<unsigned long long>(bcast_allocs),
                static_cast<unsigned long long>(shuffle_allocs),
                static_cast<unsigned long long>(mem_allocs),
                static_cast<unsigned long long>(tree_allocs));
    return 1;
  }
  std::printf("OK: zero heap allocations on all six steady-state paths.\n");
  return 0;
}

}  // namespace
}  // namespace hyparview

int main() { return hyparview::run(); }
