// Free-list slot pool for event payloads.
//
// The simulator's event queue sifts a small POD; the fat payloads (wire
// messages, callbacks) live here, addressed by a 32-bit slot index. Released
// slots are recycled LIFO, so a steady-state workload (broadcast storms,
// timer chains) reuses the same few slots and never touches the allocator —
// the slab only grows while the number of *in-flight* payloads grows.
//
// A released slot keeps its moved-from value until reuse; `put` assigns over
// it. For types whose moved-from state owns no resources (wire::Message
// gossip frames, InplaceFunction) recycling is therefore allocation-free.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hyparview/common/assert.hpp"

namespace hyparview::sim {

/// Sentinel for "event carries no payload".
inline constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

template <typename T>
class SlotPool {
 public:
  /// Stores `value`, reusing a free slot when available. Returns its index.
  std::uint32_t put(T value) {
    const std::uint32_t index = alloc();
    slots_[index] = std::move(value);
    return index;
  }

  /// Reserves a slot WITHOUT assigning it: the caller writes the payload in
  /// place via operator[]. This matters for large variant payloads — a
  /// whole-object assignment of a trivially copyable variant copies its
  /// full storage, while an in-place `emplace` of the active alternative
  /// copies only the bytes that mean something (see Simulator::put_message).
  [[nodiscard]] std::uint32_t alloc() {
    if (free_.empty()) {
      const auto index = static_cast<std::uint32_t>(slots_.size());
      HPV_ASSERT(index != kNoSlot);
      slots_.emplace_back();
      return index;
    }
    const std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }

  /// Moves the payload out and releases the slot.
  [[nodiscard]] T take(std::uint32_t index) {
    HPV_ASSERT(index < slots_.size());
    T out = std::move(slots_[index]);
    free_.push_back(index);
    return out;
  }

  /// Releases the slot without moving the payload out (dropped events).
  ///
  /// CONTRACT: the slot's contents stay intact until the next put()/alloc()
  /// — release only pushes the index onto the free list, it must never
  /// poison or destroy the payload. Simulator::take_message relies on this
  /// to release *before* copying the payload out (keeping the copy a
  /// prvalue return, which measured ~25% faster on the membership frame
  /// path than a named local whose NRVO the compiler declined). If you add
  /// debug poisoning or eager destruction here, fix that caller first.
  void release(std::uint32_t index) {
    HPV_ASSERT(index < slots_.size());
    free_.push_back(index);
  }

  [[nodiscard]] T& operator[](std::uint32_t index) {
    HPV_ASSERT(index < slots_.size());
    return slots_[index];
  }

  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_.reserve(n);
  }

  /// Slab size (high-water mark of concurrently live payloads).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  [[nodiscard]] std::size_t in_use() const {
    return slots_.size() - free_.size();
  }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace hyparview::sim
