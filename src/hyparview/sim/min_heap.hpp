// Binary min-heap with move-aware pop.
//
// std::priority_queue cannot move elements out of top(); event payloads
// (wire messages with vectors, task closures) make that copy expensive, so
// the simulator uses this small heap instead.
#pragma once

#include <utility>
#include <vector>

#include "hyparview/common/assert.hpp"

namespace hyparview::sim {

template <typename T, typename Less>
class MinHeap {
 public:
  explicit MinHeap(Less less = Less{}) : less_(std::move(less)) {}

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  void push(T item) {
    items_.push_back(std::move(item));
    sift_up(items_.size() - 1);
  }

  [[nodiscard]] const T& top() const {
    HPV_ASSERT(!items_.empty());
    return items_.front();
  }

  /// Removes and returns the minimum element.
  T pop() {
    HPV_ASSERT(!items_.empty());
    T out = std::move(items_.front());
    // With one element, front() and back() alias: the hole-filling move
    // below would be a self-move-assignment, which non-trivial Ts (the
    // EventLoop's TimerTask closures, test payloads) are allowed to
    // clobber on. Skip straight to the shrink instead.
    if (items_.size() > 1) {
      items_.front() = std::move(items_.back());
      items_.pop_back();
      sift_down(0);
    } else {
      items_.pop_back();
    }
    return out;
  }

  void clear() { items_.clear(); }

  /// Read-only view of the underlying storage (heap order, not sorted).
  [[nodiscard]] const std::vector<T>& items() const { return items_; }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less_(items_[i], items_[parent])) break;
      using std::swap;
      swap(items_[i], items_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = items_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && less_(items_[left], items_[smallest])) smallest = left;
      if (right < n && less_(items_[right], items_[smallest])) smallest = right;
      if (smallest == i) break;
      using std::swap;
      swap(items_[i], items_[smallest]);
      i = smallest;
    }
  }

  std::vector<T> items_;
  Less less_;
};

}  // namespace hyparview::sim
