// Calendar queue (Brown '88, with a ladder-style far list) for simulator
// events.
//
// The binary heap pays O(log n) sifts on a queue whose occupancy tracks the
// whole network: at 100k nodes a bootstrap holds hundreds of thousands of
// pending events and every push/pop walks ~20 levels of a cache-hostile
// array. Gossip traffic, however, is near-horizon-dominated — arrival times
// fall in a narrow band above `now` (uniform latency in [min, max], failure
// detection a millisecond out) — exactly the distribution a calendar queue
// exploits:
//
//  * a wheel of `nbuckets_` time buckets, each `width_` ticks wide, covers
//    one "year" ahead of the cursor. An event lands in bucket
//    (at / width) & mask. The bucket count adapts to the live event
//    population — grow at >2 events/bucket (until buckets are single-tick,
//    where more buckets cannot split ties), shrink only once the cursor
//    has burned several wheel-years of empty-bucket steps (the only real
//    cost of an oversized wheel) — so a drain/refill workload never
//    thrashes rebuilds. Width is re-derived from the latency band so the
//    year always covers ~2x the band. A push is an O(1) append; at scale
//    (single-tick buckets) a pop is an O(1) head-cursor take from a
//    bucket that is seq-sorted by construction — no global sift at all;
//  * an unsorted *far list* absorbs the tail beyond the wheel horizon
//    (long timers, harness tasks). It is swept into the wheel when the
//    cursor wraps a year — before any far event's due window can be
//    reached (a far event is at least a year minus one bucket ahead at
//    push time) — and when the wheel empties the cursor jumps straight to
//    the earliest far event instead of stepping through empty years.
//
// Ordering is the same strict (at, seq) total order as the heap: buckets
// are unsorted but a pop takes the (at, seq) minimum of the cursor bucket,
// the cursor only takes events inside its current window, and every event
// in a later bucket or the far list is provably later in (at, seq). A run
// is therefore bit-identical to the MinHeap at a fixed seed — pinned by
// event_queue_property_test and the cross-structure bench gate.
//
// Allocation discipline: buckets, the far list, and the rebuild scratch are
// plain vectors that grow to their steady-state footprint during warm-up
// and are recycled in place afterwards, so the zero-allocation gates of
// micro_sim_events hold on this structure too (the grow/shrink hysteresis
// is wide enough that a steady workload never resizes the wheel).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/time.hpp"

namespace hyparview::sim {

/// T must expose `.at` (TimePoint) and `.seq` (uint64): the fixed (at, seq)
/// ordering is what makes the bucket discipline equivalent to a heap pop.
template <typename T>
class CalendarQueue {
 public:
  /// Wheel-size bounds, both powers of two so the bucket index is a mask.
  /// The floor keeps tiny queues cheap to rebuild; the ceiling bounds the
  /// bucket-header footprint at ~tens of MB for million-event runs.
  static constexpr std::size_t kMinBuckets = 256;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  /// Capacity floor given to every active bucket when the wheel geometry
  /// changes. Without it, steady traffic keeps setting per-bucket depth
  /// records (vector capacity ladders 1→2→4→8…) for thousands of events
  /// after warm-up, and the zero-allocation gate of micro_sim_events
  /// trickles failures. Paying the whole ladder up front at rebuild time
  /// moves those allocations into the (rare, already-allocating) geometry
  /// changes. Seeding stops at kSeedableBuckets — beyond that the floor's
  /// footprint would rival the event population itself.
  static constexpr std::size_t kBucketSeedCapacity = 16;
  static constexpr std::size_t kSeedableBuckets = std::size_t{1} << 14;

  CalendarQueue()
      : buckets_(kMinBuckets),
        heads_(kMinBuckets, 0u),
        dirty_(kMinBuckets, 0),
        live_(kMinBuckets / 64, 0u) {
    set_band(0, 0);
    seed_buckets();
  }

  /// `band_max` is the upper edge of the live latency band; the bucket
  /// width is sized so the wheel year covers ~2x the band (messages plus
  /// the failure-detection delays that ride just behind them).
  explicit CalendarQueue(Duration band_max)
      : buckets_(kMinBuckets),
        heads_(kMinBuckets, 0u),
        dirty_(kMinBuckets, 0),
        live_(kMinBuckets / 64, 0u) {
    set_band(0, band_max);
    seed_buckets();
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] Duration bucket_width() const { return width_; }
  [[nodiscard]] std::size_t bucket_count() const { return nbuckets_; }

  /// Pre-sizes the wheel for an expected population (the heap's reserve()
  /// equivalent): the bucket count jumps straight to its steady-state
  /// value so warm-up does not pay a doubling cascade of rebuilds.
  void reserve(std::size_t n) {
    const std::size_t target = buckets_for(n);
    if (target > nbuckets_) rebuild(derive_width(band_max_, target), target);
    far_.reserve(std::max<std::size_t>(64, n / 8));
    scratch_.reserve(n);
  }

  /// Scheduling contract (the simulator's): never push before the last
  /// popped timestamp. It is what lets the cursor only ever move forward.
  void push(T item) {
    HPV_ASSERT(item.at >= floor_);
    if (item.at < horizon()) {
      insert_wheel(std::move(item));
    } else {
      far_.push_back(std::move(item));
    }
    ++size_;
    // Occupancy crept past 2 events/bucket: double the wheel (narrower
    // width, same ~2x-band year) so pops keep scanning a handful of
    // events. Skipped once buckets are single-tick — more buckets cannot
    // split same-timestamp ties any further, only stretch the year.
    if (size_ - far_.size() > 2 * nbuckets_ && nbuckets_ < kMaxBuckets &&
        width_ > 1) {
      rebuild(derive_width(band_max_, nbuckets_ * 2), nbuckets_ * 2);
    }
  }

  /// Removes and returns the minimum (at, seq) element.
  T pop() {
    HPV_ASSERT(size_ > 0);
    return width_ == 1 ? pop_tick() : pop_scan();
  }

  void clear() {
    for (auto& bucket : buckets_) bucket.clear();
    std::fill(heads_.begin(), heads_.end(), 0u);
    std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
    std::fill(live_.begin(), live_.end(), std::uint64_t{0});
    far_.clear();
    size_ = 0;
    empty_steps_ = 0;
    floor_ = 0;
    cur_ = 0;
    window_end_ = width_;
  }

  /// Re-derives the bucket width from a new latency band and re-buckets
  /// every pending event (latency-spike fault injection widens the arrival
  /// horizon; keeping the old width would pile the spike's events into a
  /// few buckets and degrade toward O(n) scans).
  void set_band(Duration band_min, Duration band_max) {
    (void)band_min;  // the width keys off the band's far edge only
    band_max_ = band_max;
    const Duration width = derive_width(band_max_, nbuckets_);
    if (width == width_ && size_ == 0) {
      anchor_window();
      return;
    }
    rebuild(width, nbuckets_);
  }

  /// Visits every queued event in unspecified order (bounded-drain
  /// watermark accounting; mirrors MinHeap::items()). Walks the live
  /// bitmap, not the bucket array, so the cost tracks the pending-event
  /// count — the harness calls this once per bounded drain.
  template <typename F>
  void for_each(F&& fn) const {
    const std::size_t words = nbuckets_ >> 6;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = live_[w];
      while (bits != 0) {
        const std::size_t b =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::vector<T>& bucket = buckets_[b];
        for (std::size_t i = heads_[b]; i < bucket.size(); ++i) fn(bucket[i]);
      }
    }
    for (const T& item : far_) fn(item);
  }

 private:
  /// Pop for single-tick buckets — the at-scale regime, where same-tick tie
  /// piles grow with the network and a scan-min pop would be O(ties).
  ///
  /// Two invariants make an O(1) head-cursor take correct here:
  ///  * single-tick residency: every pushable timestamp lives in
  ///    [floor_, horizon), an interval at most one wheel-year long (the pop
  ///    window re-anchors at floor_ on every return), so no bucket ever
  ///    holds two distinct ticks at once;
  ///  * push order is seq order: `seq` is globally monotonic and pushes
  ///    append, so a bucket fed only by push() is sorted by (at, seq) by
  ///    construction — at is constant per bucket, seq ascends.
  /// Only migrate_far() and rebuild() append out of seq order; they mark
  /// the bucket dirty and the first pop to reach it sorts the remainder
  /// once (in place — no allocation).
  T pop_tick() {
    while (true) {
      std::vector<T>& bucket = buckets_[cur_];
      std::uint32_t& head = heads_[cur_];
      if (head < bucket.size()) {
        if (dirty_[cur_]) {
          std::sort(bucket.begin() + head, bucket.end(),
                    [](const T& a, const T& b) { return later(b, a); });
          dirty_[cur_] = 0;
        }
        HPV_ASSERT(bucket[head].at < window_end_);
        T out = std::move(bucket[head]);
        ++head;
        if (head == bucket.size()) {
          bucket.clear();
          head = 0;
          mark_dead(cur_);
        }
        --size_;
        floor_ = out.at;
        maybe_shrink();
        return out;
      }
      advance();
    }
  }

  /// Pop for multi-tick buckets (small wheels, wide bands): buckets are
  /// unsorted in `at`, so take the (at, seq) minimum by scan — a handful of
  /// elements at the tuned occupancy — and fill the hole from the back.
  T pop_scan() {
    while (true) {
      std::vector<T>& bucket = buckets_[cur_];
      const std::size_t head = heads_[cur_];
      if (head < bucket.size()) {
        std::size_t best = head;
        for (std::size_t i = head + 1; i < bucket.size(); ++i) {
          if (later(bucket[best], bucket[i])) best = i;
        }
        if (bucket[best].at < window_end_) {
          T out = std::move(bucket[best]);
          bucket[best] = std::move(bucket.back());
          bucket.pop_back();
          if (heads_[cur_] == bucket.size()) {
            bucket.clear();
            heads_[cur_] = 0;
            mark_dead(cur_);
          }
          --size_;
          floor_ = out.at;
          maybe_shrink();
          return out;
        }
      }
      advance();
    }
  }

  /// First timestamp that no longer maps uniquely into the wheel: one year
  /// (nbuckets_ buckets) past the current window start.
  [[nodiscard]] TimePoint horizon() const {
    return window_end_ + static_cast<TimePoint>(nbuckets_ - 1) *
                             static_cast<TimePoint>(width_);
  }

  [[nodiscard]] std::size_t bucket_of(TimePoint at) const {
    return static_cast<std::size_t>(at / width_) & (nbuckets_ - 1);
  }

  /// Width such that `buckets` buckets cover ~2x the band (floored at one
  /// tick — beyond that the year simply outgrows the band, harmlessly).
  [[nodiscard]] static Duration derive_width(Duration band_max,
                                             std::size_t buckets) {
    const Duration span = band_max * 2;
    return std::max<Duration>(
        1, (span + static_cast<Duration>(buckets) - 1) /
               static_cast<Duration>(buckets));
  }

  /// Steady-state bucket count for `n` wheel events: ~2 events per bucket,
  /// clamped to [kMinBuckets, kMaxBuckets], power of two.
  [[nodiscard]] static std::size_t buckets_for(std::size_t n) {
    std::size_t target = kMinBuckets;
    while (target < kMaxBuckets && n > 2 * target) target *= 2;
    return target;
  }

  static bool later(const T& a, const T& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  /// O(1) append; buckets are unsorted, pop() scans for the minimum (both
  /// ends of the trade are a handful of elements at the tuned occupancy,
  /// and appends never memmove the way sorted inserts would).
  void insert_wheel(T item) {
    const std::size_t b = bucket_of(item.at);
    if (buckets_[b].empty()) mark_live(b);
    buckets_[b].push_back(std::move(item));
  }

  /// Live-bucket bitmap bookkeeping. A bucket is live while it holds any
  /// unconsumed event; the cursor uses the bitmap to jump straight to the
  /// next live bucket instead of stepping one empty bucket at a time.
  void mark_live(std::size_t b) {
    live_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }
  void mark_dead(std::size_t b) {
    live_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  }

  /// Index of the first live bucket strictly after `b` within the current
  /// wheel year, or nbuckets_ if the rest of the year is empty. Counts the
  /// bitmap words it touches into empty_steps_ — with the bitmap, scanned
  /// words *are* the cost an oversized wheel imposes.
  [[nodiscard]] std::size_t next_live_after(std::size_t b) {
    std::size_t i = b + 1;
    if (i >= nbuckets_) return nbuckets_;
    std::size_t w = i >> 6;
    const std::size_t words = nbuckets_ >> 6;
    std::uint64_t bits = live_[w] & (~std::uint64_t{0} << (i & 63));
    while (true) {
      ++empty_steps_;
      if (bits != 0) {
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      }
      if (++w == words) return nbuckets_;
      bits = live_[w];
    }
  }

  /// Halves the wheel when the cursor has burned through enough live-bitmap
  /// words since the last geometry change. Bitmap scanning is the *only*
  /// cost an oversized wheel imposes (storage is high-water anyway), so it
  /// is the trigger — not occupancy, which collapses to zero at the tail of
  /// every run_until_quiescent drain and would make a drain/refill workload
  /// pay a shrink cascade plus a regrow cascade of full rebuilds every
  /// single round. A full-year scan is nbuckets_/64 words and a rebuild is
  /// O(nbuckets_) work, so the threshold fires only when sparse scanning
  /// has genuinely outweighed a rebuild many times over.
  void maybe_shrink() {
    if (nbuckets_ > kMinBuckets && empty_steps_ > 8 * nbuckets_) {
      rebuild(derive_width(band_max_, nbuckets_ / 2), nbuckets_ / 2);
    }
  }

  /// Moves the cursor to the next live bucket — or, when the wheel is
  /// empty, jumps it straight to the earliest far event (skipping empty
  /// years). The jump is a bitmap scan (one countr_zero per 64 buckets),
  /// so a near-empty wheel — the dominant regime between quiescent drains,
  /// where events sit hundreds of empty buckets apart — costs one or two
  /// word loads per pop instead of a bucket-by-bucket walk of the gap.
  void advance() {
    if (size_ == far_.size()) {
      // Nothing lives in the wheel: the next event (pop asserts there is
      // one) is in the far list. Jump the window to its bucket and migrate.
      HPV_ASSERT(!far_.empty());
      std::size_t best = 0;
      for (std::size_t i = 1; i < far_.size(); ++i) {
        if (later(far_[best], far_[i])) best = i;
      }
      const TimePoint at = far_[best].at;
      cur_ = bucket_of(at);
      window_end_ = (at / width_ + 1) * width_;
      migrate_far();
      return;
    }
    const std::size_t next = next_live_after(cur_);
    if (next < nbuckets_) {
      window_end_ +=
          static_cast<TimePoint>(next - cur_) * static_cast<TimePoint>(width_);
      cur_ = next;
      return;
    }
    // Rest of the year is empty: wrap. A far event is >= (nbuckets_ - 1)
    // buckets ahead at push time and jumps never cross a year boundary, so
    // sweeping at every wrap is still always soon enough: no far event's
    // window can be entered before the sweep that installs it. Bucket 0 of
    // the new year may itself be empty — pop's loop just advances again.
    window_end_ += static_cast<TimePoint>(nbuckets_ - cur_) *
                   static_cast<TimePoint>(width_);
    cur_ = 0;
    migrate_far();
  }

  /// Moves every far event that now fits the wheel year into its bucket.
  /// The far list is unordered, so receiving buckets lose their seq-sorted
  /// property and are marked dirty for pop_tick's one-time sort.
  void migrate_far() {
    const TimePoint limit = horizon();
    std::size_t i = 0;
    while (i < far_.size()) {
      if (far_[i].at < limit) {
        dirty_[bucket_of(far_[i].at)] = 1;
        insert_wheel(std::move(far_[i]));
        far_[i] = std::move(far_.back());
        far_.pop_back();
      } else {
        ++i;
      }
    }
  }

  /// Gives every active bucket its capacity floor (see kBucketSeedCapacity).
  /// Capacities above the floor are kept — high-water, like the storage.
  void seed_buckets() {
    if (nbuckets_ > kSeedableBuckets) return;
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      if (buckets_[i].capacity() < kBucketSeedCapacity) {
        buckets_[i].reserve(kBucketSeedCapacity);
      }
    }
  }

  /// Re-anchors the cursor window at the pop-time floor. Anchoring at the
  /// earliest *pending* event would be wrong: future pushes may land
  /// anywhere in [floor_, min_pending) — behind such a window, where the
  /// cursor has already passed and would only revisit a year late.
  void anchor_window() {
    cur_ = bucket_of(floor_);
    window_end_ = (floor_ / width_ + 1) * width_;
  }

  /// Re-buckets everything under a new width / bucket count, re-anchoring
  /// at the floor.
  void rebuild(Duration width, std::size_t nbuckets) {
    scratch_.clear();
    // No exact-fit reserve here: push_back's geometric growth gives the
    // scratch a capacity high-water with slack, so a pending-set peak a few
    // events above any previous one does not reallocate in steady state.
    // Only the active mask can hold events; high-water storage beyond it
    // is empty by construction.
    for (std::size_t b = 0; b < nbuckets_; ++b) {
      std::vector<T>& bucket = buckets_[b];
      for (std::size_t i = heads_[b]; i < bucket.size(); ++i) {
        scratch_.push_back(std::move(bucket[i]));
      }
      bucket.clear();
      heads_[b] = 0;
    }
    for (T& item : far_) scratch_.push_back(std::move(item));
    far_.clear();
    // High-water storage: shrinks only narrow the active mask (nbuckets_),
    // never free bucket vectors, so a workload that oscillates between
    // drained and full every round (run_until_quiescent cycles) reuses the
    // same capacity instead of reallocating the wheel each time.
    if (nbuckets > buckets_.size()) {
      buckets_.resize(nbuckets);
      heads_.resize(nbuckets, 0u);
      dirty_.resize(nbuckets, std::uint8_t{0});
      live_.resize(nbuckets / 64, 0u);
    }
    std::fill(live_.begin(), live_.end(), std::uint64_t{0});
    nbuckets_ = nbuckets;
    width_ = width;
    seed_buckets();
    anchor_window();
    size_ = 0;
    empty_steps_ = 0;
    // The scratch visits buckets in wheel order, not seq order, so every
    // re-bucketed pile is potentially unsorted: mark the active wheel dirty.
    std::fill(dirty_.begin(), dirty_.begin() + static_cast<std::ptrdiff_t>(nbuckets_),
              std::uint8_t{1});
    for (T& item : scratch_) {
      // Raw re-insert: the caller already chose the target geometry, so
      // the push-time grow check must not recurse.
      if (item.at < horizon()) {
        insert_wheel(std::move(item));
      } else {
        far_.push_back(std::move(item));
      }
      ++size_;
    }
    scratch_.clear();
  }

  std::vector<std::vector<T>> buckets_;
  std::vector<std::uint32_t> heads_;  ///< per-bucket consumed prefix (tick pops)
  std::vector<std::uint8_t> dirty_;   ///< per-bucket "tail not seq-sorted"
  std::vector<std::uint64_t> live_;   ///< bit per bucket: holds unconsumed events
  std::vector<T> far_;      ///< beyond-horizon overflow, unsorted
  std::vector<T> scratch_;  ///< rebuild staging (kept to avoid realloc)
  std::size_t size_ = 0;
  std::size_t empty_steps_ = 0;  ///< bitmap words scanned since last rebuild
  TimePoint floor_ = 0;  ///< largest popped timestamp; pushes are >= this
  std::size_t nbuckets_ = kMinBuckets;  ///< wheel size (power of two)
  std::size_t cur_ = 0;                 ///< bucket under the cursor
  TimePoint window_end_ = 1;  ///< end of cur_'s time window (aligned)
  Duration width_ = 1;        ///< bucket width in ticks
  Duration band_max_ = 0;     ///< latency-band far edge (width derivation)
};

}  // namespace hyparview::sim
