// Pluggable event-scheduler front end: binary heap or calendar queue.
//
// The simulator's pending-event set is the structure that decides whether
// 100k-node runs are routine or a 10x extrapolation (ROADMAP item 2: the PR
// 5 cycle-batching experiment lost 2x to heap growth alone). The calendar
// queue (calendar_queue.hpp) is the default; the heap stays selectable so
// every measurement ships with its own A/B:
//
//   HPV_EVENT_QUEUE=heap      — the historical MinHeap
//   HPV_EVENT_QUEUE=calendar  — bucketed near-horizon lanes (default)
//
// Both structures pop the strict (at, seq) minimum, so a run is
// bit-identical under either at a fixed seed — the property
// event_queue_property_test pins and the calendar_queue bench enforces at
// scale. Selection is one never-changing branch per operation (both
// structures live inline; the unused one stays empty), not a virtual call
// in a 20M-events/sec loop.
#pragma once

#include <cstdint>
#include <utility>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/options.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/sim/calendar_queue.hpp"
#include "hyparview/sim/min_heap.hpp"

namespace hyparview::sim {

enum class EventQueueKind : std::uint8_t {
  kAuto,      ///< resolve from HPV_EVENT_QUEUE (default: calendar)
  kHeap,      ///< binary MinHeap (the pre-calendar scheduler)
  kCalendar,  ///< calendar queue sized from the live latency band
};

/// Resolves kAuto through HPV_EVENT_QUEUE. Unknown values throw CheckError:
/// an A/B measurement silently running the wrong structure is worse than a
/// failed run.
inline EventQueueKind resolve_event_queue_kind(EventQueueKind configured) {
  if (configured != EventQueueKind::kAuto) return configured;
  const auto env = env_string("HPV_EVENT_QUEUE");
  if (!env.has_value() || *env == "calendar") return EventQueueKind::kCalendar;
  if (*env == "heap") return EventQueueKind::kHeap;
  throw CheckError("HPV_EVENT_QUEUE must be 'heap' or 'calendar', got '" +
                   *env + "'");
}

inline const char* event_queue_kind_name(EventQueueKind kind) {
  return kind == EventQueueKind::kHeap ? "heap" : "calendar";
}

/// T must expose `.at` and `.seq`; both structures order by exactly that
/// pair, so the popped sequences coincide.
template <typename T>
class EventQueue {
 public:
  struct AtSeqLess {
    bool operator()(const T& a, const T& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  EventQueue(EventQueueKind kind, Duration band_max)
      : kind_(resolve_event_queue_kind(kind)) {
    HPV_ASSERT(kind_ != EventQueueKind::kAuto);
    if (is_calendar()) calendar_.set_band(0, band_max);
  }

  [[nodiscard]] bool is_calendar() const {
    return kind_ == EventQueueKind::kCalendar;
  }
  [[nodiscard]] EventQueueKind kind() const { return kind_; }
  [[nodiscard]] const char* name() const {
    return event_queue_kind_name(kind_);
  }

  [[nodiscard]] bool empty() const {
    return is_calendar() ? calendar_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return is_calendar() ? calendar_.size() : heap_.size();
  }

  void reserve(std::size_t n) {
    if (is_calendar()) {
      calendar_.reserve(n);
    } else {
      heap_.reserve(n);
    }
  }

  void push(T item) {
    if (is_calendar()) {
      calendar_.push(std::move(item));
    } else {
      heap_.push(std::move(item));
    }
  }

  T pop() { return is_calendar() ? calendar_.pop() : heap_.pop(); }

  void clear() {
    if (is_calendar()) {
      calendar_.clear();
    } else {
      heap_.clear();
    }
  }

  /// Latency-band change (set_latency): the calendar re-derives its bucket
  /// width so a spike cannot pile the new horizon into a few buckets; the
  /// heap is band-oblivious.
  void set_band(Duration band_min, Duration band_max) {
    if (is_calendar()) calendar_.set_band(band_min, band_max);
  }

  /// Visits every pending event in unspecified order.
  template <typename F>
  void for_each(F&& fn) const {
    if (is_calendar()) {
      calendar_.for_each(std::forward<F>(fn));
    } else {
      for (const T& item : heap_.items()) fn(item);
    }
  }

 private:
  EventQueueKind kind_;
  MinHeap<T, AtSeqLess> heap_;
  CalendarQueue<T> calendar_;
};

}  // namespace hyparview::sim
