// Deterministic discrete-event network simulator (PeerSim equivalent).
//
// Models the paper's evaluation substrate:
//  * reliable, connection-oriented message delivery with uniform random
//    latency (TCP over a well-provisioned network);
//  * crash failures with *detect-on-send* semantics by default — crashing a
//    node does not announce anything, the next send/connect to it fails back
//    to the caller, exactly the "TCP as failure detector" model of §4;
//  * optional notify-on-crash mode (ablation A3) where open links deliver
//    on_link_closed to peers when a node dies;
//  * deterministic execution: a single master seed derives independent
//    per-node RNG streams, and the event queue breaks time ties by sequence
//    number.
//
// Periodic membership behaviour is *not* timer-driven here: the harness calls
// Protocol::on_cycle explicitly so experiments can count membership rounds
// the way the paper does, and run_until_quiescent() has a precise meaning
// (all reactive traffic has drained).
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "hyparview/common/flat_hash.hpp"
#include "hyparview/common/node_id.hpp"
#include "hyparview/common/rng.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/membership/endpoint.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/wire.hpp"
#include "hyparview/sim/event_queue.hpp"
#include "hyparview/sim/slot_pool.hpp"

namespace hyparview::sim {

struct SimConfig {
  std::uint64_t seed = 42;
  /// One-way message latency, uniform in [latency_min, latency_max].
  Duration latency_min = microseconds(500);
  Duration latency_max = microseconds(1500);
  /// How long a failed send/connect takes to report back to the caller.
  Duration failure_detect_delay = milliseconds(1);
  /// Crash announcement: false = detect-on-send (paper model), true = peers
  /// holding open links get on_link_closed (ablation).
  bool notify_on_crash = false;
  /// Frames buffered toward a *blocked* (slow) node per sender before the
  /// sender's flow control gives up and reports a send failure — the §5.5
  /// NeEM-style rule that treats slow nodes as failed so TCP backpressure
  /// cannot freeze the overlay.
  std::size_t link_send_buffer = 16;
  /// Abort the run if a single run_until_quiescent() exceeds this many
  /// events (guards against accidental self-sustaining event loops).
  std::uint64_t max_events_per_drain = 2'000'000'000ull;
  /// Events (and payload slots) pre-reserved at construction so steady-state
  /// runs never grow the queue or the payload slabs.
  std::size_t initial_event_capacity = 4096;
  /// Pending-event structure: kAuto resolves HPV_EVENT_QUEUE (default
  /// calendar; heap kept for A/B). Either pops the same strict (at, seq)
  /// order, so runs are bit-identical at a fixed seed.
  EventQueueKind event_queue = EventQueueKind::kAuto;
};

/// Per-node upcall interface; implemented by gossip::NodeRuntime.
using Handler = membership::Endpoint;

class Simulator {
 public:
  explicit Simulator(SimConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node; ids are dense indices (NodeId::from_index).
  /// The handler must outlive the simulator (or be detached via set_handler).
  NodeId add_node(Handler* handler);

  void set_handler(const NodeId& id, Handler* handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool alive(const NodeId& id) const;
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  /// Crashes a node: it stops receiving and initiating everything.
  void crash(const NodeId& id);

  /// Marks a node *blocked* (slow consumer, §5.5): it stays alive but stops
  /// processing — uniformly inert. It initiates nothing (sends, dials and
  /// teardowns never leave the frozen application) and its timers are
  /// missed; network-delivered events (messages, send-failure reports,
  /// connect results, link closes) buffer in its inbox instead. Inbound
  /// messages queue up to `link_send_buffer` per sender; beyond that the
  /// sender gets a send failure, which reactive protocols treat exactly
  /// like a crash (the node is expelled from active views).
  void block(const NodeId& id);

  /// Unblocks a node: queued events are replayed (in arrival order) and it
  /// resumes normal operation.
  void unblock(const NodeId& id);

  [[nodiscard]] bool blocked(const NodeId& id) const;

  /// Forcibly resets the open connection between a and b (flaky-network
  /// fault injection): each alive endpoint still holding its side observes
  /// on_link_closed after the detection delay, exactly as if the TCP
  /// connection had been RST by the network. Returns false (and does
  /// nothing) when no close could be scheduled — no open link, or only
  /// stale sides held by dead nodes.
  bool drop_link(const NodeId& a, const NodeId& b);

  /// Resets each currently-open connection independently with probability
  /// `fraction` (drawn from the master RNG; deterministic under a fixed
  /// seed). Returns the number of connections dropped.
  std::size_t drop_random_links(double fraction);

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Changes the one-way latency band for subsequently scheduled messages
  /// (latency-spike fault injection). In-flight messages keep the latency
  /// they were scheduled with. Throws CheckError on an inverted band
  /// (min > max) or a negative minimum; min == max (fixed latency) is valid.
  void set_latency(Duration min, Duration max);

  /// Which pending-event structure this simulator runs on ("heap" or
  /// "calendar") — bench records tag their measurements with it.
  [[nodiscard]] const char* event_queue_name() const { return queue_.name(); }

  /// Total events dispatched since construction (perf accounting).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Harness-level random stream (failure selection, source selection...).
  [[nodiscard]] Rng& rng() { return master_rng_; }

  /// The Env to hand to protocol instances running at `id`.
  [[nodiscard]] membership::Env& env(const NodeId& id);

  /// Processes events until the queue is empty. Returns events processed.
  std::uint64_t run_until_quiescent();

  /// Sequence number the next pushed event will receive. Take this
  /// *before* injecting work (a join, a broadcast) to obtain a watermark
  /// for run_until_quiescent_from().
  [[nodiscard]] std::uint64_t next_event_seq() const { return next_seq_; }

  /// Bounded drain: processes events until every event with
  /// seq >= `watermark` — including the cascades they spawn — has been
  /// dispatched. Events scheduled *before* the watermark (e.g. long-delay
  /// timers from earlier activity) stay queued unless they fall due before
  /// the watermarked traffic settles. With an empty pre-existing queue this
  /// is event-for-event identical to run_until_quiescent(); the point is
  /// incremental quiescence when the queue is NOT empty — the harness
  /// bootstrap drains each join's own traffic without being forced to
  /// retire unrelated pending work. Returns events processed.
  std::uint64_t run_until_quiescent_from(std::uint64_t watermark);

  /// Processes a single event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }

  /// True if a link between a and b is currently open.
  [[nodiscard]] bool linked(const NodeId& a, const NodeId& b) const;

  /// Open-link count for a node (diagnostics).
  [[nodiscard]] std::size_t link_count(const NodeId& id) const;

  // --- Traffic counters (overhead analysis & tests) ------------------------
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_total_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_total_;
  }
  [[nodiscard]] std::uint64_t sends_failed() const { return send_failures_; }
  /// Per-message-type send counts, indexed by wire::type_tag.
  [[nodiscard]] const std::vector<std::uint64_t>& sent_by_type() const {
    return sent_by_type_;
  }
  /// Total wire bytes sent (wire::wire_cost of every send; PlanetLab
  /// packet-overhead measurement of §6).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_total_; }
  /// Per-message-type wire bytes, indexed by wire::type_tag.
  [[nodiscard]] const std::vector<std::uint64_t>& bytes_by_type() const {
    return bytes_by_type_;
  }
  /// Connection establishments (implicit dial-on-send and explicit
  /// connect()), the TCP handshakes a deployment would pay for.
  [[nodiscard]] std::uint64_t connections_opened() const {
    return connections_opened_;
  }
  void reset_counters();

 private:
  friend class SimEnv;

  enum class EventKind : std::uint8_t {
    kDeliver,
    kSendFailed,
    kConnectResult,
    kTask,
    kLinkClosed,
  };

  /// 40-byte POD: the MinHeap sifts only this. Fat payloads (wire messages,
  /// callbacks) live in the slot pools below, addressed by `payload`, so
  /// pushing and sifting an event never allocates or runs a move ctor.
  struct Event {
    TimePoint at = 0;
    std::uint64_t seq = 0;
    /// For kLinkClosed: the generation of the link instance being closed,
    /// so a stale FIN cannot tear down a newer connection between the same
    /// pair (TCP connections have identity).
    std::uint64_t link_gen = 0;
    std::uint32_t node = 0;  ///< event target node index
    std::uint32_t peer = 0;  ///< other endpoint where applicable
    /// Slot index into the pool selected by `kind` (kDeliver/kSendFailed →
    /// gossip or message pool per `gossip`, kTask → task pool,
    /// kConnectResult → connect pool); kNoSlot when the event carries no
    /// payload.
    std::uint32_t payload = kNoSlot;
    EventKind kind = EventKind::kTask;
    /// kConnectResult replay: the handshake outcome recorded when the
    /// original result reached the then-blocked node.
    bool ok = false;
    /// kDeliver/kSendFailed: payload lives in the POD gossip pool instead
    /// of the generic variant pool. Gossip frames are the broadcast hot
    /// path — storing them as PODs skips the 20-alternative variant
    /// move/reset dispatch on every send and delivery.
    bool gossip = false;
    /// Forced replay from a drained inbox (unblock): skips the checks and
    /// counters that already ran at the original dispatch.
    bool replay = false;
  };
  static_assert(std::is_trivially_copyable_v<Event>);

  /// One event buffered in a blocked node's inbox. A frozen application
  /// misses its timers, but everything the *network* hands it — message
  /// deliveries, send-failure reports, connect results, link closes — is a
  /// kernel-level fact that waits for the process to resume; dropping any
  /// of these would silently wedge protocol state machines that await a
  /// completion (e.g. HyParView's promotion episode).
  struct QueuedMessage {
    enum class Kind : std::uint8_t {
      kDeliver,
      kClose,
      kSendFailed,
      kConnectResult,
    };
    Kind kind = Kind::kDeliver;
    std::uint32_t from = 0;          ///< the peer involved
    wire::Message msg;               ///< kDeliver / kSendFailed payload
    membership::ConnectCallback cb;  ///< kConnectResult
    bool ok = false;                 ///< kConnectResult: handshake outcome
  };

  /// Per-connection state (parallel to SimNode::link_peers).
  struct LinkData {
    std::uint64_t gen = 0;  ///< connection-instance identity
    /// Latest scheduled arrival of traffic this node sent over this link
    /// (FIFO clamp: TCP stream order *per connection instance*). Lives here
    /// instead of a global hash map so the per-send lookup touches only
    /// this node's table. Ordering is deliberately NOT guaranteed across a
    /// teardown + re-establishment — real TCP gives no cross-connection
    /// ordering either, and the protocols handle such races explicitly
    /// (HyParView's asymmetry healing); in-flight data of a torn-down link
    /// still delivers, as it always has in this simulator.
    TimePoint last_arrival = 0;
  };

  struct SimNode {
    Handler* handler = nullptr;
    bool alive = true;
    bool blocked = false;
    /// Open connections (symmetric), structure-of-arrays: the peer ids are
    /// scanned on every send, so they live in their own dense u32 array
    /// (a 100-link table is ~7 cache lines instead of ~40); gen/arrival
    /// state is only touched after a hit.
    std::vector<std::uint32_t> link_peers;
    std::vector<LinkData> link_data;  ///< parallel to link_peers
    /// peer → slot in link_peers, maintained only once the table outgrows
    /// kLinkIndexThreshold (invariant: empty, or exactly mirrors
    /// link_peers). Small tables are faster to scan than to hash; a
    /// well-connected node — a bootstrap contact at 10k scale holds a link
    /// to nearly everyone — would otherwise pay a linear scan on *every*
    /// send, the harness's "quadratic-ish" bootstrap constant.
    FlatMap<std::uint32_t, std::uint32_t> link_index;
    std::vector<QueuedMessage> inbox;  ///< buffered while blocked
    std::unique_ptr<membership::Env> env;
  };

  void do_send(std::uint32_t from, std::uint32_t to, const wire::Message& msg);
  void do_connect(std::uint32_t from, std::uint32_t to,
                  membership::ConnectCallback cb);
  void do_disconnect(std::uint32_t from, std::uint32_t to);
  void do_schedule(std::uint32_t node, Duration delay,
                   membership::TaskCallback fn);

  void push_event(Event ev);
  void dispatch(Event& ev);
  Duration draw_latency();

  /// Copies `msg` into the generic payload slab. Copies only the *active
  /// alternative* (visit + in-place emplace): the flat wire variant's
  /// storage is sized for a max-capacity shuffle (~270 bytes), but most
  /// membership frames are a dozen bytes — whole-variant assignment would
  /// memcpy the full storage on every control-plane send.
  std::uint32_t put_message(const wire::Message& msg);

  /// Moves a kDeliver/kSendFailed payload out of its pool (see Event::gossip).
  /// Same active-alternative-only copy discipline as put_message.
  wire::Message take_message(const Event& ev);
  /// Releases such a payload without materializing it (dropped events).
  void release_message(const Event& ev);

  /// Delivery time respecting per-link FIFO (TCP stream order): clamps to
  /// the link's last scheduled arrival and advances it.
  TimePoint arrival_time(LinkData& link);

  /// Link-table size beyond which the per-node peer→slot index kicks in.
  static constexpr std::size_t kLinkIndexThreshold = 128;
  /// "No such link" slot sentinel.
  static constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);

  /// Slot of `peer` in node.link_peers, or kNoLink.
  static std::size_t link_slot(const SimNode& node, std::uint32_t peer);
  /// Adds a link to `peer` if absent; returns its slot either way.
  std::size_t link_add(SimNode& node, std::uint32_t peer);
  static void link_remove(SimNode& node, std::uint32_t peer);
  static bool link_has(const SimNode& node, std::uint32_t peer);

  SimConfig config_;
  Rng master_rng_;
  Rng latency_rng_;
  std::vector<SimNode> nodes_;
  /// Pending events, popped in strict (at, seq) order regardless of the
  /// selected structure (heap for A/B, calendar by default — see
  /// event_queue.hpp). The calendar's bucket width tracks the latency band
  /// (set_latency re-buckets).
  EventQueue<Event> queue_;
  /// Payload slabs, free-list recycled (see slot_pool.hpp). One per payload
  /// kind so slots are homogeneous and reuse is exact. Gossip frames get
  /// their own compact slab (Event::gossip) — they dominate broadcast
  /// traffic and are an order of magnitude smaller than the full variant.
  /// Since the flat wire refactor the generic pool is POD too: membership
  /// control frames (shuffle node-lists included) recycle through it
  /// without ever touching the allocator — put/take are plain copies.
  SlotPool<wire::Message> messages_;
  SlotPool<wire::Gossip> gossips_;
  SlotPool<membership::TaskCallback> tasks_;
  SlotPool<membership::ConnectCallback> connects_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Bounded-drain bookkeeping (run_until_quiescent_from): while a bounded
  /// drain is active, every push necessarily carries seq >= the watermark,
  /// so a simple balance counter tracks the outstanding watermarked events.
  bool bounded_drain_active_ = false;
  std::uint64_t bounded_watermark_ = 0;
  std::uint64_t bounded_pending_ = 0;
  std::uint64_t next_link_gen_ = 1;
  std::size_t alive_count_ = 0;
  std::uint64_t events_processed_ = 0;

  std::uint64_t sent_total_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t send_failures_ = 0;
  std::vector<std::uint64_t> sent_by_type_;
  std::uint64_t bytes_total_ = 0;
  std::vector<std::uint64_t> bytes_by_type_;
  std::uint64_t connections_opened_ = 0;
};

}  // namespace hyparview::sim
