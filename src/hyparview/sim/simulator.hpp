// Deterministic discrete-event network simulator (PeerSim equivalent).
//
// Models the paper's evaluation substrate:
//  * reliable, connection-oriented message delivery with uniform random
//    latency (TCP over a well-provisioned network);
//  * crash failures with *detect-on-send* semantics by default — crashing a
//    node does not announce anything, the next send/connect to it fails back
//    to the caller, exactly the "TCP as failure detector" model of §4;
//  * optional notify-on-crash mode (ablation A3) where open links deliver
//    on_link_closed to peers when a node dies;
//  * deterministic execution: a single master seed derives independent
//    per-node RNG streams, and the event queue breaks time ties by sequence
//    number.
//
// Periodic membership behaviour is *not* timer-driven here: the harness calls
// Protocol::on_cycle explicitly so experiments can count membership rounds
// the way the paper does, and run_until_quiescent() has a precise meaning
// (all reactive traffic has drained).
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "hyparview/common/node_id.hpp"
#include "hyparview/common/rng.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/membership/endpoint.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/wire.hpp"
#include "hyparview/sim/min_heap.hpp"
#include "hyparview/sim/slot_pool.hpp"

namespace hyparview::sim {

struct SimConfig {
  std::uint64_t seed = 42;
  /// One-way message latency, uniform in [latency_min, latency_max].
  Duration latency_min = microseconds(500);
  Duration latency_max = microseconds(1500);
  /// How long a failed send/connect takes to report back to the caller.
  Duration failure_detect_delay = milliseconds(1);
  /// Crash announcement: false = detect-on-send (paper model), true = peers
  /// holding open links get on_link_closed (ablation).
  bool notify_on_crash = false;
  /// Frames buffered toward a *blocked* (slow) node per sender before the
  /// sender's flow control gives up and reports a send failure — the §5.5
  /// NeEM-style rule that treats slow nodes as failed so TCP backpressure
  /// cannot freeze the overlay.
  std::size_t link_send_buffer = 16;
  /// Abort the run if a single run_until_quiescent() exceeds this many
  /// events (guards against accidental self-sustaining event loops).
  std::uint64_t max_events_per_drain = 2'000'000'000ull;
  /// Events (and payload slots) pre-reserved at construction so steady-state
  /// runs never grow the queue or the payload slabs.
  std::size_t initial_event_capacity = 4096;
};

/// Per-node upcall interface; implemented by gossip::NodeRuntime.
using Handler = membership::Endpoint;

class Simulator {
 public:
  explicit Simulator(SimConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node; ids are dense indices (NodeId::from_index).
  /// The handler must outlive the simulator (or be detached via set_handler).
  NodeId add_node(Handler* handler);

  void set_handler(const NodeId& id, Handler* handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool alive(const NodeId& id) const;
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  /// Crashes a node: it stops receiving and initiating everything.
  void crash(const NodeId& id);

  /// Marks a node *blocked* (slow consumer, §5.5): it stays alive but stops
  /// processing. Inbound messages queue up to `link_send_buffer` per sender;
  /// beyond that the sender gets a send failure, which reactive protocols
  /// treat exactly like a crash (the node is expelled from active views).
  void block(const NodeId& id);

  /// Unblocks a node: queued messages are delivered (in arrival order) and
  /// it resumes normal operation.
  void unblock(const NodeId& id);

  [[nodiscard]] bool blocked(const NodeId& id) const;

  /// Forcibly resets the open connection between a and b (flaky-network
  /// fault injection): each alive endpoint still holding its side observes
  /// on_link_closed after the detection delay, exactly as if the TCP
  /// connection had been RST by the network. Returns false (and does
  /// nothing) when no close could be scheduled — no open link, or only
  /// stale sides held by dead nodes.
  bool drop_link(const NodeId& a, const NodeId& b);

  /// Resets each currently-open connection independently with probability
  /// `fraction` (drawn from the master RNG; deterministic under a fixed
  /// seed). Returns the number of connections dropped.
  std::size_t drop_random_links(double fraction);

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Changes the one-way latency band for subsequently scheduled messages
  /// (latency-spike fault injection). In-flight messages keep the latency
  /// they were scheduled with.
  void set_latency(Duration min, Duration max);

  /// Total events dispatched since construction (perf accounting).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Harness-level random stream (failure selection, source selection...).
  [[nodiscard]] Rng& rng() { return master_rng_; }

  /// The Env to hand to protocol instances running at `id`.
  [[nodiscard]] membership::Env& env(const NodeId& id);

  /// Processes events until the queue is empty. Returns events processed.
  std::uint64_t run_until_quiescent();

  /// Processes a single event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }

  /// True if a link between a and b is currently open.
  [[nodiscard]] bool linked(const NodeId& a, const NodeId& b) const;

  /// Open-link count for a node (diagnostics).
  [[nodiscard]] std::size_t link_count(const NodeId& id) const;

  // --- Traffic counters (overhead analysis & tests) ------------------------
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_total_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_total_;
  }
  [[nodiscard]] std::uint64_t sends_failed() const { return send_failures_; }
  /// Per-message-type send counts, indexed by wire::type_tag.
  [[nodiscard]] const std::vector<std::uint64_t>& sent_by_type() const {
    return sent_by_type_;
  }
  /// Total wire bytes sent (wire::wire_cost of every send; PlanetLab
  /// packet-overhead measurement of §6).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_total_; }
  /// Per-message-type wire bytes, indexed by wire::type_tag.
  [[nodiscard]] const std::vector<std::uint64_t>& bytes_by_type() const {
    return bytes_by_type_;
  }
  /// Connection establishments (implicit dial-on-send and explicit
  /// connect()), the TCP handshakes a deployment would pay for.
  [[nodiscard]] std::uint64_t connections_opened() const {
    return connections_opened_;
  }
  void reset_counters();

 private:
  friend class SimEnv;

  enum class EventKind : std::uint8_t {
    kDeliver,
    kSendFailed,
    kConnectResult,
    kTask,
    kLinkClosed,
  };

  /// 40-byte POD: the MinHeap sifts only this. Fat payloads (wire messages,
  /// callbacks) live in the slot pools below, addressed by `payload`, so
  /// pushing and sifting an event never allocates or runs a move ctor.
  struct Event {
    TimePoint at = 0;
    std::uint64_t seq = 0;
    /// For kLinkClosed: the generation of the link instance being closed,
    /// so a stale FIN cannot tear down a newer connection between the same
    /// pair (TCP connections have identity).
    std::uint64_t link_gen = 0;
    std::uint32_t node = 0;  ///< event target node index
    std::uint32_t peer = 0;  ///< other endpoint where applicable
    /// Slot index into the pool selected by `kind` (kDeliver/kSendFailed →
    /// message pool, kTask → task pool, kConnectResult → connect pool);
    /// kNoSlot when the event carries no payload.
    std::uint32_t payload = kNoSlot;
    EventKind kind = EventKind::kTask;
    bool ok = false;  ///< kLinkClosed: forced replay from a drained inbox
  };
  static_assert(std::is_trivially_copyable_v<Event>);

  struct EventLess {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  struct QueuedMessage {
    std::uint32_t from = 0;
    wire::Message msg;
    bool is_close = false;  ///< a buffered link-closed notification
  };

  /// One endpoint's half of an open connection.
  struct Link {
    std::uint32_t peer = 0;
    std::uint64_t gen = 0;  ///< connection-instance identity
    /// Latest scheduled arrival of traffic this node sent over this link
    /// (FIFO clamp: TCP stream order *per connection instance*). Lives here
    /// instead of a global hash map so the per-send lookup is the same
    /// cache line the send already touched for the link check. Ordering is
    /// deliberately NOT guaranteed across a teardown + re-establishment —
    /// real TCP gives no cross-connection ordering either, and the
    /// protocols handle such races explicitly (HyParView's asymmetry
    /// healing); in-flight data of a torn-down link still delivers, as it
    /// always has in this simulator.
    TimePoint last_arrival = 0;
  };

  struct SimNode {
    Handler* handler = nullptr;
    bool alive = true;
    bool blocked = false;
    std::vector<Link> links;           ///< open connections (symmetric)
    std::vector<QueuedMessage> inbox;  ///< buffered while blocked
    std::unique_ptr<membership::Env> env;
  };

  void do_send(std::uint32_t from, std::uint32_t to, wire::Message msg);
  void do_connect(std::uint32_t from, std::uint32_t to,
                  membership::ConnectCallback cb);
  void do_disconnect(std::uint32_t from, std::uint32_t to);
  void do_schedule(std::uint32_t node, Duration delay,
                   membership::TaskCallback fn);

  void push_event(Event ev);
  void dispatch(Event& ev);
  Duration draw_latency();

  /// Delivery time respecting per-link FIFO (TCP stream order): clamps to
  /// the link's last scheduled arrival and advances it.
  TimePoint arrival_time(Link& link);

  Link& link_add(std::vector<Link>& links, std::uint32_t peer);
  static void link_remove(std::vector<Link>& links, std::uint32_t peer);
  static Link* link_find(std::vector<Link>& links, std::uint32_t peer);
  static const Link* link_find(const std::vector<Link>& links,
                               std::uint32_t peer);
  static bool link_has(const std::vector<Link>& links, std::uint32_t peer);

  SimConfig config_;
  Rng master_rng_;
  Rng latency_rng_;
  std::vector<SimNode> nodes_;
  MinHeap<Event, EventLess> queue_;
  /// Payload slabs, free-list recycled (see slot_pool.hpp). One per payload
  /// kind so slots are homogeneous and reuse is exact.
  SlotPool<wire::Message> messages_;
  SlotPool<membership::TaskCallback> tasks_;
  SlotPool<membership::ConnectCallback> connects_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_link_gen_ = 1;
  std::size_t alive_count_ = 0;
  std::uint64_t events_processed_ = 0;

  std::uint64_t sent_total_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t send_failures_ = 0;
  std::vector<std::uint64_t> sent_by_type_;
  std::uint64_t bytes_total_ = 0;
  std::vector<std::uint64_t> bytes_by_type_;
  std::uint64_t connections_opened_ = 0;
};

}  // namespace hyparview::sim
