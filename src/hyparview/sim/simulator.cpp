#include "hyparview/sim/simulator.hpp"

#include <algorithm>
#include <variant>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::sim {

/// membership::Env implementation bound to one simulated node.
class SimEnv final : public membership::Env {
 public:
  SimEnv(Simulator* sim, std::uint32_t index, std::uint64_t seed)
      : sim_(sim), index_(index), rng_(seed) {}

  [[nodiscard]] NodeId self() const override {
    return NodeId::from_index(index_);
  }

  [[nodiscard]] TimePoint now() const override { return sim_->now(); }

  [[nodiscard]] Rng& rng() override { return rng_; }

  void send(const NodeId& to, wire::Message msg) override {
    sim_->do_send(index_, to.ip, msg);
  }

  void connect(const NodeId& to, membership::ConnectCallback cb) override {
    sim_->do_connect(index_, to.ip, std::move(cb));
  }

  void disconnect(const NodeId& to) override {
    sim_->do_disconnect(index_, to.ip);
  }

  void schedule(Duration delay, membership::TaskCallback fn) override {
    sim_->do_schedule(index_, delay, std::move(fn));
  }

 private:
  Simulator* sim_;
  std::uint32_t index_;
  Rng rng_;
};

// Every wire message — membership shuffles included — is a flat POD, so
// the payload slabs recycle slots with plain copies: no destructor runs on
// take/release and no allocation happens on put once the slab is warm.
static_assert(std::is_trivially_copyable_v<wire::Message>);

namespace {

/// CheckError (not abort) on a bad config: the band is caller input, and an
/// inverted band would otherwise surface as a modulo-by-zero or an
/// underflowed uniform draw deep inside draw_latency.
SimConfig validated(SimConfig config) {
  HPV_CHECK_THROW(config.latency_min >= 0,
                  "SimConfig: latency_min must be >= 0");
  HPV_CHECK_THROW(config.latency_max >= config.latency_min,
                  "SimConfig: inverted latency band (latency_min > "
                  "latency_max); a zero-width band (min == max) is the way "
                  "to model fixed latency");
  return config;
}

}  // namespace

Simulator::Simulator(SimConfig config)
    : config_(validated(config)),
      master_rng_(derive_seed(config.seed, 0)),
      latency_rng_(derive_seed(config.seed, 1)),
      // The wheel year must cover the failure-detection delay too: those
      // events ride just behind the message band, and parking them in the
      // far list would make every crash wave pay the overflow sweep.
      queue_(config_.event_queue,
             std::max(config_.latency_max, config_.failure_detect_delay)),
      sent_by_type_(std::variant_size_v<wire::Message>, 0),
      bytes_by_type_(std::variant_size_v<wire::Message>, 0) {
  // Pre-size the hot containers once: after warm-up, pushing an event is a
  // POD store plus sift, never a reallocation.
  queue_.reserve(config_.initial_event_capacity);
  messages_.reserve(config_.initial_event_capacity);
  gossips_.reserve(config_.initial_event_capacity);
  tasks_.reserve(64);
  connects_.reserve(64);
}

Simulator::~Simulator() = default;

NodeId Simulator::add_node(Handler* handler) {
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  SimNode node;
  node.handler = handler;
  node.alive = true;
  // Stream ids 0/1 are the master/latency streams; nodes start at 2.
  node.env = std::make_unique<SimEnv>(this, index,
                                      derive_seed(config_.seed, 2 + index));
  nodes_.push_back(std::move(node));
  ++alive_count_;
  return NodeId::from_index(index);
}

void Simulator::set_handler(const NodeId& id, Handler* handler) {
  HPV_CHECK(id.ip < nodes_.size());
  nodes_[id.ip].handler = handler;
}

bool Simulator::alive(const NodeId& id) const {
  HPV_CHECK(id.ip < nodes_.size());
  return nodes_[id.ip].alive;
}

void Simulator::crash(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  SimNode& node = nodes_[id.ip];
  if (!node.alive) return;
  node.alive = false;
  node.blocked = false;
  node.inbox.clear();
  --alive_count_;
  if (config_.notify_on_crash) {
    for (const std::uint32_t peer : node.link_peers) {
      // The peer's side of the link is removed when the notification is
      // dispatched (it may be suppressed if the peer closes first).
      const std::size_t peer_side = link_slot(nodes_[peer], id.ip);
      if (peer_side == kNoLink) continue;
      Event ev;
      ev.at = now_ + config_.failure_detect_delay;
      ev.kind = EventKind::kLinkClosed;
      ev.node = peer;
      ev.peer = id.ip;
      ev.link_gen = nodes_[peer].link_data[peer_side].gen;
      push_event(ev);
    }
    node.link_peers.clear();
    node.link_data.clear();
    node.link_index.clear();
  }
  // In detect-on-send mode the links stay in peers' tables; the next send
  // over them fails, which is exactly how the paper's failure detector works.
}

void Simulator::block(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  SimNode& node = nodes_[id.ip];
  if (node.alive) node.blocked = true;
}

void Simulator::unblock(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  SimNode& node = nodes_[id.ip];
  if (!node.blocked) return;
  node.blocked = false;
  // Replay the backlog in arrival order (the consumer catches up): a
  // single shared delay plus the sequence-number tie break preserves it.
  std::vector<QueuedMessage> backlog;
  backlog.swap(node.inbox);
  const Duration delay = draw_latency();
  for (auto& queued : backlog) {
    Event ev;
    ev.at = now_ + delay;
    ev.node = id.ip;
    ev.peer = queued.from;
    switch (queued.kind) {
      case QueuedMessage::Kind::kDeliver:
        ev.kind = EventKind::kDeliver;
        ev.payload = put_message(queued.msg);
        break;
      case QueuedMessage::Kind::kClose:
        ev.kind = EventKind::kLinkClosed;
        ev.replay = true;  // skip the gen/suppression check: already ran
        break;
      case QueuedMessage::Kind::kSendFailed:
        ev.kind = EventKind::kSendFailed;
        ev.replay = true;  // already counted at the original dispatch
        ev.payload = put_message(queued.msg);
        break;
      case QueuedMessage::Kind::kConnectResult:
        ev.kind = EventKind::kConnectResult;
        ev.replay = true;  // deliver the recorded handshake outcome
        ev.ok = queued.ok;
        ev.payload = connects_.put(std::move(queued.cb));
        break;
    }
    push_event(ev);
  }
}

bool Simulator::blocked(const NodeId& id) const {
  HPV_CHECK(id.ip < nodes_.size());
  return nodes_[id.ip].blocked;
}

bool Simulator::drop_link(const NodeId& a, const NodeId& b) {
  HPV_CHECK(a.ip < nodes_.size() && b.ip < nodes_.size());
  // Schedule a generation-checked close for each side still open; the links
  // themselves are removed at dispatch, so racing closes and reconnections
  // resolve exactly like do_disconnect-initiated teardowns.
  bool scheduled = false;
  for (const auto& [owner, other] : {std::pair{a.ip, b.ip}, {b.ip, a.ip}}) {
    const std::size_t side = link_slot(nodes_[owner], other);
    if (side == kNoLink || !nodes_[owner].alive) continue;
    Event ev;
    ev.at = now_ + config_.failure_detect_delay;
    ev.kind = EventKind::kLinkClosed;
    ev.node = owner;
    ev.peer = other;
    ev.link_gen = nodes_[owner].link_data[side].gen;
    push_event(ev);
    scheduled = true;
  }
  return scheduled;
}

std::size_t Simulator::drop_random_links(double fraction) {
  HPV_CHECK(fraction >= 0.0 && fraction <= 1.0);
  // Collect every open connection once (normalized lo<hi key; sides can be
  // asymmetric after detect-on-send crashes), sorted for determinism.
  std::vector<std::uint64_t> pairs;
  for (std::uint32_t x = 0; x < nodes_.size(); ++x) {
    for (const std::uint32_t peer : nodes_[x].link_peers) {
      const std::uint32_t lo = std::min(x, peer);
      const std::uint32_t hi = std::max(x, peer);
      pairs.push_back((static_cast<std::uint64_t>(lo) << 32) | hi);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::size_t dropped = 0;
  for (const std::uint64_t key : pairs) {
    if (!master_rng_.chance(fraction)) continue;
    if (drop_link(NodeId::from_index(static_cast<std::uint32_t>(key >> 32)),
                  NodeId::from_index(static_cast<std::uint32_t>(key)))) {
      ++dropped;
    }
  }
  return dropped;
}

void Simulator::set_latency(Duration min, Duration max) {
  HPV_CHECK_THROW(min >= 0, "set_latency: latency_min must be >= 0");
  HPV_CHECK_THROW(max >= min,
                  "set_latency: inverted latency band (min > max); use "
                  "min == max for fixed latency");
  config_.latency_min = min;
  config_.latency_max = max;
  // A spike stretches the arrival horizon: re-derive the calendar's bucket
  // width so the new band spreads across the wheel instead of piling into
  // a few buckets (no-op on the heap).
  queue_.set_band(min, std::max(max, config_.failure_detect_delay));
}

membership::Env& Simulator::env(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  return *nodes_[id.ip].env;
}

std::uint64_t Simulator::run_until_quiescent() {
  std::uint64_t processed = 0;
  while (step()) {
    ++processed;
    HPV_CHECK(processed <= config_.max_events_per_drain);
  }
  return processed;
}

std::uint64_t Simulator::run_until_quiescent_from(std::uint64_t watermark) {
  HPV_CHECK(watermark <= next_seq_);
  HPV_CHECK(!bounded_drain_active_);  // bounded drains do not nest
  bounded_drain_active_ = true;
  bounded_watermark_ = watermark;
  bounded_pending_ = 0;
  queue_.for_each([&](const Event& ev) {
    if (ev.seq >= watermark) ++bounded_pending_;
  });
  std::uint64_t processed = 0;
  while (bounded_pending_ > 0) {
    // The queue cannot be empty while watermarked events are outstanding.
    step();
    ++processed;
    HPV_CHECK(processed <= config_.max_events_per_drain);
  }
  bounded_drain_active_ = false;
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop();
  HPV_ASSERT(ev.at >= now_);
  now_ = ev.at;
  ++events_processed_;
  if (bounded_drain_active_ && ev.seq >= bounded_watermark_) {
    --bounded_pending_;
  }
  dispatch(ev);
  return true;
}

bool Simulator::linked(const NodeId& a, const NodeId& b) const {
  HPV_CHECK(a.ip < nodes_.size() && b.ip < nodes_.size());
  return link_has(nodes_[a.ip], b.ip);
}

std::size_t Simulator::link_count(const NodeId& id) const {
  HPV_CHECK(id.ip < nodes_.size());
  return nodes_[id.ip].link_peers.size();
}

void Simulator::reset_counters() {
  sent_total_ = 0;
  delivered_total_ = 0;
  send_failures_ = 0;
  std::fill(sent_by_type_.begin(), sent_by_type_.end(), 0);
  bytes_total_ = 0;
  std::fill(bytes_by_type_.begin(), bytes_by_type_.end(), 0);
  connections_opened_ = 0;
}

void Simulator::do_send(std::uint32_t from, std::uint32_t to,
                        const wire::Message& msg) {
  // Dead nodes initiate nothing; blocked nodes are frozen applications.
  if (!nodes_[from].alive || nodes_[from].blocked) return;
  const auto* gossip = std::get_if<wire::Gossip>(&msg);
  ++sent_total_;
  const std::uint8_t tag = wire::type_tag(msg);
  ++sent_by_type_[tag];
  const std::uint64_t cost =
      gossip != nullptr ? wire::wire_cost(*gossip) : wire::wire_cost(msg);
  bytes_total_ += cost;
  bytes_by_type_[tag] += cost;

  Event ev;
  // Gossip frames — the broadcast hot path — live in their own POD pool;
  // everything else rides the generic variant pool (active alternative
  // copied in place, see put_message).
  if (gossip != nullptr) {
    ev.payload = gossips_.put(*gossip);
    ev.gossip = true;
  } else {
    ev.payload = put_message(msg);
  }
  // Out-of-range addresses are fabricated identities (the adversarial tier
  // injects view entries that name no simulated process). They behave
  // exactly like crashed peers: the write fails back to the sender after
  // the detection delay. In-range traffic takes the historical path
  // unchanged.
  if (to >= nodes_.size() || !nodes_[to].alive) {
    // TCP write against a crashed peer: fails back to the sender after the
    // detection delay. The link, if any, is torn down.
    link_remove(nodes_[from], to);
    ev.kind = EventKind::kSendFailed;
    ev.at = now_ + config_.failure_detect_delay;
    ev.node = from;
    ev.peer = to;
    push_event(ev);
    return;
  }
  // Implicit connection establishment, as with a TCP dial-on-demand cache.
  std::size_t slot = link_slot(nodes_[from], to);
  if (slot == kNoLink) {
    slot = link_add(nodes_[from], to);
    // The slot stays valid: for from != to this touches a different node's
    // table, and for a (degenerate) self-send it finds the entry just
    // added instead of growing the table.
    link_add(nodes_[to], from);
    ++connections_opened_;
  }
  ev.kind = EventKind::kDeliver;
  ev.at = arrival_time(nodes_[from].link_data[slot]);
  ev.node = to;
  ev.peer = from;
  push_event(ev);
}

void Simulator::do_connect(std::uint32_t from, std::uint32_t to,
                           membership::ConnectCallback cb) {
  // Dead nodes initiate nothing, and neither do blocked ones: a frozen
  // process cannot reach its dial loop any more than its send path (the
  // same rule do_send applies).
  if (!nodes_[from].alive || nodes_[from].blocked) return;
  // Fabricated (out-of-range) targets refuse the dial after the detection
  // delay, like crashed peers.
  const bool reachable = to < nodes_.size() && nodes_[to].alive;
  Event ev;
  ev.kind = EventKind::kConnectResult;
  ev.at = now_ + (reachable ? draw_latency()
                            : config_.failure_detect_delay);
  ev.node = from;
  ev.peer = to;
  ev.payload = connects_.put(std::move(cb));
  push_event(ev);
}

void Simulator::do_disconnect(std::uint32_t from, std::uint32_t to) {
  // Same inertness rule as do_send/do_connect: a frozen (or dead)
  // application never reaches its teardown path either.
  if (!nodes_[from].alive || nodes_[from].blocked) return;
  // TCP semantics: the remote side observes our FIN *after* any in-flight
  // data on this connection (clamped to the link's last scheduled arrival).
  // If the remote closes its own side first — e.g. because a DISCONNECT
  // message told it to — or the pair reconnects meanwhile (new generation),
  // the notification is suppressed at dispatch. Fabricated (out-of-range)
  // peers have no remote side to notify.
  const std::size_t remote_side = to < nodes_.size() && nodes_[to].alive
                                      ? link_slot(nodes_[to], from)
                                      : kNoLink;
  if (remote_side != kNoLink) {
    TimePoint fin_at = now_ + draw_latency();
    if (const std::size_t mine = link_slot(nodes_[from], to);
        mine != kNoLink && nodes_[from].link_data[mine].last_arrival > fin_at) {
      fin_at = nodes_[from].link_data[mine].last_arrival;
    }
    Event ev;
    ev.at = fin_at + config_.failure_detect_delay;
    ev.kind = EventKind::kLinkClosed;
    ev.node = to;
    ev.peer = from;
    ev.link_gen = nodes_[to].link_data[remote_side].gen;
    push_event(ev);
  }
  link_remove(nodes_[from], to);
}

void Simulator::do_schedule(std::uint32_t node, Duration delay,
                            membership::TaskCallback fn) {
  HPV_CHECK(delay >= 0);
  Event ev;
  ev.kind = EventKind::kTask;
  ev.at = now_ + delay;
  ev.node = node;
  ev.payload = tasks_.put(std::move(fn));
  push_event(ev);
}

void Simulator::push_event(Event ev) {
  ev.seq = next_seq_++;
  // Any event pushed during a bounded drain was caused by watermarked work
  // (its seq is >= the watermark by construction), so it extends the drain.
  if (bounded_drain_active_) ++bounded_pending_;
  queue_.push(ev);
}

void Simulator::dispatch(Event& ev) {
  SimNode& node = nodes_[ev.node];
  switch (ev.kind) {
    case EventKind::kDeliver: {
      if (!node.alive) {
        // Target crashed while the message was in flight: the sender's TCP
        // stack notices (RST / timeout) and reports the failure. The
        // payload slot transfers to the failure event untouched.
        if (nodes_[ev.peer].alive) {
          link_remove(nodes_[ev.peer], ev.node);
          link_remove(node, ev.peer);
          Event fail;
          fail.kind = EventKind::kSendFailed;
          fail.at = now_ + config_.failure_detect_delay;
          fail.node = ev.peer;
          fail.peer = ev.node;
          fail.payload = ev.payload;
          fail.gossip = ev.gossip;
          push_event(fail);
        } else {
          release_message(ev);
        }
        return;
      }
      if (node.blocked) {
        // Slow consumer (§5.5): buffer up to the per-sender flow-control
        // window, then fail back to the sender as if the node had crashed.
        std::size_t from_sender = 0;
        for (const auto& queued : node.inbox) {
          if (queued.from == ev.peer &&
              queued.kind == QueuedMessage::Kind::kDeliver) {
            ++from_sender;
          }
        }
        if (from_sender < config_.link_send_buffer) {
          if (node.inbox.capacity() == 0) {
            node.inbox.reserve(config_.link_send_buffer);
          }
          QueuedMessage queued;
          queued.kind = QueuedMessage::Kind::kDeliver;
          queued.from = ev.peer;
          queued.msg = take_message(ev);
          node.inbox.push_back(std::move(queued));
          return;
        }
        if (nodes_[ev.peer].alive) {
          link_remove(nodes_[ev.peer], ev.node);
          link_remove(node, ev.peer);
          Event fail;
          fail.kind = EventKind::kSendFailed;
          fail.at = now_ + config_.failure_detect_delay;
          fail.node = ev.peer;
          fail.peer = ev.node;
          fail.payload = ev.payload;
          fail.gossip = ev.gossip;
          push_event(fail);
        } else {
          release_message(ev);
        }
        return;
      }
      ++delivered_total_;
      // Move the payload out before the upcall: the handler's own sends may
      // grow the slab, and the recycled slot must not alias the message the
      // handler is still reading.
      wire::Message msg = take_message(ev);
      if (node.handler != nullptr) {
        node.handler->deliver(NodeId::from_index(ev.peer), msg);
      }
      return;
    }
    case EventKind::kSendFailed: {
      if (!ev.replay) ++send_failures_;
      wire::Message msg = take_message(ev);
      if (!node.alive) return;
      if (node.blocked) {
        // The failure report is a kernel-level fact (the RST arrived); the
        // frozen application processes it when it resumes — dropping it
        // would wedge protocols waiting on the send's outcome.
        QueuedMessage queued;
        queued.kind = QueuedMessage::Kind::kSendFailed;
        queued.from = ev.peer;
        queued.msg = std::move(msg);
        node.inbox.push_back(std::move(queued));
        return;
      }
      if (node.handler != nullptr) {
        node.handler->send_failed(NodeId::from_index(ev.peer), msg);
      }
      return;
    }
    case EventKind::kConnectResult: {
      membership::ConnectCallback cb = connects_.take(ev.payload);
      if (!node.alive) return;
      // The kernel completes the handshake whether or not the application
      // is frozen, so the link comes into being now; only the callback
      // waits for the process to resume (a dropped completion would wedge
      // any state machine gating on the dial, e.g. HyParView promotion).
      const bool ok = ev.replay
                          ? ev.ok
                          : ev.peer < nodes_.size() && nodes_[ev.peer].alive;
      if (!ev.replay && ok && !link_has(node, ev.peer)) {
        link_add(node, ev.peer);
        link_add(nodes_[ev.peer], ev.node);
        ++connections_opened_;
      }
      if (node.blocked) {
        QueuedMessage queued;
        queued.kind = QueuedMessage::Kind::kConnectResult;
        queued.from = ev.peer;
        queued.cb = std::move(cb);
        queued.ok = ok;
        node.inbox.push_back(std::move(queued));
        return;
      }
      if (cb) cb(ok);
      return;
    }
    case EventKind::kTask: {
      membership::TaskCallback task = tasks_.take(ev.payload);
      // Frozen applications miss their timers (app-internal scheduling
      // fires into a stuck process); dead ones are gone.
      if (!node.alive || node.blocked) return;
      if (task) task();
      return;
    }
    case EventKind::kLinkClosed: {
      if (!node.alive) return;
      // ev.replay marks a forced replay from a drained inbox; otherwise
      // the notification only fires if our side of *that* link instance is
      // still open (close-vs-close races resolve silently, like mutual
      // FINs, and reconnections have a fresh generation).
      if (!ev.replay) {
        const std::size_t side = link_slot(node, ev.peer);
        if (side == kNoLink || node.link_data[side].gen != ev.link_gen) {
          return;
        }
        link_remove(node, ev.peer);
      }
      if (node.blocked) {
        QueuedMessage queued;
        queued.kind = QueuedMessage::Kind::kClose;
        queued.from = ev.peer;
        node.inbox.push_back(std::move(queued));
        return;
      }
      if (node.handler != nullptr) {
        node.handler->link_closed(NodeId::from_index(ev.peer));
      }
      return;
    }
  }
}

std::uint32_t Simulator::put_message(const wire::Message& msg) {
  const std::uint32_t slot = messages_.alloc();
  // In-place emplace of the active alternative: a ScampForwardedSub send
  // writes ~8 bytes into the slab, not the variant's full ~270-byte
  // storage. (Whole-variant assignment of a trivially copyable variant is
  // a full-storage memcpy — measurably slower across a 9.5M-event
  // bootstrap.)
  std::visit(
      [&](const auto& m) {
        messages_[slot].emplace<std::decay_t<decltype(m)>>(m);
      },
      msg);
  return slot;
}

wire::Message Simulator::take_message(const Event& ev) {
  if (ev.gossip) return wire::Message(gossips_.take(ev.payload));
  // Copy out only the active alternative. The slot is released *first* so
  // the return expression stays a prvalue — guaranteed copy elision
  // constructs the caller's Message directly from the slab; a named local
  // here measurably demoted the return to a full-storage (272-byte) memcpy
  // (GCC declined NRVO with the two-branch return). Safe by SlotPool's
  // documented release() contract: the slot's contents stay intact until
  // the next put()/alloc(), and nothing runs between the release and the
  // read below (single-threaded dispatch).
  messages_.release(ev.payload);
  return std::visit([](const auto& m) { return wire::Message(m); },
                    messages_[ev.payload]);
}

void Simulator::release_message(const Event& ev) {
  if (ev.gossip) {
    gossips_.release(ev.payload);
  } else {
    messages_.release(ev.payload);
  }
}

Duration Simulator::draw_latency() {
  // Zero-width band = fixed latency, decided without consuming an RNG draw;
  // the validated band (min <= max) keeps the modulus below >= 1.
  if (config_.latency_max == config_.latency_min) return config_.latency_min;
  return config_.latency_min +
         static_cast<Duration>(latency_rng_.below(static_cast<std::uint64_t>(
             config_.latency_max - config_.latency_min + 1)));
}

TimePoint Simulator::arrival_time(LinkData& link) {
  TimePoint at = now_ + draw_latency();
  if (link.last_arrival > at) at = link.last_arrival;
  link.last_arrival = at;
  return at;
}

std::size_t Simulator::link_slot(const SimNode& node, std::uint32_t peer) {
  if (node.link_index.empty()) {
    const auto it =
        std::find(node.link_peers.begin(), node.link_peers.end(), peer);
    return it == node.link_peers.end()
               ? kNoLink
               : static_cast<std::size_t>(it - node.link_peers.begin());
  }
  const std::uint32_t* slot = node.link_index.find(peer);
  return slot == nullptr ? kNoLink : *slot;
}

std::size_t Simulator::link_add(SimNode& node, std::uint32_t peer) {
  if (const std::size_t existing = link_slot(node, peer);
      existing != kNoLink) {
    return existing;
  }
  if (node.link_peers.capacity() == 0) {
    node.link_peers.reserve(8);
    node.link_data.reserve(8);
  }
  if (!node.link_index.empty()) {
    node.link_index.insert(
        peer, static_cast<std::uint32_t>(node.link_peers.size()));
  } else if (node.link_peers.size() + 1 > kLinkIndexThreshold) {
    // The table outgrew scanning: index everything, new entry included.
    node.link_index.reserve(node.link_peers.size() + 1);
    for (std::size_t i = 0; i < node.link_peers.size(); ++i) {
      node.link_index.insert(node.link_peers[i],
                             static_cast<std::uint32_t>(i));
    }
    node.link_index.insert(
        peer, static_cast<std::uint32_t>(node.link_peers.size()));
  }
  node.link_peers.push_back(peer);
  node.link_data.push_back(LinkData{next_link_gen_++, /*last_arrival=*/0});
  return node.link_peers.size() - 1;
}

void Simulator::link_remove(SimNode& node, std::uint32_t peer) {
  const std::size_t i = link_slot(node, peer);
  if (i == kNoLink) return;
  if (!node.link_index.empty()) {
    node.link_index.erase(peer);
    if (i + 1 != node.link_peers.size()) {
      // Swap-remove: re-point the moved entry's index at its new slot.
      node.link_index.insert(node.link_peers.back(),
                             static_cast<std::uint32_t>(i));
    }
  }
  node.link_peers[i] = node.link_peers.back();
  node.link_data[i] = node.link_data.back();
  node.link_peers.pop_back();
  node.link_data.pop_back();
}

bool Simulator::link_has(const SimNode& node, std::uint32_t peer) {
  return link_slot(node, peer) != kNoLink;
}

}  // namespace hyparview::sim
