#include "hyparview/sim/simulator.hpp"

#include <algorithm>
#include <variant>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::sim {

/// membership::Env implementation bound to one simulated node.
class SimEnv final : public membership::Env {
 public:
  SimEnv(Simulator* sim, std::uint32_t index, std::uint64_t seed)
      : sim_(sim), index_(index), rng_(seed) {}

  [[nodiscard]] NodeId self() const override {
    return NodeId::from_index(index_);
  }

  [[nodiscard]] TimePoint now() const override { return sim_->now(); }

  [[nodiscard]] Rng& rng() override { return rng_; }

  void send(const NodeId& to, wire::Message msg) override {
    sim_->do_send(index_, to.ip, std::move(msg));
  }

  void connect(const NodeId& to, membership::ConnectCallback cb) override {
    sim_->do_connect(index_, to.ip, std::move(cb));
  }

  void disconnect(const NodeId& to) override {
    sim_->do_disconnect(index_, to.ip);
  }

  void schedule(Duration delay, membership::TaskCallback fn) override {
    sim_->do_schedule(index_, delay, std::move(fn));
  }

 private:
  Simulator* sim_;
  std::uint32_t index_;
  Rng rng_;
};

Simulator::Simulator(SimConfig config)
    : config_(config),
      master_rng_(derive_seed(config.seed, 0)),
      latency_rng_(derive_seed(config.seed, 1)),
      sent_by_type_(std::variant_size_v<wire::Message>, 0),
      bytes_by_type_(std::variant_size_v<wire::Message>, 0) {
  HPV_CHECK(config_.latency_min >= 0 &&
            config_.latency_max >= config_.latency_min);
  // Pre-size the hot containers once: after warm-up, pushing an event is a
  // POD store plus sift, never a reallocation.
  queue_.reserve(config_.initial_event_capacity);
  messages_.reserve(config_.initial_event_capacity);
  tasks_.reserve(64);
  connects_.reserve(64);
}

Simulator::~Simulator() = default;

NodeId Simulator::add_node(Handler* handler) {
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  SimNode node;
  node.handler = handler;
  node.alive = true;
  // Stream ids 0/1 are the master/latency streams; nodes start at 2.
  node.env = std::make_unique<SimEnv>(this, index,
                                      derive_seed(config_.seed, 2 + index));
  nodes_.push_back(std::move(node));
  ++alive_count_;
  return NodeId::from_index(index);
}

void Simulator::set_handler(const NodeId& id, Handler* handler) {
  HPV_CHECK(id.ip < nodes_.size());
  nodes_[id.ip].handler = handler;
}

bool Simulator::alive(const NodeId& id) const {
  HPV_CHECK(id.ip < nodes_.size());
  return nodes_[id.ip].alive;
}

void Simulator::crash(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  SimNode& node = nodes_[id.ip];
  if (!node.alive) return;
  node.alive = false;
  node.blocked = false;
  node.inbox.clear();
  --alive_count_;
  if (config_.notify_on_crash) {
    for (const Link& link : node.links) {
      // The peer's side of the link is removed when the notification is
      // dispatched (it may be suppressed if the peer closes first).
      const Link* peer_side = link_find(nodes_[link.peer].links, id.ip);
      if (peer_side == nullptr) continue;
      Event ev;
      ev.at = now_ + config_.failure_detect_delay;
      ev.kind = EventKind::kLinkClosed;
      ev.node = link.peer;
      ev.peer = id.ip;
      ev.link_gen = peer_side->gen;
      push_event(ev);
    }
    node.links.clear();
  }
  // In detect-on-send mode the links stay in peers' tables; the next send
  // over them fails, which is exactly how the paper's failure detector works.
}

void Simulator::block(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  SimNode& node = nodes_[id.ip];
  if (node.alive) node.blocked = true;
}

void Simulator::unblock(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  SimNode& node = nodes_[id.ip];
  if (!node.blocked) return;
  node.blocked = false;
  // Deliver the backlog in arrival order (the consumer catches up): a
  // single shared delay plus the sequence-number tie break preserves it.
  std::vector<QueuedMessage> backlog;
  backlog.swap(node.inbox);
  const Duration delay = draw_latency();
  for (auto& queued : backlog) {
    Event ev;
    ev.kind = queued.is_close ? EventKind::kLinkClosed : EventKind::kDeliver;
    ev.ok = queued.is_close;  // forced replay: skip the suppression check
    ev.at = now_ + delay;
    ev.node = id.ip;
    ev.peer = queued.from;
    if (!queued.is_close) ev.payload = messages_.put(std::move(queued.msg));
    push_event(ev);
  }
}

bool Simulator::blocked(const NodeId& id) const {
  HPV_CHECK(id.ip < nodes_.size());
  return nodes_[id.ip].blocked;
}

bool Simulator::drop_link(const NodeId& a, const NodeId& b) {
  HPV_CHECK(a.ip < nodes_.size() && b.ip < nodes_.size());
  // Schedule a generation-checked close for each side still open; the links
  // themselves are removed at dispatch, so racing closes and reconnections
  // resolve exactly like do_disconnect-initiated teardowns.
  bool scheduled = false;
  for (const auto& [owner, other] : {std::pair{a.ip, b.ip}, {b.ip, a.ip}}) {
    const Link* side = link_find(nodes_[owner].links, other);
    if (side == nullptr || !nodes_[owner].alive) continue;
    Event ev;
    ev.at = now_ + config_.failure_detect_delay;
    ev.kind = EventKind::kLinkClosed;
    ev.node = owner;
    ev.peer = other;
    ev.link_gen = side->gen;
    push_event(ev);
    scheduled = true;
  }
  return scheduled;
}

std::size_t Simulator::drop_random_links(double fraction) {
  HPV_CHECK(fraction >= 0.0 && fraction <= 1.0);
  // Collect every open connection once (normalized lo<hi key; sides can be
  // asymmetric after detect-on-send crashes), sorted for determinism.
  std::vector<std::uint64_t> pairs;
  for (std::uint32_t x = 0; x < nodes_.size(); ++x) {
    for (const Link& link : nodes_[x].links) {
      const std::uint32_t lo = std::min(x, link.peer);
      const std::uint32_t hi = std::max(x, link.peer);
      pairs.push_back((static_cast<std::uint64_t>(lo) << 32) | hi);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::size_t dropped = 0;
  for (const std::uint64_t key : pairs) {
    if (!master_rng_.chance(fraction)) continue;
    if (drop_link(NodeId::from_index(static_cast<std::uint32_t>(key >> 32)),
                  NodeId::from_index(static_cast<std::uint32_t>(key)))) {
      ++dropped;
    }
  }
  return dropped;
}

void Simulator::set_latency(Duration min, Duration max) {
  HPV_CHECK(min >= 0 && max >= min);
  config_.latency_min = min;
  config_.latency_max = max;
}

membership::Env& Simulator::env(const NodeId& id) {
  HPV_CHECK(id.ip < nodes_.size());
  return *nodes_[id.ip].env;
}

std::uint64_t Simulator::run_until_quiescent() {
  std::uint64_t processed = 0;
  while (step()) {
    ++processed;
    HPV_CHECK(processed <= config_.max_events_per_drain);
  }
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop();
  HPV_ASSERT(ev.at >= now_);
  now_ = ev.at;
  ++events_processed_;
  dispatch(ev);
  return true;
}

bool Simulator::linked(const NodeId& a, const NodeId& b) const {
  HPV_CHECK(a.ip < nodes_.size() && b.ip < nodes_.size());
  return link_has(nodes_[a.ip].links, b.ip);
}

std::size_t Simulator::link_count(const NodeId& id) const {
  HPV_CHECK(id.ip < nodes_.size());
  return nodes_[id.ip].links.size();
}

void Simulator::reset_counters() {
  sent_total_ = 0;
  delivered_total_ = 0;
  send_failures_ = 0;
  std::fill(sent_by_type_.begin(), sent_by_type_.end(), 0);
  bytes_total_ = 0;
  std::fill(bytes_by_type_.begin(), bytes_by_type_.end(), 0);
  connections_opened_ = 0;
}

void Simulator::do_send(std::uint32_t from, std::uint32_t to,
                        wire::Message msg) {
  HPV_CHECK(to < nodes_.size());
  // Dead nodes initiate nothing; blocked nodes are frozen applications.
  if (!nodes_[from].alive || nodes_[from].blocked) return;
  ++sent_total_;
  const std::uint8_t tag = wire::type_tag(msg);
  ++sent_by_type_[tag];
  const std::uint64_t cost = wire::wire_cost(msg);
  bytes_total_ += cost;
  bytes_by_type_[tag] += cost;

  Event ev;
  if (!nodes_[to].alive) {
    // TCP write against a crashed peer: fails back to the sender after the
    // detection delay. The link, if any, is torn down.
    link_remove(nodes_[from].links, to);
    ev.kind = EventKind::kSendFailed;
    ev.at = now_ + config_.failure_detect_delay;
    ev.node = from;
    ev.peer = to;
    ev.payload = messages_.put(std::move(msg));
    push_event(ev);
    return;
  }
  // Implicit connection establishment, as with a TCP dial-on-demand cache.
  Link* link = link_find(nodes_[from].links, to);
  if (link == nullptr) {
    link = &link_add(nodes_[from].links, to);
    // Safe to keep the reference: for from != to this touches a different
    // node's vector, and for a (degenerate) self-send it finds the entry
    // just added instead of growing the vector.
    link_add(nodes_[to].links, from);
    ++connections_opened_;
  }
  ev.kind = EventKind::kDeliver;
  ev.at = arrival_time(*link);
  ev.node = to;
  ev.peer = from;
  ev.payload = messages_.put(std::move(msg));
  push_event(ev);
}

void Simulator::do_connect(std::uint32_t from, std::uint32_t to,
                           membership::ConnectCallback cb) {
  HPV_CHECK(to < nodes_.size());
  if (!nodes_[from].alive) return;
  Event ev;
  ev.kind = EventKind::kConnectResult;
  ev.at = now_ + (nodes_[to].alive ? draw_latency()
                                   : config_.failure_detect_delay);
  ev.node = from;
  ev.peer = to;
  ev.payload = connects_.put(std::move(cb));
  push_event(ev);
}

void Simulator::do_disconnect(std::uint32_t from, std::uint32_t to) {
  HPV_CHECK(to < nodes_.size());
  // TCP semantics: the remote side observes our FIN *after* any in-flight
  // data on this connection (clamped to the link's last scheduled arrival).
  // If the remote closes its own side first — e.g. because a DISCONNECT
  // message told it to — or the pair reconnects meanwhile (new generation),
  // the notification is suppressed at dispatch.
  const Link* remote_side =
      nodes_[to].alive ? link_find(nodes_[to].links, from) : nullptr;
  if (remote_side != nullptr) {
    TimePoint fin_at = now_ + draw_latency();
    if (const Link* mine = link_find(nodes_[from].links, to);
        mine != nullptr && mine->last_arrival > fin_at) {
      fin_at = mine->last_arrival;
    }
    Event ev;
    ev.at = fin_at + config_.failure_detect_delay;
    ev.kind = EventKind::kLinkClosed;
    ev.node = to;
    ev.peer = from;
    ev.link_gen = remote_side->gen;
    push_event(ev);
  }
  link_remove(nodes_[from].links, to);
}

void Simulator::do_schedule(std::uint32_t node, Duration delay,
                            membership::TaskCallback fn) {
  HPV_CHECK(delay >= 0);
  Event ev;
  ev.kind = EventKind::kTask;
  ev.at = now_ + delay;
  ev.node = node;
  ev.payload = tasks_.put(std::move(fn));
  push_event(ev);
}

void Simulator::push_event(Event ev) {
  ev.seq = next_seq_++;
  queue_.push(ev);
}

void Simulator::dispatch(Event& ev) {
  SimNode& node = nodes_[ev.node];
  switch (ev.kind) {
    case EventKind::kDeliver: {
      if (!node.alive) {
        // Target crashed while the message was in flight: the sender's TCP
        // stack notices (RST / timeout) and reports the failure. The
        // payload slot transfers to the failure event untouched.
        if (nodes_[ev.peer].alive) {
          link_remove(nodes_[ev.peer].links, ev.node);
          link_remove(node.links, ev.peer);
          Event fail;
          fail.kind = EventKind::kSendFailed;
          fail.at = now_ + config_.failure_detect_delay;
          fail.node = ev.peer;
          fail.peer = ev.node;
          fail.payload = ev.payload;
          push_event(fail);
        } else {
          messages_.release(ev.payload);
        }
        return;
      }
      if (node.blocked) {
        // Slow consumer (§5.5): buffer up to the per-sender flow-control
        // window, then fail back to the sender as if the node had crashed.
        std::size_t from_sender = 0;
        for (const auto& queued : node.inbox) {
          if (queued.from == ev.peer && !queued.is_close) ++from_sender;
        }
        if (from_sender < config_.link_send_buffer) {
          if (node.inbox.capacity() == 0) {
            node.inbox.reserve(config_.link_send_buffer);
          }
          node.inbox.push_back(QueuedMessage{
              ev.peer, messages_.take(ev.payload), /*is_close=*/false});
          return;
        }
        if (nodes_[ev.peer].alive) {
          link_remove(nodes_[ev.peer].links, ev.node);
          link_remove(node.links, ev.peer);
          Event fail;
          fail.kind = EventKind::kSendFailed;
          fail.at = now_ + config_.failure_detect_delay;
          fail.node = ev.peer;
          fail.peer = ev.node;
          fail.payload = ev.payload;
          push_event(fail);
        } else {
          messages_.release(ev.payload);
        }
        return;
      }
      ++delivered_total_;
      // Move the payload out before the upcall: the handler's own sends may
      // grow the slab, and the recycled slot must not alias the message the
      // handler is still reading.
      wire::Message msg = messages_.take(ev.payload);
      if (node.handler != nullptr) {
        node.handler->deliver(NodeId::from_index(ev.peer), msg);
      }
      return;
    }
    case EventKind::kSendFailed: {
      ++send_failures_;
      wire::Message msg = messages_.take(ev.payload);
      if (!node.alive) return;
      if (node.handler != nullptr) {
        node.handler->send_failed(NodeId::from_index(ev.peer), msg);
      }
      return;
    }
    case EventKind::kConnectResult: {
      membership::ConnectCallback cb = connects_.take(ev.payload);
      if (!node.alive) return;
      const bool ok = nodes_[ev.peer].alive;
      if (ok && !link_has(node.links, ev.peer)) {
        link_add(node.links, ev.peer);
        link_add(nodes_[ev.peer].links, ev.node);
        ++connections_opened_;
      }
      if (cb) cb(ok);
      return;
    }
    case EventKind::kTask: {
      membership::TaskCallback task = tasks_.take(ev.payload);
      // Frozen applications miss their timers (they fire into a stuck
      // process); dead ones are gone.
      if (!node.alive || node.blocked) return;
      if (task) task();
      return;
    }
    case EventKind::kLinkClosed: {
      if (!node.alive) return;
      // ev.ok marks a forced replay from a drained inbox; otherwise the
      // notification only fires if our side of *that* link instance is
      // still open (close-vs-close races resolve silently, like mutual
      // FINs, and reconnections have a fresh generation).
      if (!ev.ok) {
        const Link* side = link_find(node.links, ev.peer);
        if (side == nullptr || side->gen != ev.link_gen) return;
        link_remove(node.links, ev.peer);
      }
      if (node.blocked) {
        node.inbox.push_back(QueuedMessage{ev.peer, {}, /*is_close=*/true});
        return;
      }
      if (node.handler != nullptr) {
        node.handler->link_closed(NodeId::from_index(ev.peer));
      }
      return;
    }
  }
}

Duration Simulator::draw_latency() {
  if (config_.latency_max == config_.latency_min) return config_.latency_min;
  return config_.latency_min +
         static_cast<Duration>(latency_rng_.below(static_cast<std::uint64_t>(
             config_.latency_max - config_.latency_min + 1)));
}

TimePoint Simulator::arrival_time(Link& link) {
  TimePoint at = now_ + draw_latency();
  if (link.last_arrival > at) at = link.last_arrival;
  link.last_arrival = at;
  return at;
}

Simulator::Link& Simulator::link_add(std::vector<Link>& links,
                                     std::uint32_t peer) {
  if (Link* existing = link_find(links, peer); existing != nullptr) {
    return *existing;
  }
  if (links.capacity() == 0) links.reserve(8);
  links.push_back(Link{peer, next_link_gen_++, /*last_arrival=*/0});
  return links.back();
}

void Simulator::link_remove(std::vector<Link>& links, std::uint32_t peer) {
  const auto it =
      std::find_if(links.begin(), links.end(),
                   [&](const Link& l) { return l.peer == peer; });
  if (it != links.end()) {
    *it = links.back();
    links.pop_back();
  }
}

Simulator::Link* Simulator::link_find(std::vector<Link>& links,
                                      std::uint32_t peer) {
  const auto it =
      std::find_if(links.begin(), links.end(),
                   [&](const Link& l) { return l.peer == peer; });
  return it == links.end() ? nullptr : &*it;
}

const Simulator::Link* Simulator::link_find(const std::vector<Link>& links,
                                            std::uint32_t peer) {
  const auto it =
      std::find_if(links.begin(), links.end(),
                   [&](const Link& l) { return l.peer == peer; });
  return it == links.end() ? nullptr : &*it;
}

bool Simulator::link_has(const std::vector<Link>& links, std::uint32_t peer) {
  return link_find(links, peer) != nullptr;
}

}  // namespace hyparview::sim
