// Open-addressing hash map for the simulation hot paths.
//
// The standard-library node-based containers allocate per element and chase
// a pointer per lookup; the three hottest lookup structures in the harness
// (the simulator's per-node link tables, the gossip dedup window and the
// broadcast recorder's message index) want neither. FlatMap keeps
// {key, value, occupied} triples in one contiguous power-of-two slab with
// linear probing and backward-shift deletion, so:
//
//   * find/insert/erase touch one cache line in the common case;
//   * erase leaves no tombstones — probe chains never degrade over the
//     lifetime of a long simulation;
//   * reserve() pre-sizes the slab, after which no operation allocates
//     until the size exceeds the reserved capacity (the zero-allocation
//     steady state bench/micro_sim_events enforces in CI).
//
// Keys are unsigned integers (node indices, message ids). Values must be
// trivially copyable-ish (they are moved on rehash and slid on erase).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "hyparview/common/assert.hpp"

namespace hyparview {

template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_unsigned_v<Key>, "FlatMap keys are unsigned integers");

 public:
  FlatMap() = default;

  /// Pre-sizes the slab for at least `n` entries without rehashing.
  void reserve(std::size_t n) {
    if (n <= capacity()) return;
    rehash(slots_for(n));
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Entries insertable before the next rehash.
  [[nodiscard]] std::size_t capacity() const {
    // Max load factor 7/8: linear probe chains stay short and the growth
    // check below is a shift+compare.
    return slots_.empty() ? 0 : slots_.size() - slots_.size() / 8;
  }

  [[nodiscard]] Value* find(Key key) {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = index_of(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
    }
  }

  [[nodiscard]] const Value* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  /// Inserts key → value only if the key is absent; one probe walk answers
  /// both the membership test and the insertion point (the hot-path shape
  /// of DedupWindow::remember). Returns true if inserted.
  bool try_insert(Key key, Value value) {
    if (size_ + 1 > capacity()) rehash(slots_.empty() ? 16 : slots_.size() * 2);
    for (std::size_t i = index_of(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = std::move(value);
        ++size_;
        return true;
      }
      if (s.key == key) return false;
    }
  }

  /// Inserts key → value; overwrites the value if the key exists.
  /// Returns a reference valid until the next insert/erase.
  Value& insert(Key key, Value value) {
    if (size_ + 1 > capacity()) rehash(slots_.empty() ? 16 : slots_.size() * 2);
    for (std::size_t i = index_of(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = std::move(value);
        ++size_;
        return s.value;
      }
      if (s.key == key) {
        s.value = std::move(value);
        return s.value;
      }
    }
  }

  /// Removes the key if present (backward-shift: no tombstones).
  bool erase(Key key) {
    if (slots_.empty()) return false;
    std::size_t i = index_of(key);
    while (true) {
      if (!slots_[i].used) return false;
      if (slots_[i].key == key) break;
      i = next(i);
    }
    // Slide the rest of the probe chain back over the hole so every
    // surviving entry stays reachable from its home slot.
    std::size_t hole = i;
    for (std::size_t j = next(i); slots_[j].used; j = next(j)) {
      const std::size_t home = index_of(slots_[j].key);
      // Move j into the hole unless j's home lies strictly after the hole
      // (cyclically): distance(home → j) >= distance(hole → j).
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole].used = false;
    slots_[hole].value = Value{};
    --size_;
    return true;
  }

  /// Drops all entries, keeping the slab (no shrink, no allocation).
  void clear() {
    for (Slot& s : slots_) {
      s.used = false;
      s.value = Value{};
    }
    size_ = 0;
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  [[nodiscard]] static std::size_t slots_for(std::size_t n) {
    // Smallest power of two whose 7/8 load bound holds n entries.
    std::size_t slots = 16;
    while (slots - slots / 8 < n) slots *= 2;
    return slots;
  }

  [[nodiscard]] std::size_t index_of(Key key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) & mask_;
  }

  /// 64-bit finalizer (murmur3/splitmix style): dense keys (node indices,
  /// sequential message ids) spread over the whole table.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
  }

  void rehash(std::size_t new_slots) {
    HPV_ASSERT((new_slots & (new_slots - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) insert(s.key, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hyparview
