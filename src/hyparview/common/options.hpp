// Environment-variable and command-line configuration helpers.
//
// Benches and examples read scale knobs (HPV_NODES, HPV_RUNS, ...) from the
// environment so the same binaries serve quick smoke runs and paper-scale
// reproductions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hyparview {

[[nodiscard]] std::optional<std::string> env_string(const char* name);
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] bool env_flag(const char* name, bool fallback = false);

/// Tiny `--key=value` / `--flag` parser for examples and benches.
/// Positional arguments are collected in order.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hyparview
