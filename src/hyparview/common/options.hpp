// Environment-variable and command-line configuration helpers.
//
// Benches and examples read scale knobs (HPV_NODES, HPV_RUNS, ...) from the
// environment so the same binaries serve quick smoke runs and paper-scale
// reproductions.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hyparview {

[[nodiscard]] std::optional<std::string> env_string(const char* name);

// Numeric readers distinguish three cases: unset/malformed input falls back
// (the historical contract smoke scripts rely on), but *out-of-range* input —
// strtoll/strtod saturating with errno==ERANGE, or a non-finite double —
// throws CheckError naming the variable. Saturation used to pass the
// `*end=='\0'` check, so HPV_THREADS=99999999999999999999 silently became
// LLONG_MAX; a value the caller typed but we cannot represent must fail
// loudly, not misconfigure the run.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] bool env_flag(const char* name, bool fallback = false);

/// Tiny `--key=value` / `--flag` parser for examples and benches.
/// Positional arguments are collected in order.
///
/// Numeric getters follow the env_* contract: absent/malformed → fallback,
/// out-of-range → CheckError naming the flag. Call check_known() after
/// construction so a typo (`--backnd=tcp`) aborts instead of silently
/// running defaults.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// Every `--flag` seen on the command line, in order.
  [[nodiscard]] const std::vector<std::string>& flags() const {
    return flags_;
  }
  /// Throws CheckError naming the first flag (in command-line order, so the
  /// message is deterministic) that is not in `known`.
  void check_known(std::initializer_list<std::string_view> known) const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hyparview
