// Small-buffer-optimized callable wrapper (allocation-free std::function).
//
// The simulator schedules millions of timer tasks and connect callbacks per
// experiment; wrapping each in std::function costs a heap allocation once the
// capture exceeds the (implementation-defined, tiny) SBO of the standard
// library. InplaceFunction stores the callable inline in a fixed buffer and
// *refuses to compile* when it does not fit, so scheduling is allocation-free
// by construction, not by luck.
//
// Differences from std::function, all deliberate:
//  * move-only (captured state like pending connect callbacks is moved, never
//    shared);
//  * no heap fallback: a callable larger than Capacity is a compile error —
//    raise the capacity at the use site instead of silently allocating;
//  * callables must be nothrow-move-constructible (moves happen inside the
//    event queue's sift operations, which must not throw mid-swap).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hyparview {

namespace detail {

/// Dispatch table shared by every InplaceFunction of one signature. Defined
/// outside the class so wrappers of different capacities use the *same* table
/// type, making capacity-widening moves a pointer copy plus a relocate.
template <typename R, typename... Args>
struct FunctionOps {
  R (*invoke)(void*, Args&&...);
  /// Move-construct into `to` and destroy the source (one table slot instead
  /// of separate move + destroy keeps the table small).
  void (*relocate)(void* from, void* to);
  void (*destroy)(void*);

  template <typename D>
  static constexpr FunctionOps for_type() {
    return FunctionOps{
        [](void* obj, Args&&... args) -> R {
          return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
        },
        [](void* from, void* to) {
          D* src = static_cast<D*>(from);
          ::new (to) D(std::move(*src));
          src->~D();
        },
        [](void* obj) { static_cast<D*>(obj)->~D(); },
    };
  }

  template <typename D>
  static constexpr FunctionOps table = for_type<D>();
};

}  // namespace detail

inline constexpr std::size_t kInplaceFunctionDefaultCapacity = 48;

template <typename Signature,
          std::size_t Capacity = kInplaceFunctionDefaultCapacity>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
  using Ops = detail::FunctionOps<R, Args...>;

 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "callable too large for InplaceFunction buffer; raise the "
                  "Capacity parameter at the declaration site");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable over-aligned for InplaceFunction buffer");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callable must be nothrow-move-constructible (it is moved "
                  "inside the event queue)");
    ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
    ops_ = &Ops::template table<D>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buffer_, buffer_);
      other.ops_ = nullptr;
    }
  }

  /// Widening move: adopt a smaller-capacity wrapper. The dispatch table is
  /// capacity-independent, so this is a relocate, not a re-wrap.
  template <std::size_t C, typename = std::enable_if_t<(C < Capacity)>>
  InplaceFunction(InplaceFunction<R(Args...), C>&& other) noexcept  // NOLINT
      : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buffer_, buffer_);
      other.ops_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buffer_, buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

 private:
  template <typename, std::size_t>
  friend class InplaceFunction;

  alignas(std::max_align_t) unsigned char buffer_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace hyparview
