#include "hyparview/common/options.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "hyparview/common/assert.hpp"

namespace hyparview {
namespace {

// Shared by the env_* readers and ArgParser getters. Malformed text keeps the
// historical fall-back contract; out-of-range text throws, because strtoll/
// strtod *saturate* on overflow (LLONG_MAX / ±HUGE_VAL with errno==ERANGE)
// while still passing the `*end=='\0'` shape check — the one failure mode a
// caller cannot detect after the fact.

enum class Parse : std::uint8_t { kOk, kMalformed, kOutOfRange };

Parse parse_int(const char* text, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return Parse::kMalformed;
  if (errno == ERANGE) return Parse::kOutOfRange;
  out = parsed;
  return Parse::kOk;
}

Parse parse_double(const char* text, double& out) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(text, &end);
  if (end == text || *end != '\0') return Parse::kMalformed;
  // ERANGE covers overflow-to-inf and underflow-to-0/denormal; an explicit
  // "inf"/"nan" literal parses cleanly with errno==0, so check finiteness too
  // (no experiment knob means infinity).
  if (errno == ERANGE || !std::isfinite(parsed)) return Parse::kOutOfRange;
  out = parsed;
  return Parse::kOk;
}

[[noreturn]] void throw_out_of_range(const char* what, const std::string& name,
                                     const std::string& text) {
  throw CheckError(std::string(what) + " " + name + ": value out of range: '" +
                   text + "'");
}

}  // namespace

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  std::int64_t parsed = 0;
  switch (parse_int(v->c_str(), parsed)) {
    case Parse::kOk: return parsed;
    case Parse::kMalformed: return fallback;
    case Parse::kOutOfRange: throw_out_of_range("env var", name, *v);
  }
  return fallback;
}

double env_double(const char* name, double fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  double parsed = 0.0;
  switch (parse_double(v->c_str(), parsed)) {
    case Parse::kOk: return parsed;
    case Parse::kMalformed: return fallback;
    case Parse::kOutOfRange: throw_out_of_range("env var", name, *v);
  }
  return fallback;
}

bool env_flag(const char* name, bool fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const char* body = arg + 2;
    const char* eq = std::strchr(body, '=');
    std::string key = eq != nullptr
                          ? std::string(body, static_cast<std::size_t>(eq - body))
                          : std::string(body);
    flags_.push_back(key);
    values_[std::move(key)] = eq != nullptr ? eq + 1 : "1";
  }
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t parsed = 0;
  switch (parse_int(it->second.c_str(), parsed)) {
    case Parse::kOk: return parsed;
    case Parse::kMalformed: return fallback;
    case Parse::kOutOfRange: throw_out_of_range("flag", "--" + key, it->second);
  }
  return fallback;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double parsed = 0.0;
  switch (parse_double(it->second.c_str(), parsed)) {
    case Parse::kOk: return parsed;
    case Parse::kMalformed: return fallback;
    case Parse::kOutOfRange: throw_out_of_range("flag", "--" + key, it->second);
  }
  return fallback;
}

bool ArgParser::has(const std::string& key) const {
  return values_.contains(key);
}

void ArgParser::check_known(
    std::initializer_list<std::string_view> known) const {
  // flags_ preserves command-line order, so the flag named in the error is
  // deterministic (iterating values_ would not be).
  for (const std::string& flag : flags_) {
    bool ok = false;
    for (const std::string_view k : known) {
      if (flag == k) {
        ok = true;
        break;
      }
    }
    HPV_CHECK_THROW(ok, "unknown flag --" + flag +
                            " (known flags are fixed; check for typos)");
  }
}

}  // namespace hyparview
