#include "hyparview/common/options.hpp"

#include <cstdlib>
#include <cstring>

namespace hyparview {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

double env_double(const char* name, double fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool env_flag(const char* name, bool fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const char* body = arg + 2;
    const char* eq = std::strchr(body, '=');
    if (eq != nullptr) {
      values_[std::string(body, static_cast<std::size_t>(eq - body))] = eq + 1;
    } else {
      values_[body] = "1";
    }
  }
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return parsed;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return parsed;
}

bool ArgParser::has(const std::string& key) const {
  return values_.contains(key);
}

}  // namespace hyparview
