#include "hyparview/common/logging.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <atomic>

namespace hyparview {
namespace {

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{-1};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(parse_level(std::getenv("HPV_LOG")));
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_write(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[hpv %s] %s\n", level_tag(level), buf);
}

}  // namespace hyparview
