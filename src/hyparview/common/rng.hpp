// Deterministic random number generation.
//
// Every experiment in the repo is reproducible from a single master seed.
// The master seed is expanded with splitmix64 into independent per-node
// streams (xoshiro256**), so results do not depend on the order in which
// nodes happen to draw numbers relative to each other.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hyparview/common/assert.hpp"

namespace hyparview {

/// splitmix64: used for seeding and hashing, not as the main generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for everything else.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    HPV_ASSERT(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    HPV_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) { return unit() < p; }

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    HPV_ASSERT(!items.empty());
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[static_cast<std::size_t>(below(i))]);
    }
  }

  /// Uniform sample of min(k, |items|) distinct elements, order randomized.
  /// Delegates to sample_into(), so both APIs draw the identical number
  /// stream by construction (fixed-seed results are interchangeable).
  template <typename T>
  std::vector<T> sample(std::span<const T> items, std::size_t k) {
    std::vector<T> out;
    sample_into(items, k, out);
    return out;
  }

  template <typename T>
  std::vector<T> sample(const std::vector<T>& items, std::size_t k) {
    return sample(std::span<const T>(items), k);
  }

  /// sample() into a caller-provided vector (reused capacity, no allocation
  /// in steady state).
  template <typename T>
  void sample_into(std::span<const T> items, std::size_t k,
                   std::vector<T>& out) {
    out.assign(items.begin(), items.end());
    if (k >= out.size()) {
      shuffle(out);
      return;
    }
    // Partial Fisher–Yates: the first k slots end up a uniform sample.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(below(out.size() - i));
      using std::swap;
      swap(out[i], out[j]);
    }
    out.resize(k);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Derives the seed for stream `stream` of experiment `master`.
/// Distinct (master, stream) pairs give statistically independent streams.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t master,
                                               std::uint64_t stream) {
  SplitMix64 sm(master ^ (0xa0761d6478bd642full * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace hyparview
