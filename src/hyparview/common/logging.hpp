// Minimal leveled logger.
//
// Hot paths guard every call with `if (log_enabled(level))` so disabled
// logging costs a single predictable branch. The level is read once from the
// HPV_LOG environment variable (error|warn|info|debug|trace) and defaults to
// warn.
#pragma once

#include <cstdio>
#include <string>

namespace hyparview {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Global log level, initialized from HPV_LOG on first use.
[[nodiscard]] LogLevel log_level();

/// Overrides the global level (tests).
void set_log_level(LogLevel level);

[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// printf-style log statement; prepends level tag and newline-terminates.
void log_write(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace hyparview

#define HPV_LOG(level, ...)                          \
  do {                                               \
    if (::hyparview::log_enabled(level)) {           \
      ::hyparview::log_write(level, __VA_ARGS__);    \
    }                                                \
  } while (0)

#define HPV_LOG_ERROR(...) HPV_LOG(::hyparview::LogLevel::kError, __VA_ARGS__)
#define HPV_LOG_WARN(...) HPV_LOG(::hyparview::LogLevel::kWarn, __VA_ARGS__)
#define HPV_LOG_INFO(...) HPV_LOG(::hyparview::LogLevel::kInfo, __VA_ARGS__)
#define HPV_LOG_DEBUG(...) HPV_LOG(::hyparview::LogLevel::kDebug, __VA_ARGS__)
#define HPV_LOG_TRACE(...) HPV_LOG(::hyparview::LogLevel::kTrace, __VA_ARGS__)
