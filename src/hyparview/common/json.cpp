#include "hyparview/common/json.hpp"

#include <fstream>
#include <sstream>

namespace hyparview::json {

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HPV_CHECK_THROW(in.is_open(), "json: cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  HPV_CHECK_THROW(!in.bad(), "json: read error: " + path);
  try {
    return Value::parse(buf.str());
  } catch (const CheckError& e) {
    throw CheckError(path + ": " + e.what());
  }
}

}  // namespace hyparview::json
