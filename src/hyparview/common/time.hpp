// Time representation shared by the simulator and the TCP event loop.
//
// Simulated and wall-clock time are both expressed as microsecond ticks so
// protocol code can be written once against the Env interface.
#pragma once

#include <cstdint>

namespace hyparview {

/// Microseconds since the start of the simulation / process epoch.
using TimePoint = std::int64_t;

/// Microsecond duration.
using Duration = std::int64_t;

inline constexpr Duration microseconds(std::int64_t n) { return n; }
inline constexpr Duration milliseconds(std::int64_t n) { return n * 1000; }
inline constexpr Duration seconds(std::int64_t n) { return n * 1000 * 1000; }

}  // namespace hyparview
