// Binary wire serialization primitives.
//
// Little-endian, length-delimited framing is done by the transport; these
// classes read/write the payload bytes. The reader validates every access so
// malformed frames from the network surface as CheckError instead of UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/node_id.hpp"

namespace hyparview {

class BinaryWriter {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

  /// Pre-sizes the buffer: with ByteCounter/encoded_size() the exact frame
  /// size is known before encoding, so a frame can be built in a single
  /// allocation (the TCP transport's framing path).
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { append(&v, sizeof(v)); }
  void u32(std::uint32_t v) { append(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append(&v, sizeof(v)); }
  void i64(std::int64_t v) { append(&v, sizeof(v)); }

  void node_id(const NodeId& id) {
    u32(id.ip);
    u16(id.port);
  }

  void node_ids(std::span<const NodeId> ids) {
    HPV_CHECK(ids.size() <= 0xFFFF);
    u16(static_cast<std::uint16_t>(ids.size()));
    for (const auto& id : ids) node_id(id);
  }

  void str(const std::string& s) {
    HPV_CHECK(s.size() <= 0xFFFFFFFF);
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  void blob(std::span<const std::uint8_t> data) {
    HPV_CHECK(data.size() <= 0xFFFFFFFF);
    u32(static_cast<std::uint32_t>(data.size()));
    append(data.data(), data.size());
  }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Drop-in replacement for BinaryWriter that only counts bytes. Lets
/// serialization code compute exact frame sizes (overhead accounting)
/// without allocating.
class ByteCounter {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }

  void u8(std::uint8_t) { size_ += 1; }
  void u16(std::uint16_t) { size_ += 2; }
  void u32(std::uint32_t) { size_ += 4; }
  void u64(std::uint64_t) { size_ += 8; }
  void i64(std::int64_t) { size_ += 8; }

  void node_id(const NodeId&) { size_ += 6; }

  void node_ids(std::span<const NodeId> ids) {
    HPV_CHECK(ids.size() <= 0xFFFF);
    size_ += 2 + 6 * ids.size();
  }

  void str(const std::string& s) {
    HPV_CHECK(s.size() <= 0xFFFFFFFF);
    size_ += 4 + s.size();
  }

  void blob(std::span<const std::uint8_t> data) {
    HPV_CHECK(data.size() <= 0xFFFFFFFF);
    size_ += 4 + data.size();
  }

 private:
  std::size_t size_ = 0;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t u16() { return read_raw<std::uint16_t>(); }
  std::uint32_t u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t u64() { return read_raw<std::uint64_t>(); }
  std::int64_t i64() { return read_raw<std::int64_t>(); }

  NodeId node_id() {
    NodeId id;
    id.ip = u32();
    id.port = u16();
    return id;
  }

  // Note: there is deliberately no vector-returning list reader here. Wire
  // lists are bounded (wire::FlatList); decoding goes through the
  // capacity-checked read_node_list/read_aged_list helpers in wire.cpp so
  // an attacker-controlled count can never size an allocation.

  std::string str() {
    const std::size_t n = u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> blob() {
    const std::size_t n = u32();
    require(n);
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

 private:
  template <typename T>
  T read_raw() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    HPV_CHECK_THROW(pos_ + n <= data_.size(),
                    "BinaryReader: truncated frame");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace hyparview
