// Node identifiers.
//
// A node is addressed by an (ipv4, port) pair, exactly as in the paper
// ("typically, an identifier is a tuple (ip, port)").  The simulator uses
// synthetic addresses where `ip` is the node index and `port` is 0; the TCP
// transport uses real loopback/interface addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace hyparview {

struct NodeId {
  std::uint32_t ip = 0;    ///< IPv4 address in host byte order (or sim index).
  std::uint16_t port = 0;  ///< TCP listen port (0 for simulated nodes).

  friend constexpr bool operator==(const NodeId&, const NodeId&) = default;
  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;

  /// Packs the id into a single integer; useful as a hash/map key.
  [[nodiscard]] constexpr std::uint64_t raw() const {
    return (static_cast<std::uint64_t>(ip) << 16) | port;
  }

  /// "a.b.c.d:port" for real addresses, "#index" for simulated ones.
  [[nodiscard]] std::string to_string() const;

  /// Parses either the "#index" or the "a.b.c.d:port" form.
  [[nodiscard]] static NodeId parse(const std::string& text);

  /// Convenience constructor for simulator node indices.
  [[nodiscard]] static constexpr NodeId from_index(std::uint32_t index) {
    return NodeId{index, 0};
  }
};

/// Sentinel "no node" value (index 0xFFFFFFFF, port 0xFFFF is never valid).
inline constexpr NodeId kNoNode{0xFFFFFFFFu, 0xFFFFu};

struct NodeIdHash {
  std::size_t operator()(const NodeId& id) const noexcept {
    // splitmix64 finalizer: cheap and well distributed for sequential ids.
    std::uint64_t x = id.raw();
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

}  // namespace hyparview
