// Minimal deterministic JSON parser/writer (header-only, stdlib-only).
//
// Built for the data-driven experiment layer (harness/spec_json.hpp) and the
// live stats export: experiment specs load from committed .json files and the
// stats endpoint serializes snapshots, so the codec must exist without a
// third-party dependency and must be *deterministic*:
//
//  * object members keep insertion order (a std::vector of pairs, never a
//    hash map), so dump() output is byte-stable across runs and platforms;
//  * numbers go through std::to_chars / std::from_chars — locale-free by
//    specification, shortest-round-trip for doubles — never printf/strtod,
//    whose decimal point follows the process locale;
//  * integers and doubles are distinct kinds: a spec's `"seed": 42` survives
//    a round trip as exactly 42, not 42.0 (and integer overflow is a parse
//    error, not a silent saturation).
//
// The grammar is RFC 8259 minus nothing the specs need: null/bool/number/
// string/array/object, \uXXXX escapes (BMP; surrogate pairs supported),
// nesting bounded by kMaxDepth. Parse errors throw CheckError with a line
// number and what was expected.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "hyparview/common/assert.hpp"

namespace hyparview::json {

class Value;

/// Insertion-ordered object representation: deterministic iteration and
/// byte-stable serialization (see file header). Lookup is a linear scan —
/// spec objects hold tens of keys, not thousands.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Value>;
  using Object = std::vector<Member>;

  Value() : data_(std::monostate{}) {}
  Value(std::nullptr_t) : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}
  Value(std::int64_t i) : data_(i) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned int i) : data_(static_cast<std::int64_t>(i)) {}
  // size_t / uint64_t counts are ubiquitous in the configs; values above
  // int64 range do not occur in practice (and would not round-trip JSON).
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] static Value array() { return Value(Array{}); }
  [[nodiscard]] static Value object() { return Value(Object{}); }

  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(data_.index());
  }
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind() == Kind::kInt; }
  [[nodiscard]] bool is_double() const { return kind() == Kind::kDouble; }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return kind() == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind() == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind() == Kind::kObject; }

  [[nodiscard]] bool as_bool() const {
    HPV_CHECK_THROW(is_bool(), "json: value is not a bool");
    return std::get<bool>(data_);
  }
  [[nodiscard]] std::int64_t as_int() const {
    HPV_CHECK_THROW(is_int(), "json: value is not an integer");
    return std::get<std::int64_t>(data_);
  }
  /// Any number as a double (ints convert).
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
    HPV_CHECK_THROW(is_double(), "json: value is not a number");
    return std::get<double>(data_);
  }
  [[nodiscard]] const std::string& as_string() const {
    HPV_CHECK_THROW(is_string(), "json: value is not a string");
    return std::get<std::string>(data_);
  }
  [[nodiscard]] const Array& as_array() const {
    HPV_CHECK_THROW(is_array(), "json: value is not an array");
    return std::get<Array>(data_);
  }
  [[nodiscard]] Array& as_array() {
    HPV_CHECK_THROW(is_array(), "json: value is not an array");
    return std::get<Array>(data_);
  }
  [[nodiscard]] const Object& as_object() const {
    HPV_CHECK_THROW(is_object(), "json: value is not an object");
    return std::get<Object>(data_);
  }
  [[nodiscard]] Object& as_object() {
    HPV_CHECK_THROW(is_object(), "json: value is not an object");
    return std::get<Object>(data_);
  }

  /// Object member by key, or nullptr (first match; parse rejects
  /// duplicates, so members are unique in parsed documents).
  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const Member& m : as_object()) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }

  /// Appends a member (objects) — the builder-side API. The value is
  /// constructed in place inside the member pair: no temporary Value is
  /// moved through the pair constructor, which also sidesteps GCC 12's
  /// std::variant -Wmaybe-uninitialized false positive on such moves.
  template <typename T>
  Value& set(std::string key, T&& v) {
    as_object().emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(std::move(key)),
                             std::forward_as_tuple(std::forward<T>(v)));
    return *this;
  }
  /// Appends an element (arrays).
  Value& push_back(Value v) {
    as_array().push_back(std::move(v));
    return *this;
  }

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

  // --- Serialization ---------------------------------------------------------

  /// Compact when indent == 0; pretty-printed (2-space, one member per
  /// line) when indent > 0. Output is byte-stable: insertion order, shortest
  /// round-trip numbers, no locale.
  [[nodiscard]] std::string dump(int indent = 0) const {
    std::string out;
    write(out, indent, 0);
    if (indent > 0) out.push_back('\n');
    return out;
  }

  // --- Parsing ---------------------------------------------------------------

  /// Parses exactly one JSON document (trailing non-whitespace is an
  /// error). Throws CheckError with a line number on malformed input.
  [[nodiscard]] static Value parse(std::string_view text) {
    Parser p(text);
    Value v = p.parse_value(0);
    p.skip_ws();
    HPV_CHECK_THROW(p.at_end(),
                    "json: trailing garbage after document (line " +
                        std::to_string(p.line()) + ")");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  class Parser {
   public:
    explicit Parser(std::string_view text) : text_(text) {}

    [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
    [[nodiscard]] int line() const { return line_; }

    void skip_ws() {
      while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if (c == '\n') ++line_;
        if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
        ++pos_;
      }
    }

    Value parse_value(int depth) {
      HPV_CHECK_THROW(depth < kMaxDepth, "json: nesting too deep");
      skip_ws();
      HPV_CHECK_THROW(!at_end(), err("value"));
      switch (text_[pos_]) {
        case '{': return parse_object(depth);
        case '[': return parse_array(depth);
        case '"': return Value(parse_string());
        case 't': expect_word("true"); return Value(true);
        case 'f': expect_word("false"); return Value(false);
        case 'n': expect_word("null"); return Value(nullptr);
        default: return parse_number();
      }
    }

   private:
    [[nodiscard]] std::string err(const char* expected) const {
      return std::string("json: expected ") + expected + " at line " +
             std::to_string(line_);
    }

    void expect(char c, const char* what) {
      skip_ws();
      HPV_CHECK_THROW(pos_ < text_.size() && text_[pos_] == c, err(what));
      ++pos_;
    }

    void expect_word(std::string_view word) {
      HPV_CHECK_THROW(text_.substr(pos_, word.size()) == word,
                      err("true/false/null"));
      pos_ += word.size();
    }

    Value parse_object(int depth) {
      expect('{', "'{'");
      Value obj = Value::object();
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return obj;
      }
      while (true) {
        skip_ws();
        HPV_CHECK_THROW(pos_ < text_.size() && text_[pos_] == '"',
                        err("object key string"));
        std::string key = parse_string();
        HPV_CHECK_THROW(obj.find(key) == nullptr,
                        "json: duplicate object key '" + key + "' (line " +
                            std::to_string(line_) + ")");
        expect(':', "':' after object key");
        obj.as_object().emplace_back(std::move(key),
                                     parse_value(depth + 1));
        skip_ws();
        HPV_CHECK_THROW(pos_ < text_.size(), err("',' or '}'"));
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return obj;
        }
        HPV_CHECK_THROW(false, err("',' or '}'"));
      }
    }

    Value parse_array(int depth) {
      expect('[', "'['");
      Value arr = Value::array();
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return arr;
      }
      while (true) {
        arr.as_array().push_back(parse_value(depth + 1));
        skip_ws();
        HPV_CHECK_THROW(pos_ < text_.size(), err("',' or ']'"));
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return arr;
        }
        HPV_CHECK_THROW(false, err("',' or ']'"));
      }
    }

    std::string parse_string() {
      HPV_CHECK_THROW(pos_ < text_.size() && text_[pos_] == '"',
                      err("string"));
      ++pos_;
      std::string out;
      while (true) {
        HPV_CHECK_THROW(pos_ < text_.size(), err("closing '\"'"));
        const char c = text_[pos_++];
        if (c == '"') return out;
        HPV_CHECK_THROW(static_cast<unsigned char>(c) >= 0x20,
                        "json: unescaped control character in string (line " +
                            std::to_string(line_) + ")");
        if (c != '\\') {
          out.push_back(c);
          continue;
        }
        HPV_CHECK_THROW(pos_ < text_.size(), err("escape character"));
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': append_unicode_escape(out); break;
          default:
            HPV_CHECK_THROW(false, "json: invalid escape '\\" +
                                       std::string(1, esc) + "' (line " +
                                       std::to_string(line_) + ")");
        }
      }
    }

    std::uint32_t parse_hex4() {
      HPV_CHECK_THROW(pos_ + 4 <= text_.size(), err("4 hex digits"));
      std::uint32_t code = 0;
      for (int i = 0; i < 4; ++i) {
        const char h = text_[pos_++];
        code <<= 4;
        if (h >= '0' && h <= '9') {
          code |= static_cast<std::uint32_t>(h - '0');
        } else if (h >= 'a' && h <= 'f') {
          code |= static_cast<std::uint32_t>(h - 'a' + 10);
        } else if (h >= 'A' && h <= 'F') {
          code |= static_cast<std::uint32_t>(h - 'A' + 10);
        } else {
          HPV_CHECK_THROW(false, err("hex digit in \\u escape"));
        }
      }
      return code;
    }

    void append_unicode_escape(std::string& out) {
      std::uint32_t code = parse_hex4();
      if (code >= 0xD800 && code <= 0xDBFF) {
        // High surrogate: a low surrogate must follow.
        HPV_CHECK_THROW(pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                            text_[pos_ + 1] == 'u',
                        err("low surrogate after high surrogate"));
        pos_ += 2;
        const std::uint32_t low = parse_hex4();
        HPV_CHECK_THROW(low >= 0xDC00 && low <= 0xDFFF,
                        "json: invalid surrogate pair (line " +
                            std::to_string(line_) + ")");
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        HPV_CHECK_THROW(!(code >= 0xDC00 && code <= 0xDFFF),
                        "json: lone low surrogate (line " +
                            std::to_string(line_) + ")");
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    }

    Value parse_number() {
      const std::size_t start = pos_;
      if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
      bool is_floating = false;
      while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if (c >= '0' && c <= '9') {
          ++pos_;
        } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
          is_floating = true;
          ++pos_;
        } else {
          break;
        }
      }
      const std::string_view token = text_.substr(start, pos_ - start);
      HPV_CHECK_THROW(!token.empty() && token != "-", err("number"));
      const char* first = token.data();
      const char* last = token.data() + token.size();
      if (!is_floating) {
        std::int64_t i = 0;
        const auto [ptr, ec] = std::from_chars(first, last, i);
        // Overflow (result_out_of_range) is a hard error — the config
        // loaders must never see a silently saturated count.
        HPV_CHECK_THROW(ec == std::errc() && ptr == last,
                        "json: integer out of range or malformed (line " +
                            std::to_string(line_) + ")");
        return Value(i);
      }
      double d = 0.0;
      const auto [ptr, ec] = std::from_chars(first, last, d);
      HPV_CHECK_THROW(ec == std::errc() && ptr == last,
                      "json: malformed or out-of-range number (line " +
                          std::to_string(line_) + ")");
      return Value(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
  };

  static void write_string(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char ch : s) {
      const auto c = static_cast<unsigned char>(ch);
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            constexpr char kHex[] = "0123456789abcdef";
            out += "\\u00";
            out.push_back(kHex[c >> 4]);
            out.push_back(kHex[c & 0xF]);
          } else {
            out.push_back(ch);
          }
      }
    }
    out.push_back('"');
  }

  static void write_number(std::string& out, std::int64_t i) {
    char buf[24];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), i);
    HPV_ASSERT(ec == std::errc());
    out.append(buf, ptr);
  }

  static void write_number(std::string& out, double d) {
    // to_chars is locale-free and emits the shortest representation that
    // round-trips. JSON has no inf/nan tokens; reject instead of emitting
    // an unparsable document.
    HPV_CHECK_THROW(d == d && d <= 1.7976931348623157e308 &&
                        d >= -1.7976931348623157e308,
                    "json: cannot serialize non-finite number");
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    HPV_ASSERT(ec == std::errc());
    std::string_view token(buf, static_cast<std::size_t>(ptr - buf));
    out.append(token);
    // Keep the double-ness visible so a round trip preserves the kind
    // ("2.0" stays a double; bare "2" would re-parse as an integer).
    if (token.find('.') == std::string_view::npos &&
        token.find('e') == std::string_view::npos &&
        token.find('E') == std::string_view::npos) {
      out += ".0";
    }
  }

  void write(std::string& out, int indent, int depth) const {
    const auto newline_pad = [&](int d) {
      if (indent <= 0) return;
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind()) {
      case Kind::kNull: out += "null"; break;
      case Kind::kBool: out += std::get<bool>(data_) ? "true" : "false"; break;
      case Kind::kInt: write_number(out, std::get<std::int64_t>(data_)); break;
      case Kind::kDouble: write_number(out, std::get<double>(data_)); break;
      case Kind::kString: write_string(out, std::get<std::string>(data_)); break;
      case Kind::kArray: {
        const Array& a = std::get<Array>(data_);
        if (a.empty()) {
          out += "[]";
          break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (i > 0) out.push_back(',');
          newline_pad(depth + 1);
          a[i].write(out, indent, depth + 1);
        }
        newline_pad(depth);
        out.push_back(']');
        break;
      }
      case Kind::kObject: {
        const Object& o = std::get<Object>(data_);
        if (o.empty()) {
          out += "{}";
          break;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < o.size(); ++i) {
          if (i > 0) out.push_back(',');
          newline_pad(depth + 1);
          write_string(out, o[i].first);
          out.push_back(':');
          if (indent > 0) out.push_back(' ');
          o[i].second.write(out, indent, depth + 1);
        }
        newline_pad(depth);
        out.push_back('}');
        break;
      }
    }
  }

  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               Array, Object>
      data_;
};

/// Reads a whole file and parses it; errors name the path.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace hyparview::json
