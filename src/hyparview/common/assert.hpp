// Contract-check macros used across the library.
//
// HPV_ASSERT is compiled out in NDEBUG builds and guards internal invariants;
// HPV_CHECK is always on and guards conditions that depend on caller input or
// external state (config files, wire data, sockets).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hyparview {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

/// Thrown by HPV_CHECK_THROW-style validations of external input.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace hyparview

#define HPV_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::hyparview::contract_failure("HPV_CHECK", #expr, __FILE__,      \
                                    __LINE__);                         \
    }                                                                  \
  } while (0)

#define HPV_CHECK_THROW(expr, msg)                 \
  do {                                             \
    if (!(expr)) {                                 \
      throw ::hyparview::CheckError(msg);          \
    }                                              \
  } while (0)

#ifdef NDEBUG
#define HPV_ASSERT(expr) ((void)0)
#else
#define HPV_ASSERT(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hyparview::contract_failure("HPV_ASSERT", #expr, __FILE__,      \
                                    __LINE__);                          \
    }                                                                   \
  } while (0)
#endif
