#include "hyparview/common/node_id.hpp"

#include <cstdio>

#include "hyparview/common/assert.hpp"

namespace hyparview {

std::string NodeId::to_string() const {
  char buf[32];
  if (port == 0) {
    std::snprintf(buf, sizeof(buf), "#%u", ip);
  } else {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xff,
                  (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff, port);
  }
  return buf;
}

NodeId NodeId::parse(const std::string& text) {
  HPV_CHECK_THROW(!text.empty(), "NodeId::parse: empty string");
  if (text[0] == '#') {
    char* end = nullptr;
    const unsigned long idx = std::strtoul(text.c_str() + 1, &end, 10);
    HPV_CHECK_THROW(end != nullptr && *end == '\0' && idx <= 0xFFFFFFFFul,
                    "NodeId::parse: bad index form: " + text);
    return from_index(static_cast<std::uint32_t>(idx));
  }
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  unsigned p = 0;
  const int got = std::sscanf(text.c_str(), "%u.%u.%u.%u:%u", &a, &b, &c, &d, &p);
  HPV_CHECK_THROW(got == 5 && a < 256 && b < 256 && c < 256 && d < 256 && p < 65536,
                  "NodeId::parse: bad address form: " + text);
  return NodeId{(a << 24) | (b << 16) | (c << 8) | d,
                static_cast<std::uint16_t>(p)};
}

}  // namespace hyparview
