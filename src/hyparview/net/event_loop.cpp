#include "hyparview/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>

#include <cerrno>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::net {
namespace {

thread_local const void* t_current_loop = nullptr;

TimePoint monotonic_now() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<TimePoint>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1'000;
}

std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
  HPV_CHECK_THROW(epoll_fd_.valid(), "epoll_create1 failed");
  wake_fd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  HPV_CHECK_THROW(wake_fd_.valid(), "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  HPV_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) ==
            0);
}

EventLoop::~EventLoop() = default;

TimePoint EventLoop::now() const { return monotonic_now(); }

bool EventLoop::in_loop_thread() const {
  return loop_thread_.load(std::memory_order_relaxed) == &t_current_loop ||
         loop_thread_.load(std::memory_order_relaxed) == nullptr;
}

void EventLoop::run() {
  loop_thread_.store(&t_current_loop, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    iterate(next_timeout_ms());
  }
  loop_thread_.store(nullptr, std::memory_order_relaxed);
}

bool EventLoop::run_until(const std::function<bool()>& pred,
                          Duration timeout) {
  loop_thread_.store(&t_current_loop, std::memory_order_relaxed);
  const TimePoint deadline = now() + timeout;
  while (!pred() && now() < deadline) {
    int wait_ms = next_timeout_ms();
    const auto remaining_ms = static_cast<int>((deadline - now()) / 1000);
    if (wait_ms < 0 || wait_ms > remaining_ms) wait_ms = remaining_ms;
    iterate(wait_ms < 1 ? 1 : wait_ms);
  }
  loop_thread_.store(nullptr, std::memory_order_relaxed);
  return pred();
}

void EventLoop::iterate(int timeout_ms) {
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_.get(), events, 64, timeout_ms);
  if (n < 0 && errno != EINTR) {
    HPV_LOG_ERROR("epoll_wait failed: errno=%d", errno);
    return;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_.get()) {
      std::uint64_t value = 0;
      // Drain the eventfd counter; posted tasks run below.
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_.get(), &value, sizeof(value));
      continue;
    }
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // unregistered while queued
    IoHandler* handler = it->second;
    const std::uint32_t mask = events[i].events;
    if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
      handler->on_io_error();
      continue;
    }
    if ((mask & EPOLLIN) != 0) {
      handler->on_readable();
      // The handler may unregister itself while reading.
      if (!handlers_.contains(fd)) continue;
    }
    if ((mask & EPOLLOUT) != 0) handler->on_writable();
  }
  drain_posted();
  fire_due_timers();
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::fire_due_timers() {
  const TimePoint t = now();
  while (!timers_.empty() && timers_.top().deadline <= t) {
    Timer timer = timers_.pop();
    const auto it = timer_alive_.find(timer.id);
    const bool alive = it != timer_alive_.end() && it->second;
    timer_alive_.erase(timer.id);
    if (alive && timer.fn) timer.fn();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 100;  // wake periodically for stop()/posted
  const Duration delta = timers_.top().deadline - now();
  if (delta <= 0) return 0;
  const Duration ms = delta / 1000;
  return ms > 100 ? 100 : static_cast<int>(ms) + 1;
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  post([] {});  // wake
}

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

std::uint64_t EventLoop::schedule(Duration delay, TimerTask fn) {
  HPV_CHECK(delay >= 0);
  Timer timer;
  timer.deadline = now() + delay;
  timer.id = next_timer_id_++;
  timer.fn = std::move(fn);
  timer_alive_[timer.id] = true;
  timers_.push(std::move(timer));
  return next_timer_id_ - 1;
}

void EventLoop::cancel(std::uint64_t timer_id) {
  const auto it = timer_alive_.find(timer_id);
  if (it != timer_alive_.end()) it->second = false;
}

void EventLoop::register_fd(int fd, IoHandler* handler, bool want_read,
                            bool want_write) {
  HPV_CHECK(handler != nullptr);
  handlers_[fd] = handler;
  epoll_event ev{};
  ev.events = epoll_mask(want_read, want_write);
  ev.data.fd = fd;
  HPV_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) == 0);
}

void EventLoop::update_fd(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = epoll_mask(want_read, want_write);
  ev.data.fd = fd;
  HPV_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0);
}

void EventLoop::unregister_fd(int fd) {
  handlers_.erase(fd);
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

}  // namespace hyparview::net
