// Single-threaded epoll event loop with a timer heap and cross-thread task
// posting. All protocol code on the TCP backend runs on the loop thread,
// which keeps the protocol implementations lock-free (the same property the
// simulator gives them).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hyparview/common/function.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/net/fd.hpp"
#include "hyparview/sim/min_heap.hpp"

namespace hyparview::net {

/// Timer callback storage. Allocation-free like membership::TaskCallback but
/// with headroom to absorb a wrapped ConnectCallback (TcpTransport defers
/// connect completions through 0-delay timers).
using TimerTask = InplaceFunction<void(), 96>;

/// Callbacks for a registered file descriptor.
class IoHandler {
 public:
  virtual ~IoHandler() = default;
  virtual void on_readable() = 0;
  virtual void on_writable() = 0;
  /// EPOLLERR / EPOLLHUP. Default: treat as readable so the read path sees
  /// the error from the syscall.
  virtual void on_io_error() { on_readable(); }
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs until stop(). Must be called from exactly one thread.
  void run();

  /// Runs pending work until `pred` returns true or `timeout` elapses.
  /// Returns pred(). For tests and single-threaded drivers.
  bool run_until(const std::function<bool()>& pred, Duration timeout);

  /// Thread-safe: wakes the loop and stops run().
  void stop();

  /// Thread-safe: enqueues fn to execute on the loop thread.
  void post(std::function<void()> fn);

  /// Loop thread only: one-shot timer. Returns an id usable with cancel().
  std::uint64_t schedule(Duration delay, TimerTask fn);
  void cancel(std::uint64_t timer_id);

  /// Loop thread only.
  void register_fd(int fd, IoHandler* handler, bool want_read,
                   bool want_write);
  void update_fd(int fd, bool want_read, bool want_write);
  void unregister_fd(int fd);

  /// Monotonic clock in microseconds.
  [[nodiscard]] TimePoint now() const;

  [[nodiscard]] bool in_loop_thread() const;

 private:
  struct Timer {
    TimePoint deadline = 0;
    std::uint64_t id = 0;
    TimerTask fn;
  };
  struct TimerLess {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.id < b.id;
    }
  };

  void iterate(int timeout_ms);
  void drain_posted();
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms() const;

  Fd epoll_fd_;
  Fd wake_fd_;  // eventfd
  std::atomic<bool> stop_{false};
  std::atomic<const void*> loop_thread_{nullptr};

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;

  sim::MinHeap<Timer, TimerLess> timers_;
  std::uint64_t next_timer_id_ = 1;
  std::unordered_map<std::uint64_t, bool> timer_alive_;

  std::unordered_map<int, IoHandler*> handlers_;
};

}  // namespace hyparview::net
