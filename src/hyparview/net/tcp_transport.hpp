// TCP transport: the membership::Env implementation over real sockets.
//
// Realizes the deployment model the paper assumes (§4):
//  * one persistent connection per active-view neighbor, dialed on demand
//    and kept open (connection cache);
//  * length-prefixed binary frames (wire::encode); the first frame on every
//    connection is a HELLO carrying the dialer's listening address, since
//    inbound ephemeral ports do not identify nodes;
//  * write/connect errors surface as Endpoint::send_failed — TCP is the
//    failure detector;
//  * disconnect() flushes pending frames and then closes (so a DISCONNECT
//    notification sent immediately before is not lost).
//
// Threading: everything runs on the owning EventLoop's thread. Multiple
// transports (nodes) may share one loop, which is how the in-process
// cluster tests and the tcp_cluster example run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hyparview/common/node_id.hpp"
#include "hyparview/common/rng.hpp"
#include "hyparview/membership/endpoint.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/net/event_loop.hpp"
#include "hyparview/net/fd.hpp"

namespace hyparview::net {

struct TcpTransportConfig {
  /// Address to bind; port 0 picks an ephemeral port.
  std::uint32_t bind_ip = 0x7F000001;  // 127.0.0.1
  std::uint16_t bind_port = 0;
  /// Frames larger than this are rejected as malformed.
  std::uint32_t max_frame_bytes = 1u << 20;
  /// Seed for this node's Env rng.
  std::uint64_t rng_seed = 1;
};

/// Hostile/garbage traffic counters. A malicious frame only ever costs its
/// own connection (closed and counted here) — never the loop or other
/// peers' connections (tcp_transport_test pins that).
struct TransportStats {
  /// Undecodable frame bodies (CheckError from the bounded decoder).
  std::uint64_t malformed_frames = 0;
  /// Length prefixes above max_frame_bytes (also counted as malformed).
  std::uint64_t oversized_frames = 0;
  /// Non-HELLO frames on a connection that never identified itself.
  std::uint64_t frames_before_hello = 0;

  // Volume counters (monotonic; the stats exporter derives rates from
  // deltas between polls).
  std::uint64_t frames_sent = 0;      ///< frames queued for the wire
  std::uint64_t frames_received = 0;  ///< frames decoded and dispatched
  std::uint64_t bytes_sent = 0;       ///< payload handed to ::write
  std::uint64_t bytes_received = 0;   ///< payload returned by ::read
};

class TcpTransport final : public membership::Env {
 public:
  /// Binds and starts listening immediately; local_id() is valid after
  /// construction. `endpoint` receives upcalls on the loop thread.
  TcpTransport(EventLoop& loop, membership::Endpoint* endpoint,
               TcpTransportConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] NodeId local_id() const { return local_id_; }
  void set_endpoint(membership::Endpoint* endpoint) { endpoint_ = endpoint; }

  /// Closes the listener and every connection (no notifications emitted).
  void shutdown();

  /// Number of open (or connecting) peer connections.
  [[nodiscard]] std::size_t connection_count() const;

  /// Hostile/garbage traffic counters (monotonic over the transport's life).
  [[nodiscard]] const TransportStats& stats() const { return stats_; }

  // --- membership::Env -------------------------------------------------------
  [[nodiscard]] NodeId self() const override { return local_id_; }
  [[nodiscard]] TimePoint now() const override { return loop_.now(); }
  [[nodiscard]] Rng& rng() override { return rng_; }
  void send(const NodeId& to, wire::Message msg) override;
  void connect(const NodeId& to, membership::ConnectCallback cb) override;
  void disconnect(const NodeId& to) override;
  void schedule(Duration delay, membership::TaskCallback fn) override;

 private:
  class Listener;
  class Connection;
  friend class Connection;

  Connection* find_connection(const NodeId& peer);
  Connection* dial(const NodeId& peer);
  void adopt_inbound(std::unique_ptr<Connection> conn);

  /// Called by connections when their state changes.
  void on_connected(Connection* conn);
  void on_identified(Connection* conn);
  void on_frame(Connection* conn, const wire::Message& msg);
  void on_closed(Connection* conn, bool error);

  void report_send_failed(const NodeId& to, const wire::Message& msg);
  void report_link_closed(const NodeId& peer);

  void remove_connection(Connection* conn);

  EventLoop& loop_;
  membership::Endpoint* endpoint_;
  TcpTransportConfig config_;
  NodeId local_id_;
  Rng rng_;
  TransportStats stats_;

  std::unique_ptr<Listener> listener_;
  /// Established/dialing connections keyed by peer id.
  std::unordered_map<std::uint64_t, Connection*> by_peer_;
  /// All live connections (including unidentified inbound ones).
  std::vector<std::unique_ptr<Connection>> connections_;
  bool shutdown_ = false;
};

}  // namespace hyparview::net
