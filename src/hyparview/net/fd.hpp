// RAII file descriptor.
#pragma once

#include <unistd.h>

#include <utility>

namespace hyparview::net {

class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  ~Fd() { reset(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  [[nodiscard]] int release() { return std::exchange(fd_, -1); }

  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace hyparview::net
