#include "hyparview/net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/binary.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::net {
namespace {

constexpr std::size_t kLenPrefixBytes = 4;

// POSIX allows EAGAIN and EWOULDBLOCK to be distinct errno values; Linux
// makes them equal, which trips -Wlogical-op / misc-redundant-expression
// on the naive `e == EAGAIN || e == EWOULDBLOCK`. Branch at preprocessing
// time instead so both platforms compile the minimal, warning-free test.
constexpr bool err_would_block(int e) {
#if EAGAIN == EWOULDBLOCK
  return e == EAGAIN;
#else
  return e == EAGAIN || e == EWOULDBLOCK;
#endif
}

Fd make_tcp_socket() {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  HPV_CHECK_THROW(fd.valid(), "socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

sockaddr_in make_addr(std::uint32_t ip, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ip);
  addr.sin_port = htons(port);
  return addr;
}

std::vector<std::uint8_t> frame_message(const wire::Message& msg) {
  // Flat wire messages have a cheaply computable exact size (encoded_size
  // walks no heap payloads), so the whole frame — length prefix plus body —
  // is built in one exactly-sized buffer with a single allocation, instead
  // of encode-into-scratch-then-copy.
  const std::size_t body_bytes = wire::encoded_size(msg);
  const auto len = static_cast<std::uint32_t>(body_bytes);
  BinaryWriter w;
  w.reserve(kLenPrefixBytes + body_bytes);
  // Little-endian length prefix, written byte-wise (byte pushes into the
  // freshly reserved buffer also sidestep a GCC memmove false positive).
  w.u8(static_cast<std::uint8_t>(len & 0xff));
  w.u8(static_cast<std::uint8_t>((len >> 8) & 0xff));
  w.u8(static_cast<std::uint8_t>((len >> 16) & 0xff));
  w.u8(static_cast<std::uint8_t>((len >> 24) & 0xff));
  wire::encode(msg, w);
  return w.take();
}

}  // namespace

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

class TcpTransport::Listener final : public IoHandler {
 public:
  Listener(TcpTransport* transport, std::uint32_t ip, std::uint16_t port)
      : transport_(transport) {
    fd_ = make_tcp_socket();
    const int one = 1;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(ip, port);
    HPV_CHECK_THROW(
        ::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
        "bind() failed");
    HPV_CHECK_THROW(::listen(fd_.get(), 128) == 0, "listen() failed");
    socklen_t len = sizeof(addr);
    HPV_CHECK(::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
    bound_port_ = ntohs(addr.sin_port);
    transport_->loop_.register_fd(fd_.get(), this, /*read=*/true,
                                  /*write=*/false);
  }

  ~Listener() override { close(); }

  void close() {
    if (fd_.valid()) {
      transport_->loop_.unregister_fd(fd_.get());
      fd_.reset();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  void on_readable() override;
  void on_writable() override {}

 private:
  TcpTransport* transport_;
  Fd fd_;
  std::uint16_t bound_port_ = 0;
};

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

class TcpTransport::Connection final : public IoHandler {
 public:
  enum class State : std::uint8_t {
    kConnecting,   ///< outbound dial in progress
    kEstablished,  ///< traffic flows (peer known for outbound; inbound waits
                   ///< for HELLO before delivering)
    kClosed,
  };

  /// Outbound constructor: dials `peer`.
  Connection(TcpTransport* transport, const NodeId& peer)
      : transport_(transport), peer_(peer), inbound_(false) {
    fd_ = make_tcp_socket();
    sockaddr_in addr = make_addr(peer.ip, peer.port);
    const int rc =
        ::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) {
      state_ = State::kEstablished;
      transport_->loop_.register_fd(fd_.get(), this, true, false);
      send_hello();
    } else if (errno == EINPROGRESS) {
      state_ = State::kConnecting;
      transport_->loop_.register_fd(fd_.get(), this, true, true);
    } else {
      state_ = State::kClosed;
    }
  }

  /// Inbound constructor: accepted socket, peer unknown until HELLO.
  Connection(TcpTransport* transport, Fd fd)
      : transport_(transport),
        peer_(kNoNode),
        inbound_(true),
        fd_(std::move(fd)) {
    state_ = State::kEstablished;
    const int one = 1;
    ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    transport_->loop_.register_fd(fd_.get(), this, true, false);
    send_hello();
  }

  ~Connection() override {
    *alive_flag_ = false;
    detach();
  }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const NodeId& peer() const { return peer_; }
  [[nodiscard]] bool identified() const { return peer_ != kNoNode; }
  [[nodiscard]] bool inbound() const { return inbound_; }

  void add_connect_callback(membership::ConnectCallback cb) {
    connect_callbacks_.push_back(std::move(cb));
  }

  /// Queues a frame (kept with its Message until flushed, for failure
  /// reporting) and flushes opportunistically.
  void send_message(const wire::Message& msg) {
    if (state_ == State::kClosed) {
      transport_->report_send_failed(peer_, msg);
      return;
    }
    ++transport_->stats_.frames_sent;
    pending_.push_back(Pending{frame_message(msg), 0, msg});
    if (state_ == State::kEstablished) flush();
  }

  /// Shutdown teardown: drop everything silently — no callbacks, no
  /// endpoint notifications, no transport bookkeeping. The owning transport
  /// (and possibly the endpoint) are being destroyed.
  void abandon() {
    expected_close_ = true;
    connect_callbacks_.clear();
    pending_.clear();
    if (state_ != State::kClosed) {
      state_ = State::kClosed;
      detach();
    }
  }

  /// Graceful close: flush pending frames (waiting out an in-progress dial
  /// if needed), then close without notifying.
  void close_graceful() {
    expected_close_ = true;
    if (state_ != State::kEstablished && state_ != State::kConnecting) {
      close_now(/*notify=*/false, /*error=*/false);
      return;
    }
    closing_after_flush_ = true;
    if (state_ == State::kEstablished) {
      if (pending_.empty()) {
        half_close();
      } else {
        flush();
      }
    }
    // kConnecting: on_writable() completes the dial and flushes, then the
    // closing_after_flush_ flag triggers the half-close.
  }

  void close_now(bool notify, bool error) {
    if (state_ == State::kClosed) return;
    HPV_LOG_DEBUG("tcp %s: close conn to %s (notify=%d error=%d fd %d)",
                  transport_->local_id().to_string().c_str(),
                  peer_.to_string().c_str(), notify ? 1 : 0, error ? 1 : 0,
                  fd_.get());
    state_ = State::kClosed;
    detach();
    // Fail any connect waiters.
    auto cbs = std::move(connect_callbacks_);
    connect_callbacks_.clear();
    for (auto& cb : cbs) cb(false);
    transport_->on_closed(this, notify && !expected_close_ && error);
    if (notify && !expected_close_) {
      // Report undelivered frames so the failure detector semantics match
      // the simulator (send_failed per queued message).
      auto pending = std::move(pending_);
      pending_.clear();
      for (auto& p : pending) {
        transport_->report_send_failed(peer_, p.msg);
      }
      if (identified()) transport_->report_link_closed(peer_);
    }
    transport_->remove_connection(this);
    // `this` is destroyed here.
  }

  void on_readable() override {
    if (state_ == State::kConnecting) {
      on_writable();
      if (state_ != State::kEstablished) return;
    }
    while (true) {
      std::uint8_t buf[16 * 1024];
      const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
      if (n > 0) {
        transport_->stats_.bytes_received += static_cast<std::uint64_t>(n);
        if (draining_) continue;  // half-closed: discard until peer EOF
        read_buf_.insert(read_buf_.end(), buf, buf + n);
        if (!parse_frames()) return;  // fatal decode error closed us
        continue;
      }
      if (n == 0) {
        // Peer EOF. After our own graceful half-close this is the expected
        // handshake completion; otherwise it is a failure signal.
        close_now(/*notify=*/!draining_, /*error=*/!draining_);
        return;
      }
      if (err_would_block(errno)) return;
      if (errno == EINTR) continue;
      close_now(/*notify=*/!draining_, /*error=*/!draining_);
      return;
    }
  }

  void on_writable() override {
    if (state_ == State::kConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        close_now(/*notify=*/true, /*error=*/true);
        return;
      }
      state_ = State::kEstablished;
      HPV_LOG_DEBUG("tcp %s: dial to %s completed (fd %d)",
                    transport_->local_id().to_string().c_str(),
                    peer_.to_string().c_str(), fd_.get());
      transport_->loop_.update_fd(fd_.get(), true, false);
      send_hello(/*prepend=*/true);
      auto cbs = std::move(connect_callbacks_);
      connect_callbacks_.clear();
      for (auto& cb : cbs) cb(true);
      transport_->on_connected(this);
    }
    flush();
  }

  void on_io_error() override { close_now(/*notify=*/true, /*error=*/true); }

 private:
  struct Pending {
    std::vector<std::uint8_t> bytes;
    std::size_t offset = 0;
    wire::Message msg;
  };

  void detach() {
    if (fd_.valid()) {
      transport_->loop_.unregister_fd(fd_.get());
      fd_.reset();
    }
  }

  void send_hello(bool prepend = false) {
    ++transport_->stats_.frames_sent;
    Pending hello{frame_message(wire::Hello{transport_->local_id()}), 0,
                  wire::Hello{transport_->local_id()}};
    if (prepend) {
      pending_.push_front(std::move(hello));
    } else {
      pending_.push_back(std::move(hello));
    }
    flush();
  }

  void flush() {
    if (state_ != State::kEstablished) return;
    while (!pending_.empty()) {
      Pending& p = pending_.front();
      // MSG_NOSIGNAL: a peer that crashed mid-stream RSTs the connection;
      // the write must surface EPIPE to the close_now path below, not
      // raise SIGPIPE and kill the process (sustained pub/sub streams
      // write into dying sockets routinely during churn).
      const ssize_t n = ::send(fd_.get(), p.bytes.data() + p.offset,
                               p.bytes.size() - p.offset, MSG_NOSIGNAL);
      HPV_LOG_DEBUG("tcp %s: write %zd/%zu to %s (fd %d, errno %d)",
                    transport_->local_id().to_string().c_str(), n,
                    p.bytes.size() - p.offset,
                    peer_.to_string().c_str(), fd_.get(), n < 0 ? errno : 0);
      if (n < 0) {
        if (err_would_block(errno)) {
          transport_->loop_.update_fd(fd_.get(), true, true);
          return;
        }
        if (errno == EINTR) continue;
        close_now(/*notify=*/true, /*error=*/true);
        return;
      }
      transport_->stats_.bytes_sent += static_cast<std::uint64_t>(n);
      p.offset += static_cast<std::size_t>(n);
      if (p.offset == p.bytes.size()) pending_.pop_front();
    }
    transport_->loop_.update_fd(fd_.get(), true, false);
    if (closing_after_flush_) half_close();
  }

  /// Graceful TCP termination: send FIN but keep reading (and discarding)
  /// until the peer closes too. Closing outright with unread inbound data
  /// would trigger an RST that destroys our just-flushed frames in the
  /// peer's receive queue.
  void half_close() {
    if (draining_ || state_ != State::kEstablished) return;
    draining_ = true;
    ::shutdown(fd_.get(), SHUT_WR);
    // Reap the connection even if the peer never closes its side.
    transport_->loop_.schedule(kDrainTimeout,
                               [this, alive = alive_flag_] {
                                 if (*alive) {
                                   close_now(/*notify=*/false, /*error=*/false);
                                 }
                               });
  }

  /// Returns false if the connection was closed due to a malformed frame.
  bool parse_frames() {
    std::size_t consumed = 0;
    while (read_buf_.size() - consumed >= kLenPrefixBytes) {
      const std::uint8_t* base = read_buf_.data() + consumed;
      const std::uint32_t len = static_cast<std::uint32_t>(base[0]) |
                                (static_cast<std::uint32_t>(base[1]) << 8) |
                                (static_cast<std::uint32_t>(base[2]) << 16) |
                                (static_cast<std::uint32_t>(base[3]) << 24);
      if (len > transport_->config_.max_frame_bytes) {
        HPV_LOG_WARN("tcp: oversized frame (%u bytes) from %s; closing", len,
                     peer_.to_string().c_str());
        ++transport_->stats_.oversized_frames;
        ++transport_->stats_.malformed_frames;
        close_now(/*notify=*/true, /*error=*/true);
        return false;
      }
      if (read_buf_.size() - consumed - kLenPrefixBytes < len) break;
      try {
        const wire::Message msg = wire::decode_bytes(
            {base + kLenPrefixBytes, static_cast<std::size_t>(len)});
        consumed += kLenPrefixBytes + len;
        ++transport_->stats_.frames_received;
        handle_frame(msg);
        if (state_ == State::kClosed) return false;
      } catch (const CheckError& err) {
        HPV_LOG_WARN("tcp: malformed frame from %s: %s",
                     peer_.to_string().c_str(), err.what());
        ++transport_->stats_.malformed_frames;
        close_now(/*notify=*/true, /*error=*/true);
        return false;
      }
    }
    read_buf_.erase(read_buf_.begin(),
                    read_buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
    return true;
  }

  void handle_frame(const wire::Message& msg) {
    if (const auto* hello = std::get_if<wire::Hello>(&msg)) {
      if (!identified()) {
        peer_ = hello->node_id;
        transport_->on_identified(this);
      }
      return;
    }
    if (!identified()) {
      HPV_LOG_WARN("tcp: frame before HELLO; closing");
      ++transport_->stats_.frames_before_hello;
      close_now(/*notify=*/false, /*error=*/true);
      return;
    }
    transport_->on_frame(this, msg);
  }

  static constexpr Duration kDrainTimeout = seconds(5);

  TcpTransport* transport_;
  NodeId peer_;
  bool inbound_;
  Fd fd_;
  State state_ = State::kClosed;
  bool expected_close_ = false;
  bool closing_after_flush_ = false;
  bool draining_ = false;
  std::deque<Pending> pending_;
  std::vector<std::uint8_t> read_buf_;
  std::vector<membership::ConnectCallback> connect_callbacks_;
  /// Guards deferred timers against the connection being deleted first.
  std::shared_ptr<bool> alive_flag_ = std::make_shared<bool>(true);

  friend class TcpTransport;
};

void TcpTransport::Listener::on_readable() {
  while (true) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd = ::accept4(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                             &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (err_would_block(errno)) return;
      if (errno == EINTR) continue;
      HPV_LOG_WARN("tcp: accept failed: errno=%d", errno);
      return;
    }
    HPV_LOG_DEBUG("tcp %s: accepted fd %d",
                  transport_->local_id().to_string().c_str(), fd);
    transport_->adopt_inbound(
        std::make_unique<Connection>(transport_, Fd(fd)));
  }
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(EventLoop& loop, membership::Endpoint* endpoint,
                           TcpTransportConfig config)
    : loop_(loop),
      endpoint_(endpoint),
      config_(config),
      rng_(config.rng_seed) {
  listener_ = std::make_unique<Listener>(this, config_.bind_ip,
                                         config_.bind_port);
  local_id_ = NodeId{config_.bind_ip, listener_->port()};
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  if (listener_ != nullptr) listener_->close();
  // Steal the list first so nothing re-enters connections_ while we drop
  // every connection without callbacks (the endpoint may already be gone).
  std::vector<std::unique_ptr<Connection>> doomed;
  doomed.swap(connections_);
  for (auto& conn : doomed) conn->abandon();
  by_peer_.clear();
}

std::size_t TcpTransport::connection_count() const {
  return connections_.size();
}

TcpTransport::Connection* TcpTransport::find_connection(const NodeId& peer) {
  const auto it = by_peer_.find(peer.raw());
  return it == by_peer_.end() ? nullptr : it->second;
}

TcpTransport::Connection* TcpTransport::dial(const NodeId& peer) {
  auto owned = std::make_unique<Connection>(this, peer);
  Connection* conn = owned.get();
  if (conn->state() == Connection::State::kClosed) {
    return nullptr;  // immediate dial failure (no route etc.)
  }
  connections_.push_back(std::move(owned));
  by_peer_[peer.raw()] = conn;
  return conn;
}

void TcpTransport::adopt_inbound(std::unique_ptr<Connection> conn) {
  // Drop connections that died in their constructor (instant write error)
  // and anything accepted mid-shutdown.
  if (shutdown_ || conn->state() == Connection::State::kClosed) return;
  connections_.push_back(std::move(conn));
}

void TcpTransport::send(const NodeId& to, wire::Message msg) {
  HPV_CHECK(to != local_id_);
  if (shutdown_) return;
  Connection* conn = find_connection(to);
  if (conn == nullptr) {
    conn = dial(to);
    if (conn == nullptr) {
      report_send_failed(to, msg);
      return;
    }
  }
  conn->send_message(msg);
}

void TcpTransport::connect(const NodeId& to, membership::ConnectCallback cb) {
  if (shutdown_) return;
  Connection* conn = find_connection(to);
  if (conn == nullptr) conn = dial(to);
  if (conn == nullptr) {
    loop_.schedule(0, [cb = std::move(cb)]() mutable { cb(false); });
    return;
  }
  if (conn->state() == Connection::State::kEstablished) {
    loop_.schedule(0, [cb = std::move(cb)]() mutable { cb(true); });
    return;
  }
  conn->add_connect_callback(std::move(cb));
}

void TcpTransport::disconnect(const NodeId& to) {
  Connection* conn = find_connection(to);
  if (conn == nullptr) return;
  by_peer_.erase(to.raw());
  conn->close_graceful();
}

void TcpTransport::schedule(Duration delay, membership::TaskCallback fn) {
  loop_.schedule(delay, std::move(fn));
}

void TcpTransport::on_connected(Connection* /*conn*/) {}

void TcpTransport::on_identified(Connection* conn) {
  // Keep the first mapping if we already have a live connection (e.g. both
  // sides dialed simultaneously); the extra connection still delivers reads.
  const auto key = conn->peer().raw();
  if (!by_peer_.contains(key)) by_peer_[key] = conn;
}

void TcpTransport::on_frame(Connection* conn, const wire::Message& msg) {
  if (endpoint_ != nullptr) endpoint_->deliver(conn->peer(), msg);
}

void TcpTransport::on_closed(Connection* conn, bool /*error*/) {
  const auto it = by_peer_.find(conn->peer().raw());
  if (it != by_peer_.end() && it->second == conn) by_peer_.erase(it);
}

void TcpTransport::report_send_failed(const NodeId& to,
                                      const wire::Message& msg) {
  if (endpoint_ != nullptr && !std::holds_alternative<wire::Hello>(msg)) {
    endpoint_->send_failed(to, msg);
  }
}

void TcpTransport::report_link_closed(const NodeId& peer) {
  if (endpoint_ != nullptr) endpoint_->link_closed(peer);
}

void TcpTransport::remove_connection(Connection* conn) {
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i].get() == conn) {
      // Deleting `conn` inside one of its own callbacks is unsafe; defer.
      auto owned = std::move(connections_[i]);
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
      loop_.schedule(0, [owned = std::shared_ptr<Connection>(
                             owned.release())]() mutable { owned.reset(); });
      return;
    }
  }
}

}  // namespace hyparview::net
