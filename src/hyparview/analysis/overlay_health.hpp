// Overlay survival metrics under adversarial pressure.
//
// The adversarial tier (harness::Adversary) lets a minority of nodes answer
// membership traffic with fabricated or colluding identities. These metrics
// quantify how far the honest overlay degrades:
//
//  * eclipse ratio — fraction of honest nodes' dissemination-view slots held
//    by adversarial identities (colluders or fabrications). 1.0 means the
//    honest overlay is fully eclipsed: every gossip hop lands on the
//    adversary.
//  * largest honest component — size of the largest weakly connected
//    component of the honest-only view graph. Divided by the honest alive
//    population it is the partition damage an attack achieved.
//  * backup poison ratio — same slot accounting over the backup views
//    (HyParView passive view, Scamp InView); poisoned backups turn future
//    repair into further eclipse pressure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hyparview/graph/digraph.hpp"

namespace hyparview::analysis {

/// Slot census over one view class (dissemination or backup) of every
/// honest alive node.
struct ViewPoisonCounts {
  std::uint64_t slots = 0;        ///< total entries inspected
  std::uint64_t adversarial = 0;  ///< entries naming a colluding node
  std::uint64_t fabricated = 0;   ///< entries naming no real process

  [[nodiscard]] std::uint64_t poisoned() const {
    return adversarial + fabricated;
  }
  /// poisoned/slots, 0 when no slots were inspected.
  [[nodiscard]] double poison_ratio() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(poisoned()) /
                            static_cast<double>(slots);
  }
};

struct OverlayHealth {
  std::size_t honest_alive = 0;  ///< honest alive population
  ViewPoisonCounts active;       ///< dissemination views
  ViewPoisonCounts backup;       ///< backup views
  std::size_t largest_honest_component = 0;

  /// Fraction of honest dissemination-view slots the adversary holds.
  [[nodiscard]] double eclipse_ratio() const { return active.poison_ratio(); }
  [[nodiscard]] double backup_poison_ratio() const {
    return backup.poison_ratio();
  }
  /// largest_honest_component / honest_alive (1.0 for an intact overlay).
  [[nodiscard]] double honest_component_fraction() const {
    return honest_alive == 0
               ? 0.0
               : static_cast<double>(largest_honest_component) /
                     static_cast<double>(honest_alive);
  }
};

/// Size of the largest weakly connected component of the subgraph induced
/// by the vertices with honest[v] — the honest overlay with every
/// adversarial vertex (and all arcs through it) removed.
[[nodiscard]] std::size_t largest_honest_component(
    const graph::Digraph& g, const std::vector<bool>& honest);

}  // namespace hyparview::analysis
