#include "hyparview/analysis/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "hyparview/common/assert.hpp"

namespace hyparview::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HPV_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HPV_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (const std::size_t w : widths) {
    os << std::string(w + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace hyparview::analysis
