// Descriptive statistics and small formatting helpers for experiment output.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hyparview::analysis {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// p in [0,100]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Fixed-precision formatting ("%.*f").
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// "12.3%" given a fraction in [0,1].
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

}  // namespace hyparview::analysis
