// Aligned-column table / CSV output for benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hyparview::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Markdown-style table with aligned columns.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated values (same data, machine-readable).
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hyparview::analysis
