#include "hyparview/analysis/overlay_health.hpp"

#include "hyparview/graph/metrics.hpp"

namespace hyparview::analysis {

std::size_t largest_honest_component(const graph::Digraph& g,
                                     const std::vector<bool>& honest) {
  const graph::Digraph sub = g.induced_subgraph(honest);
  return graph::largest_weakly_connected_component(sub);
}

}  // namespace hyparview::analysis
