// Network-wide broadcast delivery accounting.
//
// The harness installs one recorder as the DeliveryObserver of every node's
// gossip engine; per message it tracks first deliveries, hop counts and
// duplicates, yielding the paper's reliability metric (§2.5: percentage of
// *active* nodes that deliver).
#pragma once

#include <cstdint>
#include <vector>

#include "hyparview/common/flat_hash.hpp"
#include "hyparview/common/function.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/gossip/gossip_engine.hpp"

namespace hyparview::analysis {

struct MessageResult {
  std::uint64_t msg_id = 0;
  std::size_t delivered = 0;      ///< distinct nodes that delivered
  std::size_t alive_nodes = 0;    ///< correct nodes when the message was sent
  std::uint16_t max_hops = 0;     ///< last-delivery distance from the source
  std::uint64_t hop_sum = 0;      ///< for average-hops metrics
  std::uint64_t duplicates = 0;
  /// Timestamps from the recorder's injected time source (simulated time on
  /// the sim backend, event-loop time on TCP; 0 when no source is set).
  TimePoint begin_time = 0;       ///< when begin_message registered the id
  TimePoint last_delivery = 0;    ///< time of the latest first-delivery

  /// Gossip reliability (§2.5): delivered / alive.
  [[nodiscard]] double reliability() const {
    return alive_nodes == 0
               ? 0.0
               : static_cast<double>(delivered) /
                     static_cast<double>(alive_nodes);
  }

  /// Publish-to-last-delivery latency (the pub/sub latency metric).
  [[nodiscard]] Duration latency_to_last() const {
    return last_delivery - begin_time;
  }
};

class BroadcastRecorder final : public gossip::DeliveryObserver {
 public:
  /// Pre-sizes the record storage for `messages` begin_message calls, after
  /// which recording (begin/deliver/duplicate) performs no heap allocation
  /// until the reservation is exceeded. Benches reserve their full message
  /// budget up front so the accounting never rehashes mid-measurement.
  void reserve(std::size_t messages);

  /// Installs the clock used to stamp begin/delivery times (sim.now() on
  /// the simulator, loop.now() on TCP). Without one, timestamps stay 0 and
  /// latency metrics read as 0 — reliability accounting is unaffected.
  void set_time_source(InplaceFunction<TimePoint()> now) {
    now_ = std::move(now);
  }

  /// Starts accounting for msg_id; `alive_nodes` is the reliability
  /// denominator (correct processes at send time).
  void begin_message(std::uint64_t msg_id, std::size_t alive_nodes);

  void on_deliver(const NodeId& node, std::uint64_t msg_id,
                  std::uint16_t hops) override;
  void on_duplicate(const NodeId& node, std::uint64_t msg_id) override;

  [[nodiscard]] const std::vector<MessageResult>& results() const {
    return results_;
  }
  [[nodiscard]] const MessageResult& result(std::uint64_t msg_id) const;

  /// Mean reliability over every recorded message.
  [[nodiscard]] double average_reliability() const;

  /// Mean over messages of the per-message max hop count (Table 1 column
  /// "maximum hops to delivery").
  [[nodiscard]] double average_max_hops() const;

  [[nodiscard]] std::uint64_t total_duplicates() const;

  void clear();

 private:
  /// msg_id → index into results_. Open-addressing: the per-delivery lookup
  /// on the dissemination hot path is one probe in a contiguous slab, and
  /// with reserve() the whole recording phase is rehash-free.
  FlatMap<std::uint64_t, std::uint32_t> index_;
  std::vector<MessageResult> results_;
  InplaceFunction<TimePoint()> now_;
};

}  // namespace hyparview::analysis
