#include "hyparview/analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "hyparview/common/assert.hpp"

namespace hyparview::analysis {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

double percentile(std::vector<double> values, double p) {
  HPV_CHECK(p >= 0.0 && p <= 100.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace hyparview::analysis
