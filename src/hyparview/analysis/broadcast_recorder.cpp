#include "hyparview/analysis/broadcast_recorder.hpp"

#include <algorithm>

#include "hyparview/common/assert.hpp"

namespace hyparview::analysis {

void BroadcastRecorder::reserve(std::size_t messages) {
  index_.reserve(messages);
  results_.reserve(messages);
}

void BroadcastRecorder::begin_message(std::uint64_t msg_id,
                                      std::size_t alive_nodes) {
  HPV_CHECK(!index_.contains(msg_id));
  index_.insert(msg_id, static_cast<std::uint32_t>(results_.size()));
  MessageResult r;
  r.msg_id = msg_id;
  r.alive_nodes = alive_nodes;
  if (now_) {
    r.begin_time = now_();
    r.last_delivery = r.begin_time;
  }
  results_.push_back(r);
}

void BroadcastRecorder::on_deliver(const NodeId& /*node*/,
                                   std::uint64_t msg_id, std::uint16_t hops) {
  const std::uint32_t* slot = index_.find(msg_id);
  if (slot == nullptr) return;  // unregistered traffic (warmup etc.)
  MessageResult& r = results_[*slot];
  ++r.delivered;
  r.hop_sum += hops;
  r.max_hops = std::max(r.max_hops, hops);
  if (now_) r.last_delivery = std::max(r.last_delivery, now_());
}

void BroadcastRecorder::on_duplicate(const NodeId& /*node*/,
                                     std::uint64_t msg_id) {
  const std::uint32_t* slot = index_.find(msg_id);
  if (slot == nullptr) return;
  ++results_[*slot].duplicates;
}

const MessageResult& BroadcastRecorder::result(std::uint64_t msg_id) const {
  const std::uint32_t* slot = index_.find(msg_id);
  HPV_CHECK(slot != nullptr);
  return results_[*slot];
}

double BroadcastRecorder::average_reliability() const {
  if (results_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results_) sum += r.reliability();
  return sum / static_cast<double>(results_.size());
}

double BroadcastRecorder::average_max_hops() const {
  if (results_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results_) sum += r.max_hops;
  return sum / static_cast<double>(results_.size());
}

std::uint64_t BroadcastRecorder::total_duplicates() const {
  std::uint64_t total = 0;
  for (const auto& r : results_) total += r.duplicates;
  return total;
}

void BroadcastRecorder::clear() {
  index_.clear();
  results_.clear();
}

}  // namespace hyparview::analysis
