#include "hyparview/analysis/broadcast_recorder.hpp"

#include <algorithm>

#include "hyparview/common/assert.hpp"

namespace hyparview::analysis {

void BroadcastRecorder::begin_message(std::uint64_t msg_id,
                                      std::size_t alive_nodes) {
  HPV_CHECK(!index_.contains(msg_id));
  index_.emplace(msg_id, results_.size());
  MessageResult r;
  r.msg_id = msg_id;
  r.alive_nodes = alive_nodes;
  results_.push_back(r);
}

void BroadcastRecorder::on_deliver(const NodeId& /*node*/,
                                   std::uint64_t msg_id, std::uint16_t hops) {
  const auto it = index_.find(msg_id);
  if (it == index_.end()) return;  // unregistered traffic (warmup etc.)
  MessageResult& r = results_[it->second];
  ++r.delivered;
  r.hop_sum += hops;
  r.max_hops = std::max(r.max_hops, hops);
}

void BroadcastRecorder::on_duplicate(const NodeId& /*node*/,
                                     std::uint64_t msg_id) {
  const auto it = index_.find(msg_id);
  if (it == index_.end()) return;
  ++results_[it->second].duplicates;
}

const MessageResult& BroadcastRecorder::result(std::uint64_t msg_id) const {
  const auto it = index_.find(msg_id);
  HPV_CHECK(it != index_.end());
  return results_[it->second];
}

double BroadcastRecorder::average_reliability() const {
  if (results_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results_) sum += r.reliability();
  return sum / static_cast<double>(results_.size());
}

double BroadcastRecorder::average_max_hops() const {
  if (results_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results_) sum += r.max_hops;
  return sum / static_cast<double>(results_.size());
}

std::uint64_t BroadcastRecorder::total_duplicates() const {
  std::uint64_t total = 0;
  for (const auto& r : results_) total += r.duplicates;
  return total;
}

void BroadcastRecorder::clear() {
  index_.clear();
  results_.clear();
}

}  // namespace hyparview::analysis
