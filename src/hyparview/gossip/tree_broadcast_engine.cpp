#include "hyparview/gossip/tree_broadcast_engine.hpp"

namespace hyparview::gossip {

TreeBroadcastEngine::TreeBroadcastEngine(membership::Env& env,
                                         membership::Protocol& protocol,
                                         GossipConfig config,
                                         DeliveryObserver* observer)
    : env_(env),
      protocol_(protocol),
      config_(config),
      observer_(observer),
      seen_(config_.dedup_window),
      cache_(config_.cache_window) {
  lazy_peers_.reserve(kMaxLazyPeers);
  link_scores_.reserve(kMaxLazyPeers);
}

void TreeBroadcastEngine::broadcast(std::uint64_t msg_id) {
  if (!seen_.remember(msg_id)) return;  // already saw/originated this id
  if (observer_ != nullptr) observer_->on_deliver(env_.self(), msg_id, 0);
  cache_.put(msg_id, {0, config_.payload_size});
  deliver_and_push(kNoNode, msg_id, 0);
  protocol_.on_traffic(kNoNode);
}

void TreeBroadcastEngine::handle_gossip(const NodeId& from,
                                        const wire::TreeGossip& msg) {
  if (!seen_.remember(msg.msg_id)) {
    // Duplicate eager arrival: evidence the link is redundant — but only
    // evidence. With one message in flight, pruning on the first duplicate
    // is safe (the duplicate proves another eager path delivered first, so
    // the eager graph stays connected after the cut). Under concurrent
    // multi-source streams it is not: different in-flight messages flood in
    // different directions, each justifies pruning a *different* in-link of
    // the same node, and the composed prunes disconnect the eager subgraph.
    // Every delivery then waits out a graft timer and the re-promoted links
    // duplicate again — a sustained graft/prune limit cycle (~n duplicates
    // per message instead of ~0, and graft-timeout latencies).
    //
    // So the prune decision reads a per-link score over a graft_timeout
    // window instead: prune only a link that delivered kPruneDupThreshold
    // duplicates and NO fresh payload in the window. A link that wins the
    // race for any active source keeps scoring firsts and is never cut, so
    // with a stable source set the eager graph keeps spanning; links that
    // win for no source decay to lazy, converging to the same shared
    // spanning tree the sequential decay reaches.
    ++duplicates_;
    if (observer_ != nullptr) observer_->on_duplicate(env_.self(), msg.msg_id);
    if (from != kNoNode) {
      LinkScore& score = link_score(from);
      ++score.dups;
      if (score.dups >= kPruneDupThreshold) {
        // Dead link: a whole window (plus grace) of duplicates and not one
        // fresh delivery. The rest of the eager graph delivered everything
        // first, so cutting it — even many at once — keeps the graph
        // spanning for the active sources.
        const bool dead = score.firsts == 0 && !score.grace;
        // Weak link: loses at least half its races (per-message latency
        // jitter rotates the winner among same-distance in-links, so a
        // redundant tie pair splits firsts ~50/50 and neither ever goes
        // fully dead). Cutting is safe — every duplicate proves a rival
        // delivered the same message — but only one weak cut per node per
        // window: the rival of a tie pair must survive long enough to
        // inherit all the wins and earn protection.
        const bool weak = score.firsts > 0 && score.dups >= score.firsts &&
                          env_.now() >= weak_prune_mute_until_;
        if (dead || weak) {
          if (weak && !dead) {
            weak_prune_mute_until_ = env_.now() + config_.graft_timeout;
          }
          ++prunes_;
          control_bytes_ += wire::encoded_size(wire::Message{wire::Prune{}});
          env_.send(from, wire::Prune{});
          demote(from);
          drop_link_score(from);
        }
      }
    }
    return;
  }
  if (observer_ != nullptr) {
    observer_->on_deliver(env_.self(), msg.msg_id, msg.hops);
  }
  cache_.put(msg.msg_id, {msg.hops, msg.payload_size});
  // An outstanding graft timer for this id is now moot; the timer callback
  // checks seen_ and no-ops, but dropping the entry immediately keeps
  // pending_grafts() an honest "still missing" count.
  missing_.erase(msg.msg_id);
  // The eager sender proved itself a useful tree edge.
  if (from != kNoNode) ++link_score(from).firsts;
  promote(from);
  deliver_and_push(from, msg.msg_id, msg.hops);
  protocol_.on_traffic(from);
}

void TreeBroadcastEngine::deliver_and_push(const NodeId& from,
                                           std::uint64_t msg_id,
                                           std::uint16_t hops) {
  // Flood shape: ask for the whole dissemination view minus the sender
  // (fanout 0 = no truncation), then split it into eager pushes and lazy
  // announcements. HyParView's active view is the tree's edge candidate
  // set, exactly as in the Plumtree paper.
  protocol_.broadcast_targets(0, from, targets_scratch_);
  wire::TreeGossip push;
  push.msg_id = msg_id;
  push.hops = static_cast<std::uint16_t>(hops + 1);
  push.payload_size = config_.payload_size;
  const wire::IHave announce{msg_id, push.hops};
  const std::size_t announce_cost =
      wire::encoded_size(wire::Message{announce});
  for (const NodeId& t : targets_scratch_) {
    if (is_lazy(t)) {
      control_bytes_ += announce_cost;
      env_.send(t, announce);
    } else {
      send_payload(t, push);
    }
  }
}

void TreeBroadcastEngine::send_payload(const NodeId& to,
                                       const wire::TreeGossip& msg) {
  ++forwarded_;
  payload_bytes_ += wire::wire_cost(msg);
  env_.send(to, msg);
}

void TreeBroadcastEngine::handle_ihave(const NodeId& from,
                                       const wire::IHave& msg) {
  if (seen_.contains(msg.msg_id)) return;
  MissingEntry* entry = missing_.find(msg.msg_id);
  if (entry == nullptr) {
    entry = &missing_.insert(msg.msg_id, MissingEntry{});
    entry->hops = msg.hops;
    // First announcement arms the graft timer; later IHaves only extend
    // the announcer rotation. The timer chain re-arms itself while untried
    // announcers remain, so one schedule per missing id is enough.
    const std::uint64_t id = msg.msg_id;
    env_.schedule(config_.graft_timeout, [this, id] { on_graft_timer(id); });
  }
  if (entry->count < kMaxAnnouncers) {
    for (std::uint8_t i = 0; i < entry->count; ++i) {
      if (entry->announcers[i] == from) return;
    }
    entry->announcers[entry->count++] = from;
  }
}

void TreeBroadcastEngine::on_graft_timer(std::uint64_t msg_id) {
  MissingEntry* entry = missing_.find(msg_id);
  if (entry == nullptr) return;
  if (seen_.contains(msg_id)) {
    missing_.erase(msg_id);
    return;
  }
  if (entry->tried >= entry->count) {
    // Every announcer tried and none delivered (all crashed or pruned us
    // first). Give up — a later IHave from a live peer restarts repair.
    missing_.erase(msg_id);
    return;
  }
  const NodeId target = entry->announcers[entry->tried++];
  // Graft = "make this link eager and retransmit": promote locally before
  // the round trip so the retransmission arrives on an eager link.
  promote(target);
  ++grafts_;
  const wire::Graft graft{msg_id};
  control_bytes_ += wire::encoded_size(wire::Message{graft});
  env_.send(target, graft);
  // Re-arm to rotate to the next announcer if this one never answers.
  env_.schedule(config_.graft_timeout,
                [this, msg_id] { on_graft_timer(msg_id); });
}

void TreeBroadcastEngine::handle_graft(const NodeId& from,
                                       const wire::Graft& msg) {
  // The peer missed a message we announced: the link becomes eager in both
  // directions and we retransmit from the cache (if not yet evicted — a
  // stale Graft past the cache horizon is answered by tree repair alone).
  promote(from);
  if (const MessageCache::Entry* cached = cache_.find(msg.msg_id)) {
    wire::TreeGossip push;
    push.msg_id = msg.msg_id;
    push.hops = static_cast<std::uint16_t>(cached->hops + 1);
    push.payload_size = cached->payload_size;
    send_payload(from, push);
  }
}

void TreeBroadcastEngine::handle_prune(const NodeId& from) {
  // The peer stops pushing to us too (it demoted us before sending this),
  // so its in-link score is dead weight.
  demote(from);
  drop_link_score(from);
}

bool TreeBroadcastEngine::handle(const NodeId& from,
                                 const wire::Message& msg) {
  if (const auto* g = std::get_if<wire::TreeGossip>(&msg)) {
    handle_gossip(from, *g);
    return true;
  }
  if (const auto* ih = std::get_if<wire::IHave>(&msg)) {
    handle_ihave(from, *ih);
    return true;
  }
  if (const auto* gr = std::get_if<wire::Graft>(&msg)) {
    handle_graft(from, *gr);
    return true;
  }
  if (std::holds_alternative<wire::Prune>(msg)) {
    handle_prune(from);
    return true;
  }
  return false;
}

bool TreeBroadcastEngine::handle_send_failed(const NodeId& to,
                                             const wire::Message& msg) {
  const bool payload_plane = std::holds_alternative<wire::TreeGossip>(msg) ||
                             std::holds_alternative<wire::IHave>(msg) ||
                             std::holds_alternative<wire::Graft>(msg) ||
                             std::holds_alternative<wire::Prune>(msg);
  if (!payload_plane) return false;
  // TCP-as-failure-detector, as in flood mode: report the dead peer to the
  // membership layer (which repairs the view) and drop its tree state. A
  // failed Graft self-heals through the timer chain — the next firing
  // rotates to the next announcer.
  on_neighbor_down(to);
  protocol_.peer_unreachable(to);
  return true;
}

void TreeBroadcastEngine::on_neighbor_down(const NodeId& peer) {
  // Forget the demotion: if the membership layer replaces this link, the
  // replacement (or the peer itself, rejoining) starts eager, and the next
  // broadcast repairs the tree through it. Announcer entries referring to
  // the peer are left in place — grafting a dead announcer fails fast and
  // rotates on.
  promote(peer);
  drop_link_score(peer);
}

bool TreeBroadcastEngine::is_lazy(const NodeId& peer) const {
  for (const NodeId& p : lazy_peers_) {
    if (p == peer) return true;
  }
  return false;
}

void TreeBroadcastEngine::promote(const NodeId& peer) {
  for (std::size_t i = 0; i < lazy_peers_.size(); ++i) {
    if (lazy_peers_[i] == peer) {
      lazy_peers_.erase(lazy_peers_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void TreeBroadcastEngine::demote(const NodeId& peer) {
  if (peer == kNoNode || is_lazy(peer)) return;
  if (lazy_peers_.size() == kMaxLazyPeers) {
    // Saturated: turn the oldest demotion eager again (extra redundancy,
    // never lost reliability).
    lazy_peers_.erase(lazy_peers_.begin());
  }
  lazy_peers_.push_back(peer);
}

TreeBroadcastEngine::LinkScore& TreeBroadcastEngine::link_score(
    const NodeId& peer) {
  const TimePoint now = env_.now();
  for (LinkScore& s : link_scores_) {
    if (s.peer == peer) {
      if (now - s.window_start >= config_.graft_timeout) {
        // Roll the window. A link that scored fresh deliveries keeps one
        // window of grace, so a tree parent whose first delivery of the new
        // window loses one race is not cut on a boundary artifact.
        //
        // Dups reset only out of a DENSE window (one with enough events to
        // support a prune judgment on its own). A sparse window — traffic so
        // slow the window saw fewer events than kPruneDupThreshold — carries
        // its dup count (at most threshold-1) forward instead: a full reset
        // at that rate would wipe the count before it ever reached the
        // threshold, and a pure loser could never be judged dead. Dense
        // windows must NOT carry: a busy dup-only link would cross the roll
        // already at the threshold, one fresh duplicate would cut it
        // instantly, and — dead prunes being unbudgeted — a node could cut
        // many in-links in one burst, recreating exactly the composed-prune
        // disconnection this score exists to prevent.
        s.grace = s.firsts > 0;
        if (s.firsts + s.dups >= kPruneDupThreshold) s.dups = 0;
        s.firsts = 0;
        s.window_start = now;
      }
      return s;
    }
  }
  if (link_scores_.size() == kMaxLazyPeers) {
    // Saturated (churn faster than decay): forget the oldest score. Worst
    // case the forgotten link is re-scored from scratch — extra redundancy
    // for a window, never lost reliability.
    link_scores_.erase(link_scores_.begin());
  }
  link_scores_.push_back(LinkScore{peer, now, 0, 0, false});
  return link_scores_.back();
}

void TreeBroadcastEngine::drop_link_score(const NodeId& peer) {
  for (std::size_t i = 0; i < link_scores_.size(); ++i) {
    if (link_scores_[i].peer == peer) {
      link_scores_.erase(link_scores_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void TreeBroadcastEngine::reset() {
  seen_.clear();
  cache_.clear();
  missing_.clear();
  lazy_peers_.clear();
  link_scores_.clear();
  weak_prune_mute_until_ = 0;
}

}  // namespace hyparview::gossip
