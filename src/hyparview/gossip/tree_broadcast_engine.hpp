// Plumtree: epidemic broadcast trees over the membership substrate
// (Leitão, Pereira, Rodrigues — "Epidemic Broadcast Trees", SRDS 2007; the
// companion protocol the HyParView paper positions as its payload plane).
//
// Every active-view link is in one of two states per node:
//
//  * eager — fresh payloads are pushed immediately (TreeGossip);
//  * lazy  — only an IHave announcement (id + hop count) is sent.
//
// All links start eager, so the first broadcast floods. Each duplicate
// eager arrival sends Prune back and demotes that link to lazy; what
// remains eager converges to a spanning tree rooted anywhere (a single
// shared tree serves all sources). Recovery inverts the decay: a node that
// hears an IHave for a message it never receives eagerly waits
// `graft_timeout`, then sends Graft to the announcer — promoting that link
// back to eager and requesting a retransmission from the payload cache.
// HyParView's neighbor-down events (link closed / peer unreachable) clear
// the per-peer tree state so the next broadcast re-floods across the
// repaired membership edge; brand-new neighbors start eager by definition.
//
// Hot-path discipline matches GossipEngine: fixed-capacity rings +
// open-addressing probe tables, scratch buffers reused across messages,
// zero steady-state allocation (gated by bench/micro_sim_events and the
// lint_config.toml pins). All per-message iteration walks either the
// protocol's deterministic target order or insertion-ordered flat vectors,
// so simulation runs are bit-identical at fixed seed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/flat_hash.hpp"
#include "hyparview/common/node_id.hpp"
#include "hyparview/gossip/broadcast_engine.hpp"
#include "hyparview/gossip/dedup_window.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::gossip {

/// Fixed-capacity payload-retransmission cache: msg_id -> (hops, size),
/// FIFO eviction. Same ring + probe-table shape as DedupWindow, with a
/// value attached. Only the header is cached — payloads are synthetic — so
/// a Graft answer regenerates the frame from the entry.
class MessageCache {
 public:
  struct Entry {
    std::uint16_t hops = 0;
    std::uint32_t payload_size = 0;
  };

  explicit MessageCache(std::size_t capacity) : capacity_(capacity) {
    HPV_CHECK(capacity_ >= 1);
  }

  /// Records `id` (no-op if already cached); evicts the oldest when full.
  void put(std::uint64_t id, Entry entry) {
    if (!index_.try_insert(id, entry)) return;
    if (count_ == capacity_) {
      index_.erase(ring_[head_]);
      ring_[head_] = id;
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    } else {
      ring_.push_back(id);
      ++count_;
    }
  }

  [[nodiscard]] const Entry* find(std::uint64_t id) const {
    return index_.find(id);
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Forgets everything; keeps all storage (no allocation on reuse).
  void clear() {
    index_.clear();
    ring_.clear();
    head_ = 0;
    count_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<std::uint64_t> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  FlatMap<std::uint64_t, Entry> index_;
};

class TreeBroadcastEngine final : public BroadcastEngine {
 public:
  /// Announcers remembered per missing message: graft attempts rotate
  /// through them (first IHave first), so one dead announcer cannot stall
  /// recovery.
  static constexpr std::size_t kMaxAnnouncers = 8;
  /// Lazy-set capacity. The active view is fanout+1 (5 at paper scale), so
  /// 16 never saturates in practice; if it ever does, the oldest demotion
  /// turns eager again — safe (costs redundancy, never reliability).
  static constexpr std::size_t kMaxLazyPeers = 16;
  /// Duplicates an eager in-link must deliver within one score window —
  /// with zero fresh deliveries in the same window — before it is pruned.
  /// Reacting to a single duplicate is wrong under concurrent multi-source
  /// streams (see handle_gossip).
  static constexpr std::uint32_t kPruneDupThreshold = 2;

  TreeBroadcastEngine(membership::Env& env, membership::Protocol& protocol,
                      GossipConfig config, DeliveryObserver* observer);

  void broadcast(std::uint64_t msg_id) override;

  // Typed frame handlers (unit tests drive these directly).
  void handle_gossip(const NodeId& from, const wire::TreeGossip& msg);
  void handle_ihave(const NodeId& from, const wire::IHave& msg);
  void handle_graft(const NodeId& from, const wire::Graft& msg);
  void handle_prune(const NodeId& from);

  [[nodiscard]] bool handle(const NodeId& from,
                            const wire::Message& msg) override;
  [[nodiscard]] bool handle_send_failed(const NodeId& to,
                                        const wire::Message& msg) override;
  void on_neighbor_down(const NodeId& peer) override;

  void set_fanout(std::size_t fanout) override { config_.fanout = fanout; }
  [[nodiscard]] std::size_t fanout() const override { return config_.fanout; }
  [[nodiscard]] const char* engine_name() const override { return "plumtree"; }

  [[nodiscard]] std::uint64_t duplicates_received() const override {
    return duplicates_;
  }
  [[nodiscard]] std::uint64_t messages_forwarded() const override {
    return forwarded_;
  }
  [[nodiscard]] std::uint64_t payload_bytes_sent() const override {
    return payload_bytes_;
  }
  [[nodiscard]] std::uint64_t control_bytes_sent() const override {
    return control_bytes_;
  }
  [[nodiscard]] std::uint64_t grafts_sent() const override { return grafts_; }
  [[nodiscard]] std::uint64_t prunes_sent() const override { return prunes_; }

  /// Links currently demoted to lazy (tests/analysis; insertion order).
  [[nodiscard]] std::span<const NodeId> lazy_peers() const {
    return lazy_peers_;
  }
  /// Missing-message entries with an armed graft timer (tests).
  [[nodiscard]] std::size_t pending_grafts() const { return missing_.size(); }

  void reset() override;

 private:
  /// Per-missing-message repair state, created by the first IHave.
  struct MissingEntry {
    std::array<NodeId, kMaxAnnouncers> announcers{};
    std::uint16_t hops = 0;
    std::uint8_t count = 0;
    std::uint8_t tried = 0;
  };

  void deliver_and_push(const NodeId& from, std::uint64_t msg_id,
                        std::uint16_t hops);
  void on_graft_timer(std::uint64_t msg_id);
  [[nodiscard]] bool is_lazy(const NodeId& peer) const;
  void promote(const NodeId& peer);
  void demote(const NodeId& peer);
  void send_payload(const NodeId& to, const wire::TreeGossip& msg);

  membership::Env& env_;
  membership::Protocol& protocol_;
  GossipConfig config_;
  DeliveryObserver* observer_;

  DedupWindow seen_;
  MessageCache cache_;
  /// msg_id -> repair state. Point lookups only (no iteration), so the
  /// probe table's layout never influences event order. Entries are erased
  /// on eager arrival or when every announcer has been tried; the timer
  /// chain therefore always terminates and never keeps the simulator from
  /// quiescing.
  FlatMap<std::uint64_t, MissingEntry> missing_;
  /// Per-in-link delivery score over a sliding graft_timeout window: how
  /// many fresh payloads (`firsts`) vs duplicates (`dups`) the peer's eager
  /// pushes delivered since `window_start`. The prune rule reads this
  /// instead of reacting to single duplicates (see handle_gossip).
  struct LinkScore {
    NodeId peer;
    TimePoint window_start = 0;
    std::uint32_t firsts = 0;
    std::uint32_t dups = 0;
    /// The previous window scored fresh deliveries: one window of
    /// protection after a tree parent goes quiet, so a boundary race does
    /// not cut it. Only real firsts refresh this — the grace itself decays
    /// the next roll (a perpetual grace would block pruning forever).
    bool grace = false;
  };

  /// Rolls the window if stale and returns the peer's score slot (evicting
  /// the oldest entry when the table is saturated).
  [[nodiscard]] LinkScore& link_score(const NodeId& peer);
  void drop_link_score(const NodeId& peer);

  /// Demoted (IHave-only) links, insertion-ordered for determinism. Small:
  /// bounded by kMaxLazyPeers, scanned linearly.
  std::vector<NodeId> lazy_peers_;
  /// Eager in-link scores. Insertion-ordered flat vector, same idiom as
  /// lazy_peers_ (the eager in-neighbor set tracks the active view,
  /// ~fanout+1, so linear scans stay cheap and deterministic); bounded by
  /// kMaxLazyPeers with FIFO eviction.
  std::vector<LinkScore> link_scores_;
  /// Rate limit for the weak-link prune rule (one per graft_timeout
  /// window); dead-link prunes are not limited. See handle_gossip.
  TimePoint weak_prune_mute_until_ = 0;
  /// Reused target buffer for the push loop. Same re-entrancy invariant as
  /// GossipEngine::targets_scratch_: nothing reachable from env_.send()
  /// re-enters the push loop; synchronous dial failures only touch
  /// handle_send_failed, which never uses this buffer.
  std::vector<NodeId> targets_scratch_;
  std::uint64_t duplicates_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t control_bytes_ = 0;
  std::uint64_t grafts_ = 0;
  std::uint64_t prunes_ = 0;
};

}  // namespace hyparview::gossip
