// Per-node runtime: glues a membership protocol and a gossip engine to a
// transport endpoint. Used by both the simulator harness and the TCP host.
#pragma once

#include <memory>

#include "hyparview/gossip/gossip_engine.hpp"
#include "hyparview/membership/endpoint.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::gossip {

class NodeRuntime final : public membership::Endpoint {
 public:
  NodeRuntime(membership::Env& env,
              std::unique_ptr<membership::Protocol> protocol,
              GossipConfig gossip_config, DeliveryObserver* observer)
      : protocol_(std::move(protocol)),
        gossip_(env, *protocol_, gossip_config, observer) {}

  [[nodiscard]] membership::Protocol& protocol() { return *protocol_; }
  [[nodiscard]] const membership::Protocol& protocol() const {
    return *protocol_;
  }
  [[nodiscard]] GossipEngine& gossip() { return gossip_; }

  // --- membership::Endpoint --------------------------------------------------
  void deliver(const NodeId& from, const wire::Message& msg) override {
    if (const auto* g = std::get_if<wire::Gossip>(&msg)) {
      gossip_.handle_gossip(from, *g);
    } else if (std::holds_alternative<wire::GossipAck>(msg)) {
      // Ack handling is implicit (transport failure reporting); ignore.
    } else {
      protocol_->handle(from, msg);
    }
  }

  void send_failed(const NodeId& to, const wire::Message& msg) override {
    if (const auto* g = std::get_if<wire::Gossip>(&msg)) {
      gossip_.on_send_failed(to, *g);
    } else if (std::holds_alternative<wire::GossipAck>(msg)) {
      // Lost ack to a dead node: nothing to do.
    } else {
      protocol_->on_send_failed(to, msg);
    }
  }

  void link_closed(const NodeId& peer) override {
    protocol_->on_link_closed(peer);
  }

 private:
  std::unique_ptr<membership::Protocol> protocol_;
  GossipEngine gossip_;
};

}  // namespace hyparview::gossip
