// Per-node runtime: glues a membership protocol and a broadcast engine to a
// transport endpoint. Used by both the simulator harness and the TCP host.
#pragma once

#include <memory>

#include "hyparview/gossip/broadcast_engine.hpp"
#include "hyparview/gossip/gossip_engine.hpp"
#include "hyparview/gossip/tree_broadcast_engine.hpp"
#include "hyparview/membership/endpoint.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::gossip {

class NodeRuntime final : public membership::Endpoint {
 public:
  NodeRuntime(membership::Env& env,
              std::unique_ptr<membership::Protocol> protocol,
              GossipConfig gossip_config, DeliveryObserver* observer)
      : protocol_(std::move(protocol)) {
    // Engine selection is a config knob (JSON spec `gossip.engine`), not a
    // compile-time choice: the pub/sub bench runs both engines over the
    // same membership substrate in one process.
    if (gossip_config.engine == Engine::kPlumtree) {
      engine_ = std::make_unique<TreeBroadcastEngine>(env, *protocol_,
                                                      gossip_config, observer);
    } else {
      engine_ = std::make_unique<GossipEngine>(env, *protocol_, gossip_config,
                                               observer);
    }
  }

  [[nodiscard]] membership::Protocol& protocol() { return *protocol_; }
  [[nodiscard]] const membership::Protocol& protocol() const {
    return *protocol_;
  }
  [[nodiscard]] BroadcastEngine& gossip() { return *engine_; }

  // --- membership::Endpoint --------------------------------------------------
  void deliver(const NodeId& from, const wire::Message& msg) override {
    if (engine_->handle(from, msg)) return;
    protocol_->handle(from, msg);
  }

  void send_failed(const NodeId& to, const wire::Message& msg) override {
    if (engine_->handle_send_failed(to, msg)) return;
    protocol_->on_send_failed(to, msg);
  }

  void link_closed(const NodeId& peer) override {
    engine_->on_neighbor_down(peer);
    protocol_->on_link_closed(peer);
  }

 private:
  std::unique_ptr<membership::Protocol> protocol_;
  std::unique_ptr<BroadcastEngine> engine_;
};

}  // namespace hyparview::gossip
