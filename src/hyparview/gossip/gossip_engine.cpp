#include "hyparview/gossip/gossip_engine.hpp"

#include "hyparview/common/assert.hpp"

namespace hyparview::gossip {

GossipEngine::GossipEngine(membership::Env& env,
                           membership::Protocol& protocol, GossipConfig config,
                           DeliveryObserver* observer)
    : env_(env),
      protocol_(protocol),
      config_(config),
      observer_(observer),
      seen_(config_.dedup_window) {}

void GossipEngine::broadcast(std::uint64_t msg_id) {
  wire::Gossip msg;
  msg.msg_id = msg_id;
  msg.hops = 0;
  msg.payload_size = config_.payload_size;
  if (!remember(msg_id)) return;  // already saw/originated this id
  if (observer_ != nullptr) observer_->on_deliver(env_.self(), msg_id, 0);
  forward(msg, kNoNode);
  protocol_.on_traffic(kNoNode);
}

void GossipEngine::handle_gossip(const NodeId& from, const wire::Gossip& msg) {
  if (config_.mode == Mode::kRandomFanoutAcked && config_.explicit_acks &&
      from != kNoNode) {
    // Every received copy is acknowledged (the sender's missing-ack timeout
    // is what the transport's failure reporting stands in for).
    const wire::GossipAck ack{msg.msg_id};
    control_bytes_ += wire_cost(wire::Message{ack});
    env_.send(from, ack);
  }
  if (!remember(msg.msg_id)) {
    ++duplicates_;
    if (observer_ != nullptr) observer_->on_duplicate(env_.self(), msg.msg_id);
    return;
  }
  if (observer_ != nullptr) {
    observer_->on_deliver(env_.self(), msg.msg_id, msg.hops);
  }
  forward(msg, from);
  // Only a deterministic flood implies "the sender considers me a
  // neighbor"; random-fanout gossip legitimately arrives from strangers.
  protocol_.on_traffic(config_.mode == Mode::kFlood ? from : kNoNode);
}

void GossipEngine::forward(const wire::Gossip& msg, const NodeId& exclude) {
  const std::size_t fanout =
      config_.mode == Mode::kFlood ? 0 : config_.fanout;
  protocol_.broadcast_targets(fanout, exclude, targets_scratch_);
  wire::Gossip next = msg;
  next.hops = static_cast<std::uint16_t>(msg.hops + 1);
  const std::size_t cost = wire::wire_cost(next);
  for (const NodeId& t : targets_scratch_) {
    ++forwarded_;
    payload_bytes_ += cost;
    env_.send(t, next);
  }
}

void GossipEngine::on_send_failed(const NodeId& to, const wire::Gossip& msg) {
  switch (config_.mode) {
    case Mode::kRandomFanout:
      // Unreliable-channel gossip: the loss goes unnoticed.
      return;
    case Mode::kFlood:
    case Mode::kRandomFanoutAcked:
      // The missing ack / broken connection is the failure detector.
      protocol_.peer_unreachable(to);
      break;
  }
  if (config_.reroute_on_failure) {
    // Pick one *uniformly random* substitute target; exclusion of
    // already-contacted peers is best-effort (we exclude only the failed
    // one). In flood mode we ask for the whole view (fanout 0 = no
    // truncation) and draw uniformly ourselves — always taking front()
    // would bias every reroute in the system toward the first active-view
    // member. The random-fanout modes already return one uniformly random
    // member.
    const std::size_t want = config_.mode == Mode::kFlood ? 0 : 1;
    protocol_.broadcast_targets(want, to, reroute_scratch_);
    if (!reroute_scratch_.empty()) {
      const NodeId subst =
          reroute_scratch_.size() == 1
              ? reroute_scratch_.front()
              : reroute_scratch_[static_cast<std::size_t>(
                    env_.rng().below(reroute_scratch_.size()))];
      ++forwarded_;
      payload_bytes_ += wire::wire_cost(msg);
      env_.send(subst, msg);
    }
  }
}

bool GossipEngine::handle(const NodeId& from, const wire::Message& msg) {
  if (const auto* g = std::get_if<wire::Gossip>(&msg)) {
    handle_gossip(from, *g);
    return true;
  }
  if (std::holds_alternative<wire::GossipAck>(msg)) {
    // Ack handling is implicit (transport failure reporting); consume.
    return true;
  }
  return false;
}

bool GossipEngine::handle_send_failed(const NodeId& to,
                                      const wire::Message& msg) {
  if (const auto* g = std::get_if<wire::Gossip>(&msg)) {
    on_send_failed(to, *g);
    return true;
  }
  if (std::holds_alternative<wire::GossipAck>(msg)) {
    // Lost ack to a dead node: nothing to do.
    return true;
  }
  return false;
}

bool GossipEngine::remember(std::uint64_t msg_id) {
  return seen_.remember(msg_id);
}

void GossipEngine::reset() { seen_.clear(); }

}  // namespace hyparview::gossip
