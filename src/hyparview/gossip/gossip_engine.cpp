#include "hyparview/gossip/gossip_engine.hpp"

#include "hyparview/common/assert.hpp"

namespace hyparview::gossip {

GossipEngine::GossipEngine(membership::Env& env,
                           membership::Protocol& protocol, GossipConfig config,
                           DeliveryObserver* observer)
    : env_(env), protocol_(protocol), config_(config), observer_(observer) {
  HPV_CHECK(config_.dedup_window >= 1);
}

void GossipEngine::broadcast(std::uint64_t msg_id) {
  wire::Gossip msg;
  msg.msg_id = msg_id;
  msg.hops = 0;
  msg.payload_size = config_.payload_size;
  if (!remember(msg_id)) return;  // already saw/originated this id
  if (observer_ != nullptr) observer_->on_deliver(env_.self(), msg_id, 0);
  forward(msg, kNoNode);
  protocol_.on_traffic(kNoNode);
}

void GossipEngine::handle_gossip(const NodeId& from, const wire::Gossip& msg) {
  if (config_.mode == Mode::kRandomFanoutAcked && config_.explicit_acks &&
      from != kNoNode) {
    // Every received copy is acknowledged (the sender's missing-ack timeout
    // is what the transport's failure reporting stands in for).
    env_.send(from, wire::GossipAck{msg.msg_id});
  }
  if (!remember(msg.msg_id)) {
    ++duplicates_;
    if (observer_ != nullptr) observer_->on_duplicate(env_.self(), msg.msg_id);
    return;
  }
  if (observer_ != nullptr) {
    observer_->on_deliver(env_.self(), msg.msg_id, msg.hops);
  }
  forward(msg, from);
  // Only a deterministic flood implies "the sender considers me a
  // neighbor"; random-fanout gossip legitimately arrives from strangers.
  protocol_.on_traffic(config_.mode == Mode::kFlood ? from : kNoNode);
}

void GossipEngine::forward(const wire::Gossip& msg, const NodeId& exclude) {
  const std::size_t fanout =
      config_.mode == Mode::kFlood ? 0 : config_.fanout;
  protocol_.broadcast_targets(fanout, exclude, targets_scratch_);
  wire::Gossip next = msg;
  next.hops = static_cast<std::uint16_t>(msg.hops + 1);
  for (const NodeId& t : targets_scratch_) {
    ++forwarded_;
    env_.send(t, next);
  }
}

void GossipEngine::on_send_failed(const NodeId& to, const wire::Gossip& msg) {
  switch (config_.mode) {
    case Mode::kRandomFanout:
      // Unreliable-channel gossip: the loss goes unnoticed.
      return;
    case Mode::kFlood:
    case Mode::kRandomFanoutAcked:
      // The missing ack / broken connection is the failure detector.
      protocol_.peer_unreachable(to);
      break;
  }
  if (config_.reroute_on_failure) {
    // Pick one substitute target; exclusion of already-contacted peers is
    // best-effort (we exclude only the failed one).
    const std::vector<NodeId> subst = protocol_.broadcast_targets(1, to);
    if (!subst.empty()) {
      ++forwarded_;
      env_.send(subst.front(), msg);
    }
  }
}

bool GossipEngine::remember(std::uint64_t msg_id) {
  if (seen_.contains(msg_id)) return false;
  seen_.insert(msg_id);
  seen_order_.push_back(msg_id);
  if (seen_order_.size() > config_.dedup_window) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return true;
}

void GossipEngine::reset() {
  seen_.clear();
  seen_order_.clear();
}

}  // namespace hyparview::gossip
