// Broadcast-engine abstraction: the payload plane above the membership
// substrate.
//
// Two engines implement it:
//
//  * GossipEngine (gossip_engine.hpp) — the paper's eager push: every node
//    forwards a fresh message to its whole dissemination view (or a random
//    fanout of it). Simple, redundant, pays the payload once per overlay
//    edge.
//  * TreeBroadcastEngine (tree_broadcast_engine.hpp) — Plumtree (Leitão,
//    Pereira, Rodrigues, SRDS 2007): the redundant eager links decay into
//    lazy IHave announcements after the first duplicate, leaving a spanning
//    tree that ships each payload ~once per node, repaired through
//    Graft/Prune and the membership layer's neighbor up/down events.
//
// NodeRuntime owns one engine per node and routes payload-plane frames to
// it; everything else (membership traffic) goes to the Protocol. Both
// engines keep the per-message hot path free of steady-state allocations —
// bench/micro_sim_events gates this at runtime and
// tools/lint/lint_config.toml pins the function list statically.
#pragma once

#include <cstdint>

#include "hyparview/common/node_id.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/membership/wire.hpp"

namespace hyparview::gossip {

enum class Mode : std::uint8_t {
  kFlood,
  kRandomFanout,
  kRandomFanoutAcked,
};

/// Which payload-plane engine NodeRuntime instantiates.
enum class Engine : std::uint8_t {
  kEager,
  kPlumtree,
};

struct GossipConfig {
  /// Engine selection (eager push vs Plumtree tree broadcast).
  Engine engine = Engine::kEager;
  Mode mode = Mode::kFlood;
  /// Gossip fanout t (ignored by kFlood, whose active view is fanout+1).
  std::size_t fanout = 4;
  /// Re-forward a message to a substitute target when a send fails. The
  /// paper's protocols do NOT re-route (kept for ablation A3).
  bool reroute_on_failure = false;
  /// Ship a GossipAck frame for every gossip frame received in
  /// kRandomFanoutAcked mode. Failure *detection* is always modeled through
  /// the transport (a send to a dead peer fails back, i.e. "no ack came"),
  /// so this flag only affects traffic accounting: enable it to charge the
  /// CyclonAcked ack overhead in wire-cost experiments.
  bool explicit_acks = false;
  /// Synthetic payload size carried in each gossip frame.
  std::uint32_t payload_size = 128;
  /// Duplicate-suppression window (ids remembered per node). Size it to
  /// the *in-flight* duplicate horizon — the number of distinct broadcasts
  /// that can have undelivered copies at once — not to total history; an
  /// id evicted while copies are still in flight would be re-delivered as
  /// new. Discrete drained waves get by with a small window; sustained
  /// pub/sub streams need sources x rate x (delivery + graft-timeout)
  /// worth of ids, which is why the capacity is per-engine configuration
  /// rather than a constant.
  std::size_t dedup_window = 1024;
  /// Plumtree: how long a node waits after the first IHave for a missing
  /// message before grafting the announcing link into the tree.
  Duration graft_timeout = milliseconds(100);
  /// Plumtree: payload retransmission cache capacity (messages kept to
  /// answer Graft requests). Like dedup_window, an in-flight horizon.
  std::size_t cache_window = 1024;
};

/// Observes deliveries network-wide (reliability accounting in the harness,
/// application callbacks in real deployments).
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;
  /// First delivery of `msg_id` at `node`, `hops` overlay hops from the
  /// source (0 at the source itself).
  virtual void on_deliver(const NodeId& node, std::uint64_t msg_id,
                          std::uint16_t hops) = 0;
  /// A duplicate copy arrived (redundancy accounting).
  virtual void on_duplicate(const NodeId& node, std::uint64_t msg_id) {
    (void)node;
    (void)msg_id;
  }
};

class BroadcastEngine {
 public:
  virtual ~BroadcastEngine() = default;

  /// Starts a broadcast at this node (delivers locally with hops = 0).
  virtual void broadcast(std::uint64_t msg_id) = 0;

  /// Offers an incoming frame to the engine. Returns true if the frame
  /// belonged to the payload plane and was consumed; false means "not
  /// mine", and the caller forwards it to the membership protocol.
  [[nodiscard]] virtual bool handle(const NodeId& from,
                                    const wire::Message& msg) = 0;

  /// Same contract for transport delivery failures of frames we sent.
  [[nodiscard]] virtual bool handle_send_failed(const NodeId& to,
                                                const wire::Message& msg) = 0;

  /// Membership-layer neighbor-down event (link closed / peer evicted):
  /// the engine drops any tree state referring to `peer`.
  virtual void on_neighbor_down(const NodeId& peer) { (void)peer; }

  /// Adjusts the gossip fanout at runtime (Figure 1 sweeps fanouts over one
  /// stabilized overlay). Ignored by flood-style engines.
  virtual void set_fanout(std::size_t fanout) = 0;
  [[nodiscard]] virtual std::size_t fanout() const = 0;

  /// Drops dissemination history (between harness experiments).
  virtual void reset() = 0;

  [[nodiscard]] virtual const char* engine_name() const = 0;

  // --- Traffic accounting (deterministic, backend-independent) --------------

  [[nodiscard]] virtual std::uint64_t duplicates_received() const = 0;
  [[nodiscard]] virtual std::uint64_t messages_forwarded() const = 0;
  /// wire_cost of every payload-bearing frame this engine sent.
  [[nodiscard]] virtual std::uint64_t payload_bytes_sent() const = 0;
  /// wire_cost of every control frame (IHave/Graft/Prune/GossipAck) sent.
  [[nodiscard]] virtual std::uint64_t control_bytes_sent() const = 0;
  /// Tree-stability counters (0 for engines without a tree).
  [[nodiscard]] virtual std::uint64_t grafts_sent() const { return 0; }
  [[nodiscard]] virtual std::uint64_t prunes_sent() const { return 0; }
};

}  // namespace hyparview::gossip
