// Gossip broadcast engine (the dissemination protocol measured in §5).
//
// A node forwards a message when it receives it for the first time — there is
// no a priori bound on the number of gossip rounds, exactly as in the paper's
// PeerSim broadcast protocol. Target selection is delegated to the membership
// protocol:
//
//  * kFlood            — deterministic flood of the active view (HyParView);
//                        transport failures feed back into the membership
//                        protocol (TCP as failure detector).
//  * kRandomFanout     — `fanout` random view members (Cyclon/Scamp over an
//                        unreliable channel): delivery failures are invisible
//                        to the membership layer.
//  * kRandomFanoutAcked— like kRandomFanout but per-hop acknowledgements let
//                        the sender purge dead targets (CyclonAcked).
#pragma once

#include <cstdint>

#include "hyparview/common/node_id.hpp"
#include "hyparview/gossip/dedup_window.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::gossip {

enum class Mode : std::uint8_t {
  kFlood,
  kRandomFanout,
  kRandomFanoutAcked,
};

struct GossipConfig {
  Mode mode = Mode::kFlood;
  /// Gossip fanout t (ignored by kFlood, whose active view is fanout+1).
  std::size_t fanout = 4;
  /// Re-forward a message to a substitute target when a send fails. The
  /// paper's protocols do NOT re-route (kept for ablation A3).
  bool reroute_on_failure = false;
  /// Ship a GossipAck frame for every gossip frame received in
  /// kRandomFanoutAcked mode. Failure *detection* is always modeled through
  /// the transport (a send to a dead peer fails back, i.e. "no ack came"),
  /// so this flag only affects traffic accounting: enable it to charge the
  /// CyclonAcked ack overhead in wire-cost experiments.
  bool explicit_acks = false;
  /// Synthetic payload size carried in each gossip frame.
  std::uint32_t payload_size = 128;
  /// Duplicate-suppression window (ids remembered per node). Size it to
  /// the *in-flight* duplicate horizon — the number of distinct broadcasts
  /// that can have undelivered copies at once — not to total history; an
  /// id evicted while copies are still in flight would be re-delivered as
  /// new. The default is generous for long-lived deployments; the
  /// simulation harness overrides it down (NetworkConfig::defaults_for),
  /// where it drains every broadcast before the next and 10k per-node
  /// windows decide whether remember() hits cache or DRAM.
  std::size_t dedup_window = 1024;
};

/// Observes deliveries network-wide (reliability accounting in the harness,
/// application callbacks in real deployments).
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;
  /// First delivery of `msg_id` at `node`, `hops` overlay hops from the
  /// source (0 at the source itself).
  virtual void on_deliver(const NodeId& node, std::uint64_t msg_id,
                          std::uint16_t hops) = 0;
  /// A duplicate copy arrived (redundancy accounting).
  virtual void on_duplicate(const NodeId& node, std::uint64_t msg_id) {
    (void)node;
    (void)msg_id;
  }
};

class GossipEngine {
 public:
  GossipEngine(membership::Env& env, membership::Protocol& protocol,
               GossipConfig config, DeliveryObserver* observer);

  /// Starts a broadcast at this node (delivers locally with hops = 0).
  void broadcast(std::uint64_t msg_id);

  /// Incoming gossip frame.
  void handle_gossip(const NodeId& from, const wire::Gossip& msg);

  /// A gossip frame we sent to `to` bounced (peer crashed).
  void on_send_failed(const NodeId& to, const wire::Gossip& msg);

  [[nodiscard]] std::uint64_t duplicates_received() const {
    return duplicates_;
  }
  [[nodiscard]] std::uint64_t messages_forwarded() const { return forwarded_; }

  /// Adjusts the gossip fanout at runtime (Figure 1 sweeps fanouts over one
  /// stabilized overlay). Ignored by kFlood.
  void set_fanout(std::size_t fanout) { config_.fanout = fanout; }
  [[nodiscard]] std::size_t fanout() const { return config_.fanout; }

  /// Drops the dedup history (between harness experiments).
  void reset();

 private:
  void deliver_and_forward(const wire::Gossip& msg, const NodeId& exclude);
  void forward(const wire::Gossip& msg, const NodeId& exclude);
  [[nodiscard]] bool remember(std::uint64_t msg_id);

  membership::Env& env_;
  membership::Protocol& protocol_;
  GossipConfig config_;
  DeliveryObserver* observer_;

  /// Duplicate suppression: fixed-capacity ring + probe table, zero
  /// steady-state allocation (see dedup_window.hpp).
  DedupWindow seen_;
  /// Reused target buffer for forward()'s send loop. Invariant: nothing
  /// reachable from env_.send() may touch targets_scratch_ or re-enter
  /// forward(). Deliveries are asynchronous on both backends, but
  /// TcpTransport::send can invoke send_failed *synchronously* on a dial
  /// failure — on_send_failed is safe because it never calls forward() and
  /// its reroute path uses the separate reroute_scratch_ buffer. Keep it
  /// that way.
  std::vector<NodeId> targets_scratch_;
  /// Reused candidate buffer for on_send_failed's reroute path. Separate
  /// from targets_scratch_ because a synchronous transport failure can
  /// land while forward() is still iterating its buffer.
  std::vector<NodeId> reroute_scratch_;
  std::uint64_t duplicates_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace hyparview::gossip
