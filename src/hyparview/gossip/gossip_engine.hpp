// Gossip broadcast engine (the dissemination protocol measured in §5).
//
// A node forwards a message when it receives it for the first time — there is
// no a priori bound on the number of gossip rounds, exactly as in the paper's
// PeerSim broadcast protocol. Target selection is delegated to the membership
// protocol:
//
//  * kFlood            — deterministic flood of the active view (HyParView);
//                        transport failures feed back into the membership
//                        protocol (TCP as failure detector).
//  * kRandomFanout     — `fanout` random view members (Cyclon/Scamp over an
//                        unreliable channel): delivery failures are invisible
//                        to the membership layer.
//  * kRandomFanoutAcked— like kRandomFanout but per-hop acknowledgements let
//                        the sender purge dead targets (CyclonAcked).
#pragma once

#include <cstdint>

#include "hyparview/common/node_id.hpp"
#include "hyparview/gossip/broadcast_engine.hpp"
#include "hyparview/gossip/dedup_window.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::gossip {

class GossipEngine final : public BroadcastEngine {
 public:
  GossipEngine(membership::Env& env, membership::Protocol& protocol,
               GossipConfig config, DeliveryObserver* observer);

  /// Starts a broadcast at this node (delivers locally with hops = 0).
  void broadcast(std::uint64_t msg_id) override;

  /// Incoming gossip frame.
  void handle_gossip(const NodeId& from, const wire::Gossip& msg);

  /// A gossip frame we sent to `to` bounced (peer crashed).
  void on_send_failed(const NodeId& to, const wire::Gossip& msg);

  // --- BroadcastEngine frame dispatch ----------------------------------------
  [[nodiscard]] bool handle(const NodeId& from,
                            const wire::Message& msg) override;
  [[nodiscard]] bool handle_send_failed(const NodeId& to,
                                        const wire::Message& msg) override;

  [[nodiscard]] std::uint64_t duplicates_received() const override {
    return duplicates_;
  }
  [[nodiscard]] std::uint64_t messages_forwarded() const override {
    return forwarded_;
  }
  [[nodiscard]] std::uint64_t payload_bytes_sent() const override {
    return payload_bytes_;
  }
  [[nodiscard]] std::uint64_t control_bytes_sent() const override {
    return control_bytes_;
  }

  /// Adjusts the gossip fanout at runtime (Figure 1 sweeps fanouts over one
  /// stabilized overlay). Ignored by kFlood.
  void set_fanout(std::size_t fanout) override { config_.fanout = fanout; }
  [[nodiscard]] std::size_t fanout() const override { return config_.fanout; }

  [[nodiscard]] const char* engine_name() const override { return "eager"; }

  /// Drops the dedup history (between harness experiments).
  void reset() override;

 private:
  void deliver_and_forward(const wire::Gossip& msg, const NodeId& exclude);
  void forward(const wire::Gossip& msg, const NodeId& exclude);
  [[nodiscard]] bool remember(std::uint64_t msg_id);

  membership::Env& env_;
  membership::Protocol& protocol_;
  GossipConfig config_;
  DeliveryObserver* observer_;

  /// Duplicate suppression: fixed-capacity ring + probe table, zero
  /// steady-state allocation (see dedup_window.hpp).
  DedupWindow seen_;
  /// Reused target buffer for forward()'s send loop. Invariant: nothing
  /// reachable from env_.send() may touch targets_scratch_ or re-enter
  /// forward(). Deliveries are asynchronous on both backends, but
  /// TcpTransport::send can invoke send_failed *synchronously* on a dial
  /// failure — on_send_failed is safe because it never calls forward() and
  /// its reroute path uses the separate reroute_scratch_ buffer. Keep it
  /// that way.
  std::vector<NodeId> targets_scratch_;
  /// Reused candidate buffer for on_send_failed's reroute path. Separate
  /// from targets_scratch_ because a synchronous transport failure can
  /// land while forward() is still iterating its buffer.
  std::vector<NodeId> reroute_scratch_;
  std::uint64_t duplicates_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t control_bytes_ = 0;
};

}  // namespace hyparview::gossip
