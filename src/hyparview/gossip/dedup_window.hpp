// Fixed-capacity duplicate-suppression window.
//
// The gossip engine remembers the last W message ids per node to detect
// duplicate copies (§2.5 redundancy accounting). The previous implementation
// paired an unordered_set with a deque — two node-based heap structures that
// allocate per *message* on the dissemination hot path, forever. This window
// is a ring buffer (arrival order = eviction order) plus an open-addressing
// probe table for membership. Both grow geometrically up to the capacity
// bound and never beyond, so:
//
//   * memory is proportional to the ids actually seen (a node that never
//     receives gossip pays nothing — there are 10k instances at paper
//     scale, so an eagerly pre-sized window would dominate the harness's
//     cache footprint);
//   * once `capacity` distinct ids have been seen the structure has reached
//     its steady footprint and remember() never allocates again — the
//     invariant bench/micro_sim_events enforces in CI.
#pragma once

#include <cstdint>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/flat_hash.hpp"

namespace hyparview::gossip {

class DedupWindow {
 public:
  explicit DedupWindow(std::size_t capacity) : capacity_(capacity) {
    HPV_CHECK(capacity_ >= 1);
  }

  /// Records `id`; returns true if it was new (first sighting within the
  /// window). When the window is full the oldest id is evicted first.
  bool remember(std::uint64_t id) {
    // Single probe walk answers membership and inserts. The table briefly
    // holds capacity_+1 ids until the eviction below; its slab therefore
    // settles one growth step above slots_for(capacity_) and then never
    // grows again.
    if (!index_.try_insert(id, 0)) return false;
    if (count_ == capacity_) {
      // Full: the ring holds exactly capacity_ ids and head_ points at the
      // oldest — evict it and write the newcomer in its place.
      index_.erase(ring_[head_]);
      ring_[head_] = id;
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    } else {
      // Filling up: plain append (head_ stays at the oldest entry, slot 0).
      ring_.push_back(id);
      ++count_;
    }
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return index_.contains(id);
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Forgets everything; keeps all storage (no allocation on reuse).
  void clear() {
    index_.clear();
    ring_.clear();
    head_ = 0;
    count_ = 0;
  }

 private:
  std::size_t capacity_;
  /// FIFO of remembered ids; circular once count_ == capacity_.
  std::vector<std::uint64_t> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  /// Membership index over the ring contents (value unused).
  FlatMap<std::uint64_t, std::uint8_t> index_;
};

}  // namespace hyparview::gossip
