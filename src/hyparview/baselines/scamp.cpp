#include "hyparview/baselines/scamp.hpp"

#include <algorithm>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::baselines {

void ScampConfig::validate() const {
  HPV_CHECK_THROW(forward_ttl >= 1, "scamp forward TTL must be >= 1");
  HPV_CHECK_THROW(isolation_timeout_cycles >= 1,
                  "scamp isolation timeout must be >= 1 cycle");
}

Scamp::Scamp(membership::Env& env, ScampConfig config)
    : env_(env), config_(config) {
  config_.validate();
}

void Scamp::partial_push(const NodeId& node) {
  if (!partial_index_.empty()) {
    partial_index_.insert(node.raw(),
                          static_cast<std::uint32_t>(partial_view_.size()));
  } else if (partial_view_.size() + 1 > kPartialIndexThreshold) {
    // The view outgrew scanning: index everything, new entry included.
    partial_index_.reserve(partial_view_.size() + 1);
    for (std::size_t i = 0; i < partial_view_.size(); ++i) {
      partial_index_.insert(partial_view_[i].raw(),
                            static_cast<std::uint32_t>(i));
    }
    partial_index_.insert(node.raw(),
                          static_cast<std::uint32_t>(partial_view_.size()));
  }
  partial_view_.push_back(node);
}

bool Scamp::partial_erase(const NodeId& node) {
  if (partial_index_.empty()) return erase_value(partial_view_, node);
  const std::uint32_t* slot = partial_index_.find(node.raw());
  if (slot == nullptr) return false;
  const std::uint32_t i = *slot;
  partial_index_.erase(node.raw());
  if (i + 1 != partial_view_.size()) {
    // Swap-remove: re-point the slid entry's index at its new slot.
    partial_view_[i] = partial_view_.back();
    partial_index_.insert(partial_view_[i].raw(), i);
  }
  partial_view_.pop_back();
  return true;
}

void Scamp::partial_clear() {
  partial_view_.clear();
  partial_index_.clear();
}

void Scamp::start(std::optional<NodeId> contact) {
  started_ = true;
  if (!contact.has_value() || *contact == self()) return;
  // "Its PartialView initially consists of its contact."
  partial_push(*contact);
  env_.send(*contact, wire::ScampSubscribe{self()});
}

void Scamp::handle(const NodeId& from, const wire::Message& msg) {
  if (const auto* sub = std::get_if<wire::ScampSubscribe>(&msg)) {
    handle_subscribe(from, *sub);
  } else if (const auto* fwd = std::get_if<wire::ScampForwardedSub>(&msg)) {
    handle_forwarded_sub(*fwd);
  } else if (std::holds_alternative<wire::ScampInViewNotify>(msg)) {
    if (from != self() &&
        std::find(in_view_.begin(), in_view_.end(), from) == in_view_.end()) {
      in_view_.push_back(from);
    }
  } else if (const auto* rep = std::get_if<wire::ScampReplace>(&msg)) {
    handle_replace(from, *rep);
  } else if (std::holds_alternative<wire::ScampHeartbeat>(msg)) {
    cycles_since_heartbeat_ = 0;
  } else {
    HPV_LOG_DEBUG("scamp %s: ignoring %s", self().to_string().c_str(),
                  wire::type_name(msg));
  }
}

void Scamp::handle_subscribe(const NodeId& /*from*/,
                             const wire::ScampSubscribe& m) {
  if (m.subscriber == self()) return;
  ++stats_.subscriptions_handled;
  // start() makes the subscriber adopt its contact as the first
  // PartialView entry, so receiving a subscription *is* the in-edge
  // announcement — record it or our own unsubscription cannot reach this
  // holder later.
  if (std::find(in_view_.begin(), in_view_.end(), m.subscriber) ==
      in_view_.end()) {
    in_view_.push_back(m.subscriber);
  }
  if (partial_view_.empty()) {
    // Bootstrap contact without a view yet: adopt the subscriber directly.
    keep_subscription(m.subscriber);
    return;
  }
  // Forward the new id to every PartialView member, plus c extra copies to
  // random members (the fault-tolerance redundancy).
  for (const NodeId& n : partial_view_) {
    env_.send(n, wire::ScampForwardedSub{m.subscriber, config_.forward_ttl});
  }
  for (std::size_t i = 0; i < config_.c; ++i) {
    const NodeId& n = env_.rng().pick(partial_view_);
    env_.send(n, wire::ScampForwardedSub{m.subscriber, config_.forward_ttl});
  }
}

void Scamp::handle_forwarded_sub(const wire::ScampForwardedSub& m) {
  // Keep with probability 1/(1+|PartialView|); integrate unconditionally if
  // the view is empty. A copy that randomly walked onto the subscriber
  // itself is re-forwarded, never counted as kept — dropping it would bleed
  // subscription copies and shrink views below the (c+1)·ln(n) target.
  const bool keep =
      m.subscriber != self() && !in_partial(m.subscriber) &&
      (partial_view_.empty() ||
       env_.rng().chance(1.0 / (1.0 + static_cast<double>(partial_view_.size()))));
  if (keep) {
    keep_subscription(m.subscriber);
    return;
  }
  if (m.ttl == 0 || partial_view_.empty()) {
    ++stats_.forwarded_subs_dropped;
    return;
  }
  ++stats_.forwarded_subs_relayed;
  const NodeId& n = env_.rng().pick(partial_view_);
  env_.send(n, wire::ScampForwardedSub{
                   m.subscriber, static_cast<std::uint16_t>(m.ttl - 1)});
}

void Scamp::keep_subscription(const NodeId& subscriber) {
  if (subscriber == self() || in_partial(subscriber)) return;
  ++stats_.forwarded_subs_kept;
  partial_push(subscriber);
  env_.send(subscriber, wire::ScampInViewNotify{});
}

void Scamp::handle_replace(const NodeId& from, const wire::ScampReplace& m) {
  erase_value(in_view_, from);  // the unsubscriber leaves our InView callers
  if (!partial_erase(m.old_id)) return;
  if (m.replacement != kNoNode && m.replacement != self() &&
      !in_partial(m.replacement)) {
    partial_push(m.replacement);
    env_.send(m.replacement, wire::ScampInViewNotify{});
  }
}

void Scamp::unsubscribe() {
  // Tell InView members to patch their PartialViews with our own members;
  // keep c+1 of them unreplaced so views shrink with the system.
  const std::size_t keep_unreplaced = std::min(in_view_.size(), config_.c + 1);
  const std::size_t replaced = in_view_.size() - keep_unreplaced;
  for (std::size_t i = 0; i < in_view_.size(); ++i) {
    NodeId replacement = kNoNode;
    if (i < replaced && !partial_view_.empty()) {
      replacement = partial_view_[i % partial_view_.size()];
      if (replacement == in_view_[i]) replacement = kNoNode;
    }
    env_.send(in_view_[i], wire::ScampReplace{self(), replacement});
  }
  partial_clear();
  in_view_.clear();
  started_ = false;
}

void Scamp::on_cycle() {
  if (!started_) return;
  ++cycle_count_;

  if (config_.heartbeat_period_cycles > 0 &&
      cycle_count_ % config_.heartbeat_period_cycles == 0) {
    for (const NodeId& n : partial_view_) {
      env_.send(n, wire::ScampHeartbeat{});
    }
    ++cycles_since_heartbeat_;
    if (cycles_since_heartbeat_ > config_.isolation_timeout_cycles) {
      // Nobody points at us anymore: rejoin through someone we still know.
      ++stats_.isolation_recoveries;
      cycles_since_heartbeat_ = 0;
      resubscribe();
    }
  }

  if (config_.lease_cycles > 0 && cycle_count_ % config_.lease_cycles == 0) {
    resubscribe();
  }
}

void Scamp::resubscribe() {
  if (partial_view_.empty()) return;
  ++stats_.resubscriptions;
  env_.send(env_.rng().pick(partial_view_), wire::ScampSubscribe{self()});
}

void Scamp::broadcast_targets(std::size_t fanout, const NodeId& from,
                              std::vector<NodeId>& out) {
  target_candidates_.clear();
  for (const NodeId& n : partial_view_) {
    if (n != from) target_candidates_.push_back(n);
  }
  env_.rng().sample_into(std::span<const NodeId>(target_candidates_), fanout,
                         out);
}

void Scamp::peer_unreachable(const NodeId& peer) {
  if (!config_.purge_on_unreachable) return;  // plain Scamp: no detector
  partial_erase(peer);
  erase_value(in_view_, peer);
}

void Scamp::on_send_failed(const NodeId& to, const wire::Message& msg) {
  (void)msg;
  if (!config_.purge_on_unreachable) return;
  partial_erase(to);
  erase_value(in_view_, to);
}

void Scamp::on_link_closed(const NodeId& peer) {
  partial_erase(peer);
  erase_value(in_view_, peer);
}

std::span<const NodeId> Scamp::dissemination_view() const {
  return partial_view_;
}

std::span<const NodeId> Scamp::backup_view() const { return in_view_; }

bool Scamp::erase_value(std::vector<NodeId>& v, const NodeId& node) {
  const auto it = std::find(v.begin(), v.end(), node);
  if (it == v.end()) return false;
  *it = v.back();
  v.pop_back();
  return true;
}

}  // namespace hyparview::baselines
