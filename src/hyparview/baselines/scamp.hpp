// Scamp membership protocol (Ganesh, Kermarrec, Massoulié; NGC 2001 / IEEE
// ToC 2003), the reactive-strategy baseline of the paper's evaluation (§5).
//
// Scamp grows PartialViews of expected size (c+1)·log(n) without any node
// knowing n. A new subscription reaching a node is forwarded to all of that
// node's PartialView plus c extra random copies; every forwarded copy is
// integrated by the node it reaches with probability 1/(1+|PartialView|) and
// forwarded onward otherwise. Nodes track an InView (who has them in their
// PartialView) to support unsubscription and isolation recovery:
//  * lease: subscriptions expire after `lease_cycles`; nodes resubscribe
//    through a random PartialView member (this is why Scamp is "not purely
//    reactive", §2.2 footnote);
//  * heartbeat: nodes send periodic heartbeats along PartialView edges; a
//    node that hears none for `isolation_timeout_cycles` assumes isolation
//    and resubscribes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hyparview/common/flat_hash.hpp"
#include "hyparview/common/node_id.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::baselines {

struct ScampConfig {
  /// Fault-tolerance parameter c: extra subscription copies (paper: 4).
  std::size_t c = 4;
  /// Loop guard for forwarded subscriptions (generous; drops are counted).
  std::uint16_t forward_ttl = 256;
  /// Resubscribe every this many cycles (0 = lease disabled; the paper's
  /// experiments run "before the lease time of Scamp expires").
  std::size_t lease_cycles = 0;
  /// Send heartbeats along PartialView edges every this many cycles
  /// (0 = disabled).
  std::size_t heartbeat_period_cycles = 1;
  /// Cycles without any heartbeat before assuming isolation & resubscribing.
  std::size_t isolation_timeout_cycles = 10;
  /// Purge unreachable peers reported by the gossip layer (off: plain Scamp).
  bool purge_on_unreachable = false;

  void validate() const;
};

struct ScampStats {
  std::uint64_t subscriptions_handled = 0;
  std::uint64_t forwarded_subs_kept = 0;
  std::uint64_t forwarded_subs_relayed = 0;
  std::uint64_t forwarded_subs_dropped = 0;  ///< TTL exhausted (loop guard)
  std::uint64_t resubscriptions = 0;         ///< lease + isolation recovery
  std::uint64_t isolation_recoveries = 0;
};

class Scamp final : public membership::Protocol {
 public:
  Scamp(membership::Env& env, ScampConfig config);

  // --- membership::Protocol --------------------------------------------------
  void start(std::optional<NodeId> contact) override;
  void handle(const NodeId& from, const wire::Message& msg) override;
  void on_send_failed(const NodeId& to, const wire::Message& msg) override;
  void on_link_closed(const NodeId& peer) override;
  void on_cycle() override;
  using membership::Protocol::broadcast_targets;
  void broadcast_targets(std::size_t fanout, const NodeId& from,
                         std::vector<NodeId>& out) override;
  void peer_unreachable(const NodeId& peer) override;
  [[nodiscard]] std::span<const NodeId> dissemination_view() const override;
  [[nodiscard]] std::span<const NodeId> backup_view() const override;
  [[nodiscard]] const char* name() const override { return "scamp"; }

  /// Graceful departure (§ unsubscription): InView members are told to
  /// replace us with our PartialView members; c+1 of them simply drop us so
  /// view sizes shrink as the system does.
  void unsubscribe();

  void leave() override { unsubscribe(); }

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] const std::vector<NodeId>& partial_view() const {
    return partial_view_;
  }
  [[nodiscard]] const std::vector<NodeId>& in_view() const { return in_view_; }
  [[nodiscard]] const ScampStats& stats() const { return stats_; }
  [[nodiscard]] const ScampConfig& config() const { return config_; }

  /// PartialView membership, probed once per forwarded-subscription event —
  /// ~9.5M times across a 10k-node bootstrap, the slowest build in the
  /// harness. Adaptive like the simulator's per-node link tables: small
  /// views are scanned (the vector's cache lines are touched by the
  /// forwarding pick anyway, so a scan is nearly free and measurably beats
  /// a hash probe whose table lines are pure extra cache footprint); once
  /// the view outgrows kPartialIndexThreshold a common/flat_hash index
  /// takes over and the probe is O(1) instead of O(|view|). Public so
  /// tests can pin index-mode behavior against the scan.
  [[nodiscard]] bool in_partial(const NodeId& node) const {
    if (partial_index_.empty()) {
      for (const NodeId& n : partial_view_) {
        if (n == node) return true;
      }
      return false;
    }
    return partial_index_.contains(node.raw());
  }

  /// View size beyond which the PartialView id→slot index kicks in.
  /// (c+1)·ln(n) crosses 64 only in the hundreds-of-thousands-of-nodes
  /// range — every paper-scale experiment stays in scan mode.
  static constexpr std::size_t kPartialIndexThreshold = 64;

  /// True once the flat-hash index is active (introspection for tests).
  [[nodiscard]] bool partial_index_active() const {
    return !partial_index_.empty();
  }

 private:
  void handle_subscribe(const NodeId& from, const wire::ScampSubscribe& m);
  void handle_forwarded_sub(const wire::ScampForwardedSub& m);
  void handle_replace(const NodeId& from, const wire::ScampReplace& m);

  /// Integrates `subscriber` into the PartialView and notifies it so it can
  /// maintain its InView.
  void keep_subscription(const NodeId& subscriber);

  void resubscribe();

  /// PartialView mutation helpers: the dense vector (sampling, iteration)
  /// and the id→slot index move together once the index is active. The
  /// vector uses swap-remove, so the index re-points the slid entry on
  /// erase.
  void partial_push(const NodeId& node);
  bool partial_erase(const NodeId& node);
  void partial_clear();

  [[nodiscard]] NodeId self() const { return env_.self(); }

  static bool erase_value(std::vector<NodeId>& v, const NodeId& node);

  membership::Env& env_;
  ScampConfig config_;
  std::vector<NodeId> partial_view_;
  /// NodeId::raw() → slot in partial_view_. Invariant: empty (scan mode),
  /// or exactly mirrors partial_view_ (index mode — view crossed
  /// kPartialIndexThreshold; hysteresis: once built it stays).
  FlatMap<std::uint64_t, std::uint32_t> partial_index_;
  std::vector<NodeId> in_view_;

  /// Reused broadcast_targets candidate buffer (dissemination hot path).
  std::vector<NodeId> target_candidates_;

  std::size_t cycle_count_ = 0;
  std::size_t cycles_since_heartbeat_ = 0;
  bool started_ = false;

  ScampStats stats_;
};

}  // namespace hyparview::baselines
