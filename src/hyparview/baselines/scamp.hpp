// Scamp membership protocol (Ganesh, Kermarrec, Massoulié; NGC 2001 / IEEE
// ToC 2003), the reactive-strategy baseline of the paper's evaluation (§5).
//
// Scamp grows PartialViews of expected size (c+1)·log(n) without any node
// knowing n. A new subscription reaching a node is forwarded to all of that
// node's PartialView plus c extra random copies; every forwarded copy is
// integrated by the node it reaches with probability 1/(1+|PartialView|) and
// forwarded onward otherwise. Nodes track an InView (who has them in their
// PartialView) to support unsubscription and isolation recovery:
//  * lease: subscriptions expire after `lease_cycles`; nodes resubscribe
//    through a random PartialView member (this is why Scamp is "not purely
//    reactive", §2.2 footnote);
//  * heartbeat: nodes send periodic heartbeats along PartialView edges; a
//    node that hears none for `isolation_timeout_cycles` assumes isolation
//    and resubscribes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hyparview/common/node_id.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::baselines {

struct ScampConfig {
  /// Fault-tolerance parameter c: extra subscription copies (paper: 4).
  std::size_t c = 4;
  /// Loop guard for forwarded subscriptions (generous; drops are counted).
  std::uint16_t forward_ttl = 256;
  /// Resubscribe every this many cycles (0 = lease disabled; the paper's
  /// experiments run "before the lease time of Scamp expires").
  std::size_t lease_cycles = 0;
  /// Send heartbeats along PartialView edges every this many cycles
  /// (0 = disabled).
  std::size_t heartbeat_period_cycles = 1;
  /// Cycles without any heartbeat before assuming isolation & resubscribing.
  std::size_t isolation_timeout_cycles = 10;
  /// Purge unreachable peers reported by the gossip layer (off: plain Scamp).
  bool purge_on_unreachable = false;

  void validate() const;
};

struct ScampStats {
  std::uint64_t subscriptions_handled = 0;
  std::uint64_t forwarded_subs_kept = 0;
  std::uint64_t forwarded_subs_relayed = 0;
  std::uint64_t forwarded_subs_dropped = 0;  ///< TTL exhausted (loop guard)
  std::uint64_t resubscriptions = 0;         ///< lease + isolation recovery
  std::uint64_t isolation_recoveries = 0;
};

class Scamp final : public membership::Protocol {
 public:
  Scamp(membership::Env& env, ScampConfig config);

  // --- membership::Protocol --------------------------------------------------
  void start(std::optional<NodeId> contact) override;
  void handle(const NodeId& from, const wire::Message& msg) override;
  void on_send_failed(const NodeId& to, const wire::Message& msg) override;
  void on_link_closed(const NodeId& peer) override;
  void on_cycle() override;
  using membership::Protocol::broadcast_targets;
  void broadcast_targets(std::size_t fanout, const NodeId& from,
                         std::vector<NodeId>& out) override;
  void peer_unreachable(const NodeId& peer) override;
  [[nodiscard]] std::span<const NodeId> dissemination_view() const override;
  [[nodiscard]] std::span<const NodeId> backup_view() const override;
  [[nodiscard]] const char* name() const override { return "scamp"; }

  /// Graceful departure (§ unsubscription): InView members are told to
  /// replace us with our PartialView members; c+1 of them simply drop us so
  /// view sizes shrink as the system does.
  void unsubscribe();

  void leave() override { unsubscribe(); }

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] const std::vector<NodeId>& partial_view() const {
    return partial_view_;
  }
  [[nodiscard]] const std::vector<NodeId>& in_view() const { return in_view_; }
  [[nodiscard]] const ScampStats& stats() const { return stats_; }
  [[nodiscard]] const ScampConfig& config() const { return config_; }

 private:
  void handle_subscribe(const NodeId& from, const wire::ScampSubscribe& m);
  void handle_forwarded_sub(const wire::ScampForwardedSub& m);
  void handle_replace(const NodeId& from, const wire::ScampReplace& m);

  /// Integrates `subscriber` into the PartialView and notifies it so it can
  /// maintain its InView.
  void keep_subscription(const NodeId& subscriber);

  void resubscribe();

  [[nodiscard]] bool in_partial(const NodeId& node) const;
  [[nodiscard]] NodeId self() const { return env_.self(); }

  static bool erase_value(std::vector<NodeId>& v, const NodeId& node);

  membership::Env& env_;
  ScampConfig config_;
  std::vector<NodeId> partial_view_;
  std::vector<NodeId> in_view_;

  /// Reused broadcast_targets candidate buffer (dissemination hot path).
  std::vector<NodeId> target_candidates_;

  std::size_t cycle_count_ = 0;
  std::size_t cycles_since_heartbeat_ = 0;
  bool started_ = false;

  ScampStats stats_;
};

}  // namespace hyparview::baselines
