// Cyclon membership protocol (Voulgaris, Gavidia, van Steen, JNSM 2005),
// the cyclic-strategy baseline of the paper's evaluation (§5).
//
// Each node keeps a fixed-capacity view of (id, age) entries. Periodically it
// ages all entries, removes the oldest peer Q, and exchanges a sample of its
// view (plus a fresh self-entry) with Q; both sides integrate the received
// entries, preferring empty slots and then the slots of entries they shipped.
// Joins are in-degree-preserving random walks: the node where a walk ends
// swaps a random view entry for the joiner and gifts the displaced entry to
// the joiner.
//
// CyclonAcked — the paper's strawman that adds a dissemination-time failure
// detector — is this class with `purge_on_unreachable = true`: when the
// gossip layer reports an undeliverable peer, the entry is purged.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hyparview/common/node_id.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::baselines {

struct CyclonConfig {
  /// View capacity (paper's comparison setup: 35 = HyParView active+passive).
  std::size_t view_capacity = 35;
  /// Shuffle exchange length l, including the fresh self entry (paper: 14).
  std::size_t shuffle_length = 14;
  /// TTL of join random walks (paper: 5).
  std::uint8_t join_walk_ttl = 5;
  /// Number of join walks the introducer fires (0 = view_capacity walks,
  /// the Cyclon default: the joiner's view gets filled by walk gifts).
  std::size_t join_walks = 0;
  /// Purge view entries the gossip layer failed to reach (CyclonAcked).
  bool purge_on_unreachable = false;
  /// When the shuffle target is detected dead, retry with the next oldest
  /// entry (Cyclon removes unresponsive shuffle targets).
  bool shuffle_retry_on_failure = true;

  void validate() const;
};

struct CyclonStats {
  std::uint64_t shuffles_initiated = 0;
  std::uint64_t shuffles_answered = 0;
  std::uint64_t join_walks_terminated = 0;
  std::uint64_t gifts_received = 0;
  std::uint64_t entries_purged = 0;
};

class Cyclon final : public membership::Protocol {
 public:
  Cyclon(membership::Env& env, CyclonConfig config);

  // --- membership::Protocol --------------------------------------------------
  void start(std::optional<NodeId> contact) override;
  void handle(const NodeId& from, const wire::Message& msg) override;
  void on_send_failed(const NodeId& to, const wire::Message& msg) override;
  void on_link_closed(const NodeId& peer) override;
  void on_cycle() override;
  using membership::Protocol::broadcast_targets;
  void broadcast_targets(std::size_t fanout, const NodeId& from,
                         std::vector<NodeId>& out) override;
  void peer_unreachable(const NodeId& peer) override;
  [[nodiscard]] std::span<const NodeId> dissemination_view() const override;
  [[nodiscard]] std::span<const NodeId> backup_view() const override;
  [[nodiscard]] const char* name() const override {
    return config_.purge_on_unreachable ? "cyclon-acked" : "cyclon";
  }

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] const std::vector<wire::AgedId>& view() const { return view_; }
  [[nodiscard]] const CyclonStats& stats() const { return stats_; }
  [[nodiscard]] const CyclonConfig& config() const { return config_; }

 private:
  void handle_join_walk(const NodeId& sender, const wire::CyclonJoinWalk& m);
  void handle_shuffle(const NodeId& from, const wire::CyclonShuffle& m);
  void handle_shuffle_reply(const NodeId& from,
                            const wire::CyclonShuffleReply& m);

  /// Terminal step of a join walk: swap a random entry for the joiner and
  /// gift the displaced entry to it.
  void terminate_join_walk(const NodeId& new_node);

  void initiate_shuffle();

  /// Cyclon integration rule: skip self/known ids; fill empty slots first,
  /// then replace the entries shipped to the peer (`shipped` — a by-value
  /// flat list consumed on the stack, never the allocator).
  void integrate(std::span<const wire::AgedId> received,
                 wire::AgedList shipped);

  [[nodiscard]] bool in_view(const NodeId& node) const;
  bool remove_entry(const NodeId& node);
  [[nodiscard]] NodeId self() const { return env_.self(); }

  membership::Env& env_;
  CyclonConfig config_;
  std::vector<wire::AgedId> view_;

  /// Scratch buffers reused across calls so the dissemination AND
  /// membership hot paths do not allocate: candidate ids for
  /// broadcast_targets, the id projection of view_ handed out by
  /// dissemination_view(), and the exchange-builder sample scratch.
  std::vector<NodeId> target_candidates_;
  mutable std::vector<NodeId> view_ids_;
  std::vector<wire::AgedId> sample_scratch_;

  /// Entries shipped in the most recent outgoing shuffle, used when the
  /// reply arrives. (One shuffle per cycle; replies drain before the next.)
  /// Flat list + valid flag instead of optional<vector>: POD, reused.
  wire::AgedList pending_shuffle_;
  bool pending_shuffle_valid_ = false;

  CyclonStats stats_;
};

}  // namespace hyparview::baselines
