#include "hyparview/baselines/cyclon.hpp"

#include <algorithm>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::baselines {

void CyclonConfig::validate() const {
  HPV_CHECK_THROW(view_capacity >= 1, "cyclon view capacity must be >= 1");
  HPV_CHECK_THROW(shuffle_length >= 1, "cyclon shuffle length must be >= 1");
  HPV_CHECK_THROW(shuffle_length <= view_capacity + 1,
                  "cyclon shuffle length must not exceed view capacity + 1");
  // The exchange payload travels as a flat bounded wire frame.
  HPV_CHECK_THROW(shuffle_length <= wire::kMaxCyclonShuffleEntries,
                  "cyclon shuffle length exceeds the flat exchange frame "
                  "capacity (wire::kMaxCyclonShuffleEntries)");
}

Cyclon::Cyclon(membership::Env& env, CyclonConfig config)
    : env_(env), config_(config) {
  config_.validate();
  view_.reserve(config_.view_capacity + 1);
  target_candidates_.reserve(config_.view_capacity + 1);
  view_ids_.reserve(config_.view_capacity + 1);
  // sample_into() first assigns the WHOLE view into the scratch before the
  // partial shuffle, so the reservation must cover the view, not just the
  // exchange length.
  sample_scratch_.reserve(config_.view_capacity + 1);
}

void Cyclon::start(std::optional<NodeId> contact) {
  if (!contact.has_value() || *contact == self()) return;
  // The introducer fires the in-degree-preserving join walks on our behalf;
  // our view fills with the entries displaced at the walk ends. The joiner
  // does NOT keep the introducer — that is what keeps in-degrees unchanged
  // even when a single contact bootstraps the whole overlay (§5).
  env_.send(*contact, wire::CyclonJoinWalk{self(), config_.join_walk_ttl});
}

void Cyclon::handle(const NodeId& from, const wire::Message& msg) {
  if (const auto* jw = std::get_if<wire::CyclonJoinWalk>(&msg)) {
    handle_join_walk(from, *jw);
  } else if (const auto* sh = std::get_if<wire::CyclonShuffle>(&msg)) {
    handle_shuffle(from, *sh);
  } else if (const auto* sr = std::get_if<wire::CyclonShuffleReply>(&msg)) {
    handle_shuffle_reply(from, *sr);
  } else if (const auto* gift = std::get_if<wire::CyclonJoinGift>(&msg)) {
    ++stats_.gifts_received;
    if (gift->entry.id != self() && !in_view(gift->entry.id) &&
        view_.size() < config_.view_capacity) {
      view_.push_back(gift->entry);
    }
  } else {
    HPV_LOG_DEBUG("cyclon %s: ignoring %s", self().to_string().c_str(),
                  wire::type_name(msg));
  }
}

void Cyclon::handle_join_walk(const NodeId& sender,
                              const wire::CyclonJoinWalk& m) {
  if (m.new_node == self()) return;
  if (sender == m.new_node) {
    // We are the introducer: launch the walks (one per view slot of the
    // joiner, so its view fills with displaced entries).
    const std::size_t walks =
        config_.join_walks > 0 ? config_.join_walks : config_.view_capacity;
    if (view_.empty()) {
      // Two-node system bootstrap: adopt the joiner directly.
      terminate_join_walk(m.new_node);
      return;
    }
    for (std::size_t i = 0; i < walks; ++i) {
      const wire::AgedId& target =
          view_[static_cast<std::size_t>(env_.rng().below(view_.size()))];
      env_.send(target.id, wire::CyclonJoinWalk{m.new_node, m.ttl});
    }
    return;
  }
  if (m.ttl == 0 || view_.empty()) {
    terminate_join_walk(m.new_node);
    return;
  }
  const wire::AgedId& next =
      view_[static_cast<std::size_t>(env_.rng().below(view_.size()))];
  env_.send(next.id, wire::CyclonJoinWalk{
                         m.new_node, static_cast<std::uint8_t>(m.ttl - 1)});
}

void Cyclon::terminate_join_walk(const NodeId& new_node) {
  if (new_node == self()) return;
  ++stats_.join_walks_terminated;
  if (in_view(new_node)) return;
  if (view_.size() < config_.view_capacity) {
    // Young overlay: adopt the joiner and gift a fresh self entry so its
    // view is never left empty (two-node bootstrap).
    view_.push_back(wire::AgedId{new_node, 0});
    env_.send(new_node, wire::CyclonJoinGift{wire::AgedId{self(), 0}});
    return;
  }
  // Swap a random entry for the joiner; gift the displaced entry so the
  // joiner builds its own view. This keeps every in-degree unchanged.
  const std::size_t idx =
      static_cast<std::size_t>(env_.rng().below(view_.size()));
  const wire::AgedId displaced = view_[idx];
  view_[idx] = wire::AgedId{new_node, 0};
  if (displaced.id != new_node) {
    env_.send(new_node, wire::CyclonJoinGift{displaced});
  }
}

void Cyclon::on_cycle() {
  for (auto& entry : view_) ++entry.age;
  pending_shuffle_valid_ = false;
  initiate_shuffle();
}

void Cyclon::initiate_shuffle() {
  if (view_.empty()) return;
  // 1. Pick the oldest peer Q and remove it from the view.
  std::size_t oldest = 0;
  for (std::size_t i = 1; i < view_.size(); ++i) {
    if (view_[i].age > view_[oldest].age) oldest = i;
  }
  const NodeId target = view_[oldest].id;
  view_[oldest] = view_.back();
  view_.pop_back();

  // 2. Sample l-1 other entries (reused scratch) and build the flat
  // exchange frame: a fresh self entry first, the samples after it. The
  // shipped sample is kept as a flat list too, for the reply's
  // integration step — the whole exchange is allocation-free.
  env_.rng().sample_into(std::span<const wire::AgedId>(view_),
                         config_.shuffle_length - 1, sample_scratch_);
  wire::CyclonShuffle outgoing;
  outgoing.entries.push_back(wire::AgedId{self(), 0});
  for (const auto& e : sample_scratch_) outgoing.entries.push_back(e);

  ++stats_.shuffles_initiated;
  pending_shuffle_.assign(sample_scratch_);
  pending_shuffle_valid_ = true;
  env_.send(target, outgoing);
}

void Cyclon::handle_shuffle(const NodeId& from, const wire::CyclonShuffle& m) {
  ++stats_.shuffles_answered;
  // Answer with a random sample of our own view (no fresh self entry).
  env_.rng().sample_into(std::span<const wire::AgedId>(view_),
                         std::min(config_.shuffle_length, m.entries.size()),
                         sample_scratch_);
  wire::CyclonShuffleReply reply;
  reply.entries.assign(sample_scratch_);
  env_.send(from, reply);
  integrate(m.entries.span(), reply.entries);
}

void Cyclon::handle_shuffle_reply(const NodeId& /*from*/,
                                  const wire::CyclonShuffleReply& m) {
  wire::AgedList shipped;
  if (pending_shuffle_valid_) {
    shipped = pending_shuffle_;
    pending_shuffle_valid_ = false;
  }
  integrate(m.entries.span(), shipped);
}

void Cyclon::integrate(std::span<const wire::AgedId> received,
                       wire::AgedList shipped) {
  for (const auto& entry : received) {
    if (entry.id == self() || in_view(entry.id)) continue;
    if (view_.size() < config_.view_capacity) {
      view_.push_back(entry);
      continue;
    }
    // Replace one of the entries we shipped to the peer, if any remain.
    // `shipped` is a by-value flat list: consuming it mutates a stack copy.
    bool replaced = false;
    while (!shipped.empty() && !replaced) {
      const NodeId victim = shipped.back().id;
      shipped.pop_back();
      const auto it =
          std::find_if(view_.begin(), view_.end(),
                       [&](const wire::AgedId& e) { return e.id == victim; });
      if (it != view_.end()) {
        *it = entry;
        replaced = true;
      }
    }
    // View full and nothing left to replace: drop the received entry.
  }
}

void Cyclon::broadcast_targets(std::size_t fanout, const NodeId& from,
                               std::vector<NodeId>& out) {
  target_candidates_.clear();
  for (const auto& entry : view_) {
    if (entry.id != from) target_candidates_.push_back(entry.id);
  }
  env_.rng().sample_into(std::span<const NodeId>(target_candidates_), fanout,
                         out);
}

void Cyclon::peer_unreachable(const NodeId& peer) {
  if (!config_.purge_on_unreachable) return;  // plain Cyclon: no detector
  if (remove_entry(peer)) ++stats_.entries_purged;
}

void Cyclon::on_send_failed(const NodeId& to, const wire::Message& msg) {
  if (std::holds_alternative<wire::CyclonShuffle>(msg)) {
    // The shuffle target is dead. Its entry was already removed when the
    // shuffle started; Cyclon moves on to the next oldest peer.
    pending_shuffle_valid_ = false;
    if (config_.shuffle_retry_on_failure) initiate_shuffle();
    return;
  }
  // Other membership traffic (walks, gifts, replies): plain Cyclon gossips
  // over an unreliable channel and never learns of these losses; only the
  // acked variant purges the destination.
  if (config_.purge_on_unreachable && remove_entry(to)) {
    ++stats_.entries_purged;
  }
}

void Cyclon::on_link_closed(const NodeId& peer) {
  if (remove_entry(peer)) ++stats_.entries_purged;
}

std::span<const NodeId> Cyclon::dissemination_view() const {
  // Project the aged view onto plain ids into a reused per-instance buffer
  // (valid until the next call / view mutation, per the interface contract).
  view_ids_.clear();
  for (const auto& entry : view_) view_ids_.push_back(entry.id);
  return view_ids_;
}

std::span<const NodeId> Cyclon::backup_view() const { return {}; }

bool Cyclon::in_view(const NodeId& node) const {
  return std::any_of(view_.begin(), view_.end(),
                     [&](const wire::AgedId& e) { return e.id == node; });
}

bool Cyclon::remove_entry(const NodeId& node) {
  const auto it =
      std::find_if(view_.begin(), view_.end(),
                   [&](const wire::AgedId& e) { return e.id == node; });
  if (it == view_.end()) return false;
  *it = view_.back();
  view_.pop_back();
  return true;
}

}  // namespace hyparview::baselines
