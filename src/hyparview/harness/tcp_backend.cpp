#include "hyparview/harness/tcp_backend.hpp"

#include <numeric>
#include <optional>

#include "hyparview/common/assert.hpp"
#include "hyparview/harness/sim_backend.hpp"
#include "hyparview/harness/stats_export.hpp"

namespace hyparview::harness {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

TcpBackendConfig TcpBackendConfig::defaults_for(ProtocolKind kind,
                                                std::size_t nodes,
                                                std::uint64_t seed) {
  // Reuse the §5.1 parameter block verbatim (single source of truth), then
  // drop the simulator-only pieces.
  const NetworkConfig base = NetworkConfig::defaults_for(kind, nodes, seed);
  TcpBackendConfig cfg;
  cfg.kind = kind;
  cfg.node_count = nodes;
  cfg.seed = seed;
  cfg.fanout = base.fanout;
  cfg.hyparview = base.hyparview;
  cfg.cyclon = base.cyclon;
  cfg.scamp = base.scamp;
  cfg.gossip = base.gossip;
  cfg.adversary = base.adversary;
  return cfg;
}

void TcpBackend::CountingObserver::on_deliver(const NodeId& node,
                                              std::uint64_t msg_id,
                                              std::uint16_t hops) {
  ++owner_.frames_observed_;
  owner_.recorder_.on_deliver(node, msg_id, hops);
}

void TcpBackend::CountingObserver::on_duplicate(const NodeId& node,
                                                std::uint64_t msg_id) {
  ++owner_.frames_observed_;
  owner_.recorder_.on_duplicate(node, msg_id);
}

TcpBackend::TcpBackend(TcpBackendConfig config)
    : config_(config),
      master_rng_(derive_seed(config.seed, 0x7c9'0000ull)),
      observer_(*this) {
  HPV_CHECK_THROW(config_.node_count >= 2,
                  "cluster needs at least two nodes");
  if (config_.adversary.enabled()) {
    adversary_ = std::make_unique<Adversary>(
        config_.adversary, config_.seed, /*real_addresses=*/true);
    adversary_->select(config_.node_count);
  }
  // Latency metrics read the event loop's monotonic clock — real
  // publish-to-last-delivery times over loopback sockets.
  recorder_.set_time_source([this] { return loop_.now(); });
}

TcpBackend::~TcpBackend() {
  for (auto& node : nodes_) {
    if (node.transport) node.transport->shutdown();
  }
}

void TcpBackend::wait(Duration d) {
  loop_.run_until([] { return false; }, d);
}

std::unique_ptr<membership::Protocol> TcpBackend::make_protocol(
    membership::Env& env, std::size_t index) {
  std::unique_ptr<membership::Protocol> inner;
  switch (config_.kind) {
    case ProtocolKind::kHyParView:
      inner = std::make_unique<core::HyParView>(env, config_.hyparview);
      break;
    case ProtocolKind::kCyclon:
    case ProtocolKind::kCyclonAcked:
      inner = std::make_unique<baselines::Cyclon>(env, config_.cyclon);
      break;
    case ProtocolKind::kScamp:
      inner = std::make_unique<baselines::Scamp>(env, config_.scamp);
      break;
  }
  HPV_CHECK(inner != nullptr);
  return maybe_wrap_adversarial(adversary_.get(), index, env, config_.kind,
                                std::move(inner));
}

std::size_t TcpBackend::spawn_node() {
  const std::size_t index = nodes_.size();
  net::TcpTransportConfig tcfg = config_.transport;
  tcfg.rng_seed = derive_seed(config_.seed, index + 1);
  TcpNode node;
  node.transport =
      std::make_unique<net::TcpTransport>(loop_, nullptr, tcfg);
  gossip::GossipConfig gcfg = config_.gossip;
  gcfg.fanout = config_.fanout;
  node.runtime = std::make_unique<gossip::NodeRuntime>(
      *node.transport, make_protocol(*node.transport, index), gcfg,
      &observer_);
  node.transport->set_endpoint(node.runtime.get());
  // Overwriting insert: the kernel may hand a dead node's ephemeral port to
  // a later listener, and over TCP the address IS the identity — a view
  // entry naming a reused address reaches whoever owns it now, so the index
  // must map to the current owner, not the corpse.
  index_by_id_.insert(node.transport->local_id().raw(), index);
  nodes_.push_back(std::move(node));
  ++alive_count_;
  return index;
}

void TcpBackend::build() {
  HPV_CHECK(!built_);
  built_ = true;
  // Stats endpoint first, so a poller can watch the bootstrap itself.
  if (config_.stats_port >= 0) {
    stats_ = std::make_unique<StatsExporter>(*this, config_.stats_port);
  }
  nodes_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) spawn_node();
  // Serial bootstrap (§5): each join's dial/walk traffic settles before
  // the next node joins — same policy as the sim backend, real handshakes.
  nodes_[0].runtime->protocol().start(std::nullopt);
  wait(config_.join_settle);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    std::size_t contact = 0;
    if (config_.kind == ProtocolKind::kScamp) {
      contact = static_cast<std::size_t>(master_rng_.below(i));
    }
    nodes_[i].runtime->protocol().start(id_of(contact));
    wait(config_.join_settle);
  }
}

std::size_t TcpBackend::add_node() {
  HPV_CHECK(built_);
  HPV_CHECK_THROW(alive_count_ > 0,
                  "add_node: no alive node left to act as join contact");
  const std::size_t index = spawn_node();
  std::size_t contact = index;
  while (contact == index) contact = random_alive_node();
  nodes_[index].runtime->protocol().start(id_of(contact));
  wait(config_.join_settle);
  return index;
}

void TcpBackend::kill_node(std::size_t i) {
  HPV_CHECK(i < nodes_.size());
  if (!nodes_[i].alive) return;
  nodes_[i].transport->shutdown();
  nodes_[i].alive = false;
  --alive_count_;
}

void TcpBackend::leave_node(std::size_t i, bool graceful) {
  HPV_CHECK(i < nodes_.size());
  if (!nodes_[i].alive) return;
  if (graceful) {
    nodes_[i].runtime->protocol().leave();
    // Unlike the simulator (where in-flight writes survive the sender's
    // exit), a real shutdown discards unflushed frames — give the goodbyes
    // an actual flush window before the process "exits".
    wait(config_.leave_settle);
  }
  kill_node(i);
  settle();
}

void TcpBackend::run_cycles(std::size_t n, const CycleOptions& options) {
  (void)options;  // quiescence batching is a sim concept; see header.
  cycle_order_.resize(nodes_.size());
  std::iota(cycle_order_.begin(), cycle_order_.end(), 0);
  for (std::size_t round = 0; round < n; ++round) {
    master_rng_.shuffle(cycle_order_);
    for (const std::size_t i : cycle_order_) {
      if (!nodes_[i].alive) continue;
      nodes_[i].runtime->protocol().on_cycle();
    }
    wait(config_.cycle_settle);
  }
}

std::uint64_t TcpBackend::inject_broadcast(std::size_t source) {
  HPV_CHECK(source < nodes_.size() && nodes_[source].alive);
  const std::uint64_t msg_id = next_msg_id_++;
  recorder_.begin_message(msg_id, alive_count_);
  nodes_[source].runtime->gossip().broadcast(msg_id);
  return msg_id;
}

void TcpBackend::settle_broadcasts(std::span<const std::uint64_t> ids) {
  if (ids.empty()) {
    settle();
    return;
  }
  // Same cutoff structure as broadcast_from, aggregated: completion is
  // every id reaching its own registered alive population; "progress" is
  // the combined delivered+duplicate count over the batch, so one still-
  // flooding message keeps the whole window open.
  std::uint64_t last_seen = 0;
  TimePoint last_progress = loop_.now();
  loop_.run_until(
      [&] {
        bool all_done = true;
        std::uint64_t seen = 0;
        for (const std::uint64_t id : ids) {
          const analysis::MessageResult& r = recorder_.result(id);
          if (r.delivered < r.alive_nodes) all_done = false;
          seen += static_cast<std::uint64_t>(r.delivered) + r.duplicates;
        }
        if (all_done) return true;
        const TimePoint now = loop_.now();
        if (seen != last_seen) {
          last_seen = seen;
          last_progress = now;
          return false;
        }
        const Duration quiet = now > last_progress ? now - last_progress : 0;
        return last_seen > 0 && quiet > config_.broadcast_quiet_window;
      },
      config_.broadcast_timeout);
}

analysis::MessageResult TcpBackend::broadcast_from(std::size_t source) {
  const std::uint64_t msg_id = inject_broadcast(source);
  const std::size_t expect = recorder_.result(msg_id).alive_nodes;
  // Done when every alive node delivered — or when the flood went quiet
  // (no new deliveries/duplicates for a window): after failures, protocols
  // without a failure detector legitimately stall below full delivery, and
  // waiting the whole timeout per probe would turn a partial-delivery
  // measurement into minutes of dead air.
  //
  // Two edge cases the cutoff must get right (tcp_backend_test pins both):
  //  * before the first observation there is no "last progress" to go
  //    quiet from — slow connection establishment must not be misread as a
  //    stalled flood, so the quiet cutoff only engages once something has
  //    been seen;
  //  * a flood that never produces an observation (or a quiet window
  //    misconfigured above the timeout) must still terminate: the hard
  //    `broadcast_timeout` deadline inside run_until is the backstop.
  std::uint64_t last_seen = 0;
  TimePoint last_progress = loop_.now();
  loop_.run_until(
      [&] {
        const analysis::MessageResult& r = recorder_.result(msg_id);
        if (r.delivered >= expect) return true;
        const std::uint64_t seen =
            static_cast<std::uint64_t>(r.delivered) + r.duplicates;
        const TimePoint now = loop_.now();
        if (seen != last_seen) {
          last_seen = seen;
          last_progress = now;
          return false;  // progress this very poll; the window restarts
        }
        // Same monotonic clock on both sides, but clamp anyway: a negative
        // elapsed must read as "not quiet yet", never as an underflowed
        // huge gap that ends the wait instantly.
        const Duration quiet = now > last_progress ? now - last_progress : 0;
        return last_seen > 0 && quiet > config_.broadcast_quiet_window;
      },
      config_.broadcast_timeout);
  return recorder_.result(msg_id);
}

void TcpBackend::set_fanout(std::size_t fanout) {
  config_.fanout = fanout;
  for (auto& node : nodes_) node.runtime->gossip().set_fanout(fanout);
}

std::size_t TcpBackend::index_of(const NodeId& id) const {
  const std::size_t* slot = index_by_id_.find(id.raw());
  return slot == nullptr ? kNpos : *slot;
}

std::size_t TcpBackend::peer_slot(const NodeId& peer) const {
  const std::size_t j = index_of(peer);
  return j == kNpos ? kNoPeer : j;
}

bool TcpBackend::alive(std::size_t i) const {
  HPV_CHECK(i < nodes_.size());
  return nodes_[i].alive;
}

NodeId TcpBackend::id_of(std::size_t i) const {
  HPV_CHECK(i < nodes_.size());
  return nodes_[i].transport->local_id();
}

membership::Protocol& TcpBackend::protocol(std::size_t i) {
  HPV_CHECK(i < nodes_.size());
  return nodes_[i].runtime->protocol();
}

const membership::Protocol& TcpBackend::protocol(std::size_t i) const {
  HPV_CHECK(i < nodes_.size());
  return nodes_[i].runtime->protocol();
}

gossip::NodeRuntime& TcpBackend::runtime(std::size_t i) {
  HPV_CHECK(i < nodes_.size());
  return *nodes_[i].runtime;
}

net::TcpTransport& TcpBackend::transport(std::size_t i) {
  HPV_CHECK(i < nodes_.size());
  return *nodes_[i].transport;
}

}  // namespace hyparview::harness
