// Adversarial fault injection: Byzantine peer behaviors at the protocol
// level (ROADMAP item 3).
//
// A configurable minority of nodes misbehaves while remaining protocol-
// conformant on the wire (every frame they emit parses; the PR 4 bounded
// codec is not the defense being probed here — protocol *logic* is):
//
//  * view poisoning (AttackKind::kPoison) — colluders answer shuffles and
//    joins with fabricated or colluding identities, exerting eclipse
//    pressure on honest views;
//  * selective dropping (AttackKind::kDrop) — colluders forward membership
//    traffic faithfully (staying reputable overlay citizens) but silently
//    drop every gossip frame they should relay;
//  * sybil floods (AttackKind::kSybil) — colluders stay passive until
//    Backend::sybil_burst injects bursts of joins from fresh fabricated
//    identities.
//
// The mechanism is a membership::Protocol decorator (AdversarialProtocol)
// slotted between NodeRuntime and the real protocol by both backends, so
// the identical adversarial spec runs on the simulator and on real sockets.
//
// Fabricated identities name no real process. On the simulator they use
// out-of-range indices (the simulator fails sends to them back to the
// sender after the detection delay, exactly like crashed peers); on the TCP
// backend they are loopback addresses nothing listens on, so real dials
// fail with ECONNREFUSED. Either way the honest failure-detection story —
// "TCP as a failure detector" — is what eventually purges them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hyparview/analysis/overlay_health.hpp"
#include "hyparview/common/node_id.hpp"
#include "hyparview/common/rng.hpp"
#include "hyparview/harness/backend.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::harness {

enum class AttackKind : std::uint8_t {
  kNone,    ///< no adversary (the historical honest configuration)
  kPoison,  ///< answer membership traffic with poisoned view entries
  kDrop,    ///< forward membership, silently drop gossip
  kSybil,   ///< passive until sybil_burst() injects fabricated joins
};

[[nodiscard]] const char* attack_name(AttackKind kind);

struct AdversaryConfig {
  AttackKind attack = AttackKind::kNone;
  /// Fraction of the *initial* population that misbehaves (node 0, the
  /// bootstrap contact, always stays honest; nodes added later are honest).
  double fraction = 0.0;
  /// Unsolicited poisoned frames sent per adversary per membership cycle.
  std::size_t poison_per_cycle = 1;
  /// Poisoned identities per poisoned frame (bounded by the wire's flat
  /// list capacities at the point of use).
  std::size_t poison_entries = 7;
  /// Probability that a poisoned identity is fabricated rather than a
  /// colluder. Colluders capture slots durably (they are alive); fabricated
  /// ids churn slots until failure detection purges them.
  double fabricated_fraction = 0.5;
  /// Fabricated joins injected per adversary per sybil_burst().
  std::size_t sybils_per_burst = 8;
  /// TTL for injected join walks / forwarded subscriptions (paper-default
  /// ARWL-sized; also used for Cyclon join walks and Scamp forwards).
  std::uint8_t sybil_ttl = 6;

  [[nodiscard]] bool enabled() const {
    return attack != AttackKind::kNone && fraction > 0.0;
  }
};

/// Shared state of the adversarial minority: who misbehaves, the colluder
/// roster poisoned entries advertise, the fabricated-identity factory, and
/// the attack counters. One instance per backend, owned by it.
class Adversary {
 public:
  struct Counters {
    std::uint64_t poisoned_frames = 0;   ///< poisoned replies/frames sent
    std::uint64_t poisoned_entries = 0;  ///< poisoned identities shipped
    std::uint64_t forced_accepts = 0;    ///< join walks force-terminated
    std::uint64_t gossip_dropped = 0;    ///< broadcast relays suppressed
    std::uint64_t sybil_joins = 0;       ///< fabricated joins injected
  };

  /// `real_addresses` selects the fabricated-identity scheme: false = sim
  /// (out-of-range indices), true = TCP (dead loopback addresses).
  Adversary(AdversaryConfig config, std::uint64_t seed, bool real_addresses);

  /// Deterministically samples ⌊fraction·N⌋ adversarial indices from
  /// 1..N-1 (the bootstrap node stays honest). Called once by the backend
  /// before nodes are built.
  void select(std::size_t node_count);

  /// True iff node `index` misbehaves. Indices past the initial population
  /// (nodes added later) are honest.
  [[nodiscard]] bool is_adversarial(std::size_t index) const;

  /// Registers a wrapped node's identity on the colluder roster (wrap time,
  /// so the roster order — and hence every poisoned frame — is
  /// deterministic at fixed seed).
  void add_colluder(const NodeId& id);
  [[nodiscard]] const std::vector<NodeId>& colluders() const {
    return colluders_;
  }

  /// Mints a fresh identity that names no real process.
  [[nodiscard]] NodeId fabricate();

  /// One poisoned identity: a colluder or a fabrication, per
  /// `fabricated_fraction`. Draws from `rng` (the caller's per-node
  /// stream, keeping each node's draw sequence self-contained).
  [[nodiscard]] NodeId poison_id(Rng& rng);

  [[nodiscard]] const AdversaryConfig& config() const { return config_; }
  [[nodiscard]] Counters& counters() { return counters_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t selected_count() const { return selected_count_; }

 private:
  AdversaryConfig config_;
  Rng rng_;  ///< selection stream only (derived from the backend seed)
  bool real_addresses_ = false;
  std::vector<bool> mask_;
  std::size_t selected_count_ = 0;
  std::vector<NodeId> colluders_;
  std::uint32_t fabricated_serial_ = 0;
  Counters counters_;
};

/// Protocol decorator implementing the per-node misbehavior. Wraps the real
/// protocol so introspection (views, name) and honest-path handling stay
/// intact while selected messages are intercepted or injected.
class AdversarialProtocol final : public membership::Protocol {
 public:
  AdversarialProtocol(membership::Env& env,
                      std::unique_ptr<membership::Protocol> inner,
                      ProtocolKind kind, Adversary& adversary);

  void start(std::optional<NodeId> contact) override;
  void handle(const NodeId& from, const wire::Message& msg) override;
  void on_send_failed(const NodeId& to, const wire::Message& msg) override;
  void on_link_closed(const NodeId& peer) override;
  void on_cycle() override;
  void leave() override;
  void broadcast_targets(std::size_t fanout, const NodeId& from,
                         std::vector<NodeId>& out) override;
  using membership::Protocol::broadcast_targets;
  void peer_unreachable(const NodeId& peer) override;
  void on_traffic(const NodeId& from) override;
  [[nodiscard]] std::span<const NodeId> dissemination_view() const override;
  [[nodiscard]] std::span<const NodeId> backup_view() const override;
  [[nodiscard]] const char* name() const override;

  /// Injects `count` fabricated joins into the overlay (AttackKind::kSybil;
  /// a no-op burst is legal for other attacks and does nothing).
  void sybil_burst(std::size_t count);

  [[nodiscard]] membership::Protocol& inner() { return *inner_; }

 private:
  /// Random member of the wrapped protocol's dissemination view, or
  /// kNoNode when the view is empty.
  [[nodiscard]] NodeId random_view_member();

  void poison_hyparview_shuffle(const NodeId& from, const wire::Shuffle& m);
  void poison_cyclon_shuffle(const NodeId& from);
  void send_unsolicited_poison();

  membership::Env& env_;
  std::unique_ptr<membership::Protocol> inner_;
  ProtocolKind kind_;
  Adversary& adversary_;
};

/// Wraps `inner` in an AdversarialProtocol when `adversary` is non-null and
/// marks node `index` adversarial (registering env.self() as a colluder);
/// returns `inner` unchanged otherwise. Both backends call this from their
/// protocol factories.
[[nodiscard]] std::unique_ptr<membership::Protocol> maybe_wrap_adversarial(
    Adversary* adversary, std::size_t index, membership::Env& env,
    ProtocolKind kind, std::unique_ptr<membership::Protocol> inner);

/// Snapshots the overlay-survival metrics (analysis/overlay_health.hpp)
/// from a backend: classifies every honest alive node's view slots against
/// the backend's adversary (all-honest when it has none) and measures the
/// honest-only component structure.
[[nodiscard]] analysis::OverlayHealth collect_overlay_health(
    const Backend& backend);

}  // namespace hyparview::harness
