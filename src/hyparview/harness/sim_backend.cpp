#include "hyparview/harness/sim_backend.hpp"

#include <algorithm>
#include <numeric>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::harness {

NetworkConfig NetworkConfig::defaults_for(ProtocolKind kind,
                                          std::size_t nodes,
                                          std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.kind = kind;
  cfg.node_count = nodes;
  cfg.seed = seed;
  cfg.sim.seed = seed;
  // §5.1 parameters.
  cfg.fanout = 4;
  cfg.hyparview.active_capacity = 5;   // fanout + 1
  cfg.hyparview.passive_capacity = 30;
  cfg.hyparview.arwl = 6;
  cfg.hyparview.prwl = 3;
  cfg.hyparview.shuffle_ka = 3;
  cfg.hyparview.shuffle_kp = 4;
  cfg.hyparview.shuffle_ttl = 6;
  cfg.cyclon.view_capacity = 35;       // HyParView active + passive
  cfg.cyclon.shuffle_length = 14;
  cfg.cyclon.join_walk_ttl = 5;
  cfg.scamp.c = 4;
  cfg.cyclon.purge_on_unreachable = (kind == ProtocolKind::kCyclonAcked);
  // HyParView keeps an open TCP connection to every active-view member, so
  // a peer's crash surfaces immediately as a connection reset (§4: "TCP is
  // also used as a failure detector"). Cyclon and Scamp keep no standing
  // connections and only discover failures when they next try to send.
  cfg.sim.notify_on_crash = (kind == ProtocolKind::kHyParView);
  switch (kind) {
    case ProtocolKind::kHyParView:
      cfg.gossip.mode = gossip::Mode::kFlood;
      break;
    case ProtocolKind::kCyclonAcked:
      cfg.gossip.mode = gossip::Mode::kRandomFanoutAcked;
      break;
    case ProtocolKind::kCyclon:
    case ProtocolKind::kScamp:
      cfg.gossip.mode = gossip::Mode::kRandomFanout;
      break;
  }
  cfg.gossip.fanout = cfg.fanout;
  // The harness drains every broadcast before starting the next, so at most
  // a handful of ids ever have copies in flight — 128 leaves two orders of
  // magnitude of slack over that in-flight horizon. Keeping the per-node
  // window small matters at paper scale: 10k windows are probed once per
  // delivery, and their combined footprint decides whether the dedup path
  // hits cache or DRAM.
  cfg.gossip.dedup_window = 128;
  return cfg;
}

SimBackend::SimBackend(NetworkConfig config)
    : config_(config), sim_(config.sim) {
  HPV_CHECK_THROW(config_.node_count >= 2,
                  "network needs at least two nodes");
  if (config_.adversary.enabled()) {
    adversary_ = std::make_unique<Adversary>(
        config_.adversary, config_.seed, /*real_addresses=*/false);
    adversary_->select(config_.node_count);
  }
  // Latency metrics read simulated time — deterministic, so pub/sub latency
  // numbers are bit-stable at fixed seed like every other sim metric.
  recorder_.set_time_source([this] { return sim_.now(); });
}

SimBackend::~SimBackend() = default;

std::size_t SimBackend::assign_class() {
  if (config_.hyparview_classes.empty()) return 0;
  const double roll = sim_.rng().unit();
  double cumulative = 0.0;
  for (std::size_t c = 0; c < config_.hyparview_classes.size(); ++c) {
    cumulative += config_.hyparview_classes[c].fraction;
    if (roll < cumulative) return c;
  }
  return config_.hyparview_classes.size() - 1;  // fractions under-summed
}

std::size_t SimBackend::node_class(std::size_t i) const {
  HPV_CHECK(i < class_of_.size());
  return class_of_[i];
}

std::unique_ptr<membership::Protocol> SimBackend::make_protocol(
    membership::Env& env, std::size_t index) {
  std::unique_ptr<membership::Protocol> inner;
  switch (config_.kind) {
    case ProtocolKind::kHyParView: {
      core::Config cfg = config_.hyparview;
      if (!config_.hyparview_classes.empty()) {
        const auto& cls = config_.hyparview_classes[class_of_[index]];
        cfg.active_capacity = cls.active_capacity;
        cfg.passive_capacity = cls.passive_capacity;
      }
      inner = std::make_unique<core::HyParView>(env, cfg);
      break;
    }
    case ProtocolKind::kCyclon:
    case ProtocolKind::kCyclonAcked:
      inner = std::make_unique<baselines::Cyclon>(env, config_.cyclon);
      break;
    case ProtocolKind::kScamp:
      inner = std::make_unique<baselines::Scamp>(env, config_.scamp);
      break;
  }
  HPV_CHECK(inner != nullptr);
  return maybe_wrap_adversarial(adversary_.get(), index, env, config_.kind,
                                std::move(inner));
}

void SimBackend::build(const BuildOptions& options) {
  HPV_CHECK(!built_);
  HPV_CHECK_THROW(options.join_batch >= 1, "join_batch must be >= 1");
  built_ = true;
  runtimes_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const NodeId id = sim_.add_node(nullptr);
    class_of_.push_back(assign_class());
    gossip::GossipConfig gcfg = config_.gossip;
    gcfg.fanout = config_.fanout;
    auto runtime = std::make_unique<gossip::NodeRuntime>(
        sim_.env(id), make_protocol(sim_.env(id), i), gcfg, &recorder_);
    sim_.set_handler(id, runtime.get());
    runtimes_.push_back(std::move(runtime));
  }
  // Joins happen with no membership rounds in between (§5); each drain is
  // bounded by the watermark taken before the batch, so only the joins'
  // own traffic (and its cascades) is retired.
  {
    const std::uint64_t mark = sim_.next_event_seq();
    runtimes_[0]->protocol().start(std::nullopt);
    sim_.run_until_quiescent_from(mark);
  }
  for (std::size_t i = 1; i < runtimes_.size();) {
    const std::size_t batch_end =
        std::min(runtimes_.size(), i + options.join_batch);
    const std::uint64_t mark = sim_.next_event_seq();
    for (; i < batch_end; ++i) {
      std::size_t contact = 0;
      if (config_.kind == ProtocolKind::kScamp) {
        // Scamp joins through a random node already in the overlay.
        contact = static_cast<std::size_t>(sim_.rng().below(i));
      }
      runtimes_[i]->protocol().start(id_of(contact));
    }
    sim_.run_until_quiescent_from(mark);
  }
}

void SimBackend::run_cycles(std::size_t n, const CycleOptions& options) {
  HPV_CHECK_THROW(options.batch >= 1, "cycle batch must be >= 1");
  // Reused member scratch: run_cycles sits inside the membership-phase
  // steady state (micro_sim_events gates it allocation-free), so the random
  // round order must not cost a vector per call.
  cycle_order_.resize(runtimes_.size());
  std::iota(cycle_order_.begin(), cycle_order_.end(), 0);
  // batch == 1 is the PeerSim semantics the figures use: each node's round
  // traffic settles before the next node acts — one quiescence drain per
  // alive node per round, exactly the historical loop. Larger batches
  // amortize the drain over `batch` periodic actions; the counter carries
  // across round boundaries, so batch > node_count overlaps whole rounds.
  std::size_t pending = 0;
  for (std::size_t round = 0; round < n; ++round) {
    sim_.rng().shuffle(cycle_order_);
    for (const std::size_t i : cycle_order_) {
      if (!alive(i)) continue;
      runtimes_[i]->protocol().on_cycle();
      if (++pending >= options.batch) {
        sim_.run_until_quiescent();
        pending = 0;
      }
    }
  }
  if (pending > 0) sim_.run_until_quiescent();
}

void SimBackend::kill_node(std::size_t i) {
  HPV_CHECK(i < runtimes_.size());
  sim_.crash(id_of(i));
}

std::size_t SimBackend::add_node() {
  HPV_CHECK(built_);
  // Checked before the node is created: once the joiner exists it is itself
  // alive, and the contact-selection loop below would otherwise spin
  // forever drawing the joiner as its own contact.
  HPV_CHECK_THROW(sim_.alive_count() > 0,
                  "add_node: no alive node left to act as join contact");
  const NodeId id = sim_.add_node(nullptr);
  class_of_.push_back(assign_class());
  gossip::GossipConfig gcfg = config_.gossip;
  gcfg.fanout = config_.fanout;
  auto runtime = std::make_unique<gossip::NodeRuntime>(
      sim_.env(id), make_protocol(sim_.env(id), runtimes_.size()), gcfg,
      &recorder_);
  sim_.set_handler(id, runtime.get());
  runtimes_.push_back(std::move(runtime));
  const std::size_t index = runtimes_.size() - 1;
  // Every protocol joins a live system through a random alive contact (the
  // single-contact bootstrap of build() is a cold-start artifact).
  std::size_t contact = index;
  while (contact == index) contact = random_alive_node();
  runtimes_[index]->protocol().start(id_of(contact));
  sim_.run_until_quiescent();
  return index;
}

std::uint64_t SimBackend::inject_broadcast(std::size_t source) {
  HPV_CHECK(source < runtimes_.size() && alive(source));
  const std::uint64_t msg_id = next_msg_id_++;
  recorder_.begin_message(msg_id, sim_.alive_count());
  runtimes_[source]->gossip().broadcast(msg_id);
  return msg_id;
}

analysis::MessageResult SimBackend::broadcast_from(std::size_t source) {
  const std::uint64_t msg_id = inject_broadcast(source);
  sim_.run_until_quiescent();
  return recorder_.result(msg_id);
}

void SimBackend::set_fanout(std::size_t fanout) {
  config_.fanout = fanout;
  for (auto& runtime : runtimes_) runtime->gossip().set_fanout(fanout);
}

membership::Protocol& SimBackend::protocol(std::size_t i) {
  HPV_CHECK(i < runtimes_.size());
  return runtimes_[i]->protocol();
}

const membership::Protocol& SimBackend::protocol(std::size_t i) const {
  HPV_CHECK(i < runtimes_.size());
  return runtimes_[i]->protocol();
}

gossip::NodeRuntime& SimBackend::runtime(std::size_t i) {
  HPV_CHECK(i < runtimes_.size());
  return *runtimes_[i];
}

NodeId SimBackend::id_of(std::size_t i) const {
  HPV_CHECK(i < runtimes_.size());
  return NodeId::from_index(static_cast<std::uint32_t>(i));
}

bool SimBackend::alive(std::size_t i) const { return sim_.alive(id_of(i)); }

std::vector<bool> SimBackend::alive_mask() const {
  std::vector<bool> mask(runtimes_.size());
  for (std::size_t i = 0; i < runtimes_.size(); ++i) mask[i] = alive(i);
  return mask;
}

}  // namespace hyparview::harness
