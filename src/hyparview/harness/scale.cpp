#include "hyparview/harness/scale.hpp"

#include <algorithm>

#include "hyparview/common/options.hpp"

namespace hyparview::harness {

BenchScale BenchScale::from_env(std::size_t default_messages) {
  BenchScale s;
  s.messages = default_messages;
  s.quick = env_flag("HPV_QUICK", false);
  if (s.quick) {
    s.nodes = 1'000;
    s.messages = std::min<std::size_t>(default_messages, 100);
  }
  s.nodes = static_cast<std::size_t>(
      env_int("HPV_NODES", static_cast<std::int64_t>(s.nodes)));
  s.messages = static_cast<std::size_t>(
      env_int("HPV_MSGS", static_cast<std::int64_t>(s.messages)));
  s.runs = static_cast<std::size_t>(env_int("HPV_RUNS", 1));
  s.seed = static_cast<std::uint64_t>(env_int("HPV_SEED", 42));
  s.nodes = std::max<std::size_t>(s.nodes, 16);
  s.runs = std::max<std::size_t>(s.runs, 1);
  return s;
}

}  // namespace hyparview::harness
