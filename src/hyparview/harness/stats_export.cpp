#include "hyparview/harness/stats_export.hpp"

#include <netinet/in.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hyparview/analysis/broadcast_recorder.hpp"
#include "hyparview/analysis/stats.hpp"
#include "hyparview/common/assert.hpp"
#include "hyparview/harness/tcp_backend.hpp"
#include "hyparview/membership/protocol.hpp"
#include "hyparview/net/tcp_transport.hpp"

namespace hyparview::harness {

namespace {

/// Loopback listener, same socket idiom as the transport's Listener.
net::Fd make_listener(int port, std::uint16_t* bound_port) {
  net::Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  HPV_CHECK_THROW(fd.valid(), "stats endpoint: socket() failed: " +
                                  std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  HPV_CHECK_THROW(
      ::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) == 0,
      "stats endpoint: cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
          std::string(std::strerror(errno)));
  HPV_CHECK_THROW(::listen(fd.get(), 16) == 0,
                  "stats endpoint: listen() failed: " +
                      std::string(std::strerror(errno)));

  socklen_t len = sizeof(addr);
  HPV_CHECK(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

StatsExporter::StatsExporter(TcpBackend& backend, int port)
    : backend_(backend) {
  HPV_CHECK_THROW(port >= 0 && port <= 65535,
                  "stats_port " + std::to_string(port) +
                      " out of range (expected 0..65535)");
  net::Fd fd = make_listener(port, &port_);
  backend_.loop().register_fd(fd.get(), this, /*want_read=*/true,
                              /*want_write=*/false);
  listen_fd_ = std::move(fd);
}

StatsExporter::~StatsExporter() {
  if (listen_fd_.valid()) backend_.loop().unregister_fd(listen_fd_.get());
}

json::Value StatsExporter::snapshot() {
  const TimePoint now = backend_.loop().now();

  json::Value doc = json::Value::object();
  doc.set("backend", backend_.backend_name());
  doc.set("time_us", now);
  doc.set("nodes", backend_.node_count());
  doc.set("alive", backend_.alive_count());

  // Per-node rows plus aggregate transport totals in one pass.
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t malformed = 0;
  json::Value per_node = json::Value::array();
  for (std::size_t i = 0; i < backend_.node_count(); ++i) {
    const net::TransportStats& st = backend_.transport(i).stats();
    frames_sent += st.frames_sent;
    frames_received += st.frames_received;
    bytes_sent += st.bytes_sent;
    bytes_received += st.bytes_received;
    malformed += st.malformed_frames;

    json::Value row = json::Value::object();
    row.set("index", i);
    row.set("id", backend_.id_of(i).to_string());
    row.set("alive", backend_.alive(i));
    row.set("active_view", backend_.protocol(i).dissemination_view().size());
    row.set("passive_view", backend_.protocol(i).backup_view().size());
    row.set("frames_sent", st.frames_sent);
    row.set("frames_received", st.frames_received);
    row.set("bytes_sent", st.bytes_sent);
    row.set("bytes_received", st.bytes_received);
    per_node.push_back(std::move(row));
  }

  // Rates from monotonic deltas against the previous poll (0 on the first
  // poll — there is no interval to rate over yet).
  const std::uint64_t total_frames = frames_sent + frames_received;
  const std::uint64_t total_bytes = bytes_sent + bytes_received;
  double frames_per_second = 0.0;
  double bytes_per_second = 0.0;
  if (last_poll_ >= 0 && now > last_poll_) {
    const double dt =
        static_cast<double>(now - last_poll_) / 1'000'000.0;
    frames_per_second =
        static_cast<double>(total_frames - last_frames_) / dt;
    bytes_per_second = static_cast<double>(total_bytes - last_bytes_) / dt;
  }
  last_poll_ = now;
  last_frames_ = total_frames;
  last_bytes_ = total_bytes;

  json::Value transport = json::Value::object();
  transport.set("frames_sent", frames_sent);
  transport.set("frames_received", frames_received);
  transport.set("bytes_sent", bytes_sent);
  transport.set("bytes_received", bytes_received);
  transport.set("malformed_frames", malformed);
  transport.set("frames_per_second", frames_per_second);
  transport.set("bytes_per_second", bytes_per_second);
  doc.set("transport", std::move(transport));

  // Broadcast completion: reliability percentiles over every recorded
  // message so far (count 0 → all-zero percentiles).
  std::vector<double> reliabilities;
  for (const analysis::MessageResult& r : backend_.recorder().results()) {
    reliabilities.push_back(r.reliability());
  }
  json::Value broadcasts = json::Value::object();
  broadcasts.set("count", reliabilities.size());
  if (reliabilities.empty()) {
    broadcasts.set("reliability_mean", 0.0);
    broadcasts.set("reliability_p50", 0.0);
    broadcasts.set("reliability_p90", 0.0);
    broadcasts.set("reliability_p99", 0.0);
  } else {
    broadcasts.set("reliability_mean",
                   analysis::summarize(std::span<const double>(
                                           reliabilities))
                       .mean);
    broadcasts.set("reliability_p50",
                   analysis::percentile(reliabilities, 50.0));
    broadcasts.set("reliability_p90",
                   analysis::percentile(reliabilities, 90.0));
    broadcasts.set("reliability_p99",
                   analysis::percentile(reliabilities, 99.0));
  }
  doc.set("broadcasts", std::move(broadcasts));

  doc.set("per_node", std::move(per_node));
  return doc;
}

void StatsExporter::on_readable() {
  for (;;) {
    // Accepted sockets stay blocking on purpose: the snapshot is small, the
    // peer is a local poller, and a blocking write keeps the one-shot
    // protocol free of write-readiness bookkeeping.
    int raw = ::accept4(listen_fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained; anything else: nothing to serve
    }
    net::Fd conn(raw);
    const std::string body = snapshot().dump(2);
    std::size_t off = 0;
    while (off < body.size()) {
      const ssize_t n = ::send(conn.get(), body.data() + off,
                               body.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // poller went away mid-read — drop the rest
      }
      off += static_cast<std::size_t>(n);
    }
    // RAII close sends FIN: the poller reads to EOF and has its snapshot.
  }
}

}  // namespace hyparview::harness
