// Simulated-network experiment harness (§5 methodology).
//
// Drives the full experiment pipeline used by every figure and table:
//   build (nodes join one by one, no membership rounds in between)
//   → run_cycles (stabilization: 50 membership rounds in the paper)
//   → fail_random_fraction (massive simultaneous crash)
//   → broadcast_* (reliability measurements; reactive steps still execute)
//   → run_cycles + probes (healing measurements).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hyparview/analysis/broadcast_recorder.hpp"
#include "hyparview/baselines/cyclon.hpp"
#include "hyparview/baselines/scamp.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/gossip/node_runtime.hpp"
#include "hyparview/graph/digraph.hpp"
#include "hyparview/sim/simulator.hpp"

namespace hyparview::harness {

enum class ProtocolKind : std::uint8_t {
  kHyParView,
  kCyclon,
  kCyclonAcked,
  kScamp,
};

[[nodiscard]] const char* kind_name(ProtocolKind kind);

/// All four protocols, in the order the paper reports them.
[[nodiscard]] const std::vector<ProtocolKind>& all_protocol_kinds();

/// One heterogeneity class for the §6 "adaptive fanout" extension: nodes of
/// this class run HyParView with the given view capacities. In the flood, a
/// node's active-view size is exactly its fanout (and, by symmetry, its
/// in-degree), so capacity classes realize degree adaptation.
struct HyParViewClass {
  /// Share of nodes assigned to this class (fractions should sum to ~1).
  double fraction = 1.0;
  std::size_t active_capacity = 5;
  std::size_t passive_capacity = 30;
};

struct NetworkConfig {
  ProtocolKind kind = ProtocolKind::kHyParView;
  std::size_t node_count = 10'000;
  std::uint64_t seed = 42;
  /// Gossip fanout for the random-fanout protocols (paper: 4). HyParView's
  /// flood is deterministic; its active view is sized fanout + 1.
  std::size_t fanout = 4;

  core::Config hyparview;              // paper defaults (§5.1)
  baselines::CyclonConfig cyclon;      // view 35, shuffle 14, walk TTL 5
  baselines::ScampConfig scamp;        // c = 4
  gossip::GossipConfig gossip;         // mode derived from `kind`
  sim::SimConfig sim;

  /// Heterogeneous capacity classes for HyParView (empty = homogeneous,
  /// i.e. `hyparview` everywhere). Assignment is random per node, seeded.
  std::vector<HyParViewClass> hyparview_classes;

  /// Contact-node policy: HyParView/Cyclon bootstrap through a single
  /// contact (node 0); Scamp uses a random node already in the overlay
  /// (the configurations §5 found to work best for each protocol).
  [[nodiscard]] static NetworkConfig defaults_for(ProtocolKind kind,
                                                  std::size_t nodes,
                                                  std::uint64_t seed);
};

/// Continuous-churn workload: every cycle some nodes join, some leave
/// (gracefully or by crashing), one membership round runs, and probe
/// broadcasts measure the reliability the application sees meanwhile.
struct ChurnConfig {
  std::size_t cycles = 50;
  std::size_t joins_per_cycle = 10;
  std::size_t leaves_per_cycle = 10;
  /// Probability that a departure is graceful (Protocol::leave) rather
  /// than a crash.
  double graceful_fraction = 0.5;
  std::size_t probes_per_cycle = 2;
};

struct ChurnStats {
  std::vector<double> per_cycle_reliability;
  double avg_reliability = 0.0;
  double min_reliability = 1.0;
  std::size_t joins = 0;
  std::size_t graceful_leaves = 0;
  std::size_t crashes = 0;
};

/// Bootstrap tuning for Network::build().
struct BuildOptions {
  /// Joins started per drain. 1 (default) reproduces the paper's serial
  /// bootstrap — each join's traffic settles before the next node joins.
  /// Larger batches overlap the join traffic of `join_batch` nodes under
  /// one incremental drain: statistically equivalent overlays, different
  /// (still deterministic) event interleaving — a bench-scale mode, not the
  /// §5 methodology.
  std::size_t join_batch = 1;
};

class Network {
 public:
  explicit Network(NetworkConfig config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Creates all nodes and joins them (serially by default; see
  /// BuildOptions), without membership rounds. Each drain is incremental:
  /// only the events caused by the batch being joined are retired
  /// (Simulator::run_until_quiescent_from), so pending unrelated work —
  /// e.g. long-delay timers once protocols schedule them — cannot inflate
  /// the bootstrap.
  void build(const BuildOptions& options = {});

  /// Runs `n` membership rounds. In each round every alive node executes
  /// its periodic action once, in random order, and the resulting traffic
  /// drains before the next node acts (PeerSim cycle semantics).
  void run_cycles(std::size_t n);

  /// Crashes ⌊fraction · alive⌋ uniformly random alive nodes. No failure
  /// notifications are generated (detect-on-send model).
  void fail_random_fraction(double fraction);

  /// Adds one node to the running system and joins it through the
  /// protocol's contact policy (random alive node). The join traffic
  /// drains before returning. Returns the new node's index.
  std::size_t add_node();

  /// Removes node `i` from the system: gracefully (Protocol::leave, then
  /// the goodbyes drain, then the process exits) or as a crash.
  void leave_node(std::size_t i, bool graceful);

  /// One broadcast from a uniformly random correct node; drains the network
  /// (including any reactive repair traffic) and returns the record.
  analysis::MessageResult broadcast_one();

  /// One broadcast from node `source` (must be alive); same draining
  /// semantics. Lets scenarios pick responsive sources explicitly — a
  /// blocked node initiates nothing, so broadcasting "from" it measures
  /// only that the process is frozen.
  analysis::MessageResult broadcast_from(std::size_t source);

  /// `count` sequential broadcasts (each drains before the next).
  std::vector<analysis::MessageResult> broadcast_many(std::size_t count);

  /// Changes the gossip fanout of every node (Figure 1 sweep).
  void set_fanout(std::size_t fanout);

  /// Runs the continuous-churn workload (see ChurnConfig).
  ChurnStats run_churn(const ChurnConfig& cfg);

  // --- Graph snapshots --------------------------------------------------------

  /// Arcs = dissemination views of all nodes (dead nodes keep their last
  /// views; pass alive_only=true to restrict to correct nodes).
  [[nodiscard]] graph::Digraph dissemination_graph(bool alive_only) const;

  /// Fraction of live out-neighbors, averaged over alive nodes (§2.3).
  [[nodiscard]] double view_accuracy() const;

  // --- Access -----------------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] analysis::BroadcastRecorder& recorder() { return recorder_; }
  [[nodiscard]] std::size_t node_count() const { return runtimes_.size(); }
  [[nodiscard]] std::size_t alive_count() const { return sim_.alive_count(); }
  [[nodiscard]] membership::Protocol& protocol(std::size_t i);
  [[nodiscard]] gossip::NodeRuntime& runtime(std::size_t i);
  [[nodiscard]] NodeId id_of(std::size_t i) const;
  [[nodiscard]] bool alive(std::size_t i) const;
  [[nodiscard]] std::vector<bool> alive_mask() const;
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  /// Heterogeneity class of node `i` (always 0 when classes are unset).
  [[nodiscard]] std::size_t node_class(std::size_t i) const;

 private:
  [[nodiscard]] std::unique_ptr<membership::Protocol> make_protocol(
      membership::Env& env, std::size_t index);
  [[nodiscard]] std::size_t pick_alive_index();
  [[nodiscard]] std::size_t assign_class();

  NetworkConfig config_;
  sim::Simulator sim_;
  analysis::BroadcastRecorder recorder_;
  std::vector<std::unique_ptr<gossip::NodeRuntime>> runtimes_;
  std::vector<std::size_t> class_of_;
  /// Reused random-order scratch of run_cycles (steady-state alloc-free).
  std::vector<std::size_t> cycle_order_;
  std::uint64_t next_msg_id_ = 1;
  bool built_ = false;
};

/// Healing-time experiment (Figure 4): cycles needed after a massive failure
/// for probe broadcasts to regain the pre-failure reliability.
struct HealingResult {
  double baseline_reliability = 0.0;
  std::vector<double> per_cycle_reliability;
  std::size_t cycles_to_heal = 0;  ///< == per_cycle size if recovered
  bool recovered = false;
  std::uint64_t events_processed = 0;  ///< simulator events (perf accounting)
};

struct HealingConfig {
  double fail_fraction = 0.5;
  std::size_t probes_per_cycle = 10;  ///< paper: 10 random broadcasters
  std::size_t max_cycles = 60;
  std::size_t stabilization_cycles = 50;
};

/// Builds the network, stabilizes, measures the baseline, injects the
/// failure and cycles until recovery (or max_cycles).
[[nodiscard]] HealingResult run_healing_experiment(const NetworkConfig& netcfg,
                                                   const HealingConfig& cfg);

}  // namespace hyparview::harness
