// Historical entry point of the simulated-network harness.
//
// The experiment layer was split backend-agnostic (backend.hpp), with the
// simulator implementation in sim_backend.hpp (`Network` survives as an
// alias of SimBackend) and the declarative spec layer — Experiment, Cluster,
// the healing experiment — in experiment.hpp. This header keeps old
// includes compiling.
#pragma once

#include "hyparview/harness/backend.hpp"       // IWYU pragma: export
#include "hyparview/harness/experiment.hpp"    // IWYU pragma: export
#include "hyparview/harness/sim_backend.hpp"   // IWYU pragma: export
