// Simulated-network experiment backend (§5 methodology).
//
// The harness::Backend implementation every figure and table runs on:
//   build (nodes join one by one, no membership rounds in between)
//   → run_cycles (stabilization: 50 membership rounds in the paper)
//   → fail_random_fraction (massive simultaneous crash)
//   → broadcast_* (reliability measurements; reactive steps still execute)
//   → run_cycles + probes (healing measurements).
//
// `Network` remains as an alias: the class grew out of the original sim-only
// harness and most tests/drivers still use that name.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hyparview/analysis/broadcast_recorder.hpp"
#include "hyparview/baselines/cyclon.hpp"
#include "hyparview/baselines/scamp.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/gossip/node_runtime.hpp"
#include "hyparview/graph/digraph.hpp"
#include "hyparview/harness/adversary.hpp"
#include "hyparview/harness/backend.hpp"
#include "hyparview/sim/simulator.hpp"

namespace hyparview::harness {

/// One heterogeneity class for the §6 "adaptive fanout" extension: nodes of
/// this class run HyParView with the given view capacities. In the flood, a
/// node's active-view size is exactly its fanout (and, by symmetry, its
/// in-degree), so capacity classes realize degree adaptation.
struct HyParViewClass {
  /// Share of nodes assigned to this class (fractions should sum to ~1).
  double fraction = 1.0;
  std::size_t active_capacity = 5;
  std::size_t passive_capacity = 30;
};

/// Bootstrap tuning for SimBackend::build().
struct BuildOptions {
  /// Joins started per drain. 1 (default) reproduces the paper's serial
  /// bootstrap — each join's traffic settles before the next node joins.
  /// Larger batches overlap the join traffic of `join_batch` nodes under
  /// one incremental drain: statistically equivalent overlays, different
  /// (still deterministic) event interleaving — a bench-scale mode, not the
  /// §5 methodology.
  std::size_t join_batch = 1;
};

struct NetworkConfig {
  ProtocolKind kind = ProtocolKind::kHyParView;
  std::size_t node_count = 10'000;
  std::uint64_t seed = 42;
  /// Gossip fanout for the random-fanout protocols (paper: 4). HyParView's
  /// flood is deterministic; its active view is sized fanout + 1.
  std::size_t fanout = 4;

  core::Config hyparview;              // paper defaults (§5.1)
  baselines::CyclonConfig cyclon;      // view 35, shuffle 14, walk TTL 5
  baselines::ScampConfig scamp;        // c = 4
  gossip::GossipConfig gossip;         // mode derived from `kind`
  sim::SimConfig sim;

  /// Bootstrap tuning used by the no-argument Backend::build() entry point
  /// (the Cluster/Experiment path).
  BuildOptions build_options;

  /// Heterogeneous capacity classes for HyParView (empty = homogeneous,
  /// i.e. `hyparview` everywhere). Assignment is random per node, seeded.
  std::vector<HyParViewClass> hyparview_classes;

  /// Adversarial minority (adversary.hpp). Disabled by default — the
  /// honest configuration is byte-for-byte the historical one.
  AdversaryConfig adversary;

  /// Contact-node policy: HyParView/Cyclon bootstrap through a single
  /// contact (node 0); Scamp uses a random node already in the overlay
  /// (the configurations §5 found to work best for each protocol).
  [[nodiscard]] static NetworkConfig defaults_for(ProtocolKind kind,
                                                  std::size_t nodes,
                                                  std::uint64_t seed);
};

class SimBackend final : public Backend {
 public:
  explicit SimBackend(NetworkConfig config);
  ~SimBackend() override;

  // --- harness::Backend -------------------------------------------------------

  [[nodiscard]] const char* backend_name() const override { return "sim"; }

  /// Builds with config().build_options (see the overload below).
  void build() override { build(config_.build_options); }

  /// Creates all nodes and joins them (serially by default; see
  /// BuildOptions), without membership rounds. Each drain is incremental:
  /// only the events caused by the batch being joined are retired
  /// (Simulator::run_until_quiescent_from), so pending unrelated work —
  /// e.g. long-delay timers once protocols schedule them — cannot inflate
  /// the bootstrap.
  void build(const BuildOptions& options);

  [[nodiscard]] bool built() const override { return built_; }

  using Backend::run_cycles;
  /// Runs `n` membership rounds. In each round every alive node executes
  /// its periodic action once, in random order. With options.batch == 1
  /// (default) the resulting traffic drains before the next node acts
  /// (PeerSim cycle semantics, the historical path, bit-identical); larger
  /// batches retire one quiescence drain per `batch` actions — whole-round
  /// and multi-round event batches for bench-scale runs.
  void run_cycles(std::size_t n, const CycleOptions& options) override;

  /// Crashes node `i` in place (no failure notifications — detect-on-send).
  void kill_node(std::size_t i) override;

  /// Adds one node to the running system and joins it through the
  /// protocol's contact policy (random alive node). The join traffic
  /// drains before returning. Returns the new node's index.
  std::size_t add_node() override;

  void settle() override { sim_.run_until_quiescent(); }

  /// One broadcast from node `source` (must be alive); drains the network
  /// (including any reactive repair traffic) and returns the record.
  /// Scenarios pick responsive sources explicitly — a blocked node
  /// initiates nothing, so broadcasting "from" it measures only that the
  /// process is frozen.
  analysis::MessageResult broadcast_from(std::size_t source) override;

  /// Registers + injects a broadcast without draining (pub/sub workload);
  /// settle()/settle_broadcasts() later retires the in-flight traffic.
  std::uint64_t inject_broadcast(std::size_t source) override;

  /// Changes the gossip fanout of every node (Figure 1 sweep).
  void set_fanout(std::size_t fanout) override;

  /// Sim ids are dense indices: the slot IS the id.
  [[nodiscard]] std::size_t peer_slot(const NodeId& peer) const override {
    return peer.ip < runtimes_.size() ? peer.ip : kNoPeer;
  }

  // --- Access -----------------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] analysis::BroadcastRecorder& recorder() override {
    return recorder_;
  }
  [[nodiscard]] std::size_t node_count() const override {
    return runtimes_.size();
  }
  [[nodiscard]] std::size_t alive_count() const override {
    return sim_.alive_count();
  }
  [[nodiscard]] membership::Protocol& protocol(std::size_t i) override;
  [[nodiscard]] const membership::Protocol& protocol(
      std::size_t i) const override;
  [[nodiscard]] gossip::NodeRuntime& runtime(std::size_t i);
  [[nodiscard]] gossip::BroadcastEngine& engine(std::size_t i) override {
    return runtime(i).gossip();
  }
  [[nodiscard]] NodeId id_of(std::size_t i) const override;
  [[nodiscard]] bool alive(std::size_t i) const override;
  [[nodiscard]] std::vector<bool> alive_mask() const;
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] const Adversary* adversary() const override {
    return adversary_.get();
  }
  [[nodiscard]] Rng& rng() override { return sim_.rng(); }
  [[nodiscard]] std::uint64_t events_processed() const override {
    return sim_.events_processed();
  }
  /// Heterogeneity class of node `i` (always 0 when classes are unset).
  [[nodiscard]] std::size_t node_class(std::size_t i) const;

 private:
  [[nodiscard]] std::unique_ptr<membership::Protocol> make_protocol(
      membership::Env& env, std::size_t index);
  [[nodiscard]] std::size_t assign_class();

  NetworkConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<Adversary> adversary_;  ///< null for honest clusters
  analysis::BroadcastRecorder recorder_;
  std::vector<std::unique_ptr<gossip::NodeRuntime>> runtimes_;
  std::vector<std::size_t> class_of_;
  /// Reused random-order scratch of run_cycles (steady-state alloc-free).
  std::vector<std::size_t> cycle_order_;
  std::uint64_t next_msg_id_ = 1;
  bool built_ = false;
};

/// Historical name of the sim backend (the original sim-only harness class).
using Network = SimBackend;

}  // namespace hyparview::harness
