// Threaded fan-out for statistically independent experiment points.
//
// The paper's figure sweeps (fig2/fig3: protocol × failure-fraction × seed,
// the ablation grids: variant × parameter) are embarrassingly parallel: each
// point builds its own Network — simulator, RNG streams, recorder and all —
// from a (config, seed) pair and never touches another point's state. The
// SweepRunner claims points off a shared atomic counter with a small
// std::thread pool.
//
// Determinism contract: a point's result is a pure function of its
// (config, seed), so the threaded sweep is bit-identical to the serial loop
// per point — only wall-clock order changes. Callers must (a) give every
// job its own Network and result slot (index into a pre-sized vector), and
// (b) aggregate in index order after run() returns. A SweepRunner with
// one thread executes the jobs inline in index order: that *is* the serial
// path, not an emulation of it.
//
// Thread count: explicit argument, else the HPV_THREADS environment knob,
// else hardware_concurrency — clamped to the job count.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hyparview::harness {

class SweepRunner {
 public:
  /// threads == 0 → HPV_THREADS env var, else std::hardware_concurrency.
  explicit SweepRunner(std::size_t threads = 0);

  /// Threads run() will use for a sufficiently large job list.
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Executes every job; returns per-job wall-clock seconds (same indexing
  /// as `jobs`) for the per-point timing records in BENCH_*.json. Jobs must
  /// not throw and must not share mutable state (see file comment).
  std::vector<double> run(const std::vector<std::function<void()>>& jobs) const;

 private:
  std::size_t threads_;
};

}  // namespace hyparview::harness
