#include "hyparview/harness/experiment.hpp"

#include <algorithm>
#include <chrono>

#include "hyparview/common/assert.hpp"
#include "hyparview/harness/tcp_backend.hpp"

namespace hyparview::harness {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double average(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

Experiment& Experiment::stabilize(std::size_t n, CycleOptions options,
                                  std::string label) {
  Phase p;
  p.kind = PhaseKind::kCycles;
  p.label = std::move(label);
  p.cycles = n;
  p.cycle_options = options;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::cycles(std::size_t n, CycleOptions options,
                               std::string label) {
  return stabilize(n, options, std::move(label));
}

Experiment& Experiment::set_fanout(std::size_t fanout, std::string label) {
  Phase p;
  p.kind = PhaseKind::kSetFanout;
  p.label = std::move(label);
  p.fanout = fanout;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::crash(double fraction, std::string label) {
  Phase p;
  p.kind = PhaseKind::kCrash;
  p.label = std::move(label);
  p.fraction = fraction;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::leave(std::size_t count, double graceful_fraction,
                              std::string label) {
  Phase p;
  p.kind = PhaseKind::kLeave;
  p.label = std::move(label);
  p.count = count;
  p.fraction = graceful_fraction;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::broadcast(std::size_t count, std::string label) {
  Phase p;
  p.kind = PhaseKind::kBroadcast;
  p.label = std::move(label);
  p.count = count;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::heal_until(std::string baseline_label,
                                   std::size_t max_cycles,
                                   std::size_t probes_per_cycle,
                                   CycleOptions options, std::string label) {
  HPV_CHECK_THROW(probes_per_cycle > 0,
                  "heal_until needs at least one probe per cycle");
  Phase p;
  p.kind = PhaseKind::kHealUntil;
  p.label = std::move(label);
  p.cycles = max_cycles;
  p.cycle_options = options;
  p.count = probes_per_cycle;
  p.baseline_label = std::move(baseline_label);
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::churn(const ChurnConfig& cfg, std::string label) {
  Phase p;
  p.kind = PhaseKind::kChurn;
  p.label = std::move(label);
  p.churn = cfg;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::sybil_burst(std::size_t per_adversary,
                                    std::string label) {
  Phase p;
  p.kind = PhaseKind::kSybilBurst;
  p.label = std::move(label);
  p.count = per_adversary;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::heavy_churn(const HeavyChurnConfig& cfg,
                                    std::string label) {
  Phase p;
  p.kind = PhaseKind::kHeavyChurn;
  p.label = std::move(label);
  p.heavy = cfg;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::pubsub(const PubSubConfig& cfg, std::string label) {
  Phase p;
  p.kind = PhaseKind::kPubSub;
  p.label = std::move(label);
  p.pubsub = cfg;
  phases_.push_back(std::move(p));
  return *this;
}

Experiment& Experiment::settle(std::string label) {
  Phase p;
  p.kind = PhaseKind::kSettle;
  p.label = std::move(label);
  phases_.push_back(std::move(p));
  return *this;
}

std::size_t Experiment::planned_broadcasts() const {
  std::size_t total = 0;
  for (const Phase& p : phases_) {
    switch (p.kind) {
      case PhaseKind::kBroadcast: total += p.count; break;
      case PhaseKind::kHealUntil: total += p.cycles * p.count; break;
      case PhaseKind::kChurn:
        total += p.churn.cycles * p.churn.probes_per_cycle;
        break;
      case PhaseKind::kHeavyChurn:
        total += p.heavy.cycles * p.heavy.probes_per_cycle;
        break;
      case PhaseKind::kPubSub:
        total += p.pubsub.sources * p.pubsub.ticks * p.pubsub.rate;
        break;
      default: break;
    }
  }
  return total;
}

double PhaseResult::avg_reliability() const { return average(reliabilities); }

double PhaseResult::min_reliability() const {
  // An empty phase used to report 0.0 — indistinguishable from a genuine
  // total delivery failure. Asking for the minimum of nothing is a driver
  // bug (wrong label, zero-count broadcast phase); fail loudly.
  HPV_CHECK_THROW(!reliabilities.empty(),
                  "min_reliability on phase '" + label +
                      "' which recorded no broadcasts");
  return *std::min_element(reliabilities.begin(), reliabilities.end());
}

double PhaseResult::last_reliability() const {
  HPV_CHECK_THROW(!reliabilities.empty(),
                  "last_reliability on phase '" + label +
                      "' which recorded no broadcasts");
  return reliabilities.back();
}

const PhaseResult& ExperimentResult::phase(const std::string& label) const {
  for (const PhaseResult& p : phases) {
    if (p.label == label) return p;
  }
  HPV_CHECK_THROW(false, "experiment result has no phase with that label");
  return phases.front();  // unreachable
}

bool ExperimentResult::has_phase(const std::string& label) const {
  for (const PhaseResult& p : phases) {
    if (p.label == label) return true;
  }
  return false;
}

ExperimentResult run_experiment(Backend& backend, const Experiment& spec) {
  ExperimentResult result;
  result.name = spec.name();
  result.backend = backend.backend_name();
  const double run_start = now_seconds();
  const std::uint64_t run_events_start = backend.events_processed();

  if (!backend.built()) backend.build();
  // Capacity semantics, and runs compose on one backend: reserve room for
  // the broadcasts already recorded plus this spec's, so a later run never
  // rehashes the recorder mid-measurement.
  backend.recorder().reserve(backend.recorder().results().size() +
                             spec.planned_broadcasts());

  result.phases.reserve(spec.phases().size());
  for (const Experiment::Phase& phase : spec.phases()) {
    PhaseResult pr;
    pr.label = phase.label;
    pr.kind = phase.kind;
    const double phase_start = now_seconds();
    const std::uint64_t events_start = backend.events_processed();

    switch (phase.kind) {
      case Experiment::PhaseKind::kCycles:
        backend.run_cycles(phase.cycles, phase.cycle_options);
        break;
      case Experiment::PhaseKind::kSetFanout:
        backend.set_fanout(phase.fanout);
        break;
      case Experiment::PhaseKind::kCrash:
        backend.fail_random_fraction(phase.fraction);
        break;
      case Experiment::PhaseKind::kLeave:
        backend.leave_random(phase.count, phase.fraction);
        break;
      case Experiment::PhaseKind::kBroadcast:
        pr.reliabilities.reserve(phase.count);
        pr.broadcasts.reserve(phase.count);
        for (std::size_t m = 0; m < phase.count; ++m) {
          pr.broadcasts.push_back(backend.broadcast_one());
          pr.reliabilities.push_back(pr.broadcasts.back().reliability());
        }
        break;
      case Experiment::PhaseKind::kHealUntil: {
        // The recovery target: the average reliability the referenced
        // broadcast phase measured before the fault.
        double baseline = 0.0;
        bool found = false;
        for (const PhaseResult& earlier : result.phases) {
          if (earlier.label == phase.baseline_label) {
            baseline = earlier.avg_reliability();
            found = true;
            break;
          }
        }
        HPV_CHECK_THROW(found,
                        "heal_until references an unknown baseline phase");
        for (std::size_t cycle = 1; cycle <= phase.cycles; ++cycle) {
          backend.run_cycles(1, phase.cycle_options);
          double sum = 0.0;
          for (std::size_t i = 0; i < phase.count; ++i) {
            sum += backend.broadcast_one().reliability();
          }
          const double reliability = sum / static_cast<double>(phase.count);
          pr.reliabilities.push_back(reliability);
          if (reliability >= baseline) {
            pr.cycles_to_heal = cycle;
            pr.recovered = true;
            break;
          }
        }
        if (!pr.recovered) pr.cycles_to_heal = phase.cycles;
        break;
      }
      case Experiment::PhaseKind::kChurn:
        pr.churn = backend.run_churn(phase.churn);
        pr.reliabilities = pr.churn.per_cycle_reliability;
        break;
      case Experiment::PhaseKind::kSettle:
        backend.settle();
        break;
      case Experiment::PhaseKind::kSybilBurst:
        pr.adversaries_fired = backend.sybil_burst(phase.count);
        break;
      case Experiment::PhaseKind::kHeavyChurn:
        pr.heavy = backend.run_heavy_churn(phase.heavy);
        pr.reliabilities = pr.heavy.per_cycle_reliability;
        break;
      case Experiment::PhaseKind::kPubSub:
        pr.pubsub = backend.run_pubsub(phase.pubsub);
        pr.reliabilities = pr.pubsub.per_tick_reliability;
        break;
    }

    pr.wall_seconds = now_seconds() - phase_start;
    pr.events = backend.events_processed() - events_start;
    result.phases.push_back(std::move(pr));
  }

  result.wall_seconds = now_seconds() - run_start;
  result.events = backend.events_processed() - run_events_start;
  return result;
}

Cluster Cluster::sim(const NetworkConfig& config) {
  return Cluster(std::make_unique<SimBackend>(config));
}

Cluster Cluster::tcp(const TcpBackendConfig& config) {
  return Cluster(std::make_unique<TcpBackend>(config));
}

ExperimentResult Cluster::run(const Experiment& spec) {
  return run_experiment(*backend_, spec);
}

SimBackend* Cluster::sim_backend() {
  return dynamic_cast<SimBackend*>(backend_.get());
}

HealingResult run_healing_experiment(const NetworkConfig& netcfg,
                                     const HealingConfig& cfg) {
  auto cluster = Cluster::sim(netcfg);
  Experiment spec("healing");
  spec.stabilize(cfg.stabilization_cycles)
      .broadcast(cfg.probes_per_cycle, "baseline")
      .crash(cfg.fail_fraction)
      .heal_until("baseline", cfg.max_cycles, cfg.probes_per_cycle,
                  CycleOptions{}, "heal");
  const ExperimentResult run = cluster.run(spec);

  HealingResult result;
  result.baseline_reliability = run.phase("baseline").avg_reliability();
  const PhaseResult& heal = run.phase("heal");
  result.per_cycle_reliability = heal.reliabilities;
  result.cycles_to_heal = heal.cycles_to_heal;
  result.recovered = heal.recovered;
  result.events_processed = cluster->events_processed();
  return result;
}

}  // namespace hyparview::harness
