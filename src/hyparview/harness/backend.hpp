// Backend-agnostic experiment driving (§5 pipeline over any substrate).
//
// The paper's evaluation is one pipeline — build → stabilize → fail →
// measure → heal — and a Backend is anything able to execute it: spawn and
// kill nodes, drive membership rounds, inject faults, broadcast, snapshot
// views. Two implementations exist:
//
//   * SimBackend (sim_backend.hpp) — the deterministic discrete-event
//     simulator the figures run on;
//   * TcpBackend (tcp_backend.hpp) — the same NodeRuntimes hosted on real
//     net::TcpTransport instances sharing one EventLoop, realizing the
//     deployment model of §4 ("TCP is also used as a failure detector").
//
// Protocol code never sees the difference (it is written against
// membership::Env); this interface makes the *experiment drivers* equally
// substrate-blind. Workloads whose step sequence is already expressible in
// the primitives — broadcast_one/many, run_churn, fail_random_fraction —
// are implemented here once, so both backends share their exact RNG-draw
// order (the foundation of the sim backend's bit-identical guarantees).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hyparview/analysis/broadcast_recorder.hpp"
#include "hyparview/common/node_id.hpp"
#include "hyparview/common/rng.hpp"
#include "hyparview/gossip/broadcast_engine.hpp"
#include "hyparview/graph/digraph.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::harness {

class Adversary;  // adversary.hpp

enum class ProtocolKind : std::uint8_t {
  kHyParView,
  kCyclon,
  kCyclonAcked,
  kScamp,
};

[[nodiscard]] const char* kind_name(ProtocolKind kind);

/// All four protocols, in the order the paper reports them.
[[nodiscard]] const std::vector<ProtocolKind>& all_protocol_kinds();

/// Tuning for Backend::run_cycles.
struct CycleOptions {
  /// Periodic node actions injected per quiescence drain (sim backend).
  /// 1 (default) reproduces PeerSim cycle semantics — each node's round
  /// traffic settles before the next node acts — and is pinned
  /// bit-identical to the historical per-node-drain path. Larger batches
  /// let the traffic of `batch` actions (possibly spanning round
  /// boundaries) interleave under one drain: statistically equivalent
  /// rounds, different (still deterministic) event orders — a bench-scale
  /// mode, not the §5 methodology. The TCP backend has no quiescence
  /// notion and always settles once per round.
  std::size_t batch = 1;
};

/// Continuous-churn workload: every cycle some nodes join, some leave
/// (gracefully or by crashing), one membership round runs, and probe
/// broadcasts measure the reliability the application sees meanwhile.
struct ChurnConfig {
  std::size_t cycles = 50;
  std::size_t joins_per_cycle = 10;
  std::size_t leaves_per_cycle = 10;
  /// Probability that a departure is graceful (Protocol::leave) rather
  /// than a crash.
  double graceful_fraction = 0.5;
  std::size_t probes_per_cycle = 2;
};

struct ChurnStats {
  std::vector<double> per_cycle_reliability;
  double avg_reliability = 0.0;
  double min_reliability = 1.0;
  std::size_t joins = 0;
  std::size_t graceful_leaves = 0;
  std::size_t crashes = 0;
};

/// Outcome of one leave_random wave.
struct LeaveWaveStats {
  std::size_t graceful = 0;
  std::size_t crashes = 0;
};

/// Trace-driven churn: joiners receive heavy-tailed session lengths (in
/// membership cycles) instead of the uniform kill fractions of ChurnConfig.
/// Measured session-time distributions (Gnutella/Kad traces) are Pareto or
/// lognormal shaped: most sessions are short, a heavy tail stays for the
/// whole run — a qualitatively different stress than uniform churn, because
/// view entries split into a stable core and a fast-churning fringe.
struct HeavyChurnConfig {
  enum class Dist : std::uint8_t { kPareto, kLognormal };

  std::size_t cycles = 30;
  std::size_t joins_per_cycle = 4;
  Dist dist = Dist::kPareto;
  /// Pareto(alpha, xm): alpha ≤ 2 gives the infinite-variance heavy tail.
  double pareto_alpha = 1.5;
  double pareto_xm = 2.0;  ///< minimum session length, cycles
  /// Lognormal(mu, sigma) of the underlying normal.
  double lognormal_mu = 1.5;
  double lognormal_sigma = 1.0;
  /// Probability a session ends gracefully (Protocol::leave) vs crashing.
  double graceful_fraction = 0.5;
  std::size_t probes_per_cycle = 2;
};

struct HeavyChurnStats {
  std::vector<double> per_cycle_reliability;
  double avg_reliability = 0.0;
  double min_reliability = 1.0;
  std::size_t joins = 0;
  std::size_t graceful_leaves = 0;
  std::size_t crashes = 0;
  double mean_session_cycles = 0.0;
  double max_session_cycles = 0.0;
};

/// Sustained pub/sub workload: `sources` publisher nodes each inject `rate`
/// messages per tick for `ticks` ticks. Unlike the discrete broadcast waves
/// of broadcast_many, every tick's messages are injected *before* the
/// network settles, so sources × rate broadcasts are genuinely in flight
/// concurrently — the regime Plumtree's lazy links and the configurable
/// dedup window exist for.
struct PubSubConfig {
  std::size_t sources = 4;
  std::size_t ticks = 25;
  /// Messages per source per tick.
  std::size_t rate = 1;
  /// Crash this fraction of alive nodes at the midpoint tick (0 = no
  /// churn). Dead publishers are replaced by fresh random alive sources —
  /// the stream keeps flowing while the overlay (and tree) heals.
  double churn_fraction = 0.0;
  /// Membership rounds run between injection and settling each tick
  /// (shuffles interleave with payload traffic; 0 = membership idle).
  std::size_t cycles_per_tick = 0;
};

struct PubSubStats {
  std::size_t published = 0;
  std::vector<double> per_tick_reliability;
  /// Mean/min over *messages* (not ticks).
  double avg_reliability = 0.0;
  double min_reliability = 1.0;
  /// Engine-counter deltas summed over every node, measured across the
  /// workload (deterministic on the sim backend).
  std::uint64_t payload_bytes = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t messages_forwarded = 0;
  std::uint64_t duplicates = 0;
  /// Tree-stability counters (always 0 for the eager engine).
  std::uint64_t grafts = 0;
  std::uint64_t prunes = 0;
  /// Publish-to-last-delivery latency over all messages, in the backend's
  /// time unit (simulated µs on sim, wall-clock µs on TCP). Zero when the
  /// recorder has no time source.
  double avg_latency_us = 0.0;
  std::int64_t max_latency_us = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// "sim" / "tcp" — for reports and BENCH records.
  [[nodiscard]] virtual const char* backend_name() const = 0;

  // --- Lifecycle --------------------------------------------------------------

  /// Creates all configured nodes and joins them one by one (no membership
  /// rounds in between — the §5 bootstrap).
  virtual void build() = 0;

  [[nodiscard]] virtual bool built() const = 0;

  /// Adds one node to the running system and joins it through a random
  /// alive contact; the join traffic settles before returning. Returns the
  /// new node's index.
  virtual std::size_t add_node() = 0;

  /// Crashes node `i` in place: no goodbyes, no settling — the §5 "massive
  /// failure" primitive (detect-on-send semantics are the backend's job).
  virtual void kill_node(std::size_t i) = 0;

  /// Removes node `i` from the system: gracefully (Protocol::leave, then
  /// the goodbyes drain, then the process exits) or as a crash. Settles
  /// before returning.
  virtual void leave_node(std::size_t i, bool graceful);

  /// Crashes ⌊fraction · alive⌋ uniformly random alive nodes (no settling,
  /// no failure notifications — detect-on-send).
  virtual void fail_random_fraction(double fraction);

  // --- Driving ----------------------------------------------------------------

  /// Runs `n` membership rounds. In each round every alive node executes
  /// its periodic action once, in random order; see CycleOptions for how
  /// the resulting traffic is drained.
  virtual void run_cycles(std::size_t n, const CycleOptions& options) = 0;

  void run_cycles(std::size_t n) { run_cycles(n, CycleOptions{}); }

  /// Lets in-flight traffic finish: run_until_quiescent on the simulator, a
  /// bounded real-time wait on the TCP backend.
  virtual void settle() = 0;

  // --- Dissemination ----------------------------------------------------------

  /// One broadcast from node `source` (must be alive); the broadcast (and
  /// any reactive repair traffic it triggers) settles before returning.
  virtual analysis::MessageResult broadcast_from(std::size_t source) = 0;

  /// Starts a broadcast from node `source` WITHOUT settling: registers the
  /// message with the recorder and injects it, leaving its traffic in
  /// flight. The pub/sub workload uses this to put many messages on the
  /// wire concurrently before one settle. Returns the message id.
  virtual std::uint64_t inject_broadcast(std::size_t source) = 0;

  /// Waits for the injected broadcasts `ids` to finish: quiescence drain on
  /// the simulator (the default — timers included, so graft repair runs to
  /// completion), recorder-progress polling bounded by the broadcast
  /// timeout on TCP.
  virtual void settle_broadcasts(std::span<const std::uint64_t> ids) {
    (void)ids;
    settle();
  }

  /// One broadcast from a uniformly random alive node.
  analysis::MessageResult broadcast_one();

  /// `count` sequential broadcasts (each settles before the next).
  std::vector<analysis::MessageResult> broadcast_many(std::size_t count);

  /// Changes the gossip fanout of every node (Figure 1 sweep).
  virtual void set_fanout(std::size_t fanout) = 0;

  // --- Workloads (shared implementations) -------------------------------------

  /// Runs the continuous-churn workload (see ChurnConfig). Implemented on
  /// the primitives above, so both backends execute the identical step
  /// sequence.
  virtual ChurnStats run_churn(const ChurnConfig& cfg);

  /// Runs the trace-driven churn workload (see HeavyChurnConfig): every
  /// cycle `joins_per_cycle` nodes join, each with a heavy-tailed session
  /// length drawn from the harness RNG stream; sessions that expire this
  /// cycle end (gracefully or by crashing); probes measure reliability.
  /// Shared implementation — both backends execute the identical draw
  /// sequence.
  virtual HeavyChurnStats run_heavy_churn(const HeavyChurnConfig& cfg);

  /// Runs the sustained pub/sub workload (see PubSubConfig). Shared
  /// implementation on inject_broadcast/settle_broadcasts, so both
  /// backends execute the identical source-selection and injection
  /// sequence.
  virtual PubSubStats run_pubsub(const PubSubConfig& cfg);

  /// Fires one sybil burst: every alive adversarial node injects
  /// `per_adversary` fabricated joins (AttackKind::kSybil; a no-op on
  /// honest clusters and other attacks), then the traffic settles.
  /// Returns the number of adversaries that fired.
  std::size_t sybil_burst(std::size_t per_adversary);

  /// `count` departures of random alive victims, each graceful with
  /// probability `graceful_fraction` (stops early when only two nodes
  /// remain). The single definition of the departure draw sequence — churn
  /// cycles and Experiment leave phases both use it, keeping their
  /// RNG-draw order in lockstep.
  LeaveWaveStats leave_random(std::size_t count, double graceful_fraction);

  /// Uniformly random alive node index (harness RNG stream).
  [[nodiscard]] std::size_t random_alive_node();

  // --- Graph snapshots (shared implementations) -------------------------------

  /// Arcs = dissemination views of all nodes (dead nodes keep their last
  /// views; pass alive_only=true to restrict to correct nodes). One
  /// definition of the snapshot for both backends — peers resolve through
  /// peer_slot().
  [[nodiscard]] graph::Digraph dissemination_graph(bool alive_only) const;

  /// Fraction of live out-neighbors, averaged over alive nodes (§2.3).
  [[nodiscard]] double view_accuracy() const;

  /// "Peer not in this cluster" sentinel for peer_slot().
  static constexpr std::size_t kNoPeer = static_cast<std::size_t>(-1);

  /// Index of the node a view entry refers to, or kNoPeer (sim: the dense
  /// id itself; TCP: whoever currently owns that ip:port).
  [[nodiscard]] virtual std::size_t peer_slot(const NodeId& peer) const = 0;

  // --- Access -----------------------------------------------------------------

  [[nodiscard]] virtual std::size_t node_count() const = 0;
  [[nodiscard]] virtual std::size_t alive_count() const = 0;
  [[nodiscard]] virtual bool alive(std::size_t i) const = 0;
  [[nodiscard]] virtual NodeId id_of(std::size_t i) const = 0;
  [[nodiscard]] virtual membership::Protocol& protocol(std::size_t i) = 0;
  [[nodiscard]] virtual const membership::Protocol& protocol(
      std::size_t i) const = 0;
  /// Node `i`'s broadcast engine (eager or Plumtree; traffic accounting).
  [[nodiscard]] virtual gossip::BroadcastEngine& engine(std::size_t i) = 0;
  [[nodiscard]] virtual analysis::BroadcastRecorder& recorder() = 0;

  /// The adversarial roster driving this backend's fault injection
  /// (adversary.hpp), or nullptr for an honest cluster.
  [[nodiscard]] virtual const Adversary* adversary() const { return nullptr; }

  /// Harness-level random stream (failure selection, source selection...).
  [[nodiscard]] virtual Rng& rng() = 0;

  /// Events dispatched so far — simulator events on the sim backend;
  /// *gossip deliveries + duplicates observed* on the TCP backend (its
  /// membership control frames are not metered). Perf accounting only; the
  /// two are not comparable across backends.
  [[nodiscard]] virtual std::uint64_t events_processed() const = 0;
};

}  // namespace hyparview::harness
