#include "hyparview/harness/adversary.hpp"

#include <algorithm>
#include <variant>

#include "hyparview/common/assert.hpp"

namespace hyparview::harness {

const char* attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kPoison: return "poison";
    case AttackKind::kDrop: return "drop";
    case AttackKind::kSybil: return "sybil";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Adversary
// ---------------------------------------------------------------------------

Adversary::Adversary(AdversaryConfig config, std::uint64_t seed,
                     bool real_addresses)
    : config_(config),
      rng_(derive_seed(seed, 0xadf'0001ull)),
      real_addresses_(real_addresses) {}

void Adversary::select(std::size_t node_count) {
  mask_.assign(node_count, false);
  selected_count_ = 0;
  colluders_.clear();
  if (!config_.enabled() || node_count < 2) return;
  const auto want = static_cast<std::size_t>(
      config_.fraction * static_cast<double>(node_count));
  std::vector<std::size_t> candidates;
  candidates.reserve(node_count - 1);
  // The bootstrap contact (node 0) stays honest: an adversarial contact
  // would make every experiment trivially eclipsed at build time.
  for (std::size_t i = 1; i < node_count; ++i) candidates.push_back(i);
  for (const std::size_t i :
       rng_.sample(candidates, std::min(want, candidates.size()))) {
    mask_[i] = true;
    ++selected_count_;
  }
}

bool Adversary::is_adversarial(std::size_t index) const {
  return index < mask_.size() && mask_[index];
}

void Adversary::add_colluder(const NodeId& id) { colluders_.push_back(id); }

NodeId Adversary::fabricate() {
  ++fabricated_serial_;
  if (real_addresses_) {
    // 127.127.x.y — loopback addresses nothing listens on; a dial gets an
    // immediate ECONNREFUSED, a send a failed write. Ports cycle through a
    // high range so identities stay distinct.
    return NodeId{0x7F7F0001u + (fabricated_serial_ >> 16),
                  static_cast<std::uint16_t>(
                      40000u + (fabricated_serial_ & 0xFFFFu))};
  }
  // Out-of-range simulator index: the simulator treats sends/dials to it
  // like traffic to a crashed peer (failure after the detection delay).
  return NodeId{0x4000'0000u + fabricated_serial_, 0};
}

NodeId Adversary::poison_id(Rng& rng) {
  if (colluders_.empty() || rng.chance(config_.fabricated_fraction)) {
    return fabricate();
  }
  return colluders_[static_cast<std::size_t>(rng.below(colluders_.size()))];
}

// ---------------------------------------------------------------------------
// AdversarialProtocol
// ---------------------------------------------------------------------------

AdversarialProtocol::AdversarialProtocol(
    membership::Env& env, std::unique_ptr<membership::Protocol> inner,
    ProtocolKind kind, Adversary& adversary)
    : env_(env),
      inner_(std::move(inner)),
      kind_(kind),
      adversary_(adversary) {
  HPV_CHECK(inner_ != nullptr);
}

void AdversarialProtocol::start(std::optional<NodeId> contact) {
  inner_->start(contact);
}

NodeId AdversarialProtocol::random_view_member() {
  const std::span<const NodeId> view = inner_->dissemination_view();
  if (view.empty()) return kNoNode;
  return view[static_cast<std::size_t>(env_.rng().below(view.size()))];
}

void AdversarialProtocol::poison_hyparview_shuffle(const NodeId& from,
                                                   const wire::Shuffle& m) {
  if (m.origin == env_.self()) {
    inner_->handle(from, m);  // a walk looping back to a colluding origin
    return;
  }
  // Answer the walk right here with a fully poisoned reply. Echoing the
  // origin's own entries as `sent` maximizes eviction of its legitimate
  // passive entries when it integrates ours.
  wire::ShuffleReply reply;
  reply.sent = m.entries;
  const std::size_t n = std::min<std::size_t>(
      adversary_.config().poison_entries, wire::kMaxShuffleEntries);
  for (std::size_t i = 0; i < n; ++i) {
    reply.entries.push_back(adversary_.poison_id(env_.rng()));
  }
  adversary_.counters().poisoned_entries += reply.entries.size();
  ++adversary_.counters().poisoned_frames;
  env_.send(m.origin, reply);
}

void AdversarialProtocol::poison_cyclon_shuffle(const NodeId& from) {
  // Answer with age-0 poison (youngest entries survive aging longest) and
  // never integrate the initiator's sample into a reply of our own.
  wire::CyclonShuffleReply reply;
  const std::size_t n = std::min<std::size_t>(
      adversary_.config().poison_entries, wire::kMaxCyclonShuffleEntries);
  for (std::size_t i = 0; i < n; ++i) {
    reply.entries.push_back(wire::AgedId{adversary_.poison_id(env_.rng()), 0});
  }
  adversary_.counters().poisoned_entries += reply.entries.size();
  ++adversary_.counters().poisoned_frames;
  env_.send(from, reply);
}

void AdversarialProtocol::handle(const NodeId& from,
                                 const wire::Message& msg) {
  if (adversary_.config().attack == AttackKind::kPoison) {
    switch (kind_) {
      case ProtocolKind::kHyParView:
        if (const auto* shuffle = std::get_if<wire::Shuffle>(&msg)) {
          poison_hyparview_shuffle(from, *shuffle);
          return;
        }
        if (const auto* fj = std::get_if<wire::ForwardJoin>(&msg)) {
          // Force-terminate the join walk at this colluder: the joiner's
          // active-view slot (and the reciprocal ForwardJoinAccept link)
          // is captured immediately instead of after a fair random walk.
          wire::ForwardJoin terminal = *fj;
          terminal.ttl = 0;
          ++adversary_.counters().forced_accepts;
          inner_->handle(from, terminal);
          return;
        }
        break;
      case ProtocolKind::kCyclon:
      case ProtocolKind::kCyclonAcked:
        if (std::get_if<wire::CyclonShuffle>(&msg) != nullptr) {
          poison_cyclon_shuffle(from);
          return;
        }
        if (const auto* walk = std::get_if<wire::CyclonJoinWalk>(&msg)) {
          // Terminate the walk here (in-degree swap happens at a
          // colluder), then pre-poison the joiner's nearly-empty starter
          // view with gift entries — gifts only fill free capacity, and a
          // fresh joiner is all free capacity.
          wire::CyclonJoinWalk terminal = *walk;
          terminal.ttl = 0;
          ++adversary_.counters().forced_accepts;
          inner_->handle(from, terminal);
          const std::size_t gifts = adversary_.config().poison_entries;
          for (std::size_t i = 0; i < gifts; ++i) {
            env_.send(walk->new_node,
                      wire::CyclonJoinGift{
                          wire::AgedId{adversary_.poison_id(env_.rng()), 0}});
          }
          adversary_.counters().poisoned_entries += gifts;
          ++adversary_.counters().poisoned_frames;
          return;
        }
        break;
      case ProtocolKind::kScamp:
        // Scamp poisoning is purely proactive (see on_cycle): forwarded
        // subscriptions already spread with the keep probability, so the
        // reactive path stays honest.
        break;
    }
  }
  inner_->handle(from, msg);
}

void AdversarialProtocol::on_send_failed(const NodeId& to,
                                         const wire::Message& msg) {
  inner_->on_send_failed(to, msg);
}

void AdversarialProtocol::on_link_closed(const NodeId& peer) {
  inner_->on_link_closed(peer);
}

void AdversarialProtocol::send_unsolicited_poison() {
  const NodeId target = random_view_member();
  if (target == kNoNode) return;
  const AdversaryConfig& cfg = adversary_.config();
  switch (kind_) {
    case ProtocolKind::kHyParView: {
      // ttl=1 is terminal at the receiver: it integrates our entries into
      // its passive view immediately and replies with a real sample.
      wire::Shuffle shuffle;
      shuffle.origin = env_.self();
      shuffle.ttl = 1;
      const std::size_t n =
          std::min<std::size_t>(cfg.poison_entries, wire::kMaxShuffleEntries);
      for (std::size_t i = 0; i < n; ++i) {
        shuffle.entries.push_back(adversary_.poison_id(env_.rng()));
      }
      adversary_.counters().poisoned_entries += shuffle.entries.size();
      env_.send(target, shuffle);
      break;
    }
    case ProtocolKind::kCyclon:
    case ProtocolKind::kCyclonAcked: {
      wire::CyclonShuffle shuffle;
      const std::size_t n = std::min<std::size_t>(
          cfg.poison_entries, wire::kMaxCyclonShuffleEntries);
      for (std::size_t i = 0; i < n; ++i) {
        shuffle.entries.push_back(
            wire::AgedId{adversary_.poison_id(env_.rng()), 0});
      }
      adversary_.counters().poisoned_entries += shuffle.entries.size();
      env_.send(target, shuffle);
      break;
    }
    case ProtocolKind::kScamp: {
      // One forwarded subscription per poison frame: it spreads through
      // the overlay with the 1/(1+|PV|) keep probability, planting sticky
      // poison wherever it lands.
      env_.send(target, wire::ScampForwardedSub{
                            adversary_.poison_id(env_.rng()), cfg.sybil_ttl});
      ++adversary_.counters().poisoned_entries;
      break;
    }
  }
  ++adversary_.counters().poisoned_frames;
}

void AdversarialProtocol::on_cycle() {
  inner_->on_cycle();
  if (adversary_.config().attack == AttackKind::kPoison) {
    for (std::size_t i = 0; i < adversary_.config().poison_per_cycle; ++i) {
      send_unsolicited_poison();
    }
  }
}

void AdversarialProtocol::leave() { inner_->leave(); }

void AdversarialProtocol::broadcast_targets(std::size_t fanout,
                                            const NodeId& from,
                                            std::vector<NodeId>& out) {
  if (adversary_.config().attack == AttackKind::kDrop) {
    // Forward membership traffic faithfully, drop every gossip relay: the
    // colluder stays a reputable overlay citizen while silently eating the
    // broadcasts routed through it.
    out.clear();
    ++adversary_.counters().gossip_dropped;
    return;
  }
  inner_->broadcast_targets(fanout, from, out);
}

void AdversarialProtocol::peer_unreachable(const NodeId& peer) {
  inner_->peer_unreachable(peer);
}

void AdversarialProtocol::on_traffic(const NodeId& from) {
  inner_->on_traffic(from);
}

std::span<const NodeId> AdversarialProtocol::dissemination_view() const {
  return inner_->dissemination_view();
}

std::span<const NodeId> AdversarialProtocol::backup_view() const {
  return inner_->backup_view();
}

const char* AdversarialProtocol::name() const { return inner_->name(); }

void AdversarialProtocol::sybil_burst(std::size_t count) {
  if (adversary_.config().attack != AttackKind::kSybil) return;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId target = random_view_member();
    if (target == kNoNode) return;
    const NodeId fake = adversary_.fabricate();
    switch (kind_) {
      case ProtocolKind::kHyParView:
        // Inject the walk mid-overlay: the terminal node adds the sybil to
        // its active view and dials it back — churning a real slot until
        // detect-on-send purges the fabrication.
        env_.send(target, wire::ForwardJoin{fake, adversary_.config().sybil_ttl});
        break;
      case ProtocolKind::kCyclon:
      case ProtocolKind::kCyclonAcked:
        // In-degree-preserving join: the terminal node swaps a *real* view
        // entry for the sybil, so every walk converts a live arc into a
        // dead one.
        env_.send(target,
                  wire::CyclonJoinWalk{fake, adversary_.config().sybil_ttl});
        break;
      case ProtocolKind::kScamp:
        // The contact floods |PV| + c forwarded-subscription copies, each
        // kept somewhere with the Scamp keep probability.
        env_.send(target, wire::ScampSubscribe{fake});
        break;
    }
    ++adversary_.counters().sybil_joins;
  }
}

// ---------------------------------------------------------------------------
// Wiring helpers
// ---------------------------------------------------------------------------

std::unique_ptr<membership::Protocol> maybe_wrap_adversarial(
    Adversary* adversary, std::size_t index, membership::Env& env,
    ProtocolKind kind, std::unique_ptr<membership::Protocol> inner) {
  if (adversary == nullptr || !adversary->is_adversarial(index)) return inner;
  adversary->add_colluder(env.self());
  return std::make_unique<AdversarialProtocol>(env, std::move(inner), kind,
                                               *adversary);
}

analysis::OverlayHealth collect_overlay_health(const Backend& backend) {
  const Adversary* adv = backend.adversary();
  analysis::OverlayHealth health;
  const std::size_t n = backend.node_count();
  std::vector<bool> honest(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    honest[i] =
        backend.alive(i) && !(adv != nullptr && adv->is_adversarial(i));
    if (honest[i]) ++health.honest_alive;
  }
  const auto classify = [&](std::span<const NodeId> view,
                            analysis::ViewPoisonCounts& counts) {
    for (const NodeId& peer : view) {
      ++counts.slots;
      const std::size_t slot = backend.peer_slot(peer);
      if (slot == Backend::kNoPeer) {
        // Names no process this cluster ever ran: a fabricated identity.
        ++counts.fabricated;
      } else if (adv != nullptr && adv->is_adversarial(slot)) {
        ++counts.adversarial;
      }
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!honest[i]) continue;
    classify(backend.protocol(i).dissemination_view(), health.active);
    classify(backend.protocol(i).backup_view(), health.backup);
  }
  health.largest_honest_component = analysis::largest_honest_component(
      backend.dissemination_graph(/*alive_only=*/true), honest);
  return health;
}

}  // namespace hyparview::harness
