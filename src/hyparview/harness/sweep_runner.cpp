#include "hyparview/harness/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/options.hpp"

namespace hyparview::harness {

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

SweepRunner::SweepRunner(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    const std::int64_t env = env_int("HPV_THREADS", 0);
    if (env > 0) {
      threads_ = static_cast<std::size_t>(env);
    } else {
      threads_ = std::thread::hardware_concurrency();
    }
  }
  if (threads_ == 0) threads_ = 1;
}

std::vector<double> SweepRunner::run(
    const std::vector<std::function<void()>>& jobs) const {
  std::vector<double> seconds(jobs.size(), 0.0);
  const std::size_t workers = std::min(threads_, jobs.size());
  if (workers <= 1) {
    // Serial reference path: inline, in index order.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto start = std::chrono::steady_clock::now();
      jobs[i]();
      seconds[i] = wall_seconds_since(start);
    }
    return seconds;
  }

  // Work stealing off one atomic counter: long points (high failure
  // fractions take longer to drain) do not convoy short ones.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      const auto start = std::chrono::steady_clock::now();
      jobs[i]();
      seconds[i] = wall_seconds_since(start);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is the last worker
  for (std::thread& t : pool) t.join();
  return seconds;
}

}  // namespace hyparview::harness
