// JSON experiment specs: the data-driven layer over harness::Experiment.
//
// A spec file describes one experiment end to end — which protocol, how many
// nodes, which seed, which attack, and the phase list — so CI and sweep
// scripts define new scenarios (adversarial matrix, pub/sub workloads,
// hundred-node TCP soaks) without recompiling. Loading is strict: every key
// is checked against the schema, unknown keys are errors naming the full key
// path ("network.nodez"), wrong types and out-of-range fractions likewise.
// A typo must fail the run, not silently fall back to a default.
//
// Schema (all keys optional unless noted):
//
//   {
//     "name": "fig2_point",              // required
//     "backend": "sim" | "tcp",          // default backend for hpv_run
//     "network": {                       // sim substrate + protocol params
//       "protocol": "HyParView" | "Cyclon" | "CyclonAcked" | "Scamp",
//       "nodes": 10000, "seed": 42, "fanout": 4,
//       "join_batch": 1,                 // bootstrap batching (bench mode)
//       "hyparview":  { active_capacity, passive_capacity, arwl, prwl,
//                       shuffle_ka, shuffle_kp, shuffle_ttl,
//                       promote_on_any_slot, warm_cache_size },
//       "cyclon":     { view_capacity, shuffle_length, join_walk_ttl,
//                       join_walks, purge_on_unreachable,
//                       shuffle_retry_on_failure },
//       "scamp":      { c, forward_ttl, lease_cycles,
//                       heartbeat_period_cycles, isolation_timeout_cycles,
//                       purge_on_unreachable },
//       "gossip":     { payload_size, dedup_window, reroute_on_failure,
//                       explicit_acks },
//       "adversary":  { "attack": "none"|"poison"|"drop"|"sybil",
//                       fraction, poison_per_cycle, poison_entries,
//                       fabricated_fraction, sybils_per_burst, sybil_ttl }
//     },
//     "tcp": {                           // real-socket substrate overrides
//       "nodes": 32, "seed": 42,         // default: the network values
//       "join_settle_ms": 15, "cycle_settle_ms": 50, "leave_settle_ms": 40,
//       "settle_window_ms": 30, "broadcast_timeout_ms": 5000,
//       "broadcast_quiet_window_ms": 150,
//       "stats_port": -1                 // -1 off, 0 ephemeral, else fixed
//     },
//     "phases": [                        // required; Experiment::from_json
//       {"kind": "stabilize"|"cycles", "cycles": 50, "batch": 1, "label": ...},
//       {"kind": "set_fanout", "fanout": 4, ...},
//       {"kind": "crash", "fraction": 0.5, ...},
//       {"kind": "leave", "count": 10, "graceful_fraction": 0.5, ...},
//       {"kind": "broadcast", "count": 1000, ...},
//       {"kind": "heal_until", "baseline": "measure", "max_cycles": 60,
//        "probes_per_cycle": 10, "batch": 1, ...},
//       {"kind": "churn", "cycles": 50, "joins_per_cycle": 10,
//        "leaves_per_cycle": 10, "graceful_fraction": 0.5,
//        "probes_per_cycle": 2, ...},
//       {"kind": "heavy_churn", "dist": "pareto"|"lognormal", "cycles": 30,
//        "joins_per_cycle": 4, "pareto_alpha": 1.5, "pareto_xm": 2.0,
//        "lognormal_mu": 1.5, "lognormal_sigma": 1.0,
//        "graceful_fraction": 0.5, "probes_per_cycle": 2, ...},
//       {"kind": "sybil_burst", "per_adversary": 8, ...},
//       {"kind": "settle", ...}
//     ]
//   }
//
// Every phase accepts a "label". Committed specs live in specs/ at the repo
// root; spec_path() resolves them (HPV_SPEC_DIR overrides the compiled-in
// location, so installed binaries and test sandboxes can relocate them).
//
// Determinism note: loaders construct configs via the same defaults_for
// factories and Experiment builder calls the C++ drivers use, so a spec that
// mirrors a driver's hardcoded setup produces bit-identical event counts at
// the same seed (pinned by spec_json_test and the bench_compare events
// gate).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hyparview/common/json.hpp"
#include "hyparview/harness/experiment.hpp"
#include "hyparview/harness/sim_backend.hpp"
#include "hyparview/harness/tcp_backend.hpp"

namespace hyparview::harness {

/// One fully-loaded spec: both substrate configs (the sim one always, the
/// TCP one derived from it plus the "tcp" overrides) and the phase list.
struct RunSpec {
  std::string name;
  /// "sim" or "tcp" — the spec's default substrate (hpv_run --backend
  /// overrides it).
  std::string backend = "sim";
  NetworkConfig net;
  TcpBackendConfig tcp;
  Experiment experiment{"unnamed"};
};

/// Decodes a whole spec document. Throws CheckError naming the offending
/// key on schema violations.
[[nodiscard]] RunSpec spec_from_json(const json::Value& doc);

/// parse_file + spec_from_json; errors name the path.
[[nodiscard]] RunSpec load_spec_file(const std::string& path);

/// Serializes a RunSpec back to the schema above (round-trip inverse of
/// spec_from_json for every field the loaders read).
[[nodiscard]] json::Value spec_to_json(const RunSpec& spec);

/// Decodes the "network" object (standalone entry point for tests; the
/// `path` prefixes error messages).
[[nodiscard]] NetworkConfig network_config_from_json(
    const json::Value& v, std::string_view path = "network");

/// Decodes an "adversary" object.
[[nodiscard]] AdversaryConfig adversary_config_from_json(
    const json::Value& v, std::string_view path = "adversary");

/// Canonical C++-built equivalents of the committed spec files — the exact
/// configs + phase programs the historical drivers hardcoded, at paper
/// scale. spec_json_test pins each committed specs/<name>.json byte-equal
/// to spec_to_json(builtin_spec(name)).dump(2), and `hpv_run --emit <name>`
/// regenerates a file after a schema change. Throws CheckError on unknown
/// names.
[[nodiscard]] RunSpec builtin_spec(std::string_view name);

/// Every name builtin_spec accepts (one per committed spec file).
[[nodiscard]] std::vector<std::string> builtin_spec_names();

/// Directory holding the committed spec files: $HPV_SPEC_DIR when set, else
/// the compiled-in source-tree specs/ directory.
[[nodiscard]] std::string spec_dir();

/// spec_dir() + "/<name>.json".
[[nodiscard]] std::string spec_path(std::string_view name);

}  // namespace hyparview::harness
