// Live stats endpoint for TcpBackend runs.
//
// A loopback TCP listener registered on the backend's own EventLoop: every
// accepted connection receives one JSON snapshot of the cluster (per-node
// active/passive view sizes, transport frame/byte counters and rates,
// broadcast reliability percentiles) and is then closed. One-shot polling
// keeps the protocol trivial — `nc 127.0.0.1 <port>` or a curl-less script
// can watch a live run without any framing.
//
// Threading: accept, snapshot and write all happen on the loop thread (the
// poller only ever observes bytes on its own socket), so the exporter adds
// no shared state and the backend stays TSan-clean by construction. Rates
// are derived from monotonic counter deltas between polls using the loop's
// clock — no wall-clock reads.
#pragma once

#include <cstdint>

#include "hyparview/common/json.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/net/event_loop.hpp"
#include "hyparview/net/fd.hpp"

namespace hyparview::harness {

class TcpBackend;

class StatsExporter final : public net::IoHandler {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back via
  /// port()) and registers with the backend's loop. Throws CheckError when
  /// the bind fails (a fixed port being taken must fail the run loudly).
  StatsExporter(TcpBackend& backend, int port);
  ~StatsExporter() override;

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  /// The bound listening port.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Builds the snapshot document served to pollers (public so hpv_run can
  /// dump a final snapshot without opening a socket). Updates the rate
  /// baseline, so back-to-back calls report rates over the gap between
  /// them.
  [[nodiscard]] json::Value snapshot();

  // --- net::IoHandler ---------------------------------------------------------
  void on_readable() override;
  void on_writable() override {}

 private:
  TcpBackend& backend_;
  net::Fd listen_fd_;
  std::uint16_t port_ = 0;

  /// Rate baseline: loop time and aggregate counters at the last snapshot
  /// (-1 = no poll yet, rates report 0).
  TimePoint last_poll_ = -1;
  std::uint64_t last_frames_ = 0;
  std::uint64_t last_bytes_ = 0;
};

}  // namespace hyparview::harness
