// Bench scaling knobs.
//
// Every bench binary reads its scale from the environment so the same
// executables serve CI smoke runs and paper-scale reproductions:
//   HPV_NODES  — network size           (default: paper's 10000)
//   HPV_MSGS   — broadcasts per scenario (default: per-figure paper value)
//   HPV_RUNS   — independent repetitions to aggregate (default 1)
//   HPV_SEED   — master seed (default 42)
//   HPV_QUICK  — =1 shrinks to a 1000-node / 100-message smoke setup
#pragma once

#include <cstdint>

namespace hyparview::harness {

struct BenchScale {
  std::size_t nodes = 10'000;
  std::size_t messages = 1'000;
  std::size_t runs = 1;
  std::uint64_t seed = 42;
  bool quick = false;

  /// Reads the environment; `default_messages` is the paper's per-figure
  /// message count.
  [[nodiscard]] static BenchScale from_env(std::size_t default_messages);
};

}  // namespace hyparview::harness
