#include "hyparview/harness/network.hpp"

#include <algorithm>
#include <numeric>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::harness {

const char* kind_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kHyParView: return "HyParView";
    case ProtocolKind::kCyclon: return "Cyclon";
    case ProtocolKind::kCyclonAcked: return "CyclonAcked";
    case ProtocolKind::kScamp: return "Scamp";
  }
  return "?";
}

const std::vector<ProtocolKind>& all_protocol_kinds() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kHyParView, ProtocolKind::kCyclonAcked,
      ProtocolKind::kCyclon, ProtocolKind::kScamp};
  return kinds;
}

NetworkConfig NetworkConfig::defaults_for(ProtocolKind kind,
                                          std::size_t nodes,
                                          std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.kind = kind;
  cfg.node_count = nodes;
  cfg.seed = seed;
  cfg.sim.seed = seed;
  // §5.1 parameters.
  cfg.fanout = 4;
  cfg.hyparview.active_capacity = 5;   // fanout + 1
  cfg.hyparview.passive_capacity = 30;
  cfg.hyparview.arwl = 6;
  cfg.hyparview.prwl = 3;
  cfg.hyparview.shuffle_ka = 3;
  cfg.hyparview.shuffle_kp = 4;
  cfg.hyparview.shuffle_ttl = 6;
  cfg.cyclon.view_capacity = 35;       // HyParView active + passive
  cfg.cyclon.shuffle_length = 14;
  cfg.cyclon.join_walk_ttl = 5;
  cfg.scamp.c = 4;
  cfg.cyclon.purge_on_unreachable = (kind == ProtocolKind::kCyclonAcked);
  // HyParView keeps an open TCP connection to every active-view member, so
  // a peer's crash surfaces immediately as a connection reset (§4: "TCP is
  // also used as a failure detector"). Cyclon and Scamp keep no standing
  // connections and only discover failures when they next try to send.
  cfg.sim.notify_on_crash = (kind == ProtocolKind::kHyParView);
  switch (kind) {
    case ProtocolKind::kHyParView:
      cfg.gossip.mode = gossip::Mode::kFlood;
      break;
    case ProtocolKind::kCyclonAcked:
      cfg.gossip.mode = gossip::Mode::kRandomFanoutAcked;
      break;
    case ProtocolKind::kCyclon:
    case ProtocolKind::kScamp:
      cfg.gossip.mode = gossip::Mode::kRandomFanout;
      break;
  }
  cfg.gossip.fanout = cfg.fanout;
  // The harness drains every broadcast before starting the next, so at most
  // a handful of ids ever have copies in flight — 128 leaves two orders of
  // magnitude of slack over that in-flight horizon. Keeping the per-node
  // window small matters at paper scale: 10k windows are probed once per
  // delivery, and their combined footprint decides whether the dedup path
  // hits cache or DRAM.
  cfg.gossip.dedup_window = 128;
  return cfg;
}

Network::Network(NetworkConfig config)
    : config_(config), sim_(config.sim) {
  HPV_CHECK_THROW(config_.node_count >= 2,
                  "network needs at least two nodes");
}

Network::~Network() = default;

std::size_t Network::assign_class() {
  if (config_.hyparview_classes.empty()) return 0;
  const double roll = sim_.rng().unit();
  double cumulative = 0.0;
  for (std::size_t c = 0; c < config_.hyparview_classes.size(); ++c) {
    cumulative += config_.hyparview_classes[c].fraction;
    if (roll < cumulative) return c;
  }
  return config_.hyparview_classes.size() - 1;  // fractions under-summed
}

std::size_t Network::node_class(std::size_t i) const {
  HPV_CHECK(i < class_of_.size());
  return class_of_[i];
}

std::unique_ptr<membership::Protocol> Network::make_protocol(
    membership::Env& env, std::size_t index) {
  switch (config_.kind) {
    case ProtocolKind::kHyParView: {
      core::Config cfg = config_.hyparview;
      if (!config_.hyparview_classes.empty()) {
        const auto& cls = config_.hyparview_classes[class_of_[index]];
        cfg.active_capacity = cls.active_capacity;
        cfg.passive_capacity = cls.passive_capacity;
      }
      return std::make_unique<core::HyParView>(env, cfg);
    }
    case ProtocolKind::kCyclon:
    case ProtocolKind::kCyclonAcked:
      return std::make_unique<baselines::Cyclon>(env, config_.cyclon);
    case ProtocolKind::kScamp:
      return std::make_unique<baselines::Scamp>(env, config_.scamp);
  }
  HPV_CHECK(false);
  return nullptr;
}

void Network::build(const BuildOptions& options) {
  HPV_CHECK(!built_);
  HPV_CHECK_THROW(options.join_batch >= 1, "join_batch must be >= 1");
  built_ = true;
  runtimes_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const NodeId id = sim_.add_node(nullptr);
    class_of_.push_back(assign_class());
    gossip::GossipConfig gcfg = config_.gossip;
    gcfg.fanout = config_.fanout;
    auto runtime = std::make_unique<gossip::NodeRuntime>(
        sim_.env(id), make_protocol(sim_.env(id), i), gcfg, &recorder_);
    sim_.set_handler(id, runtime.get());
    runtimes_.push_back(std::move(runtime));
  }
  // Joins happen with no membership rounds in between (§5); each drain is
  // bounded by the watermark taken before the batch, so only the joins'
  // own traffic (and its cascades) is retired.
  {
    const std::uint64_t mark = sim_.next_event_seq();
    runtimes_[0]->protocol().start(std::nullopt);
    sim_.run_until_quiescent_from(mark);
  }
  for (std::size_t i = 1; i < runtimes_.size();) {
    const std::size_t batch_end =
        std::min(runtimes_.size(), i + options.join_batch);
    const std::uint64_t mark = sim_.next_event_seq();
    for (; i < batch_end; ++i) {
      std::size_t contact = 0;
      if (config_.kind == ProtocolKind::kScamp) {
        // Scamp joins through a random node already in the overlay.
        contact = static_cast<std::size_t>(sim_.rng().below(i));
      }
      runtimes_[i]->protocol().start(id_of(contact));
    }
    sim_.run_until_quiescent_from(mark);
  }
}

void Network::run_cycles(std::size_t n) {
  // Reused member scratch: run_cycles sits inside the membership-phase
  // steady state (micro_sim_events gates it allocation-free), so the random
  // round order must not cost a vector per call.
  cycle_order_.resize(runtimes_.size());
  std::iota(cycle_order_.begin(), cycle_order_.end(), 0);
  for (std::size_t round = 0; round < n; ++round) {
    sim_.rng().shuffle(cycle_order_);
    for (const std::size_t i : cycle_order_) {
      if (!alive(i)) continue;
      runtimes_[i]->protocol().on_cycle();
      sim_.run_until_quiescent();
    }
  }
}

void Network::fail_random_fraction(double fraction) {
  HPV_CHECK_THROW(fraction >= 0.0 && fraction <= 1.0,
                  "failure fraction must be within [0,1]");
  std::vector<std::size_t> alive_ids;
  alive_ids.reserve(runtimes_.size());
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    if (alive(i)) alive_ids.push_back(i);
  }
  const auto count =
      static_cast<std::size_t>(fraction * static_cast<double>(alive_ids.size()));
  for (const std::size_t i : sim_.rng().sample(alive_ids, count)) {
    sim_.crash(id_of(i));
  }
}

std::size_t Network::add_node() {
  HPV_CHECK(built_);
  // Checked before the node is created: once the joiner exists it is itself
  // alive, and the contact-selection loop below would otherwise spin
  // forever drawing the joiner as its own contact.
  HPV_CHECK_THROW(sim_.alive_count() > 0,
                  "add_node: no alive node left to act as join contact");
  const NodeId id = sim_.add_node(nullptr);
  class_of_.push_back(assign_class());
  gossip::GossipConfig gcfg = config_.gossip;
  gcfg.fanout = config_.fanout;
  auto runtime = std::make_unique<gossip::NodeRuntime>(
      sim_.env(id), make_protocol(sim_.env(id), runtimes_.size()), gcfg,
      &recorder_);
  sim_.set_handler(id, runtime.get());
  runtimes_.push_back(std::move(runtime));
  const std::size_t index = runtimes_.size() - 1;
  // Every protocol joins a live system through a random alive contact (the
  // single-contact bootstrap of build() is a cold-start artifact).
  std::size_t contact = index;
  while (contact == index) contact = pick_alive_index();
  runtimes_[index]->protocol().start(id_of(contact));
  sim_.run_until_quiescent();
  return index;
}

void Network::leave_node(std::size_t i, bool graceful) {
  HPV_CHECK(i < runtimes_.size());
  if (!alive(i)) return;
  if (graceful) runtimes_[i]->protocol().leave();
  // The process exits right after writing its goodbyes: it must not keep
  // participating (e.g. accepting NEIGHBOR requests back into active
  // views) while they are in flight. The writes themselves still flush —
  // in-flight deliveries are unaffected by the sender's exit.
  sim_.crash(id_of(i));
  sim_.run_until_quiescent();
}

ChurnStats Network::run_churn(const ChurnConfig& cfg) {
  HPV_CHECK(built_);
  ChurnStats stats;
  for (std::size_t cycle = 0; cycle < cfg.cycles; ++cycle) {
    for (std::size_t j = 0; j < cfg.joins_per_cycle; ++j) {
      add_node();
      ++stats.joins;
    }
    for (std::size_t l = 0; l < cfg.leaves_per_cycle; ++l) {
      if (sim_.alive_count() <= 2) break;
      const std::size_t victim = pick_alive_index();
      const bool graceful = sim_.rng().chance(cfg.graceful_fraction);
      leave_node(victim, graceful);
      ++(graceful ? stats.graceful_leaves : stats.crashes);
    }
    run_cycles(1);
    if (cfg.probes_per_cycle > 0) {
      double sum = 0.0;
      for (std::size_t p = 0; p < cfg.probes_per_cycle; ++p) {
        sum += broadcast_one().reliability();
      }
      const double reliability =
          sum / static_cast<double>(cfg.probes_per_cycle);
      stats.per_cycle_reliability.push_back(reliability);
      stats.min_reliability = std::min(stats.min_reliability, reliability);
    }
  }
  if (!stats.per_cycle_reliability.empty()) {
    double total = 0.0;
    for (const double r : stats.per_cycle_reliability) total += r;
    stats.avg_reliability =
        total / static_cast<double>(stats.per_cycle_reliability.size());
  }
  return stats;
}

std::size_t Network::pick_alive_index() {
  HPV_CHECK(sim_.alive_count() > 0);
  while (true) {
    const auto i =
        static_cast<std::size_t>(sim_.rng().below(runtimes_.size()));
    if (alive(i)) return i;
  }
}

analysis::MessageResult Network::broadcast_one() {
  return broadcast_from(pick_alive_index());
}

analysis::MessageResult Network::broadcast_from(std::size_t source) {
  HPV_CHECK(source < runtimes_.size() && alive(source));
  const std::uint64_t msg_id = next_msg_id_++;
  recorder_.begin_message(msg_id, sim_.alive_count());
  runtimes_[source]->gossip().broadcast(msg_id);
  sim_.run_until_quiescent();
  return recorder_.result(msg_id);
}

std::vector<analysis::MessageResult> Network::broadcast_many(
    std::size_t count) {
  std::vector<analysis::MessageResult> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(broadcast_one());
  return out;
}

void Network::set_fanout(std::size_t fanout) {
  config_.fanout = fanout;
  for (auto& runtime : runtimes_) runtime->gossip().set_fanout(fanout);
}

graph::Digraph Network::dissemination_graph(bool alive_only) const {
  graph::Digraph g(runtimes_.size());
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    if (alive_only && !alive(i)) continue;
    for (const NodeId& peer : runtimes_[i]->protocol().dissemination_view()) {
      if (alive_only && !sim_.alive(peer)) continue;
      g.add_edge(static_cast<std::uint32_t>(i), peer.ip);
    }
  }
  g.dedupe();
  return g;
}

double Network::view_accuracy() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    if (!alive(i)) continue;
    const auto view = runtimes_[i]->protocol().dissemination_view();
    if (view.empty()) continue;
    std::size_t live = 0;
    for (const NodeId& peer : view) {
      if (sim_.alive(peer)) ++live;
    }
    sum += static_cast<double>(live) / static_cast<double>(view.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

membership::Protocol& Network::protocol(std::size_t i) {
  HPV_CHECK(i < runtimes_.size());
  return runtimes_[i]->protocol();
}

gossip::NodeRuntime& Network::runtime(std::size_t i) {
  HPV_CHECK(i < runtimes_.size());
  return *runtimes_[i];
}

NodeId Network::id_of(std::size_t i) const {
  HPV_CHECK(i < runtimes_.size());
  return NodeId::from_index(static_cast<std::uint32_t>(i));
}

bool Network::alive(std::size_t i) const { return sim_.alive(id_of(i)); }

std::vector<bool> Network::alive_mask() const {
  std::vector<bool> mask(runtimes_.size());
  for (std::size_t i = 0; i < runtimes_.size(); ++i) mask[i] = alive(i);
  return mask;
}

HealingResult run_healing_experiment(const NetworkConfig& netcfg,
                                     const HealingConfig& cfg) {
  Network net(netcfg);
  net.build();
  net.run_cycles(cfg.stabilization_cycles);

  HealingResult result;
  // Pre-failure baseline: the reliability this protocol must regain.
  {
    double sum = 0.0;
    for (std::size_t i = 0; i < cfg.probes_per_cycle; ++i) {
      sum += net.broadcast_one().reliability();
    }
    result.baseline_reliability = sum / static_cast<double>(cfg.probes_per_cycle);
  }

  net.fail_random_fraction(cfg.fail_fraction);

  for (std::size_t cycle = 1; cycle <= cfg.max_cycles; ++cycle) {
    net.run_cycles(1);
    double sum = 0.0;
    for (std::size_t i = 0; i < cfg.probes_per_cycle; ++i) {
      sum += net.broadcast_one().reliability();
    }
    const double reliability =
        sum / static_cast<double>(cfg.probes_per_cycle);
    result.per_cycle_reliability.push_back(reliability);
    if (reliability >= result.baseline_reliability) {
      result.cycles_to_heal = cycle;
      result.recovered = true;
      break;
    }
  }
  if (!result.recovered) result.cycles_to_heal = cfg.max_cycles;
  result.events_processed = net.simulator().events_processed();
  return result;
}

}  // namespace hyparview::harness
